/**
 * @file
 * Tests of the deterministic xoshiro256** RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using adaptsim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, SmallConsecutiveSeedsAreIndependent)
{
    // SplitMix seeding must decorrelate seeds 0 and 1.
    Rng a(0), b(1);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(17);
    const std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.nextWeighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.4);
}

TEST(Rng, SplitIsDeterministicAndIndependent)
{
    Rng a(5), b(5);
    Rng ca = a.split(1);
    Rng cb = b.split(1);
    EXPECT_EQ(ca.next(), cb.next());

    Rng c2 = Rng(5).split(2);
    Rng c1 = Rng(5).split(1);
    EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, BoolProbability)
{
    Rng rng(23);
    int trues = 0;
    for (int i = 0; i < 20000; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(trues / 20000.0, 0.25, 0.02);
}
