#include "space/design_space.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace adaptsim::space
{

namespace
{

std::vector<std::uint64_t>
linearRange(std::uint64_t lo, std::uint64_t hi, std::uint64_t step)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t v = lo; v <= hi; v += step)
        out.push_back(v);
    return out;
}

std::vector<std::uint64_t>
geometricRange(std::uint64_t lo, std::uint64_t hi)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t v = lo; v <= hi; v *= 2)
        out.push_back(v);
    return out;
}

} // namespace

std::array<Param, numParams>
allParams()
{
    std::array<Param, numParams> out;
    for (std::size_t i = 0; i < numParams; ++i)
        out[i] = static_cast<Param>(i);
    return out;
}

DesignSpace::DesignSpace()
{
    auto set = [&](Param p, std::string name,
                   std::vector<std::uint64_t> vals) {
        const auto i = static_cast<std::size_t>(p);
        names_[i] = std::move(name);
        values_[i] = std::move(vals);
    };

    set(Param::Width, "Width", {2, 4, 6, 8});
    set(Param::RobSize, "ROB", linearRange(32, 160, 8));
    set(Param::IqSize, "IQ", linearRange(8, 80, 8));
    set(Param::LsqSize, "LSQ", linearRange(8, 80, 8));
    set(Param::RfSize, "RF", linearRange(40, 160, 8));
    set(Param::RfRdPorts, "RFrd", linearRange(2, 16, 2));
    set(Param::RfWrPorts, "RFwr", linearRange(1, 8, 1));
    set(Param::GshareSize, "Gshare", geometricRange(1024, 32768));
    set(Param::BtbSize, "BTB", {1024, 2048, 4096});
    set(Param::MaxBranches, "Branches", {8, 16, 24, 32});
    set(Param::ICacheSize, "ICache",
        geometricRange(8 * 1024, 128 * 1024));
    set(Param::DCacheSize, "DCache",
        geometricRange(8 * 1024, 128 * 1024));
    set(Param::L2CacheSize, "UCache",
        geometricRange(256 * 1024, 4 * 1024 * 1024));
    set(Param::Depth, "Depth", linearRange(9, 36, 3));
}

const DesignSpace &
DesignSpace::the()
{
    static const DesignSpace instance;
    return instance;
}

const std::string &
DesignSpace::name(Param p) const
{
    return names_[static_cast<std::size_t>(p)];
}

std::size_t
DesignSpace::numValues(Param p) const
{
    return values_[static_cast<std::size_t>(p)].size();
}

std::uint64_t
DesignSpace::value(Param p, std::size_t idx) const
{
    const auto &vals = values_[static_cast<std::size_t>(p)];
    if (idx >= vals.size())
        panic("DesignSpace::value index out of range for ", name(p));
    return vals[idx];
}

const std::vector<std::uint64_t> &
DesignSpace::values(Param p) const
{
    return values_[static_cast<std::size_t>(p)];
}

std::size_t
DesignSpace::indexOf(Param p, std::uint64_t v) const
{
    const auto &vals = values_[static_cast<std::size_t>(p)];
    const auto it = std::find(vals.begin(), vals.end(), v);
    if (it == vals.end())
        fatal("value ", v, " is not legal for parameter ", name(p));
    return static_cast<std::size_t>(it - vals.begin());
}

std::size_t
DesignSpace::closestIndex(Param p, std::uint64_t v) const
{
    const auto &vals = values_[static_cast<std::size_t>(p)];
    std::size_t best = 0;
    std::uint64_t best_dist = ~std::uint64_t(0);
    for (std::size_t i = 0; i < vals.size(); ++i) {
        const std::uint64_t d = vals[i] > v ? vals[i] - v : v - vals[i];
        if (d < best_dist) {
            best_dist = d;
            best = i;
        }
    }
    return best;
}

double
DesignSpace::totalPoints() const
{
    double total = 1.0;
    for (const auto &vals : values_)
        total *= static_cast<double>(vals.size());
    return total;
}

std::size_t
DesignSpace::totalValueCount() const
{
    std::size_t total = 0;
    for (const auto &vals : values_)
        total += vals.size();
    return total;
}

} // namespace adaptsim::space
