/**
 * @file
 * Tests of the FO4-depth frequency model.
 */

#include <gtest/gtest.h>

#include "power/frequency.hh"

using namespace adaptsim::power;

TEST(Frequency, PeriodIncludesLatchOverhead)
{
    EXPECT_NEAR(clockPeriodSeconds(9),
                (9.0 + latchOverheadFo4) * fo4DelaySeconds, 1e-18);
}

TEST(Frequency, FrequencyInverseOfPeriod)
{
    for (int d = 9; d <= 36; d += 3) {
        EXPECT_NEAR(clockFrequencyHz(d) * clockPeriodSeconds(d),
                    1.0, 1e-12);
    }
}

TEST(Frequency, PlausibleGhzRange)
{
    EXPECT_GT(clockFrequencyHz(9), 3.0e9);    // deep pipeline
    EXPECT_LT(clockFrequencyHz(9), 5.0e9);
    EXPECT_GT(clockFrequencyHz(36), 0.8e9);   // shallow pipeline
    EXPECT_LT(clockFrequencyHz(36), 1.5e9);
}

TEST(Frequency, StagesDecreaseWithDepth)
{
    int prev = 1 << 20;
    for (int d = 9; d <= 36; d += 3) {
        const int stages = pipelineStages(d);
        EXPECT_LE(stages, prev);
        prev = stages;
    }
    EXPECT_GE(pipelineStages(36), 5);
    EXPECT_GE(pipelineStages(9), 20);   // deep design is deep
}

TEST(Frequency, FrontendAboutHalf)
{
    for (int d = 9; d <= 36; d += 3) {
        const int fe = frontendStages(d);
        EXPECT_GE(fe, 2);
        EXPECT_LE(fe, pipelineStages(d));
        EXPECT_NEAR(double(fe) / pipelineStages(d), 0.5, 0.15);
    }
}
