#include "uarch/rob.hh"

#include "common/logging.hh"

namespace adaptsim::uarch
{

Rob::Rob(int capacity)
    : capacity_(capacity), entries_(capacity)
{
    if (capacity < 4)
        fatal("ROB capacity too small: ", capacity);
}

std::int32_t
Rob::push()
{
    if (full())
        panic("Rob::push on full ROB");
    ++count_;
    const std::int32_t idx = tailIndex();
    RobEntry &e = entries_[idx];
    // Preserve seq (incremented on recycle), reset the rest.
    const std::uint32_t seq = e.seq + 1;
    e = RobEntry{};
    e.seq = seq;
    e.state = OpState::Dispatched;
    return idx;
}

void
Rob::popHead()
{
    if (empty())
        panic("Rob::popHead on empty ROB");
    RobEntry &e = entries_[head_];
    e.state = OpState::Empty;
    ++e.seq;
    head_ = static_cast<std::int32_t>((head_ + 1) % capacity_);
    --count_;
}

} // namespace adaptsim::uarch
