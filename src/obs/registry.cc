#include "obs/registry.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/logging.hh"
#include "common/sync.hh"

namespace adaptsim::obs
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Kind { Counter, Gauge, Histogram };

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Counter:
        return "counter";
      case Kind::Gauge:
        return "gauge";
      case Kind::Histogram:
        return "histogram";
    }
    return "?";
}

} // namespace

/** One thread's private slice of every metric's value. */
struct Registry::Shard
{
    struct Hist
    {
        std::vector<std::uint64_t> counts;
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = kInf;
        double max = -kInf;
    };

    /** Owner thread vs. merging reader; never writer vs. writer. */
    mutable Mutex mutex;
    std::vector<std::uint64_t> counters ADAPTSIM_GUARDED_BY(mutex);
    std::vector<Hist> hists ADAPTSIM_GUARDED_BY(mutex);

    void
    zero() ADAPTSIM_REQUIRES(mutex)
    {
        std::fill(counters.begin(), counters.end(), 0);
        for (auto &h : hists)
            h = Hist{std::vector<std::uint64_t>(h.counts.size(), 0)};
    }
};

struct Registry::State
{
    mutable Mutex mutex;

    std::unordered_map<std::string, std::pair<Kind, std::size_t>>
        names ADAPTSIM_GUARDED_BY(mutex);
    std::deque<std::unique_ptr<Counter>> counters
        ADAPTSIM_GUARDED_BY(mutex);
    std::deque<std::unique_ptr<Gauge>> gauges
        ADAPTSIM_GUARDED_BY(mutex);
    std::deque<std::unique_ptr<Histogram>> histograms
        ADAPTSIM_GUARDED_BY(mutex);
    std::vector<double> gaugeValues ADAPTSIM_GUARDED_BY(mutex);

    std::vector<std::shared_ptr<Shard>> shards
        ADAPTSIM_GUARDED_BY(mutex);
    /** Totals inherited from exited threads.  The object is reached
     *  only under the state mutex; its members additionally need its
     *  own shard mutex, which is only ever acquired while the state
     *  mutex is held (so the two-level order is acyclic). */
    Shard retired ADAPTSIM_GUARDED_BY(mutex);
};

namespace
{

/** Per-thread shard table, torn down (and merged) at thread exit. */
struct ThreadShards
{
    struct Entry
    {
        std::weak_ptr<Registry::State> state;
        Registry::State *key;
        std::shared_ptr<Registry::Shard> shard;
    };
    std::vector<Entry> entries;

    // One-element cache: almost every process touches one registry.
    Registry::State *lastState = nullptr;
    Registry::Shard *lastShard = nullptr;

    ~ThreadShards();
};

thread_local ThreadShards tls_shards;

void
mergeInto(Registry::Shard &into, const Registry::Shard &from)
    ADAPTSIM_REQUIRES(into.mutex, from.mutex)
{
    if (into.counters.size() < from.counters.size())
        into.counters.resize(from.counters.size(), 0);
    for (std::size_t i = 0; i < from.counters.size(); ++i)
        into.counters[i] += from.counters[i];

    if (into.hists.size() < from.hists.size())
        into.hists.resize(from.hists.size());
    for (std::size_t i = 0; i < from.hists.size(); ++i) {
        auto &dst = into.hists[i];
        const auto &src = from.hists[i];
        if (dst.counts.size() < src.counts.size())
            dst.counts.resize(src.counts.size(), 0);
        for (std::size_t b = 0; b < src.counts.size(); ++b)
            dst.counts[b] += src.counts[b];
        dst.count += src.count;
        dst.sum += src.sum;
        dst.min = std::min(dst.min, src.min);
        dst.max = std::max(dst.max, src.max);
    }
}

ThreadShards::~ThreadShards()
{
    for (auto &e : entries) {
        const auto state = e.state.lock();
        if (!state)
            continue;   // registry died first; nothing to keep
        MutexLock lock(state->mutex);
        {
            MutexLock rlock(state->retired.mutex);
            MutexLock slock(e.shard->mutex);
            mergeInto(state->retired, *e.shard);
        }
        auto &shards = state->shards;
        shards.erase(
            std::remove(shards.begin(), shards.end(), e.shard),
            shards.end());
    }
}

} // namespace

Registry::Registry() : state_(std::make_shared<State>())
{
}

Registry::~Registry() = default;

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Registry::Shard &
Registry::localShard()
{
    auto &tls = tls_shards;
    if (tls.lastState == state_.get())
        return *tls.lastShard;
    for (auto &e : tls.entries) {
        if (e.key == state_.get() && !e.state.expired()) {
            tls.lastState = e.key;
            tls.lastShard = e.shard.get();
            return *e.shard;
        }
    }
    auto shard = std::make_shared<Shard>();
    {
        MutexLock lock(state_->mutex);
        state_->shards.push_back(shard);
    }
    tls.entries.push_back(
        ThreadShards::Entry{state_, state_.get(), shard});
    tls.lastState = state_.get();
    tls.lastShard = shard.get();
    return *shard;
}

Counter &
Registry::counter(const std::string &name)
{
    MutexLock lock(state_->mutex);
    const auto it = state_->names.find(name);
    if (it != state_->names.end()) {
        if (it->second.first != Kind::Counter)
            panic("obs metric '", name, "' already registered as a ",
                  kindName(it->second.first));
        return *state_->counters[it->second.second];
    }
    const std::size_t id = state_->counters.size();
    state_->counters.emplace_back(new Counter(this, id, name));
    state_->names.emplace(name, std::make_pair(Kind::Counter, id));
    return *state_->counters.back();
}

Gauge &
Registry::gauge(const std::string &name)
{
    MutexLock lock(state_->mutex);
    const auto it = state_->names.find(name);
    if (it != state_->names.end()) {
        if (it->second.first != Kind::Gauge)
            panic("obs metric '", name, "' already registered as a ",
                  kindName(it->second.first));
        return *state_->gauges[it->second.second];
    }
    const std::size_t id = state_->gauges.size();
    state_->gauges.emplace_back(new Gauge(this, id, name));
    state_->gaugeValues.push_back(0.0);
    state_->names.emplace(name, std::make_pair(Kind::Gauge, id));
    return *state_->gauges.back();
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> bounds)
{
    if (bounds.empty())
        panic("obs histogram '", name, "' needs at least one bound");
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        panic("obs histogram '", name, "' bounds must be ascending");

    MutexLock lock(state_->mutex);
    const auto it = state_->names.find(name);
    if (it != state_->names.end()) {
        if (it->second.first != Kind::Histogram)
            panic("obs metric '", name, "' already registered as a ",
                  kindName(it->second.first));
        return *state_->histograms[it->second.second];
    }
    const std::size_t id = state_->histograms.size();
    state_->histograms.emplace_back(
        new Histogram(this, id, name, std::move(bounds)));
    state_->names.emplace(name, std::make_pair(Kind::Histogram, id));
    return *state_->histograms.back();
}

Counter *
Registry::findCounter(const std::string &name)
{
    MutexLock lock(state_->mutex);
    const auto it = state_->names.find(name);
    if (it == state_->names.end() ||
        it->second.first != Kind::Counter)
        return nullptr;
    return state_->counters[it->second.second].get();
}

Histogram *
Registry::findHistogram(const std::string &name)
{
    MutexLock lock(state_->mutex);
    const auto it = state_->names.find(name);
    if (it == state_->names.end() ||
        it->second.first != Kind::Histogram)
        return nullptr;
    return state_->histograms[it->second.second].get();
}

void
Registry::reset()
{
    MutexLock lock(state_->mutex);
    for (auto &shard : state_->shards) {
        MutexLock slock(shard->mutex);
        shard->zero();
    }
    {
        MutexLock rlock(state_->retired.mutex);
        state_->retired.zero();
    }
    std::fill(state_->gaugeValues.begin(),
              state_->gaugeValues.end(), 0.0);
}

std::vector<double>
Registry::exponentialBounds(double first, double factor,
                            std::size_t count)
{
    std::vector<double> bounds;
    bounds.reserve(count);
    double v = first;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.push_back(v);
        v *= factor;
    }
    return bounds;
}

void
Counter::add(std::uint64_t n)
{
    auto &shard = owner_->localShard();
    MutexLock lock(shard.mutex);
    if (shard.counters.size() <= id_)
        shard.counters.resize(id_ + 1, 0);
    shard.counters[id_] += n;
}

std::uint64_t
Counter::value() const
{
    const auto &state = *owner_->state_;
    MutexLock lock(state.mutex);
    std::uint64_t total = 0;
    {
        MutexLock rlock(state.retired.mutex);
        if (state.retired.counters.size() > id_)
            total = state.retired.counters[id_];
    }
    for (const auto &shard : state.shards) {
        MutexLock slock(shard->mutex);
        if (shard->counters.size() > id_)
            total += shard->counters[id_];
    }
    return total;
}

void
Gauge::set(double v)
{
    MutexLock lock(owner_->state_->mutex);
    owner_->state_->gaugeValues[id_] = v;
}

double
Gauge::value() const
{
    MutexLock lock(owner_->state_->mutex);
    return owner_->state_->gaugeValues[id_];
}

void
Histogram::record(double v)
{
    const std::size_t bucket =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin();

    auto &shard = owner_->localShard();
    MutexLock lock(shard.mutex);
    if (shard.hists.size() <= id_)
        shard.hists.resize(id_ + 1);
    auto &h = shard.hists[id_];
    if (h.counts.size() < bounds_.size() + 1)
        h.counts.resize(bounds_.size() + 1, 0);
    ++h.counts[bucket];
    ++h.count;
    h.sum += v;
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
}

HistogramStats
Histogram::stats() const
{
    HistogramStats out;
    out.bounds = bounds_;
    out.counts.assign(bounds_.size() + 1, 0);
    double lo = kInf;
    double hi = -kInf;

    const auto fold = [&](const Registry::Shard &shard) {
        // Every caller below holds shard.mutex; the lambda body is
        // analysed as a separate function, so assert it.
        shard.mutex.assertHeld();
        if (shard.hists.size() <= id_)
            return;
        const auto &h = shard.hists[id_];
        for (std::size_t b = 0; b < h.counts.size(); ++b)
            out.counts[b] += h.counts[b];
        out.count += h.count;
        out.sum += h.sum;
        lo = std::min(lo, h.min);
        hi = std::max(hi, h.max);
    };

    const auto &state = *owner_->state_;
    MutexLock lock(state.mutex);
    {
        MutexLock rlock(state.retired.mutex);
        fold(state.retired);
    }
    for (const auto &shard : state.shards) {
        MutexLock slock(shard->mutex);
        fold(*shard);
    }
    if (out.count > 0) {
        out.min = lo;
        out.max = hi;
    }
    return out;
}

double
HistogramStats::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * double(count);
    std::uint64_t below = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0)
            continue;
        if (double(below + counts[b]) < target) {
            below += counts[b];
            continue;
        }
        // Interpolate inside bucket b; clamp the open-ended edges
        // to the observed extrema.
        const double lo = b == 0 ? min : bounds[b - 1];
        const double hi = b < bounds.size() ? bounds[b] : max;
        const double frac =
            (target - double(below)) / double(counts[b]);
        return std::clamp(lo + (hi - lo) * frac,
                          std::min(min, lo), std::max(max, hi));
    }
    return max;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    // Handle lists only grow; gather names first, then read each
    // metric through its own (locking) accessor.
    std::vector<const Counter *> counters;
    std::vector<const Gauge *> gauges;
    std::vector<const Histogram *> hists;
    {
        MutexLock lock(state_->mutex);
        for (const auto &c : state_->counters)
            counters.push_back(c.get());
        for (const auto &g : state_->gauges)
            gauges.push_back(g.get());
        for (const auto &h : state_->histograms)
            hists.push_back(h.get());
    }
    for (const auto *c : counters)
        snap.counters.emplace_back(c->name(), c->value());
    for (const auto *g : gauges)
        snap.gauges.emplace_back(g->name(), g->value());
    for (const auto *h : hists)
        snap.histograms.emplace_back(h->name(), h->stats());

    const auto by_name = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              by_name);
    return snap;
}

} // namespace adaptsim::obs
