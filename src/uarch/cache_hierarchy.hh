/**
 * @file
 * Three-level memory hierarchy: split L1 I/D over a unified L2 over
 * flat DRAM.  Returns load-to-use latencies in cycles and counts the
 * events the power model charges.
 *
 * On a multi-core chip the private hierarchy instead drains its L2
 * misses into a SharedLlc (attach one via the constructor): the flat
 * DRAM latency is replaced by the LLC's contention-aware timing, and
 * DRAM is only charged on an LLC miss.  Without an attached LLC the
 * behaviour is bit-identical to the original single-core model.
 */

#ifndef ADAPTSIM_UARCH_CACHE_HIERARCHY_HH
#define ADAPTSIM_UARCH_CACHE_HIERARCHY_HH

#include "uarch/cache.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"
#include "uarch/shared_llc.hh"

namespace adaptsim::uarch
{

/** L1I + L1D + unified L2 over DRAM or a shared LLC. */
class CacheHierarchy
{
  public:
    /**
     * @param cfg derived core configuration.
     * @param llc shared LLC below the private L2, or nullptr for the
     *        single-core flat-DRAM model.
     * @param core_id this core's index at the shared level.
     */
    explicit CacheHierarchy(const CoreConfig &cfg,
                            SharedLlc *llc = nullptr,
                            unsigned core_id = 0);

    /**
     * Instruction fetch of the line containing @p pc.
     * @param now pipeline-local cycle of the access (used only for
     *        shared-LLC contention timing).
     * @return latency in cycles (hit latency on an L1 hit).
     */
    int fetchAccess(Addr pc, EventCounts &ev, SimObserver *obs,
                    Cycles now = 0);

    /**
     * Data access at @p addr.
     * @return load-to-use latency in cycles.
     */
    int dataAccess(Addr addr, bool write, EventCounts &ev,
                   SimObserver *obs, Cycles now = 0);

    /** Warm-mode access without timing or statistics. */
    void warmFetch(Addr pc);
    void warmData(Addr addr, bool write);

    /**
     * Absolute-time offset added to pipeline-local cycles when
     * timing shared-LLC accesses; the chip's round-robin loop bumps
     * this to the core's elapsed time before each quantum.
     */
    void setTimeBase(Cycles base) { timeBase_ = base; }

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2cache() const { return l2_; }
    const SharedLlc *llc() const { return llc_; }
    unsigned coreId() const { return coreId_; }

  private:
    /** Timing below a missing L2: shared LLC or flat DRAM. */
    int beyondL2(Addr addr, bool write, EventCounts &ev, Cycles now);

    /**
     * Per-program physical placement at the shared level: co-run
     * programs are separate processes, so identical virtual
     * addresses must not alias in the LLC.  A per-core offset in the
     * tag bits keeps each program's lines distinct while leaving the
     * set/bank index bits — and therefore capacity and bank
     * contention — exactly as the virtual stream laid them out.
     */
    Addr physical(Addr addr) const
    {
        return addr + (Addr(coreId_) << 44);
    }

    /**
     * Core-clock ↔ LLC-reference-clock conversion.  LLC timing is
     * specified in cycles of the fixed 12 FO4/stage reference clock
     * (LlcConfig::referenceDepthFo4): the shared fabric and the DRAM
     * behind it take the same wall-time no matter how deep — and
     * therefore how slowly clocked — the requesting core's pipeline
     * is.  Clock period is proportional to depthFo4 plus the latch
     * overhead, so the ratio is an exact small-integer rational and
     * the conversion stays deterministic integer arithmetic.  At the
     * reference depth both ratios are 1 and the conversion is the
     * identity.
     */
    Cycles toLlcTicks(Cycles core_cycles) const
    {
        return core_cycles * corePeriodUnits_ / llcPeriodUnits_;
    }

    /** Reference-clock latency back to core cycles (rounded up). */
    int toCoreCycles(int llc_ticks) const
    {
        return static_cast<int>(
            (std::uint64_t(llc_ticks) * llcPeriodUnits_ +
             corePeriodUnits_ - 1) /
            corePeriodUnits_);
    }

    CoreConfig cfg_;
    Cache icache_;
    Cache dcache_;
    Cache l2_;
    SharedLlc *llc_;
    unsigned coreId_;
    Cycles timeBase_ = 0;
    std::uint64_t corePeriodUnits_ = 1;
    std::uint64_t llcPeriodUnits_ = 1;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_CACHE_HIERARCHY_HH
