file(REMOVE_RECURSE
  "CMakeFiles/test_stack_distance.dir/test_stack_distance.cc.o"
  "CMakeFiles/test_stack_distance.dir/test_stack_distance.cc.o.d"
  "test_stack_distance"
  "test_stack_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
