/**
 * @file
 * Minimal dense row-major matrix used by the soft-max model.
 */

#ifndef ADAPTSIM_ML_MATRIX_HH
#define ADAPTSIM_ML_MATRIX_HH

#include <cstddef>
#include <vector>

namespace adaptsim::ml
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows × cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    /** Flat row-major storage. */
    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    /** Frobenius inner product tr(AᵀB) with itself: tr(WᵀW). */
    double squaredNorm() const;

    /**
     * y = Aᵀx where A is this (rows=D, cols=K) and x is length D;
     * y has length K.  The soft-max logit computation (eq. 8).
     */
    void transposeMultiply(const double *x, double *y) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace adaptsim::ml

#endif // ADAPTSIM_ML_MATRIX_HH
