# Empty compiler generated dependencies file for test_micro_op.
# This may be replaced when dependencies are built.
