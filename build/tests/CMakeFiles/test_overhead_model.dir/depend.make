# Empty dependencies file for test_overhead_model.
# This may be replaced when dependencies are built.
