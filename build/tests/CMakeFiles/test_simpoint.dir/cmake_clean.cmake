file(REMOVE_RECURSE
  "CMakeFiles/test_simpoint.dir/test_simpoint.cc.o"
  "CMakeFiles/test_simpoint.dir/test_simpoint.cc.o.d"
  "test_simpoint"
  "test_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
