/**
 * @file
 * Tests of the disk-cached evaluation repository.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/rng.hh"
#include "common/serial.hh"
#include "counters/feature_vector.hh"
#include "harness/gather.hh"
#include "harness/learned_trainer.hh"
#include "harness/repository.hh"
#include "sim/cascade_model.hh"
#include "sim/cycle_level_model.hh"
#include "sim/learned_model.hh"
#include "sim/perf_model.hh"
#include "space/sampling.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::harness;

namespace
{

class RepositoryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/adaptsim_repo_test";
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    PhaseSpec
    spec() const
    {
        return PhaseSpec{"gzip", 60000, 20000, 2000, 1500};
    }

    std::string
    binPath() const
    {
        return dir_ + "/" + spec().key() + ".evc";
    }

    std::string
    csvPath() const
    {
        return dir_ + "/" + spec().key() + ".csv";
    }

    std::string
    shardFile(std::size_t i) const
    {
        if (i == 0)
            return binPath();
        return dir_ + "/" + spec().key() + ".s" +
               std::to_string(i) + ".evc";
    }

    std::string dir_;
};

bool
bitIdentical(const EvalRecord &a, const EvalRecord &b)
{
    return std::memcmp(&a, &b, sizeof(EvalRecord)) == 0;
}

/**
 * Install a process-wide learned surrogate via the production path
 * (cycle-level records harvested from a scratch repository by
 * harness::trainLearnedBackend).  Accuracy is irrelevant here — the
 * cascade/learned cache-tag tests below only need makeSession() to
 * stop being fatal.
 */
void
ensureTrainedSurrogate()
{
    static const bool done = []() {
        const std::string dir = "/tmp/adaptsim_repo_test_train";
        std::filesystem::remove_all(dir);
        {
            EvalRepository repo(workload::specSuite(60000), dir, 2);
            const PhaseSpec train_spec{"gzip", 60000, 20000, 2000,
                                       1500};
            Rng rng(17);
            const auto pool =
                space::dedupe(space::uniformRandomSet(rng, 28));
            (void)repo.evaluateBatch(train_spec, pool,
                                     &sim::perfModel("cycle"));
            const auto report = harness::trainLearnedBackend(
                repo, {train_spec});
            if (!report.trained)
                return false;
        }
        std::filesystem::remove_all(dir);
        return true;
    }();
    ASSERT_TRUE(done);
}

} // namespace

TEST_F(RepositoryTest, EvaluateProducesSaneMetrics)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto r = repo.evaluate(spec(),
                                 paperBaselineConfig());
    EXPECT_EQ(r.instructions, 1500.0);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.watts, 0.1);
    EXPECT_GT(r.efficiency, 0.0);
    EXPECT_EQ(repo.simulationsRun(), 1u);
}

TEST_F(RepositoryTest, SecondEvaluateHitsCache)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto a = repo.evaluate(spec(), paperBaselineConfig());
    const auto b = repo.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo.simulationsRun(), 1u);
    EXPECT_EQ(repo.cacheHits(), 1u);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.efficiency, b.efficiency);
}

TEST_F(RepositoryTest, CacheSurvivesRestart)
{
    EvalRecord first;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        first = repo.evaluate(spec(), paperBaselineConfig());
        repo.flush();
    }
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        const auto again =
            repo.evaluate(spec(), paperBaselineConfig());
        EXPECT_EQ(repo.simulationsRun(), 0u);
        EXPECT_EQ(repo.cacheHits(), 1u);
        EXPECT_NEAR(again.efficiency, first.efficiency,
                    first.efficiency * 1e-9);
    }
}

TEST_F(RepositoryTest, BatchMatchesIndividual)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 2);
    Rng rng(5);
    const auto configs = space::uniformRandomSet(rng, 6);
    const auto batch = repo.evaluateBatch(spec(), configs);
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto single = repo.evaluate(spec(), configs[i]);
        EXPECT_EQ(single.cycles, batch[i].cycles);
    }
}

TEST_F(RepositoryTest, ProfileIsCachedInMemoryAndOnDisk)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto a = repo.profile(spec());
    EXPECT_FALSE(a.basic.empty());
    EXPECT_FALSE(a.advanced.empty());
    const auto sims = repo.simulationsRun();
    const auto b = repo.profile(spec());
    EXPECT_EQ(repo.simulationsRun(), sims);   // memoised
    EXPECT_EQ(a.advanced, b.advanced);

    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto c = repo2.profile(spec());
    EXPECT_EQ(repo2.simulationsRun(), 0u);    // from disk
    ASSERT_EQ(c.advanced.size(), a.advanced.size());
    for (std::size_t i = 0; i < c.advanced.size(); ++i)
        EXPECT_NEAR(c.advanced[i], a.advanced[i], 1e-6);
}

TEST_F(RepositoryTest, DistinctSpecsAreDistinctEntries)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    auto other = spec();
    other.startInst = 30000;
    (void)repo.evaluate(spec(), paperBaselineConfig());
    (void)repo.evaluate(other, paperBaselineConfig());
    EXPECT_EQ(repo.simulationsRun(), 2u);
}

TEST_F(RepositoryTest, CacheHitIsBitIdenticalToFreshSimulation)
{
    EvalRecord fresh;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        fresh = repo.evaluate(spec(), paperBaselineConfig());
    }   // destructor flushes
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto cached = repo.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.cacheHits(), 1u);
    EXPECT_TRUE(bitIdentical(fresh, cached));
}

TEST_F(RepositoryTest, IncrementalFlushPersistsBeforeShutdown)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    repo.setFlushEvery(1);
    const auto fresh = repo.evaluate(spec(), paperBaselineConfig());

    // With the first repository still alive (never explicitly
    // flushed), a second one already sees the record on disk.
    EvalRepository other(workload::specSuite(60000), dir_, 0);
    const auto cached =
        other.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(other.simulationsRun(), 0u);
    EXPECT_TRUE(bitIdentical(fresh, cached));
    EXPECT_GE(repo.stats().flushed, 1u);
}

TEST_F(RepositoryTest, InterruptedFlushKeepsCompletedRecords)
{
    Rng rng(11);
    const auto configs = space::uniformRandomSet(rng, 3);
    std::vector<EvalRecord> fresh;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        for (const auto &cfg : configs)
            fresh.push_back(repo.evaluate(spec(), cfg));
        repo.flush();
    }

    // Simulate a gather killed mid-write: a full-size record of
    // garbage (checksum cannot match), a torn partial append, and
    // an orphaned temp file from an interrupted atomic rewrite.
    ASSERT_TRUE(appendFileSync(binPath(), std::string(88, '\xab')));
    ASSERT_TRUE(appendFileSync(binPath(), "torn-tail"));
    ASSERT_TRUE(atomicWriteFile(binPath() + ".orphan", "junk"));
    std::ofstream(binPath() + ".tmp") << "partial";

    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto cached = repo.evaluate(spec(), configs[i]);
        EXPECT_TRUE(bitIdentical(fresh[i], cached));
    }
    EXPECT_EQ(repo.simulationsRun(), 0u);
    const auto s = repo.stats();
    EXPECT_EQ(s.loaded, configs.size());
    EXPECT_EQ(s.dropped, 2u);   // corrupt record + torn tail
}

TEST_F(RepositoryTest, ShardedStoreRoundTripsAcrossRestart)
{
    Rng rng(31);
    const auto configs =
        space::dedupe(space::uniformRandomSet(rng, 12));
    std::vector<EvalRecord> fresh;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 2, 4);
        ASSERT_EQ(repo.shards(), 4u);
        fresh = repo.evaluateBatch(spec(), configs);
        repo.flush();
    }

    // Twelve hash-spread records land in more than one shard file.
    std::size_t shard_files = 0;
    for (std::size_t i = 0; i < 4; ++i)
        if (std::filesystem::exists(shardFile(i)))
            ++shard_files;
    EXPECT_GE(shard_files, 2u);

    EvalRepository repo(workload::specSuite(60000), dir_, 0, 4);
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_TRUE(
            bitIdentical(repo.evaluate(spec(), configs[i]),
                         fresh[i]));
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.stats().loaded, configs.size());
}

TEST_F(RepositoryTest, ReshardingAdoptsAndRewritesTheStore)
{
    Rng rng(37);
    const auto configs =
        space::dedupe(space::uniformRandomSet(rng, 10));
    std::vector<EvalRecord> fresh;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 2, 4);
        fresh = repo.evaluateBatch(spec(), configs);
        repo.flush();
    }
    {
        // Reopened under a different shard count: the old layout is
        // adopted wholesale — no record is lost or re-simulated...
        EvalRepository repo(workload::specSuite(60000), dir_, 0, 2);
        for (std::size_t i = 0; i < configs.size(); ++i)
            EXPECT_TRUE(
                bitIdentical(repo.evaluate(spec(), configs[i]),
                             fresh[i]));
        EXPECT_EQ(repo.simulationsRun(), 0u);
        // ...and the next flush rewrites the two-shard layout,
        // deleting the stray files of the old four-shard one.
        repo.flush();
    }
    EXPECT_FALSE(std::filesystem::exists(shardFile(2)));
    EXPECT_FALSE(std::filesystem::exists(shardFile(3)));

    EvalRepository repo(workload::specSuite(60000), dir_, 0, 2);
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_TRUE(
            bitIdentical(repo.evaluate(spec(), configs[i]),
                         fresh[i]));
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.stats().loaded, configs.size());
}

TEST_F(RepositoryTest, ShardTornTailOnlyCostsTheTornRecords)
{
    Rng rng(41);
    const auto configs =
        space::dedupe(space::uniformRandomSet(rng, 9));
    std::vector<EvalRecord> fresh;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 2, 3);
        fresh = repo.evaluateBatch(spec(), configs);
        repo.flush();
    }

    // Simulate a daemon killed mid-append on one shard: a full-size
    // garbage record (checksum cannot match) plus a torn partial
    // record on the same file's tail.
    std::string victim;
    for (std::size_t i = 0; i < 3; ++i)
        if (std::filesystem::exists(shardFile(i)))
            victim = shardFile(i);
    ASSERT_FALSE(victim.empty());
    ASSERT_TRUE(appendFileSync(victim, std::string(88, '\xcd')));
    ASSERT_TRUE(appendFileSync(victim, "torn"));

    EvalRepository repo(workload::specSuite(60000), dir_, 0, 3);
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_TRUE(
            bitIdentical(repo.evaluate(spec(), configs[i]),
                         fresh[i]));
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.stats().loaded, configs.size());
    EXPECT_EQ(repo.stats().dropped, 2u);
}

TEST_F(RepositoryTest, FlushEveryIsAccountedPerShard)
{
    const auto &cycle = sim::perfModel("cycle");
    EvalRepository repo(workload::specSuite(60000), dir_, 0, 2);
    repo.setFlushEvery(2);

    // Replicate the repository's shard routing to pick two configs
    // on shard 0 and one on shard 1 (any seed works; the routing is
    // a pure function of the cache key).
    Rng rng(43);
    const auto pool =
        space::dedupe(space::uniformRandomSet(rng, 40));
    const auto shard_of = [&](const space::Configuration &c) {
        return EvalKeyHash{}(
                   EvalKey{cycle.cacheTag(), c.encode()}) %
               repo.shards();
    };
    std::vector<space::Configuration> on0, on1;
    for (const auto &cfg : pool)
        (shard_of(cfg) == 0 ? on0 : on1).push_back(cfg);
    ASSERT_GE(on0.size(), 2u);
    ASSERT_GE(on1.size(), 1u);

    // Two unsaved records split across the two shards must NOT
    // trigger a flush — the threshold is per shard, not global.
    (void)repo.evaluate(spec(), on0[0], &cycle);
    (void)repo.evaluate(spec(), on1[0], &cycle);
    EXPECT_EQ(repo.stats().flushed, 0u);

    // A second record on shard 0 reaches its threshold; the first
    // flush persists everything pending (it must also create the
    // shard files), so all three records hit disk.
    (void)repo.evaluate(spec(), on0[1], &cycle);
    EXPECT_EQ(repo.stats().flushed, 3u);

    // With the files in place, the append fast path flushes only the
    // shard that filled up.
    ASSERT_GE(on0.size(), 4u);
    (void)repo.evaluate(spec(), on0[2], &cycle);
    EXPECT_EQ(repo.stats().flushed, 3u);
    (void)repo.evaluate(spec(), on0[3], &cycle);
    EXPECT_EQ(repo.stats().flushed, 5u);
}

TEST_F(RepositoryTest, CorruptHeaderRegeneratesCache)
{
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        (void)repo.evaluate(spec(), paperBaselineConfig());
    }
    {
        // Clobber the magic; the file must be ignored, not trusted.
        std::fstream f(binPath(),
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.put('X');
    }
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto r = repo.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo.simulationsRun(), 1u);
    EXPECT_GT(r.efficiency, 0.0);

    // The regenerated file is valid again after flush.
    repo.flush();
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    (void)repo2.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
}

TEST_F(RepositoryTest, LegacyCsvIsMigratedToExactFormat)
{
    const std::uint64_t code = paperBaselineConfig().encode();
    std::filesystem::create_directories(dir_);
    std::ofstream(csvPath())
        << code << ",100,1500,0.5,0.25,1.5,2.5,42\n";

    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto r = repo.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.cacheHits(), 1u);
    EXPECT_EQ(r.efficiency, 42.0);
    EXPECT_EQ(repo.stats().migrated, 1u);

    repo.flush();
    EXPECT_TRUE(std::filesystem::exists(binPath()));
    EXPECT_FALSE(std::filesystem::exists(csvPath()));

    // The migrated record survives in the new format, bit-exact.
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto again =
        repo2.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_TRUE(bitIdentical(r, again));
}

TEST_F(RepositoryTest, MalformedLegacyLinesAreDroppedIndividually)
{
    Rng rng(3);
    const auto configs = space::uniformRandomSet(rng, 2);
    std::filesystem::create_directories(dir_);
    std::ofstream(csvPath())
        << configs[0].encode() << ",1,2,3,4,5,6,7\n"
        << "garbled nonsense, not numbers\n"
        << configs[1].encode() << ",7,6,5,4,3,2,1\n";

    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    // Both well-formed records load — including the one *after* the
    // malformed line — and only the bad line is dropped.
    EXPECT_EQ(repo.evaluate(spec(), configs[0]).efficiency, 7.0);
    EXPECT_EQ(repo.evaluate(spec(), configs[1]).efficiency, 1.0);
    EXPECT_EQ(repo.simulationsRun(), 0u);
    EXPECT_EQ(repo.stats().dropped, 1u);
    EXPECT_EQ(repo.stats().migrated, 2u);
}

TEST_F(RepositoryTest, ConcurrentGathersShareOneRepository)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 2);
    repo.setFlushEvery(4);
    Rng rng(7);
    const auto configs = space::uniformRandomSet(rng, 8);
    auto other = spec();
    other.startInst = 30000;

    std::vector<EvalRecord> r1, r2;
    std::thread t1(
        [&] { r1 = repo.evaluateBatch(spec(), configs); });
    std::thread t2(
        [&] { r2 = repo.evaluateBatch(other, configs); });
    t1.join();
    t2.join();

    ASSERT_EQ(r1.size(), configs.size());
    ASSERT_EQ(r2.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_GT(r1[i].efficiency, 0.0);
        EXPECT_GT(r2[i].efficiency, 0.0);
    }

    // Re-running either batch is now pure cache hits, bit-exact.
    const auto again = repo.evaluateBatch(spec(), configs);
    const auto sims = repo.simulationsRun();
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_TRUE(bitIdentical(again[i], r1[i]));
    EXPECT_EQ(repo.simulationsRun(), sims);
}

TEST_F(RepositoryTest, TraceCacheReplayIsBitExact)
{
    Rng rng(13);
    const auto configs = space::uniformRandomSet(rng, 4);

    // Shared-cache repo: from the second config on, both the warm
    // and detail traces replay from the trace cache.
    EvalRepository cached(workload::specSuite(60000),
                          dir_ + "/cached", 0);
    // Thrashing repo: a capacity-1 trace cache means the detail
    // interval evicts the warm interval every simulation, so each
    // evaluation regenerates both traces — the cache-off baseline.
    setenv("ADAPTSIM_TRACE_CACHE", "1", 1);
    EvalRepository regen(workload::specSuite(60000),
                         dir_ + "/regen", 0);
    unsetenv("ADAPTSIM_TRACE_CACHE");
    ASSERT_EQ(regen.traceCache().capacity(), 1u);

    for (const auto &cfg : configs) {
        const auto a = cached.evaluate(spec(), cfg);
        const auto b = regen.evaluate(spec(), cfg);
        EXPECT_TRUE(bitIdentical(a, b));
    }
    // Sanity: the shared cache actually replayed, the thrashing
    // cache actually regenerated.
    EXPECT_GT(cached.stats().traceHits, 0u);
    EXPECT_EQ(regen.stats().traceHits, 0u);
    EXPECT_GT(regen.stats().traceMisses,
              cached.stats().traceMisses);
}

TEST_F(RepositoryTest, TruncatedProfileIsReSimulated)
{
    ProfileRecord good;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        good = repo.profile(spec());
    }
    ASSERT_EQ(good.basic.size(), counters::featureDimension(
                                     counters::FeatureSet::Basic));
    ASSERT_EQ(good.advanced.size(),
              counters::featureDimension(
                  counters::FeatureSet::Advanced));

    // Truncate the advanced line: some doubles still parse, so the
    // old loader would have accepted a short vector and poisoned
    // every later feature assembly.
    const std::string path = dir_ + "/" + spec().key() + ".features";
    {
        std::ifstream in(path);
        std::string basic_line;
        ASSERT_TRUE(std::getline(in, basic_line));
        std::ofstream out(path, std::ios::trunc);
        out << basic_line << "\n1.0 2.0 3.0\n";
    }

    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto again = repo.profile(spec());
    EXPECT_EQ(repo.simulationsRun(), 1u);   // fell back, re-simulated
    ASSERT_EQ(again.advanced.size(), good.advanced.size());
    for (std::size_t i = 0; i < good.advanced.size(); ++i)
        EXPECT_NEAR(again.advanced[i], good.advanced[i], 1e-6);

    // The re-simulation repaired the on-disk record.
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    (void)repo2.profile(spec());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
}

TEST_F(RepositoryTest, UnknownWorkloadIsFatal)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    PhaseSpec bad{"nonexistent", 60000, 0, 100, 100};
    EXPECT_EXIT((void)repo.evaluate(bad, paperBaselineConfig()),
                ::testing::ExitedWithCode(1), "unknown workload");
}

namespace
{

/** Hand-built format-1 cache image: 24-byte header (version 1) plus
 *  one 72-byte record without a backend tag. */
std::string
v1CacheImage(std::uint64_t code, const EvalRecord &r)
{
    std::string bytes("ADSIMEVC", 8);
    putU64(bytes, 1);
    putU64(bytes, fnv1a64(bytes.data(), 16));
    const std::size_t start = bytes.size();
    putU64(bytes, code);
    putDouble(bytes, r.cycles);
    putDouble(bytes, r.instructions);
    putDouble(bytes, r.seconds);
    putDouble(bytes, r.joules);
    putDouble(bytes, r.ipc);
    putDouble(bytes, r.watts);
    putDouble(bytes, r.efficiency);
    putU64(bytes, fnv1a64(bytes.data() + start, 64));
    return bytes;
}

} // namespace

TEST_F(RepositoryTest, V1BinaryCacheIsMigratedAsCycleLevel)
{
    // A pre-seam (version-1) cache file: its records were produced
    // by the only backend that existed then, so migration must tag
    // them cycle-level and serve them to cycle-backend evaluations.
    const EvalRecord fake{100.0, 1500.0, 0.5, 0.25, 1.5, 2.5, 42.0};
    const std::uint64_t code = paperBaselineConfig().encode();
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(
        atomicWriteFile(binPath(), v1CacheImage(code, fake)));

    EvalRecord served;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        served = repo.evaluate(spec(), paperBaselineConfig());
        EXPECT_EQ(repo.simulationsRun(), 0u);
        EXPECT_EQ(repo.cacheHits(), 1u);
        EXPECT_TRUE(bitIdentical(served, fake));
        EXPECT_EQ(repo.stats().migrated, 1u);
        repo.flush();
    }

    // The flush rewrote the file in the current format...
    const auto bytes = readFile(binPath());
    ASSERT_GE(bytes.size(), 24u);
    EXPECT_EQ(getU64(bytes.data() + 8), 3u);

    // ...and the record round-trips bit-exactly through it.
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto again = repo2.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_EQ(repo2.stats().migrated, 0u);
    EXPECT_TRUE(bitIdentical(again, fake));
}

namespace
{

/** Hand-built format-2 cache image: 24-byte header (version 2) plus
 *  one 80-byte record without a chip-mix word. */
std::string
v2CacheImage(std::uint64_t tag, std::uint64_t code,
             const EvalRecord &r)
{
    std::string bytes("ADSIMEVC", 8);
    putU64(bytes, 2);
    putU64(bytes, fnv1a64(bytes.data(), 16));
    const std::size_t start = bytes.size();
    putU64(bytes, code);
    putU64(bytes, tag);
    putDouble(bytes, r.cycles);
    putDouble(bytes, r.instructions);
    putDouble(bytes, r.seconds);
    putDouble(bytes, r.joules);
    putDouble(bytes, r.ipc);
    putDouble(bytes, r.watts);
    putDouble(bytes, r.efficiency);
    putU64(bytes, fnv1a64(bytes.data() + start, 72));
    return bytes;
}

} // namespace

TEST_F(RepositoryTest, V2BinaryCacheIsMigratedAsSoloChip)
{
    // A pre-chip (version-2) cache file: every record in it was a
    // solo single-core run, so migration keeps the backend tag and
    // assigns chip key 0 — exactly what solo evaluations look up.
    const EvalRecord fake{200.0, 1500.0, 0.4, 0.3, 1.2, 2.0, 37.0};
    const std::uint64_t code = paperBaselineConfig().encode();
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(atomicWriteFile(
        binPath(),
        v2CacheImage(sim::CycleLevelModel::kCacheTag, code, fake)));

    EvalRecord served;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        served = repo.evaluate(spec(), paperBaselineConfig());
        EXPECT_EQ(repo.simulationsRun(), 0u);
        EXPECT_EQ(repo.cacheHits(), 1u);
        EXPECT_TRUE(bitIdentical(served, fake));
        EXPECT_EQ(repo.stats().migrated, 1u);
        repo.flush();
    }

    // The flush rewrote the file as version 3, and the record
    // round-trips bit-exactly through the new format.
    const auto bytes = readFile(binPath());
    ASSERT_GE(bytes.size(), 24u);
    EXPECT_EQ(getU64(bytes.data() + 8), 3u);
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto again = repo2.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_EQ(repo2.stats().migrated, 0u);
    EXPECT_TRUE(bitIdentical(again, fake));
}

TEST_F(RepositoryTest, ChipMixRecordsNeverAnswerSoloLookups)
{
    // The same workload window under a chip mix is a different cache
    // identity: its own file stem, its own chip key in every record.
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    PhaseSpec solo = spec();
    PhaseSpec mixed = spec();
    mixed.chipMix = 0xfeedULL;
    EXPECT_NE(solo.key(), mixed.key());

    const auto cfg = paperBaselineConfig();
    const auto a = repo.evaluate(solo, cfg);
    EXPECT_EQ(repo.simulationsRun(), 1u);
    const auto b = repo.evaluate(mixed, cfg);
    EXPECT_EQ(repo.simulationsRun(), 2u);
    EXPECT_TRUE(bitIdentical(a, b));   // same trace, solo timing

    // Each spec now hits its own entry without cross-talk.
    repo.evaluate(solo, cfg);
    repo.evaluate(mixed, cfg);
    EXPECT_EQ(repo.simulationsRun(), 2u);
    EXPECT_EQ(repo.cacheHits(), 2u);
}

TEST_F(RepositoryTest, BackendsNeverShareCacheEntries)
{
    // The same (phase, configuration) under different backends must
    // be two distinct cache entries, in memory and on disk.
    const auto &cycle = sim::perfModel("cycle");
    const auto &interval = sim::perfModel("interval");
    EvalRecord by_cycle, by_interval;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        by_cycle =
            repo.evaluate(spec(), paperBaselineConfig(), &cycle);
        by_interval =
            repo.evaluate(spec(), paperBaselineConfig(), &interval);
        EXPECT_EQ(repo.simulationsRun(), 2u);
        EXPECT_EQ(repo.cacheHits(), 0u);
        EXPECT_NE(by_cycle.cycles, by_interval.cycles);

        const auto s = repo.stats();
        ASSERT_EQ(s.backendEvals.size(), 2u);
        EXPECT_EQ(s.backendEvals[0].first, "cycle");
        EXPECT_EQ(s.backendEvals[0].second, 1u);
        EXPECT_EQ(s.backendEvals[1].first, "interval");
        EXPECT_EQ(s.backendEvals[1].second, 1u);
        EXPECT_NE(repo.statsSummary().find("backends"),
                  std::string::npos);
        repo.flush();
    }

    // Both records round-trip from disk to the right backend.
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto cycle_again =
        repo2.evaluate(spec(), paperBaselineConfig(), &cycle);
    const auto interval_again =
        repo2.evaluate(spec(), paperBaselineConfig(), &interval);
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_EQ(repo2.cacheHits(), 2u);
    EXPECT_TRUE(bitIdentical(cycle_again, by_cycle));
    EXPECT_TRUE(bitIdentical(interval_again, by_interval));

    // A default-backend evaluate hits the cycle-tagged entry.
    const auto default_again =
        repo2.evaluate(spec(), paperBaselineConfig());
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_TRUE(bitIdentical(default_again, by_cycle));
}

TEST_F(RepositoryTest, ObserverlessBackendProfileFallsBack)
{
    // Profiling needs per-cycle observer callbacks; the interval
    // backend has none, so profile() transparently uses the
    // cycle-level model and produces identical features.
    ProfileRecord via_cycle;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        via_cycle = repo.profile(spec());
    }
    std::filesystem::remove_all(dir_);

    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    const auto via_interval =
        repo.profile(spec(), &sim::perfModel("interval"));
    ASSERT_EQ(via_interval.advanced.size(),
              via_cycle.advanced.size());
    for (std::size_t i = 0; i < via_cycle.advanced.size(); ++i)
        EXPECT_EQ(via_interval.advanced[i], via_cycle.advanced[i]);
}

TEST_F(RepositoryTest, ProfileFallbackWarnsOncePerBackend)
{
    // Regression: the fallback used to warn on every profiling call,
    // flooding stderr in batch gathers.  One warning per backend per
    // repository, and the features must be unaffected.
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    ::testing::internal::CaptureStderr();
    const auto a = repo.profile(spec(), &sim::perfModel("interval"));
    const std::string first = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(first.find("cannot drive profiling counters"),
              std::string::npos);

    ::testing::internal::CaptureStderr();
    const auto b = repo.profile(spec(), &sim::perfModel("interval"));
    auto other = spec();
    other.startInst = 30000;
    (void)repo.profile(other, &sim::perfModel("interval"));
    const std::string rest = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(rest.find("cannot drive profiling counters"),
              std::string::npos)
        << rest;
    EXPECT_EQ(a.advanced, b.advanced);
}

TEST_F(RepositoryTest, CascadeRecordsCarryProducingBackendTag)
{
    // Under a forced-escalation threshold every cascade evaluation
    // actually runs at cycle level, so the record must be stored
    // under the cycle tag: a direct cycle-backend query hits it, and
    // nothing is filed under the cheap tag.
    ensureTrainedSurrogate();
    const auto &cascade = sim::perfModel("cascade");
    const auto &cycle = sim::perfModel("cycle");
    const auto &learned = sim::perfModel("learned");

    setenv("ADAPTSIM_CASCADE_THRESHOLD", "-1", 1);
    EvalRecord escalated;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        escalated =
            repo.evaluate(spec(), paperBaselineConfig(), &cascade);
        EXPECT_EQ(repo.simulationsRun(), 1u);

        const auto direct =
            repo.evaluate(spec(), paperBaselineConfig(), &cycle);
        EXPECT_EQ(repo.simulationsRun(), 1u);   // cache hit
        EXPECT_EQ(repo.cacheHits(), 1u);
        EXPECT_TRUE(bitIdentical(direct, escalated));

        // Attribution follows the producer, not the requested model.
        const auto s = repo.stats();
        ASSERT_EQ(s.backendEvals.size(), 1u);
        EXPECT_EQ(s.backendEvals[0].first, "cycle");
        EXPECT_EQ(repo.records(spec(), 0).size(), 1u);
        EXPECT_TRUE(
            repo.records(spec(), sim::LearnedModel::kCacheTag)
                .empty());
        repo.flush();
    }
    unsetenv("ADAPTSIM_CASCADE_THRESHOLD");

    // Round trip through the v2 store: a cascade query of the same
    // point is answered by the cached cycle record (its lookup set
    // leads with ground truth), even when nothing would escalate.
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto again =
        repo2.evaluate(spec(), paperBaselineConfig(), &cascade);
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_EQ(repo2.cacheHits(), 1u);
    EXPECT_TRUE(bitIdentical(again, escalated));

    // An unescalated cascade evaluation of a *different* point files
    // its record under the cheap (learned) tag instead.
    setenv("ADAPTSIM_CASCADE_THRESHOLD", "1e9", 1);
    Rng rng(23);
    const auto other_cfg = space::uniformRandom(rng);
    const auto via_cascade =
        repo2.evaluate(spec(), other_cfg, &cascade);
    EXPECT_EQ(repo2.simulationsRun(), 1u);
    const auto via_learned =
        repo2.evaluate(spec(), other_cfg, &learned);
    EXPECT_EQ(repo2.simulationsRun(), 1u);   // hit, learned tag
    EXPECT_TRUE(bitIdentical(via_learned, via_cascade));
    ASSERT_EQ(
        repo2.records(spec(), sim::LearnedModel::kCacheTag).size(),
        1u);
    EXPECT_EQ(repo2.records(spec(),
                            sim::LearnedModel::kCacheTag)[0]
                  .first,
              other_cfg.encode());
    // The cycle-tag store still has exactly the escalated record.
    EXPECT_EQ(repo2.records(spec(), 0).size(), 1u);
    unsetenv("ADAPTSIM_CASCADE_THRESHOLD");
}

TEST_F(RepositoryTest, ThreeBackendTagsNeverCollide)
{
    // cycle, interval and learned evaluations of the same point are
    // three distinct entries; per-backend counts sum to the total
    // simulation count and each survives a disk round trip.
    ensureTrainedSurrogate();
    const auto &cycle = sim::perfModel("cycle");
    const auto &interval = sim::perfModel("interval");
    const auto &learned = sim::perfModel("learned");

    EvalRecord by_cycle, by_interval, by_learned;
    {
        EvalRepository repo(workload::specSuite(60000), dir_, 0);
        by_cycle =
            repo.evaluate(spec(), paperBaselineConfig(), &cycle);
        by_interval =
            repo.evaluate(spec(), paperBaselineConfig(), &interval);
        by_learned =
            repo.evaluate(spec(), paperBaselineConfig(), &learned);
        EXPECT_EQ(repo.simulationsRun(), 3u);
        EXPECT_EQ(repo.cacheHits(), 0u);

        const auto s = repo.stats();
        std::uint64_t by_backend = 0;
        for (const auto &[name, count] : s.backendEvals)
            by_backend += count;
        EXPECT_EQ(by_backend, repo.simulationsRun());
        EXPECT_NE(repo.statsSummary().find("learned"),
                  std::string::npos);
        repo.flush();
    }

    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    EXPECT_TRUE(bitIdentical(
        repo2.evaluate(spec(), paperBaselineConfig(), &cycle),
        by_cycle));
    EXPECT_TRUE(bitIdentical(
        repo2.evaluate(spec(), paperBaselineConfig(), &interval),
        by_interval));
    EXPECT_TRUE(bitIdentical(
        repo2.evaluate(spec(), paperBaselineConfig(), &learned),
        by_learned));
    EXPECT_EQ(repo2.simulationsRun(), 0u);
    EXPECT_EQ(repo2.cacheHits(), 3u);
}

TEST_F(RepositoryTest, RecordsHarvestIsFilteredAndSorted)
{
    EvalRepository repo(workload::specSuite(60000), dir_, 2);
    Rng rng(29);
    const auto configs = space::uniformRandomSet(rng, 5);
    (void)repo.evaluateBatch(spec(), configs,
                             &sim::perfModel("cycle"));
    (void)repo.evaluate(spec(), configs[0],
                        &sim::perfModel("interval"));

    const auto harvest = repo.records(spec(), 0);
    ASSERT_EQ(harvest.size(), configs.size());   // interval filtered
    for (std::size_t i = 1; i < harvest.size(); ++i)
        EXPECT_LT(harvest[i - 1].first, harvest[i].first);
    for (const auto &[code, record] : harvest)
        EXPECT_GT(record.efficiency, 0.0);

    // The harvest also reads through the disk cache of a fresh
    // repository (the trainer's cold-start path).
    repo.flush();
    EvalRepository repo2(workload::specSuite(60000), dir_, 0);
    const auto cold = repo2.records(spec(), 0);
    ASSERT_EQ(cold.size(), harvest.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].first, harvest[i].first);
        EXPECT_TRUE(bitIdentical(cold[i].second, harvest[i].second));
    }
}

TEST_F(RepositoryTest, ZeroLengthDetailWindowYieldsFiniteRecord)
{
    // Regression: a zero-instruction detail window (degenerate phase
    // boundary) must produce a well-defined all-finite record on
    // every backend, not NaNs from 0/0.
    ensureTrainedSurrogate();
    EvalRepository repo(workload::specSuite(60000), dir_, 0);
    PhaseSpec empty_spec{"gzip", 60000, 20000, 2000, 0};
    for (const char *name : {"cycle", "interval", "learned"}) {
        const auto r = repo.evaluate(empty_spec, paperBaselineConfig(),
                                     &sim::perfModel(name));
        EXPECT_EQ(r.instructions, 0.0) << name;
        for (const double v :
             {r.cycles, r.seconds, r.joules, r.ipc, r.watts,
              r.efficiency}) {
            EXPECT_TRUE(std::isfinite(v)) << name;
            EXPECT_GE(v, 0.0) << name;
        }
    }
}
