#include "uarch/chip.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace adaptsim::uarch
{

Chip::Chip(const ChipConfig &cfg,
           const std::vector<workload::WrongPathGenerator *>
               &wrong_paths)
    : cfg_(cfg), wrongPaths_(wrong_paths)
{
    const std::size_t n = cfg_.numCores();
    if (n == 0)
        panic("Chip: need at least one core");
    if (wrong_paths.size() != n)
        panic("Chip: ", wrong_paths.size(), " wrong-path sources for ",
              n, " cores");
    for (std::size_t i = 0; i < n; ++i) {
        if (!wrong_paths[i])
            panic("Chip: null wrong-path source for core ", i);
    }

    // A single-core chip is the original flat-DRAM model: no LLC at
    // all, so the path below the L2 is bit-identical.
    if (!cfg_.singleCore()) {
        LlcConfig llc;
        llc.bytes = cfg_.llcBytes;
        llc.assoc = cfg_.llcAssoc;
        llc.lineBytes = CoreConfig::cacheLineBytes;
        llc.banks = cfg_.llcBanks;
        llc.mshrsPerBank = cfg_.llcMshrsPerBank;
        llc.hitLatency = cfg_.llcLatency;
        llc.busLatency = cfg_.busLatency;
        llc.bankService = cfg_.llcBankService;
        llc_ = std::make_unique<SharedLlc>(
            llc, static_cast<unsigned>(n));
    }

    cores_.reserve(n);
    elapsed_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const CoreConfig derived =
            CoreConfig::fromConfiguration(cfg_.coreConfigs[i]);
        cores_.push_back(std::make_unique<Core>(
            derived, *wrongPaths_[i], llc_.get(),
            static_cast<unsigned>(i)));
    }
}

void
Chip::warm(std::size_t core, std::span<const isa::MicroOp> trace)
{
    if (core >= cores_.size())
        panic("Chip: warm of core ", core, " on a ", cores_.size(),
              "-core chip");
    cores_[core]->warm(trace);
}

ChipResult
Chip::run(const std::vector<std::span<const isa::MicroOp>> &traces,
          const std::vector<SimObserver *> &observers)
{
    OBS_SPAN("uarch/chip_run");
    const std::size_t n = cores_.size();
    if (traces.size() != n)
        panic("Chip: ", traces.size(), " traces for ", n, " cores");
    if (!observers.empty() && observers.size() != n)
        panic("Chip: ", observers.size(), " observers for ", n,
              " cores");

    ChipResult res;
    res.cores.resize(n);
    res.occupancyShare.assign(n, 0.0);
    res.sharedMissRatio.assign(n, 0.0);

    auto observer = [&](std::size_t i) -> SimObserver * {
        return observers.empty() ? nullptr : observers[i];
    };

    // Single core: one slice, no quantisation — bit-identical to
    // running uarch::Core directly.
    const std::uint64_t quantum =
        cfg_.singleCore() ? ~std::uint64_t(0)
                          : std::max<std::uint64_t>(1, cfg_.quantum);

    std::vector<std::size_t> pos(n, 0);
    for (;;) {
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
            const auto &trace = traces[i];
            if (pos[i] >= trace.size())
                continue;
            any = true;
            const std::size_t len = static_cast<std::size_t>(
                std::min<std::uint64_t>(quantum,
                                        trace.size() - pos[i]));
            cores_[i]->setTimeBase(elapsed_[i]);
            const SimResult r = cores_[i]->run(
                trace.subspan(pos[i], len), observer(i));
            res.cores[i].cycles += r.cycles;
            res.cores[i].events.merge(r.events);
            elapsed_[i] += r.cycles;
            pos[i] += len;
            OBS_ONLY({
                obs::Registry::global()
                    .counter("chip/core/" + std::to_string(i) +
                             "/quanta")
                    .add(1);
            });
        }
        if (!any)
            break;
    }

    for (std::size_t i = 0; i < n; ++i) {
        const EventCounts &ev = res.cores[i].events;
        if (llc_)
            res.occupancyShare[i] =
                llc_->occupancyShare(static_cast<unsigned>(i));
        res.sharedMissRatio[i] =
            ev.llcAccesses
                ? double(ev.llcMisses) / double(ev.llcAccesses)
                : 0.0;
        OBS_ONLY({
            obs::Registry::global()
                .counter("chip/core/" + std::to_string(i) +
                         "/committed_ops")
                .add(ev.committedOps);
        });
    }
    return res;
}

void
Chip::reconfigureCore(std::size_t core, const space::Configuration &c)
{
    if (core >= cores_.size())
        panic("Chip: reconfigure of core ", core, " on a ",
              cores_.size(), "-core chip");
    cfg_.coreConfigs[core] = c;
    const CoreConfig derived = CoreConfig::fromConfiguration(c);
    cores_[core] = std::make_unique<Core>(
        derived, *wrongPaths_[core], llc_.get(),
        static_cast<unsigned>(core));
}

} // namespace adaptsim::uarch
