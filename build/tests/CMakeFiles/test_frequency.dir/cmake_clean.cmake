file(REMOVE_RECURSE
  "CMakeFiles/test_frequency.dir/test_frequency.cc.o"
  "CMakeFiles/test_frequency.dir/test_frequency.cc.o.d"
  "test_frequency"
  "test_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
