#include "svc/protocol.hh"

#include <cstring>

#include "common/serial.hh"

namespace adaptsim::svc
{

namespace
{

/** Start a payload: version + type bytes. */
std::string
payloadHead(MsgType type)
{
    std::string out;
    out.push_back(static_cast<char>(kProtocolVersion));
    out.push_back(static_cast<char>(type));
    return out;
}

/** Seal a payload (append checksum) and prepend the length prefix. */
std::string
sealFrame(std::string payload)
{
    putU64(payload, fnv1a64(payload.data(), payload.size()));
    std::string frame;
    frame.reserve(4 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame += payload;
    return frame;
}

/** Bounds-checked u64 read, advancing @p off. */
bool
takeU64(std::string_view in, std::size_t &off, std::uint64_t &out)
{
    if (off + 8 > in.size())
        return false;
    out = getU64(in.data() + off);
    off += 8;
    return true;
}

/** Bounds-checked double read, advancing @p off. */
bool
takeDouble(std::string_view in, std::size_t &off, double &out)
{
    if (off + 8 > in.size())
        return false;
    out = getDouble(in.data() + off);
    off += 8;
    return true;
}

bool
decodeRequestBody(std::string_view body, EvalRequestMsg &out,
                  bool has_chip)
{
    std::size_t off = 0;
    if (!(takeU64(body, off, out.id) &&
          getString(body, off, out.spec.workload) &&
          takeU64(body, off, out.spec.programLength) &&
          takeU64(body, off, out.spec.startInst) &&
          takeU64(body, off, out.spec.warmLength) &&
          takeU64(body, off, out.spec.detailLength)))
        return false;
    // Version-1 requests predate the chip model: all solo.
    out.spec.chipMix = 0;
    if (has_chip && !takeU64(body, off, out.spec.chipMix))
        return false;
    return takeU64(body, off, out.configCode) &&
           getString(body, off, out.backend) && off == body.size();
}

bool
decodeReplyBody(std::string_view body, EvalReplyMsg &out)
{
    std::size_t off = 0;
    if (!takeU64(body, off, out.id))
        return false;
    harness::EvalRecord &r = out.record;
    if (!(takeDouble(body, off, r.cycles) &&
          takeDouble(body, off, r.instructions) &&
          takeDouble(body, off, r.seconds) &&
          takeDouble(body, off, r.joules) &&
          takeDouble(body, off, r.ipc) &&
          takeDouble(body, off, r.watts) &&
          takeDouble(body, off, r.efficiency)))
        return false;
    if (!getString(body, off, out.producer))
        return false;
    if (off + 1 != body.size())
        return false;
    out.cacheHit = body[off] != 0;
    return true;
}

bool
decodeErrorBody(std::string_view body, ErrorMsg &out)
{
    std::size_t off = 0;
    if (!takeU64(body, off, out.id))
        return false;
    if (off + 1 > body.size())
        return false;
    out.code = static_cast<ErrorCode>(
        static_cast<unsigned char>(body[off]));
    ++off;
    return getString(body, off, out.message) && off == body.size();
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::None:
        return "none";
    case ErrorCode::BadFrame:
        return "bad-frame";
    case ErrorCode::BadVersion:
        return "bad-version";
    case ErrorCode::BadType:
        return "bad-type";
    case ErrorCode::UnknownBackend:
        return "unknown-backend";
    case ErrorCode::UnknownWorkload:
        return "unknown-workload";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::TooManyInFlight:
        return "too-many-in-flight";
    case ErrorCode::Oversized:
        return "oversized";
    }
    return "unknown";
}

std::string
encodeFrame(const EvalRequestMsg &msg)
{
    std::string p = payloadHead(MsgType::EvalRequest);
    putU64(p, msg.id);
    putString(p, msg.spec.workload);
    putU64(p, msg.spec.programLength);
    putU64(p, msg.spec.startInst);
    putU64(p, msg.spec.warmLength);
    putU64(p, msg.spec.detailLength);
    putU64(p, msg.spec.chipMix);
    putU64(p, msg.configCode);
    putString(p, msg.backend);
    return sealFrame(std::move(p));
}

std::string
encodeFrame(const EvalReplyMsg &msg)
{
    std::string p = payloadHead(MsgType::EvalReply);
    putU64(p, msg.id);
    putDouble(p, msg.record.cycles);
    putDouble(p, msg.record.instructions);
    putDouble(p, msg.record.seconds);
    putDouble(p, msg.record.joules);
    putDouble(p, msg.record.ipc);
    putDouble(p, msg.record.watts);
    putDouble(p, msg.record.efficiency);
    putString(p, msg.producer);
    p.push_back(msg.cacheHit ? 1 : 0);
    return sealFrame(std::move(p));
}

std::string
encodeFrame(const ErrorMsg &msg)
{
    std::string p = payloadHead(MsgType::Error);
    putU64(p, msg.id);
    p.push_back(static_cast<char>(msg.code));
    putString(p, msg.message);
    return sealFrame(std::move(p));
}

ErrorCode
decodePayload(std::string_view payload, Message &out)
{
    // Smallest legal payload: version + type + empty body + checksum.
    if (payload.size() < 2 + 8)
        return ErrorCode::BadFrame;
    const std::size_t body_end = payload.size() - 8;
    if (getU64(payload.data() + body_end) !=
        fnv1a64(payload.data(), body_end))
        return ErrorCode::BadFrame;
    const auto version =
        static_cast<std::uint8_t>(payload[0]);
    if (version != 1 && version != kProtocolVersion)
        return ErrorCode::BadVersion;
    const std::string_view body = payload.substr(2, body_end - 2);
    switch (static_cast<MsgType>(payload[1])) {
    case MsgType::EvalRequest:
        out.type = MsgType::EvalRequest;
        return decodeRequestBody(body, out.request, version >= 2)
                   ? ErrorCode::None
                   : ErrorCode::BadFrame;
    case MsgType::EvalReply:
        out.type = MsgType::EvalReply;
        return decodeReplyBody(body, out.reply)
                   ? ErrorCode::None
                   : ErrorCode::BadFrame;
    case MsgType::Error:
        out.type = MsgType::Error;
        return decodeErrorBody(body, out.error)
                   ? ErrorCode::None
                   : ErrorCode::BadFrame;
    }
    return ErrorCode::BadType;
}

void
FrameBuffer::append(const char *data, std::size_t size)
{
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow the buffer without bound.
    if (off_ > 0 && off_ >= buf_.size() / 2) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(data, size);
}

FrameBuffer::Result
FrameBuffer::next(std::string &out)
{
    if (poisoned_)
        return Result::Oversized;
    if (buf_.size() - off_ < 4)
        return Result::NeedMore;
    const std::uint32_t len = getU32(buf_.data() + off_);
    if (len > kMaxFrameBytes) {
        poisoned_ = true;
        return Result::Oversized;
    }
    if (buf_.size() - off_ < 4 + std::size_t{len})
        return Result::NeedMore;
    out.assign(buf_.data() + off_ + 4, len);
    off_ += 4 + std::size_t{len};
    return Result::Frame;
}

} // namespace adaptsim::svc
