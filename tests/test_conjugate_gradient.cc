/**
 * @file
 * Tests of the Polak-Ribière conjugate-gradient minimiser.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/conjugate_gradient.hh"

using namespace adaptsim::ml;

TEST(ConjugateGradient, MinimisesConvexQuadratic)
{
    // f(w) = Σ a_i (w_i - c_i)²  with distinct curvatures.
    const std::vector<double> a = {1.0, 10.0, 0.5, 4.0};
    const std::vector<double> c = {2.0, -1.0, 0.0, 5.0};
    const Objective f = [&](const std::vector<double> &w,
                            std::vector<double> &g) {
        g.assign(w.size(), 0.0);
        double val = 0.0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            const double d = w[i] - c[i];
            val += a[i] * d * d;
            g[i] = 2.0 * a[i] * d;
        }
        return val;
    };

    std::vector<double> w(4, 1.0);
    const auto result = minimiseCg(f, w);
    EXPECT_TRUE(result.converged);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w[i], c[i], 1e-3);
    EXPECT_NEAR(result.objective, 0.0, 1e-6);
}

TEST(ConjugateGradient, HandlesRosenbrockValley)
{
    // Classic non-quadratic test; CG should make major progress.
    const Objective f = [](const std::vector<double> &w,
                           std::vector<double> &g) {
        const double x = w[0], y = w[1];
        g.resize(2);
        g[0] = -2.0 * (1 - x) - 400.0 * x * (y - x * x);
        g[1] = 200.0 * (y - x * x);
        return (1 - x) * (1 - x) +
               100.0 * (y - x * x) * (y - x * x);
    };
    std::vector<double> w = {-1.2, 1.0};
    CgOptions opt;
    opt.maxIterations = 2000;
    const auto result = minimiseCg(f, w, opt);
    EXPECT_LT(result.objective, 1e-2);
}

TEST(ConjugateGradient, StartingAtMinimumConvergesImmediately)
{
    const Objective f = [](const std::vector<double> &w,
                           std::vector<double> &g) {
        g.assign(w.size(), 0.0);
        double val = 0.0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            val += w[i] * w[i];
            g[i] = 2.0 * w[i];
        }
        return val;
    };
    std::vector<double> w(3, 0.0);
    const auto result = minimiseCg(f, w);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 2u);
}

TEST(ConjugateGradient, RespectsIterationCap)
{
    const Objective f = [](const std::vector<double> &w,
                           std::vector<double> &g) {
        g.resize(1);
        g[0] = 2.0 * (w[0] - 1e9);
        return (w[0] - 1e9) * (w[0] - 1e9);
    };
    std::vector<double> w = {0.0};
    CgOptions opt;
    opt.maxIterations = 3;
    const auto result = minimiseCg(f, w, opt);
    EXPECT_LE(result.iterations, 3u);
}

TEST(ConjugateGradient, DecreasesObjectiveMonotonically)
{
    // Armijo acceptance guarantees descent; verify externally.
    std::vector<double> history;
    const Objective f = [&](const std::vector<double> &w,
                            std::vector<double> &g) {
        g.resize(2);
        const double v = w[0] * w[0] + 3.0 * w[1] * w[1] +
                         w[0] * w[1];
        g[0] = 2.0 * w[0] + w[1];
        g[1] = 6.0 * w[1] + w[0];
        return v;
    };
    std::vector<double> w = {5.0, -3.0};
    double prev = 1e300;
    for (int step = 0; step < 5; ++step) {
        CgOptions opt;
        opt.maxIterations = 1;
        const auto result = minimiseCg(f, w, opt);
        EXPECT_LE(result.objective, prev + 1e-12);
        prev = result.objective;
    }
    EXPECT_LT(prev, 1.0);
}
