/**
 * @file
 * Tests of per-cycle functional-unit arbitration.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "uarch/functional_units.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;
using isa::OpClass;

namespace
{

CoreConfig
widthConfig(int width)
{
    auto cfg = harness::paperBaselineConfig();
    cfg.setValue(space::Param::Width, width);
    return CoreConfig::fromConfiguration(cfg);
}

} // namespace

TEST(FunctionalUnits, AluCapacityEqualsWidth)
{
    const auto cfg = widthConfig(4);
    FunctionalUnits fus(cfg);
    fus.beginCycle(0);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(fus.canIssue(OpClass::IntAlu, 0));
        fus.issue(OpClass::IntAlu, 0, 1);
    }
    EXPECT_FALSE(fus.canIssue(OpClass::IntAlu, 0));
    EXPECT_EQ(fus.aluUsed(), 4);
}

TEST(FunctionalUnits, CapacityResetsEachCycle)
{
    const auto cfg = widthConfig(2);
    FunctionalUnits fus(cfg);
    fus.beginCycle(0);
    fus.issue(OpClass::IntAlu, 0, 1);
    fus.issue(OpClass::IntAlu, 0, 1);
    EXPECT_FALSE(fus.canIssue(OpClass::IntAlu, 0));
    fus.beginCycle(1);
    EXPECT_TRUE(fus.canIssue(OpClass::IntAlu, 1));
}

TEST(FunctionalUnits, MemPortsScaleWithWidth)
{
    FunctionalUnits narrow(widthConfig(2));
    narrow.beginCycle(0);
    narrow.issue(OpClass::Load, 0, 2);
    EXPECT_FALSE(narrow.canIssue(OpClass::Store, 0));

    FunctionalUnits wide(widthConfig(8));
    wide.beginCycle(0);
    for (int i = 0; i < 4; ++i)
        wide.issue(OpClass::Load, 0, 2);
    EXPECT_FALSE(wide.canIssue(OpClass::Load, 0));
}

TEST(FunctionalUnits, UnpipelinedDivideBlocks)
{
    const auto cfg = widthConfig(4);
    FunctionalUnits fus(cfg);
    fus.beginCycle(0);
    ASSERT_TRUE(fus.canIssue(OpClass::IntDiv, 0));
    fus.issue(OpClass::IntDiv, 0, cfg.latIntDiv);
    fus.beginCycle(1);
    EXPECT_FALSE(fus.canIssue(OpClass::IntDiv, 1));
    fus.beginCycle(cfg.latIntDiv);
    EXPECT_TRUE(fus.canIssue(OpClass::IntDiv, cfg.latIntDiv));
}

TEST(FunctionalUnits, FpDivIndependentOfIntDiv)
{
    const auto cfg = widthConfig(4);
    FunctionalUnits fus(cfg);
    fus.beginCycle(0);
    fus.issue(OpClass::IntDiv, 0, cfg.latIntDiv);
    fus.beginCycle(1);
    EXPECT_TRUE(fus.canIssue(OpClass::FpDiv, 1));
}

TEST(FunctionalUnits, BranchesShareAlus)
{
    const auto cfg = widthConfig(2);
    FunctionalUnits fus(cfg);
    fus.beginCycle(0);
    fus.issue(OpClass::Branch, 0, 1);
    fus.issue(OpClass::IntAlu, 0, 1);
    EXPECT_FALSE(fus.canIssue(OpClass::Branch, 0));
}
