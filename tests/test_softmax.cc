/**
 * @file
 * Tests of the soft-max classifier and its training objective,
 * including a finite-difference gradient check.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/softmax.hh"

using namespace adaptsim;
using namespace adaptsim::ml;

TEST(Softmax, AllOnesInitPredictsFirstClass)
{
    SoftmaxClassifier clf(4, 3);
    const std::vector<double> x = {0.1, 0.2, 0.3, 1.0};
    // Equal logits → argmax returns the first class.
    EXPECT_EQ(clf.predict(x), 0u);
}

TEST(Softmax, LogitsAreWTransposeX)
{
    SoftmaxClassifier clf(2, 2);
    clf.weights()(0, 0) = 1.0;
    clf.weights()(0, 1) = -1.0;
    clf.weights()(1, 0) = 0.5;
    clf.weights()(1, 1) = 2.0;
    const std::vector<double> x = {2.0, 4.0};
    const auto b = clf.logits(x);
    EXPECT_NEAR(b[0], 2.0 + 2.0, 1e-12);
    EXPECT_NEAR(b[1], -2.0 + 8.0, 1e-12);
    EXPECT_EQ(clf.predict(x), 1u);
}

TEST(Softmax, ProbabilitiesSumToOne)
{
    SoftmaxClassifier clf(3, 5);
    Rng rng(3);
    for (auto &w : clf.weights().data())
        w = rng.nextGaussian();
    const std::vector<double> x = {0.3, -1.0, 2.0};
    const auto p = clf.probabilities(x);
    double sum = 0.0;
    for (double v : p) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Softmax, ProbabilitiesStableForLargeLogits)
{
    SoftmaxClassifier clf(1, 2);
    clf.weights()(0, 0) = 800.0;   // would overflow exp() naively
    clf.weights()(0, 1) = -800.0;
    const std::vector<double> x = {1.0};
    const auto p = clf.probabilities(x);
    EXPECT_NEAR(p[0], 1.0, 1e-9);
    EXPECT_TRUE(std::isfinite(p[1]));
}

TEST(SoftmaxObjective, GradientMatchesFiniteDifferences)
{
    const std::size_t D = 4, K = 3;
    Rng rng(11);
    std::vector<GroupedExample> examples;
    for (int n = 0; n < 6; ++n) {
        GroupedExample ex;
        for (std::size_t d = 0; d < D; ++d)
            ex.x.push_back(rng.nextDouble());
        ex.classCount.assign(K, 0.0);
        ex.classCount[rng.nextBounded(K)] = 2.0;
        ex.classCount[rng.nextBounded(K)] += 1.0;
        examples.push_back(std::move(ex));
    }

    std::vector<double> w(D * K);
    for (auto &v : w)
        v = rng.nextGaussian() * 0.3;

    std::vector<double> grad;
    const double f0 =
        softmaxObjective(examples, D, K, 0.5, w, grad);
    EXPECT_TRUE(std::isfinite(f0));

    const double eps = 1e-6;
    for (std::size_t i = 0; i < w.size(); ++i) {
        auto wp = w;
        wp[i] += eps;
        std::vector<double> tmp;
        const double fp =
            softmaxObjective(examples, D, K, 0.5, wp, tmp);
        const double numeric = (fp - f0) / eps;
        EXPECT_NEAR(grad[i], numeric, 1e-3)
            << "weight " << i;
    }
}

TEST(SoftmaxObjective, RegularisationPenalisesLargeWeights)
{
    const std::size_t D = 2, K = 2;
    std::vector<GroupedExample> examples(1);
    examples[0].x = {1.0, 0.0};
    examples[0].classCount = {1.0, 0.0};

    std::vector<double> small(D * K, 0.1), big(D * K, 10.0);
    std::vector<double> g;
    const double f_small_l0 =
        softmaxObjective(examples, D, K, 0.0, small, g);
    const double f_small_l5 =
        softmaxObjective(examples, D, K, 5.0, small, g);
    const double f_big_l5 =
        softmaxObjective(examples, D, K, 5.0, big, g);
    EXPECT_GT(f_small_l5, f_small_l0);
    EXPECT_GT(f_big_l5, f_small_l5);
}

TEST(SoftmaxObjective, PerfectSeparationDrivesNllDown)
{
    // One feature that identifies the class exactly.
    const std::size_t D = 2, K = 2;
    std::vector<GroupedExample> examples(2);
    examples[0].x = {1.0, 0.0};
    examples[0].classCount = {3.0, 0.0};
    examples[1].x = {0.0, 1.0};
    examples[1].classCount = {0.0, 3.0};

    std::vector<double> g;
    std::vector<double> neutral(D * K, 1.0);
    const double f_neutral =
        softmaxObjective(examples, D, K, 0.0, neutral, g);
    // Aligned weights: feature d votes for class d.
    std::vector<double> aligned = {5.0, -5.0, -5.0, 5.0};
    const double f_aligned =
        softmaxObjective(examples, D, K, 0.0, aligned, g);
    EXPECT_LT(f_aligned, f_neutral);
}
