file(REMOVE_RECURSE
  "CMakeFiles/test_trace_cache.dir/test_trace_cache.cc.o"
  "CMakeFiles/test_trace_cache.dir/test_trace_cache.cc.o.d"
  "test_trace_cache"
  "test_trace_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
