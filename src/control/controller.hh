/**
 * @file
 * The runtime adaptivity controller — the complete loop of Fig. 2.
 *
 * Stage 1: an online BBV detector watches for phase changes.
 * Stage 2: new phases run one interval on the profiling configuration
 *          while the counter bank gathers Table II counters.
 * Stage 3: the predictive model maps the counters to a configuration;
 *          the core reconfigures (paying the Table V overheads, with
 *          caches flushed) and execution continues.
 *
 * Recurring phases reuse their stored prediction, so reconfiguration
 * and profiling happen only on genuinely new behaviour.
 */

#ifndef ADAPTSIM_CONTROL_CONTROLLER_HH
#define ADAPTSIM_CONTROL_CONTROLLER_HH

#include <memory>
#include <unordered_map>

#include "control/core_policy.hh"
#include "control/reconfig_cost.hh"
#include "counters/feature_vector.hh"
#include "ml/trainer.hh"
#include "sim/perf_model.hh"
#include "workload/trace_cache.hh"
#include "workload/workload.hh"

namespace adaptsim::control
{

/** Controller knobs. */
struct ControllerOptions
{
    std::uint64_t intervalLength = 10000;
    counters::FeatureSet featureSet =
        counters::FeatureSet::Advanced;
    double detectorThreshold = 1.0;
    space::Configuration initialConfig;   ///< config before adapting

    /** Optional shared interval-trace cache: replayed runs of the
     *  same workload (static vs adaptive comparisons) then generate
     *  each interval once instead of once per run. */
    workload::TraceCache *traceCache = nullptr;

    /** Performance-model backend for the execution intervals;
     *  nullptr selects the ADAPTSIM_BACKEND default.  Profiling
     *  intervals need observer callbacks, so a backend without
     *  observer support profiles on the cycle-level model. */
    const sim::PerfModel *backend = nullptr;
};

/** Whole-run outcome of an adaptive (or static) execution. */
struct RunStats
{
    std::uint64_t intervals = 0;
    std::uint64_t instructions = 0;
    std::uint64_t phaseChanges = 0;
    std::uint64_t profilingIntervals = 0;
    std::uint64_t reconfigurations = 0;
    Cycles reconfigCycles = 0;

    double seconds = 0.0;
    double joules = 0.0;

    double watts() const
    {
        return seconds > 0.0 ? joules / seconds : 0.0;
    }
    double ips() const
    {
        return seconds > 0.0 ? double(instructions) / seconds : 0.0;
    }
    double efficiency() const;   ///< ips³/W
};

/** The adaptive processor controller. */
class AdaptiveController
{
  public:
    /**
     * @param wl program to execute.
     * @param model trained predictive model (must match featureSet).
     * @param options controller knobs.
     */
    AdaptiveController(const workload::Workload &wl,
                       const ml::AdaptivityModel &model,
                       const ControllerOptions &options = {});

    /** Execute @p max_instructions µops adaptively. */
    RunStats run(std::uint64_t max_instructions);

    /** Predictions made so far, by detector phase id. */
    const std::unordered_map<std::size_t, space::Configuration> &
    phasePredictions() const
    {
        return policy_.predictions();
    }

  private:
    /** Simulate one interval on @p session, accumulating stats. */
    void runInterval(sim::CoreSession &session,
                     std::span<const isa::MicroOp> trace,
                     uarch::SimObserver *observer, RunStats &stats);

    const workload::Workload &wl_;
    const ml::AdaptivityModel &model_;
    ControllerOptions opt_;
    const sim::PerfModel &backend_;        ///< execution intervals
    const sim::PerfModel &profileBackend_; ///< observer-capable

    workload::WrongPathGenerator wrongPath_;
    CorePolicy policy_;
};

/**
 * Reference point: execute @p max_instructions of @p wl on a fixed
 * @p config (caches and predictor stay warm across intervals).
 * @p backend nullptr selects the ADAPTSIM_BACKEND default.
 */
RunStats runStatic(const workload::Workload &wl,
                   const space::Configuration &config,
                   std::uint64_t max_instructions,
                   std::uint64_t interval_length = 10000,
                   workload::TraceCache *trace_cache = nullptr,
                   const sim::PerfModel *backend = nullptr);

} // namespace adaptsim::control

#endif // ADAPTSIM_CONTROL_CONTROLLER_HH
