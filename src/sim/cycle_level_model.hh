/**
 * @file
 * The cycle-level backend: uarch::Core behind the PerfModel seam.
 *
 * A session is exactly one uarch::Core — same construction, same
 * warm(), same run() — so results through the seam are bit-identical
 * to calling the core directly (the golden pipeline matrix test
 * holds through both paths).
 */

#ifndef ADAPTSIM_SIM_CYCLE_LEVEL_MODEL_HH
#define ADAPTSIM_SIM_CYCLE_LEVEL_MODEL_HH

#include "sim/perf_model.hh"
#include "uarch/core.hh"

namespace adaptsim::sim
{

/** The detailed out-of-order pipeline as a backend ("cycle"). */
class CycleLevelModel final : public PerfModel
{
  public:
    /** Reserved tag 0: pre-seam cache records stay valid. */
    static constexpr std::uint64_t kCacheTag = 0;

    const char *name() const override { return "cycle"; }
    Fidelity fidelity() const override
    {
        return Fidelity::CycleLevel;
    }
    std::uint64_t cacheTag() const override { return kCacheTag; }
    bool supportsObservers() const override { return true; }

    std::unique_ptr<CoreSession>
    makeSession(const uarch::CoreConfig &cfg,
                workload::WrongPathGenerator &wrong_path)
        const override;

    /** Detailed multi-core session wrapping uarch::Chip (shared-LLC
     *  contention simulated, not approximated). */
    std::unique_ptr<ChipSession>
    makeChipSession(const uarch::ChipConfig &cfg,
                    const std::vector<workload::WrongPathGenerator *>
                        &wrong_paths) const override;
};

} // namespace adaptsim::sim

#endif // ADAPTSIM_SIM_CYCLE_LEVEL_MODEL_HH
