# Empty compiler generated dependencies file for test_gather.
# This may be replaced when dependencies are built.
