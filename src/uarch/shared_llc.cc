#include "uarch/shared_llc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::uarch
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

SharedLlc::SharedLlc(const LlcConfig &cfg, unsigned num_cores)
    : cfg_(cfg), numCores_(num_cores)
{
    if (num_cores == 0)
        fatal("SharedLlc: need at least one core");
    if (cfg_.assoc <= 0 || cfg_.lineBytes <= 0 || cfg_.banks <= 0 ||
        cfg_.mshrsPerBank <= 0)
        fatal("SharedLlc: non-positive geometry parameter");
    numSets_ = cfg_.bytes /
               (std::uint64_t(cfg_.assoc) * cfg_.lineBytes);
    if (numSets_ == 0 || !isPow2(numSets_))
        fatal("SharedLlc: sets must be a positive power of two "
              "(bytes=", cfg_.bytes, " assoc=", cfg_.assoc,
              " line=", cfg_.lineBytes, ")");
    if (!isPow2(std::uint64_t(cfg_.banks)))
        fatal("SharedLlc: banks must be a power of two (",
              cfg_.banks, ")");
    lines_.resize(numSets_ * cfg_.assoc);
    banks_.resize(std::size_t(cfg_.banks));
    for (auto &b : banks_)
        b.mshrs.reserve(std::size_t(cfg_.mshrsPerBank));
    stats_.resize(num_cores);
}

bool
SharedLlc::lookupFill(Addr addr, bool write, unsigned core)
{
    const Addr block = addr / std::uint64_t(cfg_.lineBytes);
    Line *base = &lines_[setIndex(addr) * cfg_.assoc];
    Line *victim = base;
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.tag == block) {
            line.lruStamp = ++lruClock_;
            line.dirty = line.dirty || write;
            return true;
        }
        if (victim->tag != invalidAddr &&
            (line.tag == invalidAddr ||
             line.lruStamp < victim->lruStamp))
            victim = &line;
    }
    if (victim->tag == invalidAddr)
        ++validLines_;
    else
        --stats_[victim->owner].linesOwned;
    victim->tag = block;
    victim->lruStamp = ++lruClock_;
    victim->owner = static_cast<std::uint16_t>(core);
    victim->dirty = write;
    ++stats_[core].linesOwned;
    return false;
}

SharedLlc::Outcome
SharedLlc::access(Addr addr, bool write, unsigned core, Cycles now)
{
    MutexLock lock(mu_);
    if (core >= numCores_)
        panic("SharedLlc: core ", core, " out of range (",
              numCores_, " cores)");

    CoreStats &cs = stats_[core];
    ++cs.accesses;

    // Bank queue: one request per bankService cycles.
    Bank &bank = banks_[bankIndex(addr)];
    const Cycles start = std::max(now, bank.nextFree);
    Cycles wait = start - now;
    bank.nextFree = start + Cycles(cfg_.bankService);

    Outcome out;
    out.hit = lookupFill(addr, write, core);
    if (out.hit) {
        ++cs.hits;
        out.queueCycles = static_cast<int>(wait);
        out.latency =
            cfg_.busLatency + cfg_.hitLatency + out.queueCycles;
        cs.queueCycles += std::uint64_t(out.queueCycles);
        return out;
    }

    ++cs.misses;
    // MSHR admission: prune completed misses, then wait for the
    // earliest outstanding one if all MSHRs are busy.
    auto &mshrs = bank.mshrs;
    Cycles issue = start;
    std::erase_if(mshrs,
                  [issue](Cycles done) { return done <= issue; });
    if (mshrs.size() >= std::size_t(cfg_.mshrsPerBank)) {
        const Cycles earliest =
            *std::min_element(mshrs.begin(), mshrs.end());
        wait += earliest - issue;
        issue = earliest;
        std::erase_if(mshrs, [earliest](Cycles done) {
            return done <= earliest;
        });
    }
    const Cycles done =
        issue + Cycles(cfg_.hitLatency) + Cycles(cfg_.memLatency);
    mshrs.push_back(done);

    out.queueCycles = static_cast<int>(wait);
    out.latency = cfg_.busLatency + cfg_.hitLatency +
                  cfg_.memLatency + out.queueCycles;
    cs.queueCycles += std::uint64_t(out.queueCycles);
    return out;
}

void
SharedLlc::warmAccess(Addr addr, bool write, unsigned core)
{
    MutexLock lock(mu_);
    if (core >= numCores_)
        panic("SharedLlc: core ", core, " out of range (",
              numCores_, " cores)");
    lookupFill(addr, write, core);
}

SharedLlc::CoreStats
SharedLlc::coreStats(unsigned core) const
{
    MutexLock lock(mu_);
    if (core >= numCores_)
        panic("SharedLlc: core ", core, " out of range (",
              numCores_, " cores)");
    return stats_[core];
}

double
SharedLlc::occupancyShare(unsigned core) const
{
    MutexLock lock(mu_);
    if (core >= numCores_)
        panic("SharedLlc: core ", core, " out of range (",
              numCores_, " cores)");
    const std::uint64_t total = numSets_ * std::uint64_t(cfg_.assoc);
    return total ? double(stats_[core].linesOwned) / double(total)
                 : 0.0;
}

double
SharedLlc::sharedMissRatio(unsigned core) const
{
    MutexLock lock(mu_);
    if (core >= numCores_)
        panic("SharedLlc: core ", core, " out of range (",
              numCores_, " cores)");
    const CoreStats &cs = stats_[core];
    return cs.accesses ? double(cs.misses) / double(cs.accesses)
                       : 0.0;
}

void
SharedLlc::resetStats()
{
    MutexLock lock(mu_);
    for (auto &cs : stats_) {
        const std::uint64_t owned = cs.linesOwned;
        cs = CoreStats{};
        cs.linesOwned = owned;
    }
}

void
SharedLlc::flush()
{
    MutexLock lock(mu_);
    for (auto &line : lines_)
        line = Line{};
    for (auto &bank : banks_) {
        bank.nextFree = 0;
        bank.mshrs.clear();
    }
    for (auto &cs : stats_)
        cs.linesOwned = 0;
    validLines_ = 0;
}

} // namespace adaptsim::uarch
