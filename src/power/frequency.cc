#include "power/frequency.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::power
{

double
clockPeriodSeconds(int depth_fo4)
{
    // Useful logic plus latch/skew overhead per stage.
    return (static_cast<double>(depth_fo4) + latchOverheadFo4) *
           fo4DelaySeconds;
}

double
clockFrequencyHz(int depth_fo4)
{
    return 1.0 / clockPeriodSeconds(depth_fo4);
}

int
pipelineStages(int depth_fo4)
{
    const int stages = static_cast<int>(
        std::ceil(totalLogicFo4 / static_cast<double>(depth_fo4)));
    return std::max(stages, 5);
}

int
frontendStages(int depth_fo4)
{
    // Roughly half of the pipeline precedes dispatch.
    return std::max(2, (pipelineStages(depth_fo4) + 1) / 2);
}

} // namespace adaptsim::power
