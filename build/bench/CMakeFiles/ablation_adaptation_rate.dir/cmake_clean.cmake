file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptation_rate.dir/ablation_adaptation_rate.cc.o"
  "CMakeFiles/ablation_adaptation_rate.dir/ablation_adaptation_rate.cc.o.d"
  "ablation_adaptation_rate"
  "ablation_adaptation_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptation_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
