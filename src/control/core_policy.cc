#include "control/core_policy.hh"

#include "obs/obs.hh"

namespace adaptsim::control
{

CorePolicy::CorePolicy(const ml::AdaptivityModel &model,
                       counters::FeatureSet feature_set,
                       double detector_threshold)
    : model_(model), featureSet_(feature_set),
      detector_(detector_threshold)
{
}

CorePolicy::Decision
CorePolicy::observe(std::span<const isa::MicroOp> trace)
{
    const auto obs = detector_.observe(phase::Bbv::ofTrace(trace));
    return {obs.phaseChanged, obs.newPhase, obs.phaseId};
}

space::Configuration
CorePolicy::predictFrom(std::size_t phase_id,
                        const counters::CounterBank &bank)
{
    const auto x = counters::assembleFeatures(bank, featureSet_);
    space::Configuration target;
    {
        OBS_SPAN("control/predict");
        target = model_.predict(x);
    }
    predictions_[phase_id] = target;
    return target;
}

const space::Configuration *
CorePolicy::prediction(std::size_t phase_id) const
{
    const auto it = predictions_.find(phase_id);
    return it == predictions_.end() ? nullptr : &it->second;
}

} // namespace adaptsim::control
