/**
 * @file
 * Dynamic set sampling (Qureshi et al., ISCA'06) as used in Sec. VIII:
 * only a stride-sampled subset of cache sets is monitored, cutting the
 * storage and energy cost of the reuse-distance counters while keeping
 * the histograms statistically representative (Table IV / Fig. 9).
 */

#ifndef ADAPTSIM_COUNTERS_SET_SAMPLING_HH
#define ADAPTSIM_COUNTERS_SET_SAMPLING_HH

#include <cstdint>

#include "common/types.hh"

namespace adaptsim::counters
{

/** Stride-based set sampler over a power-of-two set count. */
class SetSampler
{
  public:
    /**
     * @param total_sets sets in the monitored cache (power of two).
     * @param sampled_sets sets to monitor (power of two ≤ total;
     *        0 means all sets).
     */
    SetSampler(std::uint64_t total_sets, std::uint64_t sampled_sets);

    /** True when the set containing @p set_index is monitored. */
    bool sampled(std::uint64_t set_index) const
    {
        return (set_index & strideMask_) == 0;
    }

    /** Convenience: sample decision for an address. */
    bool sampledAddr(Addr addr, int line_bytes) const
    {
        return sampled((addr / line_bytes) & (totalSets_ - 1));
    }

    std::uint64_t totalSets() const { return totalSets_; }
    std::uint64_t sampledSets() const { return sampledSets_; }

    /** Fraction of sets monitored. */
    double fraction() const
    {
        return static_cast<double>(sampledSets_) /
               static_cast<double>(totalSets_);
    }

  private:
    std::uint64_t totalSets_;
    std::uint64_t sampledSets_;
    std::uint64_t strideMask_;
};

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_SET_SAMPLING_HH
