/**
 * @file
 * Disk-cached simulation repository.
 *
 * Every (phase, configuration) simulation result is memoised in
 * memory and persisted as CSV under ADAPTSIM_DATA_DIR, so the
 * expensive Sec. V-C training-data gather runs once and every bench
 * reuses it.  Profiling runs (with the counter bank attached) are
 * cached the same way as serialized feature vectors.
 */

#ifndef ADAPTSIM_HARNESS_REPOSITORY_HH
#define ADAPTSIM_HARNESS_REPOSITORY_HH

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "counters/feature_vector.hh"
#include "harness/thread_pool.hh"
#include "space/configuration.hh"
#include "workload/workload.hh"

namespace adaptsim::harness
{

/** Identity of one simulated interval of one workload. */
struct PhaseSpec
{
    std::string workload;      ///< program name
    std::uint64_t programLength = 0;
    std::uint64_t startInst = 0;
    std::uint64_t warmLength = 0;
    std::uint64_t detailLength = 0;

    /** Stable cache-file stem for this spec. */
    std::string key() const;
};

/** Cached outcome of one (phase, config) simulation. */
struct EvalRecord
{
    double cycles = 0.0;
    double instructions = 0.0;
    double seconds = 0.0;
    double joules = 0.0;
    double ipc = 0.0;
    double watts = 0.0;
    double efficiency = 0.0;   ///< ips³/W
};

/** Feature vectors from one profiling run. */
struct ProfileRecord
{
    std::vector<double> basic;
    std::vector<double> advanced;
};

/** Memoising simulation evaluator shared by all benches. */
class EvalRepository
{
  public:
    /**
     * @param suite the workload suite (looked up by name).
     * @param data_dir on-disk cache directory (created if absent).
     * @param threads evaluation parallelism.
     */
    EvalRepository(std::vector<workload::Workload> suite,
                   std::string data_dir, unsigned threads);

    ~EvalRepository();

    /** Evaluate one configuration on one phase (cached). */
    EvalRecord evaluate(const PhaseSpec &spec,
                        const space::Configuration &config);

    /** Evaluate many configurations on one phase, in parallel. */
    std::vector<EvalRecord>
    evaluateBatch(const PhaseSpec &spec,
                  const std::vector<space::Configuration> &configs);

    /** Profiling-configuration run with counters (cached). */
    ProfileRecord profile(const PhaseSpec &spec);

    /** Persist any unsaved results now. */
    void flush();

    const workload::Workload &workload(const std::string &name) const;

    std::uint64_t simulationsRun() const { return simulated_; }
    std::uint64_t cacheHits() const { return hits_; }

  private:
    struct PhaseCache
    {
        std::unordered_map<std::uint64_t, EvalRecord> records;
        std::vector<std::pair<std::uint64_t, EvalRecord>> unsaved;
        bool loaded = false;
    };

    /** Run the real simulation (no caching). */
    EvalRecord simulate(const PhaseSpec &spec,
                        const space::Configuration &config);

    PhaseCache &cacheFor(const PhaseSpec &spec);
    void loadCache(const PhaseSpec &spec, PhaseCache &cache);
    std::string cachePath(const PhaseSpec &spec) const;
    std::string profilePath(const PhaseSpec &spec) const;

    std::vector<workload::Workload> suite_;
    std::string dataDir_;
    ThreadPool pool_;

    std::mutex mutex_;
    std::unordered_map<std::string, PhaseCache> caches_;
    std::unordered_map<std::string, ProfileRecord> profiles_;
    std::uint64_t simulated_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_REPOSITORY_HH
