/**
 * @file
 * Tests of the derived core configuration (timing parameters).
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "uarch/core_config.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;

TEST(CoreConfig, FromConfigurationCopiesRawValues)
{
    const auto cc = CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    EXPECT_EQ(cc.width, 4);
    EXPECT_EQ(cc.robSize, 144);
    EXPECT_EQ(cc.iqSize, 48);
    EXPECT_EQ(cc.lsqSize, 32);
    EXPECT_EQ(cc.rfSize, 160);
    EXPECT_EQ(cc.gshareEntries, 16384);
    EXPECT_EQ(cc.depthFo4, 12);
    EXPECT_EQ(cc.icacheBytes, 64u * 1024);
}

TEST(CoreConfig, DeeperPipelineIsFasterClock)
{
    auto shallow = harness::paperBaselineConfig();
    shallow.setValue(space::Param::Depth, 36);
    auto deep = harness::paperBaselineConfig();
    deep.setValue(space::Param::Depth, 9);

    const auto s = CoreConfig::fromConfiguration(shallow);
    const auto d = CoreConfig::fromConfiguration(deep);
    EXPECT_GT(d.clockHz, s.clockHz);
    EXPECT_GT(d.numStages, s.numStages);
    EXPECT_GT(d.frontendDelay, s.frontendDelay);
    // DRAM latency in cycles grows with clock frequency.
    EXPECT_GT(d.memLatency, s.memLatency);
}

TEST(CoreConfig, BiggerCachesAreSlower)
{
    auto small = harness::paperBaselineConfig();
    small.setValue(space::Param::DCacheSize, 8 * 1024);
    auto big = harness::paperBaselineConfig();
    big.setValue(space::Param::DCacheSize, 128 * 1024);
    const auto s = CoreConfig::fromConfiguration(small);
    const auto b = CoreConfig::fromConfiguration(big);
    EXPECT_LE(s.dcacheLatency, b.dcacheLatency);
    EXPECT_GE(b.l2Latency, b.dcacheLatency);
    EXPECT_GT(b.memLatency, b.l2Latency);
}

TEST(CoreConfig, FuCountsScaleWithWidth)
{
    auto cfg = harness::paperBaselineConfig();
    cfg.setValue(space::Param::Width, 8);
    const auto cc = CoreConfig::fromConfiguration(cfg);
    EXPECT_EQ(cc.numAlu, 8);
    EXPECT_EQ(cc.numMemPorts, 4);
    EXPECT_EQ(cc.numFpu, 4);
    EXPECT_EQ(cc.numMul, 2);

    cfg.setValue(space::Param::Width, 2);
    const auto cc2 = CoreConfig::fromConfiguration(cfg);
    EXPECT_EQ(cc2.numAlu, 2);
    EXPECT_EQ(cc2.numMemPorts, 1);
    EXPECT_EQ(cc2.numMul, 1);
}

TEST(CoreConfig, IntRenameRegs)
{
    CoreConfig cc;
    cc.rfSize = 40;
    EXPECT_EQ(cc.intRenameRegs(), 8);
}

TEST(CoreConfig, ToStringIsCompact)
{
    const auto cc = CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    const auto s = cc.toString();
    EXPECT_NE(s.find("w4"), std::string::npos);
    EXPECT_NE(s.find("rob144"), std::string::npos);
    EXPECT_NE(s.find("l21024K"), std::string::npos);
}

/** Property sweep: every depth value derives a consistent clock. */
class DepthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DepthSweep, DerivedValuesConsistent)
{
    auto cfg = harness::paperBaselineConfig();
    cfg.setValue(space::Param::Depth, GetParam());
    const auto cc = CoreConfig::fromConfiguration(cfg);
    EXPECT_NEAR(cc.clockHz * cc.clockPeriodSec, 1.0, 1e-9);
    EXPECT_GE(cc.numStages, 5);
    EXPECT_GE(cc.frontendDelay, 2);
    EXPECT_LE(cc.frontendDelay, cc.numStages);
    EXPECT_GE(cc.icacheLatency, 1);
    EXPECT_GE(cc.l2Latency, cc.dcacheLatency);
    EXPECT_GE(cc.memLatency, 20);
}

INSTANTIATE_TEST_SUITE_P(TableOneDepths, DepthSweep,
                         ::testing::Values(9, 12, 15, 18, 21, 24, 27,
                                           30, 33, 36));
