/**
 * @file
 * General-purpose histogram used throughout the counter machinery.
 *
 * Two binnings are supported:
 *  - Linear:  bin i covers [lo + i*step, lo + (i+1)*step)
 *  - Log2:    bin 0 is value 0, bin i>0 covers [2^(i-1), 2^i)
 * The last bin is an overflow bin capturing everything beyond the range.
 */

#ifndef ADAPTSIM_COMMON_HISTOGRAM_HH
#define ADAPTSIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace adaptsim
{

/** Histogram over non-negative integer samples with weighted counts. */
class Histogram
{
  public:
    enum class Binning { Linear, Log2 };

    Histogram() = default;

    /**
     * Construct a histogram.
     *
     * @param binning linear or log2 bucketing.
     * @param num_bins number of bins including the overflow bin.
     * @param lo lowest representable value (linear only).
     * @param step bin width (linear only).
     */
    Histogram(Binning binning, std::size_t num_bins,
              std::uint64_t lo = 0, std::uint64_t step = 1);

    /** Record @p value with weight @p weight (e.g. cycles). */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    /** Reset all counts, keeping geometry. */
    void clear();

    /** Number of bins (including overflow). */
    std::size_t numBins() const { return counts_.size(); }

    /** Raw count of bin @p i. */
    std::uint64_t count(std::size_t i) const { return counts_.at(i); }

    /** Total recorded weight. */
    std::uint64_t totalWeight() const { return totalWeight_; }

    /** Number of add() calls' weight-less count. */
    std::uint64_t numSamples() const { return numSamples_; }

    /** Bin index a given value falls into. */
    std::size_t binIndex(std::uint64_t value) const;

    /** Lower edge of bin @p i (inclusive). */
    std::uint64_t binLowerEdge(std::size_t i) const;

    /** Counts normalised to fractions of total weight (0s if empty). */
    std::vector<double> normalised() const;

    /** Weighted mean of recorded values (bin lower edges for log2). */
    double mean() const;

    /**
     * Smallest value v such that at least @p fraction of the recorded
     * weight lies at or below v's bin.  fraction in [0, 1].
     */
    std::uint64_t quantile(double fraction) const;

    /** Index of the most populated bin (first on ties). */
    std::size_t modeBin() const;

    /** Render as "lo:count lo:count ..." for debugging. */
    std::string toString() const;

    Binning binning() const { return binning_; }
    std::uint64_t lo() const { return lo_; }
    std::uint64_t step() const { return step_; }

  private:
    Binning binning_ = Binning::Linear;
    std::uint64_t lo_ = 0;
    std::uint64_t step_ = 1;
    std::vector<std::uint64_t> counts_;
    std::uint64_t totalWeight_ = 0;
    std::uint64_t numSamples_ = 0;
    double weightedValueSum_ = 0.0;
};

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_HISTOGRAM_HH
