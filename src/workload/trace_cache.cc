#include "workload/trace_cache.hh"

#include <sstream>

namespace adaptsim::workload
{

TraceCache::TraceCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

TracePtr
TraceCache::get(const Workload &wl, std::uint64_t start,
                std::uint64_t count)
{
    std::ostringstream key_os;
    key_os << wl.name() << ':' << start << ':' << count;
    const std::string key = key_os.str();

    auto it = map_.find(key);
    if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->trace;
    }

    ++misses_;
    auto trace = std::make_shared<const std::vector<isa::MicroOp>>(
        wl.generate(start, count));
    lru_.push_front(Entry{key, trace});
    map_[key] = lru_.begin();

    while (map_.size() > capacity_) {
        map_.erase(lru_.back().key);
        lru_.pop_back();
    }
    return trace;
}

} // namespace adaptsim::workload
