# Empty dependencies file for test_online_detector.
# This may be replaced when dependencies are built.
