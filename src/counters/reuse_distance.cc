#include "counters/reuse_distance.hh"

#include "common/logging.hh"

namespace adaptsim::counters
{

ReuseDistanceMonitor::ReuseDistanceMonitor()
    : hist_(Histogram::Binning::Log2, reuseBins)
{
}

void
ReuseDistanceMonitor::access(std::uint64_t key)
{
    accessAt(key, accessCount_ + 1);
}

void
ReuseDistanceMonitor::accessAt(std::uint64_t key,
                               std::uint64_t position)
{
    ++accessCount_;
    auto [it, inserted] = lastAccess_.try_emplace(key, position);
    if (!inserted) {
        hist_.add(position - it->second);
        it->second = position;
        ++reuses_;
    }
}

double
ReuseDistanceMonitor::reuseFraction() const
{
    if (accessCount_ == 0)
        return 0.0;
    return static_cast<double>(reuses_) /
           static_cast<double>(accessCount_);
}

void
ReuseDistanceMonitor::clear()
{
    hist_.clear();
    lastAccess_.clear();
    accessCount_ = 0;
    reuses_ = 0;
}

SetReuseMonitor::SetReuseMonitor(std::uint64_t num_sets,
                                 int line_bytes)
    : numSets_(num_sets), lineBytes_(line_bytes)
{
    if (num_sets == 0 || (num_sets & (num_sets - 1)) != 0)
        fatal("SetReuseMonitor needs a power-of-two set count");
}

void
SetReuseMonitor::access(Addr addr)
{
    monitor_.access((addr / lineBytes_) & (numSets_ - 1));
}

void
SetReuseMonitor::accessAt(Addr addr, std::uint64_t position)
{
    monitor_.accessAt((addr / lineBytes_) & (numSets_ - 1),
                      position);
}

} // namespace adaptsim::counters
