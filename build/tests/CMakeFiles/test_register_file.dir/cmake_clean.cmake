file(REMOVE_RECURSE
  "CMakeFiles/test_register_file.dir/test_register_file.cc.o"
  "CMakeFiles/test_register_file.dir/test_register_file.cc.o.d"
  "test_register_file"
  "test_register_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
