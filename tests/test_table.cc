/**
 * @file
 * Tests of the ASCII table renderer and CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/table.hh"

using adaptsim::TextTable;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned)
{
    TextTable t;
    t.setHeader({"col"});
    t.addRow({"123"});
    t.addRow({"longtext"});
    const std::string out = t.render();
    // "123" padded to width 8 → five leading spaces.
    EXPECT_NE(out.find("     123"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.234567, 2), "1.23");
    EXPECT_EQ(TextTable::num(std::uint64_t(42)), "42");
    EXPECT_EQ(TextTable::sci(12345.0, 2), "1.23e+04");
}

TEST(TextTable, RaggedRowsHandled)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only-one"});
    EXPECT_NO_THROW({ auto s = t.render(); (void)s; });
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Csv, WritesFile)
{
    const std::string path = "/tmp/adaptsim_test_table.csv";
    adaptsim::writeCsv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "x,y");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1,2");
    std::filesystem::remove(path);
}
