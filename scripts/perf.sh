#!/usr/bin/env bash
# Reproducible perf-benchmark driver.
#
# Builds the bench/perf micro-benchmarks in Release mode and runs
# each one (its own warmup + repetition + median/min logic lives in
# bench/perf/perf_harness.hh), assembling the per-benchmark JSON
# lines into a machine-readable BENCH_perf.json in the repo root.
#
#   scripts/perf.sh               full run (7 reps, 2 warmup each)
#   scripts/perf.sh --smoke       quick advisory run for CI
#   scripts/perf.sh --reps 15     more repetitions for quieter medians
#
# Extra arguments are forwarded verbatim to every benchmark binary.
# The output file is overwritten on each run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${BENCH_OUT:-BENCH_perf.json}"
BENCHES=(perf_pipeline perf_interval perf_tracegen perf_gather
         perf_train)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}"

{
    echo '{'
    echo '  "benchmarks": ['
    first=1
    for bench in "${BENCHES[@]}"; do
        out="$("$BUILD_DIR/bench/perf/$bench" "$@")"
        [ -n "$out" ] || { echo "perf: $bench emitted nothing" >&2;
                           exit 1; }
        # A binary may emit several measurements (perf_interval
        # reports the interval backend and its cycle-level
        # reference), one JSON object per line.
        while IFS= read -r line; do
            [ -n "$line" ] || continue
            if [ "$first" -eq 1 ]; then first=0; else echo ','; fi
            printf '    %s' "$line"
        done <<< "$out"
    done
    echo
    echo '  ]'
    echo '}'
} > "$OUT"

# Fail loudly on malformed output rather than shipping a bad artifact.
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$OUT" > /dev/null
fi

echo "perf: wrote $OUT"
