#include "ml/cross_validation.hh"

#include <set>
#include <string>

namespace adaptsim::ml
{

std::vector<CvPrediction>
leaveOneProgramOut(const std::vector<PhaseData> &phases,
                   const TrainerOptions &options)
{
    std::set<std::string> programs;
    for (const auto &ph : phases)
        programs.insert(ph.workload);

    std::vector<CvPrediction> out(phases.size());
    for (const std::string &held_out : programs) {
        std::vector<PhaseData> train;
        train.reserve(phases.size());
        for (const auto &ph : phases) {
            if (ph.workload != held_out)
                train.push_back(ph);
        }
        const AdaptivityModel model = trainModel(train, options);
        for (std::size_t i = 0; i < phases.size(); ++i) {
            if (phases[i].workload != held_out)
                continue;
            out[i].phaseIdx = i;
            out[i].predicted = model.predict(phases[i].features);
        }
    }
    return out;
}

} // namespace adaptsim::ml
