/**
 * @file
 * Tests of EventCounts accounting, merge arithmetic and the
 * cross-event invariants a correct simulation must satisfy.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;

TEST(EventCounts, MergeAddsEveryField)
{
    EventCounts a, b;
    a.cycles = 10;
    a.committedOps = 5;
    a.dcMisses = 2;
    a.stallHeadLoad = 7;
    a.occIqSum = 100;
    b.cycles = 3;
    b.committedOps = 1;
    b.dcMisses = 1;
    b.stallHeadLoad = 2;
    b.occIqSum = 11;
    a.merge(b);
    EXPECT_EQ(a.cycles, 13u);
    EXPECT_EQ(a.committedOps, 6u);
    EXPECT_EQ(a.dcMisses, 3u);
    EXPECT_EQ(a.stallHeadLoad, 9u);
    EXPECT_EQ(a.occIqSum, 111u);
}

TEST(EventCounts, IpcDerivation)
{
    EventCounts e;
    EXPECT_EQ(e.ipc(), 0.0);
    e.cycles = 100;
    e.committedOps = 250;
    EXPECT_NEAR(e.ipc(), 2.5, 1e-12);
}

namespace
{

EventCounts
runBench(const std::string &bench)
{
    const auto wl = workload::specBenchmark(bench, 100000);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    Core core(cc, wp);
    core.warm(wl.generate(28000, 12000));
    return core.run(wl.generate(40000, 4000)).events;
}

} // namespace

TEST(EventInvariants, HoldAcrossWorkloads)
{
    for (const char *bench : {"gzip", "mcf", "swim", "parser",
                              "eon", "gcc"}) {
        const auto e = runBench(bench);
        SCOPED_TRACE(bench);

        // Progress.
        EXPECT_EQ(e.committedOps, 4000u);
        EXPECT_EQ(e.fetchedOps, 4000u + e.wrongPathOps);
        EXPECT_LE(e.squashedOps, e.wrongPathOps);

        // Cache hierarchy: L2 traffic comes only from L1 misses;
        // memory traffic only from L2 misses.
        EXPECT_LE(e.l2Accesses, e.icMisses + e.dcMisses +
                                    e.dcWritebacks);
        EXPECT_EQ(e.memAccesses, e.l2Misses);
        EXPECT_LE(e.dcMisses, e.dcAccesses);
        EXPECT_LE(e.icMisses, e.icAccesses);

        // Branch prediction: mispredicts are committed conditional
        // branches; BTB lookups happen per predictor lookup.
        EXPECT_LE(e.mispredicts, e.condBranches);
        EXPECT_LE(e.btbHits, e.btbLookups);
        EXPECT_EQ(e.btbLookups, e.bpredLookups);
        EXPECT_LE(e.bpredUpdates, e.bpredLookups);

        // Queues: everything issued entered the IQ; nothing issues
        // twice.
        EXPECT_LE(e.iqIssues, e.iqWrites);
        EXPECT_EQ(e.iqWrites, e.iqIssues + e.iqSquashed);
        // Every issued memory op was inserted into the LSQ, and an
        // insert ends either in an issue or a squash (an op that
        // issued and was then squashed counts in both).
        EXPECT_LE(e.memPortOps, e.lsqInserts);
        EXPECT_LE(e.lsqInserts, e.memPortOps + e.lsqSquashed);
        EXPECT_LE(e.lsqSquashed, e.lsqInserts);

        // Commit-stall attribution never exceeds total cycles.
        EXPECT_LE(e.stallHeadLoad + e.stallHeadStore +
                      e.stallHeadFp + e.stallHeadDiv +
                      e.stallHeadOther,
                  e.cycles);

        // Occupancy integrals bounded by capacity × time.
        EXPECT_LE(e.occRobSum, e.cycles * 144);
        EXPECT_LE(e.occIqSum, e.cycles * 48);
        EXPECT_LE(e.occLsqSum, e.cycles * 32);
    }
}

TEST(EventInvariants, RfWritesMatchDestinations)
{
    const auto e = runBench("gap");
    // Every issued op with a destination writes the RF exactly once;
    // reads never exceed two per issue.
    EXPECT_LE(e.rfWrites, e.iqIssues);
    EXPECT_LE(e.rfReads, 2 * e.iqIssues);
}
