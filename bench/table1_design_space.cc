/**
 * @file
 * Table I: the microarchitectural design space — every parameter, its
 * range, and the total number of design points (~627 billion).
 */

#include <cstdio>

#include "common/table.hh"
#include "space/design_space.hh"

using namespace adaptsim;

int
main()
{
    const auto &ds = space::DesignSpace::the();

    TextTable table;
    table.setHeader({"Parameter", "Values", "Num"});
    for (auto p : space::allParams()) {
        const auto &vals = ds.values(p);
        std::string range;
        if (vals.size() <= 4) {
            for (std::size_t i = 0; i < vals.size(); ++i) {
                if (i)
                    range += ", ";
                range += std::to_string(vals[i]);
            }
        } else {
            bool geometric = true;
            for (std::size_t i = 1; i < vals.size(); ++i)
                geometric = geometric && vals[i] == vals[i - 1] * 2;
            range = std::to_string(vals.front()) + " -> " +
                    std::to_string(vals.back()) +
                    (geometric ? " :2*" :
                         " :" + std::to_string(vals[1] - vals[0]) +
                             "+");
        }
        table.addRow({ds.name(p), range,
                      std::to_string(vals.size())});
    }

    std::printf("Table I: microarchitectural design parameters\n\n%s\n",
                table.render().c_str());
    std::printf("Total design points: %.0f (paper: 627bn)\n",
                ds.totalPoints());
    std::printf("Sum of per-parameter value counts: %zu\n",
                ds.totalValueCount());
    return 0;
}
