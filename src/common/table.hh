/**
 * @file
 * Plain-text table rendering for bench/example output.
 */

#ifndef ADAPTSIM_COMMON_TABLE_HH
#define ADAPTSIM_COMMON_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace adaptsim
{

/**
 * A simple column-aligned ASCII table.  Numeric-looking cells are
 * right-aligned, text cells left-aligned.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may have fewer cells than the header). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t value);

    /** Convenience: scientific notation for wide-range values. */
    static std::string sci(double value, int precision = 2);

    /** Render the full table, with separator under the header. */
    std::string render() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Write a CSV file (throws via fatal() on I/O failure). */
void writeCsv(const std::string &path,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows);

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_TABLE_HH
