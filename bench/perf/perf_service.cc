/**
 * @file
 * Multi-client evaluation-service load generator.
 *
 * Three measurements around one fixed evaluation workload (a config
 * pool swept over a small phase set):
 *
 *   perf_service_local   cold in-process EvalRepository baseline —
 *                        the path a gather takes with no daemon.
 *   perf_service_cold    cold daemon: per rep a fresh store + server
 *                        come up and N concurrent clients pipeline
 *                        disjoint slices of the pool, so the server's
 *                        batch coalescing merges their requests.
 *   perf_service_warm    warm daemon: the store already holds every
 *                        record; N clients re-query the whole pool
 *                        and the replies' cache-hit tags are counted.
 *
 * A final perf_service_stats line records the client count and the
 * warm-run hit rate.  The cold/local ratio is the protocol + daemon
 * overhead on top of the identical simulation work.
 */

#include "perf_harness.hh"

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "harness/repository.hh"
#include "space/sampling.hh"
#include "svc/client.hh"
#include "svc/server.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

constexpr std::uint64_t kProgramLength = 400000;

/** The phase windows every measurement evaluates (perf_gather's
 *  shape: warm 12k + detail 6k µops on gcc/crafty). */
std::vector<harness::PhaseSpec>
phaseSet(bool smoke)
{
    std::vector<harness::PhaseSpec> specs;
    const std::size_t per_program = smoke ? 1 : 2;
    for (const char *prog : {"gcc", "crafty"})
        for (std::size_t i = 0; i < per_program; ++i)
            specs.push_back({prog, kProgramLength,
                             40000 + i * 60000, 12000, 6000});
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);

    const std::size_t clients = opt.smoke ? 2 : 4;
    const std::size_t pool_size = opt.smoke ? 8 : 16;
    const unsigned threads = 2;

    const auto specs = phaseSet(opt.smoke);
    Rng rng(2010);
    const auto pool =
        space::dedupe(space::uniformRandomSet(rng, pool_size));

    const auto tmp = std::filesystem::temp_directory_path();
    const auto local_dir = tmp / "adaptsim_perf_service_local";
    const auto daemon_dir = tmp / "adaptsim_perf_service_daemon";
    const std::string socket =
        (tmp / "adaptsim_perf_service.sock").string();

    std::atomic<std::uint64_t> replies{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> failures{0};

    /** One client thread: pipeline @p mine over every spec. */
    const auto clientRun =
        [&](const std::vector<space::Configuration> &mine) {
            auto client = svc::EvalClient::connect(socket);
            if (!client) {
                failures += mine.size() * specs.size();
                return;
            }
            for (const auto &spec : specs) {
                std::vector<std::uint64_t> ids;
                ids.reserve(mine.size());
                for (const auto &cfg : mine)
                    ids.push_back(client->submit(spec, cfg));
                for (const auto id : ids) {
                    const auto r = client->wait(id);
                    if (!r.ok) {
                        ++failures;
                        continue;
                    }
                    ++replies;
                    if (r.cacheHit)
                        ++hits;
                }
            }
        };

    /** Fan @p slices out over concurrent client threads. */
    const auto runClients =
        [&](const std::vector<std::vector<space::Configuration>>
                &slices) {
            std::vector<std::thread> workers;
            workers.reserve(slices.size());
            for (const auto &slice : slices)
                workers.emplace_back(clientRun, std::cref(slice));
            for (auto &w : workers)
                w.join();
        };

    // Disjoint slices (round-robin) for the cold run: together the
    // clients cover the pool exactly once per spec.
    std::vector<std::vector<space::Configuration>> disjoint(clients);
    for (std::size_t i = 0; i < pool.size(); ++i)
        disjoint[i % clients].push_back(pool[i]);

    svc::ServerOptions sopt;
    sopt.socketPath = socket;
    sopt.maxQueue = 0;   // measure throughput, not shedding
    sopt.quiet = true;   // stdout carries only the JSON lines

    // ---- in-process baseline: same work, no daemon in the path.
    double items = 0.0;
    const auto local_secs = perf::runTimed(opt, items, [&]() {
        std::filesystem::remove_all(local_dir);
        harness::EvalRepository repo(
            workload::specSuite(kProgramLength), local_dir.string(),
            threads);
        double evals = 0.0;
        for (const auto &spec : specs)
            evals += static_cast<double>(
                repo.evaluateBatch(spec, pool).size());
        return evals;
    });
    std::filesystem::remove_all(local_dir);
    perf::emitJson("perf_service_local", opt, local_secs, items,
                   "evals");

    // ---- cold daemon: fresh store + server per rep, concurrent
    //      clients pipelining disjoint slices.
    const auto cold_secs = perf::runTimed(opt, items, [&]() {
        std::filesystem::remove_all(daemon_dir);
        harness::EvalRepository repo(
            workload::specSuite(kProgramLength), daemon_dir.string(),
            threads);
        svc::EvalServer server(repo, sopt);
        if (!server.start())
            fatal("perf_service: cannot serve on ", socket);
        replies = 0;
        runClients(disjoint);
        server.stop();
        return static_cast<double>(replies.load());
    });
    perf::emitJson("perf_service_cold", opt, cold_secs, items,
                   "evals");

    // ---- warm daemon: one long-lived store already holding every
    //      record; every client re-queries the whole pool.
    std::filesystem::remove_all(daemon_dir);
    std::vector<double> warm_secs;
    double hit_rate = 0.0;
    {
        harness::EvalRepository repo(
            workload::specSuite(kProgramLength), daemon_dir.string(),
            threads);
        for (const auto &spec : specs)
            (void)repo.evaluateBatch(spec, pool);   // prime the store
        svc::EvalServer server(repo, sopt);
        if (!server.start())
            fatal("perf_service: cannot serve on ", socket);

        const std::vector<std::vector<space::Configuration>> whole(
            clients, pool);
        warm_secs = perf::runTimed(opt, items, [&]() {
            replies = 0;
            hits = 0;
            runClients(whole);
            const auto total = replies.load();
            hit_rate = total
                           ? static_cast<double>(hits.load()) /
                                 static_cast<double>(total)
                           : 0.0;
            return static_cast<double>(total);
        });
        server.stop();
    }
    std::filesystem::remove_all(daemon_dir);
    perf::emitJson("perf_service_warm", opt, warm_secs, items,
                   "evals");

    if (failures.load() > 0)
        warn("perf_service: ", failures.load(),
             " requests failed (results unreliable)");
    std::printf("{\"name\":\"perf_service_stats\",\"clients\":%zu,"
                "\"warm_hit_rate\":%.4f}\n",
                clients, hit_rate);
    return 0;
}
