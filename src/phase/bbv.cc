#include "phase/bbv.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::phase
{

Bbv::Bbv()
    : values_(dimension, 0.0)
{
}

std::size_t
Bbv::project(std::uint32_t bb_id)
{
    // SplitMix-style hash keeps the projection deterministic and
    // spreads block ids uniformly over the dimensions.
    std::uint64_t z = bb_id + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) % dimension);
}

void
Bbv::addOp(const isa::MicroOp &op)
{
    values_[project(op.bbId)] += 1.0;
    ++ops_;
}

Bbv
Bbv::ofTrace(std::span<const isa::MicroOp> trace)
{
    Bbv bbv;
    for (const auto &op : trace)
        bbv.addOp(op);
    bbv.normalise();
    return bbv;
}

Bbv
Bbv::fromValues(const std::vector<double> &values, std::uint64_t ops)
{
    Bbv bbv;
    const std::size_t n = std::min(values.size(), dimension);
    for (std::size_t i = 0; i < n; ++i)
        bbv.values_[i] = values[i];
    bbv.ops_ = ops;
    return bbv;
}

void
Bbv::normalise()
{
    double total = 0.0;
    for (double v : values_)
        total += v;
    if (total <= 0.0)
        return;
    for (double &v : values_)
        v /= total;
}

double
Bbv::manhattan(const Bbv &other) const
{
    double d = 0.0;
    for (std::size_t i = 0; i < dimension; ++i)
        d += std::abs(values_[i] - other.values_[i]);
    return d;
}

} // namespace adaptsim::phase
