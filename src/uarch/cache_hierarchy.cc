#include "uarch/cache_hierarchy.hh"

#include "power/frequency.hh"

namespace adaptsim::uarch
{

CacheHierarchy::CacheHierarchy(const CoreConfig &cfg, SharedLlc *llc,
                               unsigned core_id)
    : cfg_(cfg),
      icache_(cfg.icacheBytes, CoreConfig::l1Assoc,
              CoreConfig::cacheLineBytes),
      dcache_(cfg.dcacheBytes, CoreConfig::l1Assoc,
              CoreConfig::cacheLineBytes),
      l2_(cfg.l2Bytes, CoreConfig::l2Assoc,
          CoreConfig::cacheLineBytes),
      llc_(llc), coreId_(core_id)
{
    // Period ∝ depth + latch overhead (power/frequency.cc), so these
    // integer unit counts give the exact clock-ratio rational.
    const auto overhead =
        static_cast<std::uint64_t>(power::latchOverheadFo4);
    corePeriodUnits_ = std::uint64_t(cfg.depthFo4) + overhead;
    llcPeriodUnits_ =
        std::uint64_t(LlcConfig::referenceDepthFo4) + overhead;
}

int
CacheHierarchy::beyondL2(Addr addr, bool write, EventCounts &ev,
                         Cycles now)
{
    if (!llc_) {
        ++ev.memAccesses;
        return cfg_.memLatency;
    }
    ++ev.llcAccesses;
    const auto out = llc_->access(physical(addr), write, coreId_,
                                  toLlcTicks(timeBase_ + now));
    ev.llcQueueCycles +=
        std::uint64_t(toCoreCycles(out.queueCycles));
    if (!out.hit) {
        ++ev.llcMisses;
        ++ev.memAccesses;
    }
    return toCoreCycles(out.latency);
}

int
CacheHierarchy::fetchAccess(Addr pc, EventCounts &ev, SimObserver *obs,
                            Cycles now)
{
    ++ev.icAccesses;
    if (obs)
        obs->onICacheAccess(pc);
    const auto l1 = icache_.access(pc, false);
    if (l1.hit)
        return cfg_.icacheLatency;

    ++ev.icMisses;
    ++ev.l2Accesses;
    if (obs)
        obs->onL2Access(pc);
    const auto l2 = l2_.access(pc, false);
    if (l2.hit)
        return cfg_.icacheLatency + cfg_.l2Latency;

    ++ev.l2Misses;
    return cfg_.icacheLatency + cfg_.l2Latency +
           beyondL2(pc, false, ev, now);
}

int
CacheHierarchy::dataAccess(Addr addr, bool write, EventCounts &ev,
                           SimObserver *obs, Cycles now)
{
    ++ev.dcAccesses;
    if (obs)
        obs->onDCacheAccess(addr, write);
    const auto l1 = dcache_.access(addr, write);
    if (l1.hit)
        return cfg_.dcacheLatency;

    ++ev.dcMisses;
    if (l1.writeback)
        ++ev.dcWritebacks;
    ++ev.l2Accesses;
    if (obs)
        obs->onL2Access(addr);
    const auto l2 = l2_.access(addr, l1.writeback);
    if (l2.hit)
        return cfg_.dcacheLatency + cfg_.l2Latency;

    ++ev.l2Misses;
    return cfg_.dcacheLatency + cfg_.l2Latency +
           beyondL2(addr, l1.writeback, ev, now);
}

void
CacheHierarchy::warmFetch(Addr pc)
{
    if (!icache_.access(pc, false).hit &&
        !l2_.access(pc, false).hit && llc_)
        llc_->warmAccess(physical(pc), false, coreId_);
}

void
CacheHierarchy::warmData(Addr addr, bool write)
{
    const auto l1 = dcache_.access(addr, write);
    if (!l1.hit && !l2_.access(addr, l1.writeback).hit && llc_)
        llc_->warmAccess(physical(addr), l1.writeback, coreId_);
}

} // namespace adaptsim::uarch
