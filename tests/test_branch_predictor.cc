/**
 * @file
 * Tests of the gshare + BTB branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "uarch/branch_predictor.hh"

using namespace adaptsim;
using adaptsim::uarch::BranchPredictor;

TEST(BranchPredictor, LearnsBiasedBranch)
{
    BranchPredictor bp(4096, 1024, 4);
    const Addr pc = 0x400010;
    // Train always-taken.
    for (int i = 0; i < 16; ++i)
        bp.warmAccess(pc, true);
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const auto pred = bp.predict(pc);
        correct += pred.taken;
        bp.update(pc, true, pred.history);
    }
    EXPECT_GT(correct, 95);
}

TEST(BranchPredictor, LearnsShortLoopPattern)
{
    BranchPredictor bp(16384, 1024, 4);
    const Addr pc = 0x400020;
    auto outcome = [](int i) { return i % 4 != 3; };   // TTTN
    for (int i = 0; i < 4000; ++i)
        bp.warmAccess(pc, outcome(i));
    int correct = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        const auto pred = bp.predict(pc);
        const bool actual = outcome(i);
        correct += pred.taken == actual;
        if (pred.taken != actual)
            bp.recover(pred.history, actual);
        bp.update(pc, actual, pred.history);
    }
    EXPECT_GT(correct, n * 9 / 10);
}

TEST(BranchPredictor, BtbHitsAfterTakenUpdate)
{
    BranchPredictor bp(1024, 1024, 4);
    const Addr pc = 0x400040;
    EXPECT_FALSE(bp.predict(pc).btbHit);
    bp.update(pc, true, 0);
    EXPECT_TRUE(bp.predict(pc).btbHit);
}

TEST(BranchPredictor, NotTakenBranchesDontAllocateBtb)
{
    BranchPredictor bp(1024, 1024, 4);
    const Addr pc = 0x400050;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, false, 0);
    EXPECT_FALSE(bp.predict(pc).btbHit);
}

TEST(BranchPredictor, BtbCapacityEviction)
{
    // 64-entry, 4-way BTB: 65 distinct taken branches in one set
    // region must cause evictions; far-apart PCs map to many sets so
    // fill the whole BTB.
    BranchPredictor bp(1024, 64, 4);
    for (Addr pc = 0x1000; pc < 0x1000 + 4 * 200; pc += 4)
        bp.update(pc, true, 0);
    // The oldest entries should be gone.
    int hits = 0;
    for (Addr pc = 0x1000; pc < 0x1000 + 4 * 16; pc += 4)
        hits += bp.predict(pc).btbHit;
    EXPECT_LT(hits, 16);
}

TEST(BranchPredictor, HistoryRecovery)
{
    BranchPredictor bp(4096, 1024, 4);
    // Make some predictions to move the speculative history.
    const auto p1 = bp.predict(0x100);
    (void)bp.predict(0x104);
    (void)bp.predict(0x108);
    // Squash back to the first branch, resolving it taken: history
    // must be the pre-branch history with exactly one appended bit
    // (10-bit history for a 4K-entry PHT).
    bp.recover(p1.history, true);
    EXPECT_EQ(bp.history(), ((p1.history << 1) | 1u) & 0x3ffu);
}

TEST(BranchPredictor, WarmMatchesPredictUpdateLoop)
{
    // warmAccess must leave the same PHT/BTB state as a correct
    // predict+update loop with no mispredict recovery.
    BranchPredictor warm(4096, 1024, 4);
    BranchPredictor loop(4096, 1024, 4);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const Addr pc = 0x2000 + 4 * rng.nextBounded(32);
        const bool taken = rng.nextBool(0.7);
        warm.warmAccess(pc, taken);
        const auto pred = loop.predict(pc);
        if (pred.taken != taken)
            loop.recover(pred.history, taken);
        loop.update(pc, taken, pred.history);
    }
    // Equal subsequent predictions on every trained pc.
    for (Addr pc = 0x2000; pc < 0x2000 + 4 * 32; pc += 4)
        EXPECT_EQ(warm.predict(pc).taken, loop.predict(pc).taken);
}

TEST(BranchPredictor, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT((BranchPredictor{1000, 1024, 4}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((BranchPredictor{1024, 96, 4}),
                ::testing::ExitedWithCode(1), "");
}

/** Property sweep: every legal gshare/BTB geometry constructs and
 *  predicts without faulting. */
class PredictorGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PredictorGeometry, ConstructsAndRuns)
{
    const auto [gshare, btb] = GetParam();
    BranchPredictor bp(gshare, btb, 4);
    for (int i = 0; i < 200; ++i) {
        const Addr pc = 0x1000 + 4 * (i % 37);
        const auto pred = bp.predict(pc);
        bp.update(pc, i % 3 != 0, pred.history);
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, PredictorGeometry,
    ::testing::Combine(::testing::Values(1024, 2048, 4096, 8192,
                                         16384, 32768),
                       ::testing::Values(1024, 2048, 4096)));
