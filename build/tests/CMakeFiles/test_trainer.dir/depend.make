# Empty dependencies file for test_trainer.
# This may be replaced when dependencies are built.
