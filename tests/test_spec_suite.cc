/**
 * @file
 * Tests of the 26-benchmark synthetic SPEC 2000 stand-in suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/spec_suite.hh"

using namespace adaptsim::workload;

TEST(SpecSuite, Has26UniqueBenchmarks)
{
    const auto &names = specNames();
    EXPECT_EQ(names.size(), 26u);
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end())
                  .size(),
              26u);
}

TEST(SpecSuite, BuildsEveryBenchmark)
{
    const auto suite = specSuite(50000);
    ASSERT_EQ(suite.size(), 26u);
    for (const auto &wl : suite) {
        EXPECT_GE(wl.totalInstructions(), 45000u) << wl.name();
        EXPECT_GE(wl.numSegments(), 2u) << wl.name();
    }
}

TEST(SpecSuite, ContainsTheExpectedClassics)
{
    for (const char *name : {"gzip", "gcc", "mcf", "crafty",
                             "parser", "eon", "vortex", "swim",
                             "mgrid", "applu", "art", "equake",
                             "lucas", "apsi"}) {
        EXPECT_NO_FATAL_FAILURE({
            const auto wl = specBenchmark(name, 20000);
            EXPECT_EQ(wl.name(), name);
        });
    }
}

TEST(SpecSuite, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)specBenchmark("spectral2029", 10000),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(SpecSuite, DeterministicAcrossBuilds)
{
    const auto a = specBenchmark("mcf", 100000);
    const auto b = specBenchmark("mcf", 100000);
    const auto ta = a.generate(5000, 100);
    const auto tb = b.generate(5000, 100);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(ta[i].pc, tb[i].pc);
        EXPECT_EQ(ta[i].effAddr, tb[i].effAddr);
    }
}

TEST(SpecSuite, BenchmarksDiffer)
{
    const auto a = specBenchmark("mcf", 100000);
    const auto b = specBenchmark("eon", 100000);
    const auto ta = a.generate(0, 200);
    const auto tb = b.generate(0, 200);
    int same = 0;
    for (std::size_t i = 0; i < 200; ++i)
        same += ta[i].pc == tb[i].pc;
    EXPECT_LT(same, 60);
}

TEST(SpecSuite, BehaviourClassesAreDistinct)
{
    // mcf must be far more memory-hungry than eon; parser far more
    // mis-speculation-prone (higher hard-branch share) than swim.
    const auto mcf = specBenchmark("mcf", 100000).averageParams();
    const auto eon = specBenchmark("eon", 100000).averageParams();
    EXPECT_GT(mcf.dataWorkingSet, 16u * eon.dataWorkingSet);
    EXPECT_GT(mcf.pointerChaseFrac, 0.3);

    const auto parser =
        specBenchmark("parser", 100000).averageParams();
    const auto swim = specBenchmark("swim", 100000).averageParams();
    EXPECT_GT(parser.hardBranchFrac, 3.0 * swim.hardBranchFrac);
    EXPECT_GT(swim.fracFpAlu + swim.fracFpMul, 0.3);
}
