file(REMOVE_RECURSE
  "CMakeFiles/test_gather.dir/test_gather.cc.o"
  "CMakeFiles/test_gather.dir/test_gather.cc.o.d"
  "test_gather"
  "test_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
