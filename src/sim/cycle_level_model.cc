#include "sim/cycle_level_model.hh"

#include "common/logging.hh"
#include "sim/chip_session.hh"
#include "uarch/chip.hh"

namespace adaptsim::sim
{

namespace
{

class CycleLevelSession final : public CoreSession
{
  public:
    CycleLevelSession(const uarch::CoreConfig &cfg,
                      workload::WrongPathGenerator &wrong_path)
        : core_(cfg, wrong_path)
    {
    }

    void warm(std::span<const isa::MicroOp> trace) override
    {
        core_.warm(trace);
    }

    uarch::SimResult run(std::span<const isa::MicroOp> trace,
                         uarch::SimObserver *observer) override
    {
        return core_.run(trace, observer);
    }

    const uarch::CoreConfig &config() const override
    {
        return core_.config();
    }

  private:
    uarch::Core core_;
};

/** The detailed multi-core session: uarch::Chip, unmediated. */
class CycleChipSession final : public ChipSession
{
  public:
    CycleChipSession(const uarch::ChipConfig &cfg,
                     const std::vector<workload::WrongPathGenerator *>
                         &wrong_paths)
        : chip_(cfg, wrong_paths)
    {
        interference_.assign(chip_.numCores(), CoreInterference{});
    }

    void
    warm(std::size_t core,
         std::span<const isa::MicroOp> trace) override
    {
        chip_.warm(core, trace);
    }

    uarch::ChipResult
    run(const std::vector<std::span<const isa::MicroOp>> &traces,
        const std::vector<uarch::SimObserver *> &observers) override
    {
        uarch::ChipResult res = chip_.run(traces, observers);
        for (std::size_t i = 0; i < chip_.numCores(); ++i) {
            CoreInterference &itf = interference_[i];
            itf.occupancyShare = res.occupancyShare[i];
            itf.sharedMissRatio = res.sharedMissRatio[i];
            const auto &ev = res.cores[i].events;
            itf.avgQueueCycles =
                ev.llcAccesses ? double(ev.llcQueueCycles) /
                                     double(ev.llcAccesses)
                               : 0.0;
        }
        return res;
    }

    void
    reconfigureCore(std::size_t core,
                    const space::Configuration &c) override
    {
        chip_.reconfigureCore(core, c);
    }

    const uarch::ChipConfig &config() const override
    {
        return chip_.config();
    }

    CoreInterference
    interference(std::size_t core) const override
    {
        if (core >= interference_.size())
            panic("CycleChipSession: core ", core, " on a ",
                  interference_.size(), "-core chip");
        return interference_[core];
    }

    power::Metrics
    metricsFor(std::size_t core,
               const uarch::SimResult &result) override
    {
        return power::computeMetrics(chip_.core(core).config(),
                                     result.events);
    }

  private:
    uarch::Chip chip_;
    std::vector<CoreInterference> interference_;
};

} // namespace

std::unique_ptr<CoreSession>
CycleLevelModel::makeSession(
    const uarch::CoreConfig &cfg,
    workload::WrongPathGenerator &wrong_path) const
{
    return std::make_unique<CycleLevelSession>(cfg, wrong_path);
}

std::unique_ptr<ChipSession>
CycleLevelModel::makeChipSession(
    const uarch::ChipConfig &cfg,
    const std::vector<workload::WrongPathGenerator *> &wrong_paths)
    const
{
    return std::make_unique<CycleChipSession>(cfg, wrong_paths);
}

} // namespace adaptsim::sim
