#include "uarch/register_file.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::uarch
{

RegisterFile::RegisterFile(int phys_regs)
    : physRegs_(phys_regs),
      renameRegs_(std::max(phys_regs - isa::numArchRegs, 1))
{
}

void
RegisterFile::allocate()
{
    if (!canAllocate())
        panic("RegisterFile::allocate with no free registers");
    ++inFlight_;
}

void
RegisterFile::release()
{
    if (inFlight_ <= 0)
        panic("RegisterFile::release with nothing in flight");
    --inFlight_;
}

void
RegisterFile::squash(int count)
{
    if (count > inFlight_)
        panic("RegisterFile::squash beyond in-flight count");
    inFlight_ -= count;
}

} // namespace adaptsim::uarch
