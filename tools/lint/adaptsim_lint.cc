/**
 * @file
 * adaptsim-lint CLI: walk the source tree and report every project-
 * invariant violation.
 *
 *     adaptsim_lint [--root DIR] [--format=plain|github]
 *                   [--list-rules] [SUBDIR...]
 *
 * DIR defaults to the current directory; SUBDIRs default to
 * `src bench tests examples`.  --format=github renders violations as
 * GitHub Actions `::error` workflow commands so CI annotates the
 * offending lines in pull-request diffs; --list-rules prints the
 * rule catalogue and exits.  Unreadable files are reported but do
 * not stop the scan.  Exit status: 0 clean, 1 violations found,
 * 2 usage or I/O error (I/O takes precedence over violations).
 * Registered as the ctest test `lint`.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint_engine.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "plain";
    std::vector<std::string> subdirs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "adaptsim_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(std::string("--format=").size());
            if (format != "plain" && format != "github") {
                std::fprintf(
                    stderr,
                    "adaptsim_lint: unknown format %s "
                    "(expected plain or github)\n",
                    format.c_str());
                return 2;
            }
        } else if (arg == "--list-rules") {
            for (const auto &r : adaptsim::lint::ruleCatalogue())
                std::printf("%-24s %s\n", r.name.c_str(),
                            r.description.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: adaptsim_lint [--root DIR] "
                        "[--format=plain|github] [--list-rules] "
                        "[SUBDIR...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "adaptsim_lint: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            subdirs.push_back(arg);
        }
    }
    if (subdirs.empty())
        subdirs = {"src", "bench", "tests", "examples"};

    adaptsim::lint::TreeResult res;
    try {
        res = adaptsim::lint::lintTree(root, subdirs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "adaptsim_lint: %s\n", e.what());
        return 2;
    }
    for (const auto &d : res.diagnostics) {
        const std::string line =
            format == "github" ? adaptsim::lint::renderGithub(d)
                               : adaptsim::lint::render(d);
        std::printf("%s\n", line.c_str());
    }
    for (const auto &err : res.errors)
        std::fprintf(stderr, "adaptsim_lint: %s\n", err.c_str());
    std::printf("adaptsim_lint: %zu violation(s) in %zu file(s) "
                "scanned, %zu read error(s)\n",
                res.diagnostics.size(), res.filesScanned,
                res.errors.size());
    if (!res.errors.empty())
        return 2;
    return res.diagnostics.empty() ? 0 : 1;
}
