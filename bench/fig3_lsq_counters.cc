/**
 * @file
 * Fig. 3: load/store queue counters for phases of mgrid, swim,
 * parser and vortex, and the efficiency achieved when the LSQ size is
 * swept on each phase's best configuration.  Demonstrates the
 * temporal-histogram + speculation counters: for mgrid/swim the best
 * LSQ size tracks observed usage; for parser/vortex mis-speculation
 * makes the usage histogram misleading and the model must learn the
 * correction.
 */

#include <cstdio>
#include <vector>

#include "common/ascii_plot.hh"
#include "common/table.hh"
#include "counters/counter_bank.hh"
#include "harness/experiment.hh"
#include "space/sampling.hh"
#include "uarch/core.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    auto &repo = exp.repository();

    for (const char *program : {"mgrid", "swim", "parser",
                                "vortex"}) {
        // Pick the program's highest-weight phase.
        const auto &idxs = exp.phasesByProgram().at(program);
        std::size_t pick = idxs.front();
        for (std::size_t i : idxs) {
            if (exp.phases()[i].phase.weight >
                exp.phases()[pick].phase.weight) {
                pick = i;
            }
        }
        const auto &phase = exp.phases()[pick];

        // Efficiency when sweeping the LSQ on the phase's best
        // sampled configuration.
        const auto centre =
            harness::bestDynamic(phase).config;
        const auto sweep =
            space::parameterSweep(centre, space::Param::LsqSize);
        const auto evals = repo.evaluateBatch(phase.spec, sweep);
        double best_eff = 0.0;
        for (const auto &e : evals)
            best_eff = std::max(best_eff, e.efficiency);

        std::vector<BarDatum> eff_bars;
        std::uint64_t best_size = 0;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const auto size =
                sweep[i].value(space::Param::LsqSize);
            eff_bars.push_back(
                {std::to_string(size),
                 evals[i].efficiency / best_eff});
            if (evals[i].efficiency >= best_eff)
                best_size = size;
        }

        // Profiling-configuration counters for the phase.
        const auto &wl = repo.workload(program);
        workload::WrongPathGenerator wp(
            wl.averageParams(), wl.seed() ^ 0x57a71cULL);
        const auto cc = uarch::CoreConfig::fromConfiguration(
            space::Configuration::profiling());
        uarch::Core core(cc, wp);
        core.warm(wl.generate(
            phase.spec.startInst >= phase.spec.warmLength ?
                phase.spec.startInst - phase.spec.warmLength : 0,
            phase.spec.warmLength));
        counters::CounterBank bank(cc);
        const auto result = core.run(
            wl.generate(phase.spec.startInst,
                        phase.spec.detailLength),
            &bank);
        bank.finalise(result.events);

        std::vector<BarDatum> usage_bars;
        const auto &lsq = bank.lsqUsage();
        const auto fracs = lsq.normalised();
        for (std::size_t b = 0; b < lsq.numBins(); ++b) {
            usage_bars.push_back(
                {std::to_string(lsq.binValue(b)), fracs[b]});
        }

        std::printf("=== %s / phase %zu ===\n", program,
                    phase.phase.index);
        std::printf("%s\n",
                    barChart("relative efficiency vs LSQ size "
                             "(best size = " +
                                 std::to_string(best_size) + ")",
                             eff_bars, 40)
                        .c_str());
        std::printf("%s\n",
                    barChart("LSQ usage histogram (fraction of "
                             "cycles at occupancy)",
                             usage_bars, 40)
                        .c_str());
        std::printf("speculative ops in LSQ: %.0f%%   "
                    "mis-speculated: %.0f%%\n\n",
                    bank.lsqSpecFrac() * 100,
                    bank.lsqMisSpecFrac() * 100);
    }
    repo.flush();
    std::printf("cache: %s\n", repo.statsSummary().c_str());
    std::printf("Paper: best sizes mgrid 32, swim 72, parser 16, "
                "vortex 16; parser/vortex show heavy "
                "mis-speculation that makes raw usage misleading.\n");
    return 0;
}
