file(REMOVE_RECURSE
  "CMakeFiles/test_configuration.dir/test_configuration.cc.o"
  "CMakeFiles/test_configuration.dir/test_configuration.cc.o.d"
  "test_configuration"
  "test_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
