file(REMOVE_RECURSE
  "CMakeFiles/test_reconfig_cost.dir/test_reconfig_cost.cc.o"
  "CMakeFiles/test_reconfig_cost.dir/test_reconfig_cost.cc.o.d"
  "test_reconfig_cost"
  "test_reconfig_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconfig_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
