#include "ml/matrix.hh"

namespace adaptsim::ml
{

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

double
Matrix::squaredNorm() const
{
    double total = 0.0;
    for (double v : data_)
        total += v * v;
    return total;
}

void
Matrix::transposeMultiply(const double *x, double *y) const
{
    for (std::size_t k = 0; k < cols_; ++k)
        y[k] = 0.0;
    for (std::size_t d = 0; d < rows_; ++d) {
        const double xd = x[d];
        if (xd == 0.0)
            continue;
        const double *row = &data_[d * cols_];
        for (std::size_t k = 0; k < cols_; ++k)
            y[k] += xd * row[k];
    }
}

} // namespace adaptsim::ml
