#include "uarch/pipeline.hh"

#include <algorithm>
#include <cstdio>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace adaptsim::uarch
{

using isa::MicroOp;
using isa::OpClass;
using isa::noReg;

Pipeline::Pipeline(const CoreConfig &cfg, CacheHierarchy &caches,
                   BranchPredictor &bpred,
                   workload::WrongPathGenerator &wrong_path,
                   SimObserver *observer)
    : cfg_(cfg), caches_(caches), bpred_(bpred),
      wrongPathGen_(wrong_path), observer_(observer),
      rob_(cfg.robSize), iq_(cfg.iqSize), lsq_(cfg.lsqSize),
      rfInt_(cfg.rfSize), rfFp_(cfg.rfSize), fus_(cfg),
      wbStamp_(wbRingSize, ~Cycles(0)),
      wbCount_(wbRingSize, 0),
      wbPorts_(static_cast<std::uint16_t>(cfg.rfWrPorts))
{
    frontQCapacity_ = static_cast<std::size_t>(cfg.width) *
                      (cfg.frontendDelay + 1);
    issuedPositions_.reserve(static_cast<std::size_t>(cfg.width));
}

bool
Pipeline::producersReady(RobEntry &e) const
{
    // Memoised fast path: producers were walked before and cannot
    // be ready yet.  Safe because producers are strictly older than
    // their consumers (rename resolves to older slots only), so a
    // live consumer implies its producers were never squashed, and
    // doneCycle is fixed once an op issues.
    if (e.readyAt > now_)
        return false;

    Cycles bound = 0;
    const auto ready = [&](std::int32_t idx, std::uint32_t seq) {
        if (idx < 0 || !rob_.valid(idx, seq))
            return true;   // no producer, or producer committed
        const RobEntry &p = rob_.entry(idx);
        if (p.state == OpState::Done && p.doneCycle <= now_)
            return true;
        // Not ready: derive the earliest possible ready cycle.  A
        // dispatched producer has no completion time yet, so the
        // bound is just "recheck next cycle".
        const Cycles b = p.state == OpState::Dispatched ?
            now_ + 1 : p.doneCycle;
        bound = std::max(bound, b);
        return false;
    };
    const bool r0 = ready(e.prod0, e.prod0Seq);
    const bool r1 = ready(e.prod1, e.prod1Seq);
    if (r0 && r1)
        return true;
    e.readyAt = bound;
    return false;
}

int
Pipeline::execLatency(RobEntry &e)
{
    switch (e.op.opClass) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
      case OpClass::Store:
        return 1;
      case OpClass::IntMul:
        return cfg_.latIntMul;
      case OpClass::IntDiv:
        return cfg_.latIntDiv;
      case OpClass::FpAlu:
        return cfg_.latFpAlu;
      case OpClass::FpMul:
        return cfg_.latFpMul;
      case OpClass::FpDiv:
        return cfg_.latFpDiv;
      case OpClass::Load:
        if (e.forwarded)
            return 1;
        return caches_.dataAccess(e.op.effAddr, false, ev_,
                                  observer_, now_);
      default:
        panic("execLatency of invalid op class");
    }
}

Cycles
Pipeline::arbitrateWriteback(Cycles earliest)
{
    Cycles c = earliest;
    for (;;) {
        const std::size_t slot = c & (wbRingSize - 1);
        if (wbStamp_[slot] != c) {
            wbStamp_[slot] = c;
            wbCount_[slot] = 0;
        }
        if (wbCount_[slot] < wbPorts_) {
            ++wbCount_[slot];
            return c;
        }
        ++c;
    }
}

bool
Pipeline::completeStage()
{
    bool progress = false;
    while (!completions_.empty() &&
           completions_.top().cycle <= now_) {
        const Completion c = completions_.top();
        completions_.pop();
        if (!rob_.valid(c.robIdx, c.seq))
            continue;   // squashed in the meantime
        RobEntry &e = rob_.entry(c.robIdx);
        if (e.state != OpState::Issued)
            continue;
        e.state = OpState::Done;
        progress = true;

        // Result broadcast: wakeup CAM activity across the IQ.
        ev_.iqWakeups +=
            static_cast<std::uint64_t>(iq_.occupancy());

        if (e.op.isLoad()) {
            lsq_.remove(c.robIdx);
            e.inLsq = false;
            if (e.speculative)
                --lsqSpec_;
        }

        if (e.op.isBranch()) {
            --inFlightBranches_;
            --unresolvedRobBranches_;
            if (e.mispredicted && !e.wrongPath) {
                squashAfter(c.robIdx);
                bpred_.recover(e.histSnapshot, e.op.taken);
                wrongPathMode_ = false;
                // The redirect cancels any in-flight wrong-path
                // fetch stall (e.g. a wrong-path I-cache miss).
                fetchStallUntil_ = now_ + 1;
                lastFetchLine_ = invalidAddr;
            }
        }
    }
    return progress;
}

void
Pipeline::squashAfter(std::int32_t branch_idx)
{
    const int younger = rob_.occupancy() -
                        (rob_.distanceFromHead(branch_idx) + 1);
    int int_dests = 0;
    int fp_dests = 0;
    rob_.squashYoungest(younger, [&](RobEntry &e) {
        ++ev_.squashedOps;
        if (e.inIq) {
            ++ev_.iqSquashed;
            if (e.speculative)
                --iqSpec_;
        }
        if (e.inLsq) {
            ++ev_.lsqSquashed;
            if (e.speculative)
                --lsqSpec_;
        }
        if (e.op.destReg != noReg) {
            if (e.op.writesFp())
                ++fp_dests;
            else
                ++int_dests;
        }
        if (e.op.isBranch() && e.state != OpState::Done) {
            --inFlightBranches_;
            --unresolvedRobBranches_;
        }
    });
    iq_.removeIf([&](std::int32_t idx) {
        return rob_.entry(idx).state == OpState::Empty;
    });
    lsq_.removeIf([&](std::int32_t idx) {
        return rob_.entry(idx).state == OpState::Empty;
    });
    rfInt_.squash(int_dests);
    rfFp_.squash(fp_dests);

    // Everything in the front-end queue is younger than the branch.
    for (const auto &f : frontQ_) {
        if (f.op.isBranch())
            --inFlightBranches_;
    }
    frontQ_.clear();

    rebuildRenameAndCounts();
}

void
Pipeline::rebuildRenameAndCounts()
{
    for (auto &p : renameInt_)
        p = Producer{};
    for (auto &p : renameFp_)
        p = Producer{};
    for (int i = 0; i < rob_.occupancy(); ++i) {
        const std::int32_t idx = rob_.indexFromHead(i);
        const RobEntry &e = rob_.entry(idx);
        if (e.op.destReg != noReg) {
            Producer &slot = e.op.writesFp() ?
                renameFp_[e.op.destReg] : renameInt_[e.op.destReg];
            slot = Producer{idx, e.seq};
        }
    }
}

bool
Pipeline::commitStage()
{
    bool progress = false;
    int committed = 0;
    while (committed < cfg_.width && !rob_.empty()) {
        const std::int32_t idx = rob_.headIndex();
        RobEntry &e = rob_.entry(idx);
        if (e.state != OpState::Done || e.doneCycle > now_) {
            if (committed == 0) {
                // Attribute the stalled cycle to the head's class.
                switch (e.op.opClass) {
                  case OpClass::Load:
                    ++ev_.stallHeadLoad;
                    break;
                  case OpClass::Store:
                    ++ev_.stallHeadStore;
                    break;
                  case OpClass::FpAlu:
                  case OpClass::FpMul:
                    ++ev_.stallHeadFp;
                    break;
                  case OpClass::FpDiv:
                  case OpClass::IntDiv:
                    ++ev_.stallHeadDiv;
                    break;
                  default:
                    ++ev_.stallHeadOther;
                    break;
                }
            }
            break;
        }
        if (e.wrongPath)
            panic("wrong-path op reached commit");

        if (e.op.isStore()) {
            // Retire the store data into the cache hierarchy.
            caches_.dataAccess(e.op.effAddr, true, ev_, observer_,
                               now_);
            lsq_.remove(idx);
            e.inLsq = false;
            if (e.speculative)
                --lsqSpec_;
        }
        if (e.op.destReg != noReg) {
            if (e.op.writesFp())
                rfFp_.release();
            else
                rfInt_.release();
        }
        if (e.op.isBranch()) {
            ++ev_.bpredUpdates;
            bpred_.update(e.op.pc, e.op.taken, e.histSnapshot);
            if (e.op.isCond) {
                ++ev_.condBranches;
                if (e.mispredicted)
                    ++ev_.mispredicts;
            }
        }
        ++ev_.committedOps;
        ++ev_.robReads;
        rob_.popHead();
        ++committed;
        progress = true;
    }
    return progress;
}

bool
Pipeline::issueStage()
{
    fus_.beginCycle(now_);
    rdPortsUsed_ = 0;
    int issued = 0;
    issuedPositions_.clear();

    const auto &slots = iq_.slots();
    for (std::size_t pos = 0;
         pos < slots.size() && issued < cfg_.width; ++pos) {
        const std::int32_t idx = slots[pos];
        RobEntry &e = rob_.entry(idx);

        if (!producersReady(e))
            continue;
        const int srcs = (e.op.srcReg0 != noReg ? 1 : 0) +
                         (e.op.srcReg1 != noReg ? 1 : 0);
        if (rdPortsUsed_ + srcs > cfg_.rfRdPorts)
            continue;
        if (!fus_.canIssue(e.op.opClass, now_))
            continue;
        if (e.op.isLoad()) {
            const auto check =
                lsq_.checkLoad(rob_, idx, ev_.lsqSearches);
            if (check == LoadStoreQueue::LoadCheck::MustWait)
                continue;
            e.forwarded =
                check == LoadStoreQueue::LoadCheck::Forward;
        }

        const int lat = execLatency(e);
        fus_.issue(e.op.opClass, now_, lat);
        rdPortsUsed_ += srcs;
        ev_.rfReads += static_cast<std::uint64_t>(srcs);
        ++ev_.iqIssues;

        switch (e.op.opClass) {
          case OpClass::IntAlu:
          case OpClass::Branch:
          case OpClass::Nop:
            ++ev_.aluOps;
            break;
          case OpClass::IntMul:
            ++ev_.mulOps;
            break;
          case OpClass::IntDiv:
            ++ev_.divOps;
            break;
          case OpClass::FpAlu:
            ++ev_.fpOps;
            break;
          case OpClass::FpMul:
            ++ev_.fpMulOps;
            break;
          case OpClass::FpDiv:
            ++ev_.fpDivOps;
            break;
          case OpClass::Load:
          case OpClass::Store:
            ++ev_.memPortOps;
            break;
          default:
            break;
        }

        Cycles done = now_ + static_cast<Cycles>(lat);
        if (e.op.destReg != noReg) {
            done = arbitrateWriteback(done);
            ++ev_.rfWrites;
        }
        e.state = OpState::Issued;
        e.doneCycle = done;
        completions_.push(Completion{done, idx, e.seq});

        e.inIq = false;
        if (e.speculative)
            --iqSpec_;
        issuedPositions_.push_back(pos);
        ++issued;
    }
    iq_.removeAt(issuedPositions_);
    return issued > 0;
}

bool
Pipeline::dispatchStage()
{
    int dispatched = 0;
    while (dispatched < cfg_.width && !frontQ_.empty() &&
           frontQ_.front().dispatchReady <= now_) {
        const FetchedOp &f = frontQ_.front();
        const MicroOp &op = f.op;

        // Structural hazards stall dispatch in order.
        if (rob_.full() || iq_.full())
            break;
        if (op.isMem() && lsq_.full())
            break;
        if (op.destReg != noReg) {
            RegisterFile &rf = op.writesFp() ? rfFp_ : rfInt_;
            if (!rf.canAllocate())
                break;
        }

        const std::int32_t idx = rob_.push();
        RobEntry &e = rob_.entry(idx);
        const std::uint32_t seq = e.seq;
        e.op = op;
        e.wrongPath = f.wrongPath;
        e.mispredicted = f.mispredicted;
        e.histSnapshot = f.histSnapshot;
        e.speculative = unresolvedRobBranches_ > 0;
        e.readyAt = 0;   // slots recycle without clearing
        ++ev_.robWrites;

        // Resolve producers through the rename tables.  Register 0 is
        // the hardwired-zero register and never has a producer.
        const bool fp_srcs = op.readsFp();
        auto lookup = [&](std::int16_t reg, std::int32_t &p_idx,
                          std::uint32_t &p_seq) {
            if (reg <= 0)
                return;
            const Producer &p = fp_srcs ? renameFp_[reg] :
                                          renameInt_[reg];
            if (p.idx >= 0 && rob_.valid(p.idx, p.seq)) {
                p_idx = p.idx;
                p_seq = p.seq;
            }
        };
        lookup(op.srcReg0, e.prod0, e.prod0Seq);
        lookup(op.srcReg1, e.prod1, e.prod1Seq);

        if (op.destReg != noReg) {
            RegisterFile &rf = op.writesFp() ? rfFp_ : rfInt_;
            rf.allocate();
            Producer &slot = op.writesFp() ?
                renameFp_[op.destReg] : renameInt_[op.destReg];
            slot = Producer{idx, seq};
        }

        if (op.opClass == OpClass::Nop) {
            e.state = OpState::Done;
            e.doneCycle = now_;
        } else {
            iq_.insert(idx);
            e.inIq = true;
            ++ev_.iqWrites;
            if (e.speculative)
                ++iqSpec_;
            if (op.isMem()) {
                lsq_.insert(idx);
                e.inLsq = true;
                ++ev_.lsqInserts;
                if (e.speculative)
                    ++lsqSpec_;
            }
            if (op.isBranch())
                ++unresolvedRobBranches_;
        }

        frontQ_.pop_front();
        ++dispatched;
    }
    return dispatched > 0;
}

bool
Pipeline::fetchStage()
{
    if (now_ < fetchStallUntil_)
        return false;

    int fetched = 0;
    while (fetched < cfg_.width) {
        if (frontQ_.size() >= frontQCapacity_)
            break;
        if (!wrongPathMode_ && traceIdx_ >= trace_.size())
            break;

        // Branch cap: correct-path branches stall fetch at the limit;
        // a wrong-path branch that hits the cap is simply dropped.
        MicroOp wp_op;
        const MicroOp *op;
        if (wrongPathMode_) {
            wp_op = wrongPathGen_.next();
            op = &wp_op;
            if (op->isBranch() &&
                inFlightBranches_ >= cfg_.maxBranches) {
                break;
            }
        } else {
            op = &trace_[traceIdx_];
            if (op->isBranch() &&
                inFlightBranches_ >= cfg_.maxBranches) {
                break;
            }
        }

        // Instruction cache: one access per new line.
        int extra_delay = 0;
        const Addr line = op->pc / CoreConfig::cacheLineBytes;
        if (line != lastFetchLine_) {
            const int lat =
                caches_.fetchAccess(op->pc, ev_, observer_, now_);
            lastFetchLine_ = line;
            if (lat > cfg_.icacheLatency) {
                extra_delay = lat;
                fetchStallUntil_ = now_ + static_cast<Cycles>(lat);
            }
        }

        FetchedOp f;
        f.op = *op;
        f.dispatchReady = now_ + cfg_.frontendDelay +
                          static_cast<Cycles>(extra_delay);
        f.wrongPath = wrongPathMode_;
        f.mispredicted = false;
        f.histSnapshot = 0;

        bool end_group = false;
        if (op->isBranch()) {
            const auto pred = bpred_.predict(op->pc);
            ++ev_.bpredLookups;
            ++ev_.btbLookups;
            if (pred.btbHit)
                ++ev_.btbHits;
            if (observer_)
                observer_->onBranchFetch(op->pc, pred.btbHit);
            ++inFlightBranches_;
            f.histSnapshot = pred.history;

            if (!wrongPathMode_ && pred.taken != op->taken) {
                // Misprediction: everything fetched after this is
                // wrong path until the branch resolves.
                f.mispredicted = true;
                wrongPathMode_ = true;
                wrongPathGen_.startBurst(op->pc);
            }
            if (pred.taken) {
                end_group = true;   // taken break in the fetch group
                if (!pred.btbHit) {
                    // Target produced at decode: short bubble.
                    fetchStallUntil_ = std::max(fetchStallUntil_,
                                                now_ + 2);
                }
            }
        }

        frontQ_.push_back(f);
        ++ev_.fetchedOps;
        if (f.wrongPath)
            ++ev_.wrongPathOps;
        if (!f.wrongPath)
            ++traceIdx_;   // mispredicted branches are correct path
        ++fetched;

        if (end_group || extra_delay > 0)
            break;
    }
    return fetched > 0;
}

void
Pipeline::observeCycle(std::uint64_t repeat)
{
    const auto rob_occ =
        static_cast<std::uint64_t>(rob_.occupancy());
    const auto iq_occ = static_cast<std::uint64_t>(iq_.occupancy());
    const auto lsq_occ =
        static_cast<std::uint64_t>(lsq_.occupancy());
    ev_.occRobSum += rob_occ * repeat;
    ev_.occIqSum += iq_occ * repeat;
    ev_.occLsqSum += lsq_occ * repeat;
    ev_.occIntRfSum +=
        static_cast<std::uint64_t>(rfInt_.used()) * repeat;
    ev_.occFpRfSum +=
        static_cast<std::uint64_t>(rfFp_.used()) * repeat;

    if (!observer_)
        return;
    CycleSample s;
    s.robOcc = static_cast<std::uint32_t>(rob_occ);
    s.iqOcc = static_cast<std::uint32_t>(iq_occ);
    s.lsqOcc = static_cast<std::uint32_t>(lsq_occ);
    s.intRegsUsed = static_cast<std::uint32_t>(rfInt_.used());
    s.fpRegsUsed = static_cast<std::uint32_t>(rfFp_.used());
    s.rdPortsUsed = static_cast<std::uint32_t>(rdPortsUsed_);
    const std::size_t slot = now_ & (wbRingSize - 1);
    s.wrPortsUsed = wbStamp_[slot] == now_ ? wbCount_[slot] : 0;
    s.aluUsed = static_cast<std::uint32_t>(fus_.aluUsed());
    s.memPortsUsed =
        static_cast<std::uint32_t>(fus_.memPortsUsed());
    s.fpUnitsUsed = static_cast<std::uint32_t>(fus_.fpUsed());
    s.iqSpecOps = static_cast<std::uint32_t>(iqSpec_);
    s.lsqSpecOps = static_cast<std::uint32_t>(lsqSpec_);
    observer_->onCycle(s, repeat);
}

Cycles
Pipeline::nextEventCycle() const
{
    Cycles next = ~Cycles(0);
    if (!completions_.empty())
        next = std::min(next, completions_.top().cycle);
    if (!frontQ_.empty())
        next = std::min(next, frontQ_.front().dispatchReady);
    if (fetchStallUntil_ > now_)
        next = std::min(next, fetchStallUntil_);
    if (next <= now_ || next == ~Cycles(0))
        return now_ + 1;
    return next;
}

#if ADAPTSIM_OBS_ENABLED
namespace
{

/** Hot-loop counters are accumulated in EventCounts per cycle and
 *  published to the registry once per run, so instrumentation adds
 *  no per-cycle work even in the enabled build. */
struct PipelineMetrics
{
    obs::Counter &cycles =
        obs::Registry::global().counter("uarch/cycles");
    obs::Counter &committedOps =
        obs::Registry::global().counter("uarch/committed_ops");
    obs::Counter &stallLoad =
        obs::Registry::global().counter("uarch/stall.load.cycles");
    obs::Counter &stallStore =
        obs::Registry::global().counter("uarch/stall.store.cycles");
    obs::Counter &stallFp =
        obs::Registry::global().counter("uarch/stall.fp.cycles");
    obs::Counter &stallDiv =
        obs::Registry::global().counter("uarch/stall.div.cycles");
    obs::Counter &stallOther =
        obs::Registry::global().counter("uarch/stall.other.cycles");
};

PipelineMetrics &
pipelineMetrics()
{
    static PipelineMetrics metrics;
    return metrics;
}

} // namespace
#endif // ADAPTSIM_OBS_ENABLED

SimResult
Pipeline::run(std::span<const isa::MicroOp> trace)
{
    trace_ = trace;
    traceIdx_ = 0;
    now_ = 0;

    // ev_ accumulates across runs of one Pipeline; publish the
    // per-run delta to the registry below.
    OBS_ONLY(const EventCounts run_start = ev_;)

    const Cycles cycle_cap =
        500 * static_cast<Cycles>(trace.size()) + 100000;

    for (;;) {
        if (traceIdx_ >= trace_.size() && rob_.empty() &&
            frontQ_.empty() && !wrongPathMode_) {
            break;
        }
        const bool c1 = completeStage();
        const bool c2 = commitStage();
        const bool c3 = issueStage();
        const bool c4 = dispatchStage();
        const bool c5 = fetchStage();

        static const bool trace_cycles = cycleTraceEnabled();
        if (trace_cycles && now_ < 400) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "cyc%llu cmp=%d com=%d iss=%d dis=%d "
                          "fet=%d rob=%d iq=%d frontQ=%zu stall=%llu "
                          "tIdx=%zu\n",
                          (unsigned long long)now_, c1, c2, c3, c4,
                          c5, rob_.occupancy(), iq_.occupancy(),
                          frontQ_.size(),
                          (unsigned long long)fetchStallUntil_,
                          traceIdx_);
            lockedWrite(stderr, buf);
        }

        if (c1 || c2 || c3 || c4 || c5) {
            observeCycle(1);
            ++ev_.cycles;
            ++now_;
        } else {
            const Cycles next = nextEventCycle();
            const std::uint64_t span = next - now_;
            observeCycle(span);
            ev_.cycles += span;
            now_ = next;
        }
        if (now_ > cycle_cap)
            panic("pipeline deadlock: exceeded cycle cap at ",
                  now_, " cycles, ", traceIdx_, "/", trace.size(),
                  " ops fetched");
    }

#if ADAPTSIM_OBS_ENABLED
    auto &m = pipelineMetrics();
    m.cycles.add(ev_.cycles - run_start.cycles);
    m.committedOps.add(ev_.committedOps - run_start.committedOps);
    m.stallLoad.add(ev_.stallHeadLoad - run_start.stallHeadLoad);
    m.stallStore.add(ev_.stallHeadStore - run_start.stallHeadStore);
    m.stallFp.add(ev_.stallHeadFp - run_start.stallHeadFp);
    m.stallDiv.add(ev_.stallHeadDiv - run_start.stallHeadDiv);
    m.stallOther.add(ev_.stallHeadOther - run_start.stallHeadOther);
#endif

    SimResult result;
    result.cycles = ev_.cycles;
    result.events = ev_;
    return result;
}

} // namespace adaptsim::uarch
