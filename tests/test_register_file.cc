/**
 * @file
 * Tests of the physical register file occupancy model.
 */

#include <gtest/gtest.h>

#include "uarch/register_file.hh"

using adaptsim::uarch::RegisterFile;
using adaptsim::isa::numArchRegs;

TEST(RegisterFile, InitialState)
{
    RegisterFile rf(64);
    EXPECT_EQ(rf.used(), numArchRegs);
    EXPECT_EQ(rf.inFlight(), 0);
    EXPECT_TRUE(rf.canAllocate());
}

TEST(RegisterFile, AllocationExhaustsRenameRegs)
{
    RegisterFile rf(40);   // 8 rename registers
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(rf.canAllocate());
        rf.allocate();
    }
    EXPECT_FALSE(rf.canAllocate());
    EXPECT_EQ(rf.used(), 40);
}

TEST(RegisterFile, ReleaseFrees)
{
    RegisterFile rf(40);
    for (int i = 0; i < 8; ++i)
        rf.allocate();
    rf.release();
    EXPECT_TRUE(rf.canAllocate());
    EXPECT_EQ(rf.inFlight(), 7);
}

TEST(RegisterFile, SquashFreesBulk)
{
    RegisterFile rf(64);
    for (int i = 0; i < 10; ++i)
        rf.allocate();
    rf.squash(6);
    EXPECT_EQ(rf.inFlight(), 4);
    EXPECT_EQ(rf.used(), numArchRegs + 4);
}

TEST(RegisterFile, UsageTracksAllocation)
{
    RegisterFile rf(128);
    rf.allocate();
    rf.allocate();
    EXPECT_EQ(rf.used(), numArchRegs + 2);
}
