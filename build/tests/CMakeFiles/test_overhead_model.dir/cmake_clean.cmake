file(REMOVE_RECURSE
  "CMakeFiles/test_overhead_model.dir/test_overhead_model.cc.o"
  "CMakeFiles/test_overhead_model.dir/test_overhead_model.cc.o.d"
  "test_overhead_model"
  "test_overhead_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
