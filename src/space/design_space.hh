/**
 * @file
 * The 14-parameter microarchitectural design space of Table I.
 *
 * Width, ROB, IQ, LSQ, RF size, RF read/write ports, gshare size, BTB
 * size, in-flight branches, L1I/L1D/L2 sizes and pipeline depth (FO4
 * per stage) — 627 billion points in total.
 */

#ifndef ADAPTSIM_SPACE_DESIGN_SPACE_HH
#define ADAPTSIM_SPACE_DESIGN_SPACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace adaptsim::space
{

/** The fourteen configurable microarchitectural parameters (Table I). */
enum class Param : std::uint8_t
{
    Width,        ///< pipeline width: 2, 4, 6, 8
    RobSize,      ///< reorder buffer entries: 32..160 step 8
    IqSize,       ///< issue queue entries: 8..80 step 8
    LsqSize,      ///< load/store queue entries: 8..80 step 8
    RfSize,       ///< physical registers per file: 40..160 step 8
    RfRdPorts,    ///< register file read ports: 2..16 step 2
    RfWrPorts,    ///< register file write ports: 1..8 step 1
    GshareSize,   ///< gshare PHT entries: 1K..32K x2
    BtbSize,      ///< BTB entries: 1K, 2K, 4K
    MaxBranches,  ///< in-flight branches allowed: 8, 16, 24, 32
    ICacheSize,   ///< L1 I-cache bytes: 8K..128K x2
    DCacheSize,   ///< L1 D-cache bytes: 8K..128K x2
    L2CacheSize,  ///< unified L2 bytes: 256K..4M x2
    Depth,        ///< pipeline depth as FO4 delay/stage: 9..36 step 3
    NumParams
};

/** Number of parameters (14). */
inline constexpr std::size_t numParams =
    static_cast<std::size_t>(Param::NumParams);

/** All parameters, for range-for iteration. */
std::array<Param, numParams> allParams();

/**
 * Static description of the design space: legal values per parameter.
 *
 * The space is immutable and shared; obtain it via the()
 */
class DesignSpace
{
  public:
    /** The canonical Table I space. */
    static const DesignSpace &the();

    /** Short name of a parameter ("Width", "ROB", ...). */
    const std::string &name(Param p) const;

    /** Number of legal values for @p p. */
    std::size_t numValues(Param p) const;

    /** The @p idx-th legal value of @p p (ascending order). */
    std::uint64_t value(Param p, std::size_t idx) const;

    /** All legal values of @p p. */
    const std::vector<std::uint64_t> &values(Param p) const;

    /**
     * Index of legal value @p v for @p p; fatal() if @p v is not a
     * legal value of the parameter.
     */
    std::size_t indexOf(Param p, std::uint64_t v) const;

    /** Index of the legal value closest to @p v. */
    std::size_t closestIndex(Param p, std::uint64_t v) const;

    /** Total number of configurations (~627 billion). */
    double totalPoints() const;

    /** Sum over parameters of their value counts (number of classes). */
    std::size_t totalValueCount() const;

  private:
    DesignSpace();

    std::array<std::string, numParams> names_;
    std::array<std::vector<std::uint64_t>, numParams> values_;
};

} // namespace adaptsim::space

#endif // ADAPTSIM_SPACE_DESIGN_SPACE_HH
