#include "counters/stack_distance.hh"

#include "counters/reuse_distance.hh"

namespace adaptsim::counters
{

StackDistanceMonitor::StackDistanceMonitor(int line_bytes)
    : lineBytes_(line_bytes),
      hist_(Histogram::Binning::Log2, reuseBins)
{
    tree_.resize(1024, 0);
}

void
StackDistanceMonitor::fenwickAdd(std::size_t i, int delta)
{
    for (; i < tree_.size(); i += i & (~i + 1))
        tree_[i] += delta;
}

std::int64_t
StackDistanceMonitor::fenwickSum(std::size_t i) const
{
    std::int64_t sum = 0;
    if (i >= tree_.size())
        i = tree_.size() - 1;
    for (; i > 0; i -= i & (~i + 1))
        sum += tree_[i];
    return sum;
}

void
StackDistanceMonitor::access(Addr addr)
{
    ++accesses_;
    const Addr block = addr / lineBytes_;
    const std::uint64_t now = accesses_;   // 1-based time stamp

    if (now >= tree_.size()) {
        // Growing a Fenwick tree invalidates its new high-order
        // nodes, so rebuild from the live marks while lastTime_ is
        // consistent (every tracked block has exactly one mark).
        std::size_t grown = tree_.size();
        while (now >= grown)
            grown *= 2;
        tree_.assign(grown, 0);
        for (const auto &entry : lastTime_)
            fenwickAdd(entry.second, +1);
    }

    auto [it, inserted] = lastTime_.try_emplace(block, now);
    if (inserted) {
        ++cold_;
        fenwickAdd(now, +1);
        return;
    }

    const std::uint64_t prev = it->second;
    // Distinct blocks touched after prev: marked times in (prev, now).
    const std::int64_t distance =
        fenwickSum(now - 1) - fenwickSum(prev);
    hist_.add(static_cast<std::uint64_t>(distance));

    fenwickAdd(prev, -1);
    fenwickAdd(now, +1);
    it->second = now;
}

double
StackDistanceMonitor::missRatioFor(std::uint64_t capacity_blocks) const
{
    if (accesses_ == 0)
        return 0.0;
    std::uint64_t misses = cold_;
    for (std::size_t i = 0; i < hist_.numBins(); ++i) {
        if (hist_.binLowerEdge(i) >= capacity_blocks)
            misses += hist_.count(i);
    }
    return static_cast<double>(misses) /
           static_cast<double>(accesses_);
}

void
StackDistanceMonitor::clear()
{
    hist_.clear();
    lastTime_.clear();
    tree_.assign(1024, 0);
    cold_ = 0;
    accesses_ = 0;
}

} // namespace adaptsim::counters
