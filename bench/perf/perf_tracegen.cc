/**
 * @file
 * Trace-generation throughput: µops per second out of
 * Workload::generate (the cost the trace cache amortises away).
 */

#include "perf_harness.hh"

#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);
    const std::uint64_t count = opt.smoke ? 100000 : 1000000;

    const auto wl = workload::specBenchmark("crafty", 400000);

    double items = 0.0;
    const auto secs = perf::runTimed(opt, items, [&]() {
        const auto trace = wl.generate(12345, count);
        return static_cast<double>(trace.size());
    });
    perf::emitJson("perf_tracegen", opt, secs, items, "uops");
    return 0;
}
