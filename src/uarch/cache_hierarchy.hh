/**
 * @file
 * Three-level memory hierarchy: split L1 I/D over a unified L2 over
 * flat DRAM.  Returns load-to-use latencies in cycles and counts the
 * events the power model charges.
 */

#ifndef ADAPTSIM_UARCH_CACHE_HIERARCHY_HH
#define ADAPTSIM_UARCH_CACHE_HIERARCHY_HH

#include "uarch/cache.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"

namespace adaptsim::uarch
{

/** L1I + L1D + unified L2 + DRAM latency model. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CoreConfig &cfg);

    /**
     * Instruction fetch of the line containing @p pc.
     * @return latency in cycles (hit latency on an L1 hit).
     */
    int fetchAccess(Addr pc, EventCounts &ev, SimObserver *obs);

    /**
     * Data access at @p addr.
     * @return load-to-use latency in cycles.
     */
    int dataAccess(Addr addr, bool write, EventCounts &ev,
                   SimObserver *obs);

    /** Warm-mode access without timing or statistics. */
    void warmFetch(Addr pc);
    void warmData(Addr addr, bool write);

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2cache() const { return l2_; }

  private:
    CoreConfig cfg_;
    Cache icache_;
    Cache dcache_;
    Cache l2_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_CACHE_HIERARCHY_HH
