/**
 * @file
 * Fig. 5: performance and energy breakdown of the advanced-counter
 * model vs the best overall static configuration.  Paper: +15%
 * performance, −21% energy on average (e.g. crafty −48% energy at
 * equal performance; art −15% energy at 2x performance).
 */

#include <cmath>
#include <cstdio>

#include "common/ascii_plot.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    const auto &advanced =
        exp.modelResults(counters::FeatureSet::Advanced);
    auto &repo = exp.repository();
    const auto &baseline = exp.baselineConfig();

    TextTable table;
    table.setHeader({"Benchmark", "Perf (x)", "Energy (x)"});
    std::vector<double> perf_all, energy_all;
    std::vector<std::string> labels;
    std::vector<std::vector<double>> values;

    for (const auto &[program, idxs] : exp.phasesByProgram()) {
        double log_perf = 0.0, log_energy = 0.0, wsum = 0.0;
        for (std::size_t i : idxs) {
            const auto &phase = exp.phases()[i];
            const auto base =
                repo.evaluate(phase.spec, baseline);
            const auto pred =
                repo.evaluate(phase.spec, advanced[i].config);
            const double base_ips =
                base.instructions / base.seconds;
            const double pred_ips =
                pred.instructions / pred.seconds;
            if (base_ips <= 0 || pred_ips <= 0 ||
                base.joules <= 0 || pred.joules <= 0) {
                continue;
            }
            const double w =
                phase.phase.weight > 0 ? phase.phase.weight : 1.0;
            log_perf += w * std::log(pred_ips / base_ips);
            log_energy += w * std::log(pred.joules / base.joules);
            wsum += w;
        }
        const double perf = std::exp(log_perf / wsum);
        const double energy = std::exp(log_energy / wsum);
        table.addRow({program, TextTable::num(perf),
                      TextTable::num(energy)});
        perf_all.push_back(perf);
        energy_all.push_back(energy);
        labels.push_back(program);
        values.push_back({perf, energy});
    }
    const double mean_perf = geomean(perf_all);
    const double mean_energy = geomean(energy_all);
    table.addRow({"AVERAGE", TextTable::num(mean_perf),
                  TextTable::num(mean_energy)});

    std::printf("Fig. 5: performance and energy vs best static "
                "(advanced counters)\n\n%s\n",
                table.render().c_str());
    std::printf("%s\n",
                groupedBarChart("perf / energy (x baseline)",
                                {"perf", "energy"}, labels, values)
                    .c_str());
    std::printf("Average: performance %+.0f%% (paper +15%%), energy "
                "%+.0f%% (paper -21%%)\n",
                (mean_perf - 1.0) * 100, (mean_energy - 1.0) * 100);
    return 0;
}
