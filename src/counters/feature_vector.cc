#include "counters/feature_vector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::counters
{

namespace
{

/** Append a normalised histogram, marking its group. */
void
appendHistogram(std::vector<double> &out,
                std::vector<FeatureGroup> &groups,
                const std::string &name,
                const std::vector<double> &fractions)
{
    const std::size_t begin = out.size();
    out.insert(out.end(), fractions.begin(), fractions.end());
    groups.push_back({name, begin, out.size()});
}

void
appendScalars(std::vector<double> &out,
              std::vector<FeatureGroup> &groups,
              const std::string &name,
              std::initializer_list<double> values)
{
    const std::size_t begin = out.size();
    out.insert(out.end(), values.begin(), values.end());
    groups.push_back({name, begin, out.size()});
}

/** Build the advanced (Table II) features. */
std::vector<double>
buildAdvanced(const CounterBank &b, std::vector<FeatureGroup> &groups)
{
    std::vector<double> x;
    groups.clear();

    // Width.
    appendHistogram(x, groups, "alu_usage",
                    b.aluUsage().normalised());
    appendHistogram(x, groups, "memport_usage",
                    b.memPortUsage().normalised());

    // Queues.
    appendHistogram(x, groups, "rob_usage",
                    b.robUsage().normalised());
    appendHistogram(x, groups, "iq_usage", b.iqUsage().normalised());
    appendHistogram(x, groups, "lsq_usage",
                    b.lsqUsage().normalised());
    appendScalars(x, groups, "speculation",
                  {b.iqSpecFrac(), b.iqMisSpecFrac(),
                   b.lsqSpecFrac(), b.lsqMisSpecFrac()});

    // Register file.
    appendHistogram(x, groups, "int_reg_usage",
                    b.intRegUsage().normalised());
    appendHistogram(x, groups, "fp_reg_usage",
                    b.fpRegUsage().normalised());
    appendHistogram(x, groups, "rd_port_usage",
                    b.rdPortUsage().normalised());
    appendHistogram(x, groups, "wr_port_usage",
                    b.wrPortUsage().normalised());

    // Caches.
    appendHistogram(x, groups, "ic_stack",
                    b.icStack().histogram().normalised());
    appendHistogram(x, groups, "dc_stack",
                    b.dcStack().histogram().normalised());
    appendHistogram(x, groups, "l2_stack",
                    b.l2Stack().histogram().normalised());
    appendHistogram(x, groups, "ic_block_reuse",
                    b.icBlockReuse().histogram().normalised());
    appendHistogram(x, groups, "dc_block_reuse",
                    b.dcBlockReuse().histogram().normalised());
    appendHistogram(x, groups, "l2_block_reuse",
                    b.l2BlockReuse().histogram().normalised());
    appendHistogram(x, groups, "ic_set_reuse",
                    b.icSetReuse().histogram().normalised());
    appendHistogram(x, groups, "dc_set_reuse",
                    b.dcSetReuse().histogram().normalised());
    appendHistogram(x, groups, "l2_set_reuse",
                    b.l2SetReuse().histogram().normalised());
    appendHistogram(x, groups, "ic_red_set_reuse",
                    b.icReducedSetReuse().histogram().normalised());
    appendHistogram(x, groups, "dc_red_set_reuse",
                    b.dcReducedSetReuse().histogram().normalised());
    appendHistogram(x, groups, "l2_red_set_reuse",
                    b.l2ReducedSetReuse().histogram().normalised());

    // Branch predictor.
    appendHistogram(x, groups, "btb_reuse",
                    b.btbReuse().histogram().normalised());
    appendScalars(x, groups, "mispred_rate",
                  {b.branchMispredRate()});

    // Pipeline depth.
    appendScalars(x, groups, "cpi", {std::min(b.cpi(), 32.0) / 32.0});

    // Bias.
    appendScalars(x, groups, "bias", {1.0});
    return x;
}

/** Build the basic (conventional performance counter) features. */
std::vector<double>
buildBasic(const CounterBank &b, std::vector<FeatureGroup> &groups)
{
    std::vector<double> x;
    groups.clear();
    const auto &ev = b.events();
    const auto &cfg = b.profilingConfig();
    const double insts =
        std::max<double>(1.0, double(ev.committedOps));

    appendScalars(x, groups, "avg_occupancy",
                  {b.robUsage().meanUsage() / cfg.robSize,
                   b.iqUsage().meanUsage() / cfg.iqSize,
                   b.lsqUsage().meanUsage() / cfg.lsqSize});
    appendScalars(x, groups, "ops_per_inst",
                  {double(ev.aluOps) / insts,
                   double(ev.memPortOps) / insts,
                   double(ev.fpOps + ev.fpMulOps + ev.fpDivOps) /
                       insts});
    appendScalars(x, groups, "avg_rf_usage",
                  {b.intRegUsage().meanUsage() / cfg.rfSize,
                   b.fpRegUsage().meanUsage() / cfg.rfSize});
    appendScalars(x, groups, "cache_rates",
                  {double(ev.icAccesses) / insts,
                   ev.icAccesses ?
                       double(ev.icMisses) / double(ev.icAccesses) :
                       0.0,
                   double(ev.dcAccesses) / insts,
                   ev.dcAccesses ?
                       double(ev.dcMisses) / double(ev.dcAccesses) :
                       0.0,
                   double(ev.l2Accesses) / insts,
                   ev.l2Accesses ?
                       double(ev.l2Misses) / double(ev.l2Accesses) :
                       0.0});
    appendScalars(x, groups, "bpred_rates",
                  {double(ev.bpredLookups) / insts,
                   b.branchMispredRate(), b.btbHitRate()});
    appendScalars(x, groups, "ipc", {b.ipc() / 8.0});
    appendScalars(x, groups, "bias", {1.0});
    return x;
}

/** Cached layouts, built once from a reference bank geometry. */
struct Layouts
{
    std::vector<FeatureGroup> advanced;
    std::vector<FeatureGroup> basic;
    std::size_t advancedDim = 0;
    std::size_t basicDim = 0;

    Layouts()
    {
        const uarch::CoreConfig cfg =
            uarch::CoreConfig::fromConfiguration(
                space::Configuration::profiling());
        const CounterBank bank(cfg);
        std::vector<FeatureGroup> g;
        advancedDim = buildAdvanced(bank, g).size();
        advanced = g;
        basicDim = buildBasic(bank, g).size();
        basic = g;
    }
};

const Layouts &
layouts()
{
    static const Layouts instance;
    return instance;
}

} // namespace

std::vector<double>
assembleFeatures(const CounterBank &bank, FeatureSet set)
{
    std::vector<FeatureGroup> groups;
    std::vector<double> x = set == FeatureSet::Advanced ?
        buildAdvanced(bank, groups) : buildBasic(bank, groups);
    const std::size_t expect = featureDimension(set);
    if (x.size() != expect)
        panic("feature dimension mismatch: ", x.size(), " vs ",
              expect);
    return x;
}

std::size_t
featureDimension(FeatureSet set)
{
    return set == FeatureSet::Advanced ? layouts().advancedDim :
                                         layouts().basicDim;
}

const std::vector<FeatureGroup> &
featureGroups(FeatureSet set)
{
    return set == FeatureSet::Advanced ? layouts().advanced :
                                         layouts().basic;
}

const char *
featureSetName(FeatureSet set)
{
    return set == FeatureSet::Advanced ? "advanced" : "basic";
}

} // namespace adaptsim::counters
