file(REMOVE_RECURSE
  "CMakeFiles/test_conjugate_gradient.dir/test_conjugate_gradient.cc.o"
  "CMakeFiles/test_conjugate_gradient.dir/test_conjugate_gradient.cc.o.d"
  "test_conjugate_gradient"
  "test_conjugate_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conjugate_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
