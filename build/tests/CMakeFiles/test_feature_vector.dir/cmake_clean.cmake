file(REMOVE_RECURSE
  "CMakeFiles/test_feature_vector.dir/test_feature_vector.cc.o"
  "CMakeFiles/test_feature_vector.dir/test_feature_vector.cc.o.d"
  "test_feature_vector"
  "test_feature_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
