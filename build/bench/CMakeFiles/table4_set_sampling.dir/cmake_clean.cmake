file(REMOVE_RECURSE
  "CMakeFiles/table4_set_sampling.dir/table4_set_sampling.cc.o"
  "CMakeFiles/table4_set_sampling.dir/table4_set_sampling.cc.o.d"
  "table4_set_sampling"
  "table4_set_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_set_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
