/**
 * @file
 * The paper's performance metric: energy efficiency measured as
 * ips³/Watt (Sec. V-B), plus its performance/energy components.
 */

#ifndef ADAPTSIM_POWER_METRICS_HH
#define ADAPTSIM_POWER_METRICS_HH

#include "power/energy_model.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"

namespace adaptsim::power
{

/** Full evaluation of one simulated interval on one configuration. */
struct Metrics
{
    double cycles = 0.0;
    double instructions = 0.0;   ///< committed correct-path ops
    double seconds = 0.0;
    double ipc = 0.0;
    double ips = 0.0;            ///< instructions per second
    double joules = 0.0;
    double watts = 0.0;
    double efficiency = 0.0;     ///< ips³ / Watt

    /** Serialise to a fixed-field line (cache file format). */
    static constexpr int numFields = 9;
};

/** Compute the paper's metrics from a simulation outcome. */
Metrics computeMetrics(const uarch::CoreConfig &cfg,
                       const uarch::EventCounts &events);

/** Efficiency from its components (ips³/W). */
double efficiencyOf(double ips, double watts);

} // namespace adaptsim::power

#endif // ADAPTSIM_POWER_METRICS_HH
