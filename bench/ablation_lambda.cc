/**
 * @file
 * Ablation: sensitivity of the model to the L2 regularisation weight
 * λ (the paper fixes λ = 0.5).  Split-half validation, advanced
 * counters.
 */

#include <cstdio>

#include "ablation_common.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    TextTable table;
    table.setHeader({"lambda", "Held-out efficiency (x baseline)"});
    for (double lambda : {0.0, 0.05, 0.5, 5.0, 50.0}) {
        ml::TrainerOptions opt;
        opt.lambda = lambda;
        const double rel = benchutil::splitHalfRelative(
            exp, counters::FeatureSet::Advanced, opt);
        table.addRow({TextTable::num(lambda),
                      TextTable::num(rel)});
    }
    std::printf("Ablation: regularisation weight (paper uses "
                "lambda = 0.5)\n\n%s\n",
                table.render().c_str());
    return 0;
}
