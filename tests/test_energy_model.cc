/**
 * @file
 * Tests of the Wattch-style event-driven energy model.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "power/energy_model.hh"

using namespace adaptsim;
using namespace adaptsim::power;

namespace
{

uarch::CoreConfig
baseCc()
{
    return uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
}

uarch::EventCounts
someEvents()
{
    uarch::EventCounts ev;
    ev.cycles = 10000;
    ev.committedOps = 6000;
    ev.icAccesses = 2000;
    ev.dcAccesses = 1500;
    ev.dcMisses = 100;
    ev.l2Accesses = 120;
    ev.l2Misses = 30;
    ev.memAccesses = 30;
    ev.rfReads = 9000;
    ev.rfWrites = 5000;
    ev.robWrites = 6000;
    ev.robReads = 6000;
    ev.iqWrites = 6000;
    ev.iqIssues = 6000;
    ev.iqWakeups = 40000;
    ev.lsqInserts = 1700;
    ev.lsqSearches = 8000;
    ev.bpredLookups = 1200;
    ev.bpredUpdates = 1100;
    ev.btbLookups = 1200;
    ev.aluOps = 4000;
    ev.fpOps = 500;
    ev.memPortOps = 1700;
    return ev;
}

} // namespace

TEST(EnergyModel, MoreEventsMoreEnergy)
{
    const EnergyModel model(baseCc());
    auto ev = someEvents();
    const double base = model.evaluate(ev).totalJ();
    ev.dcAccesses *= 2;
    ev.aluOps *= 2;
    const double more = model.evaluate(ev).totalJ();
    EXPECT_GT(more, base);
}

TEST(EnergyModel, LeakageScalesWithTime)
{
    const EnergyModel model(baseCc());
    auto ev = someEvents();
    const double leak1 = model.evaluate(ev).leakageJ;
    ev.cycles *= 3;
    const double leak3 = model.evaluate(ev).leakageJ;
    EXPECT_NEAR(leak3 / leak1, 3.0, 1e-9);
}

TEST(EnergyModel, BiggerCachesLeakMore)
{
    auto big_cfg = harness::paperBaselineConfig();
    big_cfg.setValue(space::Param::L2CacheSize, 4 * 1024 * 1024);
    auto small_cfg = harness::paperBaselineConfig();
    small_cfg.setValue(space::Param::L2CacheSize, 256 * 1024);
    const EnergyModel big(
        uarch::CoreConfig::fromConfiguration(big_cfg));
    const EnergyModel small(
        uarch::CoreConfig::fromConfiguration(small_cfg));
    EXPECT_GT(big.leakageWatts(), small.leakageWatts());
}

TEST(EnergyModel, PortHeavyRegFileCostsMore)
{
    auto heavy_cfg = harness::paperBaselineConfig();
    heavy_cfg.setValue(space::Param::RfRdPorts, 16);
    heavy_cfg.setValue(space::Param::RfWrPorts, 8);
    const EnergyModel heavy(
        uarch::CoreConfig::fromConfiguration(heavy_cfg));
    const EnergyModel light(baseCc());
    const auto ev = someEvents();
    const auto h = heavy.evaluate(ev);
    const auto l = light.evaluate(ev);
    const auto rf = static_cast<std::size_t>(Structure::RegFile);
    EXPECT_GT(h.dynamicJ[rf], l.dynamicJ[rf]);
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    const EnergyModel model(baseCc());
    const auto b = model.evaluate(someEvents());
    double sum = 0.0;
    for (double j : b.dynamicJ)
        sum += j;
    EXPECT_NEAR(b.totalDynamicJ(), sum, 1e-15);
    EXPECT_NEAR(b.totalJ(), sum + b.leakageJ, 1e-15);
}

TEST(EnergyModel, PlausibleWattsForBaseline)
{
    // A busy baseline core should land in a single-digit-to-tens of
    // watts range at "90nm", not milliwatts or kilowatts.
    const auto cc = baseCc();
    const EnergyModel model(cc);
    const auto ev = someEvents();
    const auto b = model.evaluate(ev);
    const double seconds = double(ev.cycles) * cc.clockPeriodSec;
    const double watts = b.totalJ() / seconds;
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 120.0);
}

TEST(EnergyModel, StructureNamesDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numStructures; ++i)
        names.insert(structureName(static_cast<Structure>(i)));
    EXPECT_EQ(names.size(), numStructures);
}
