/**
 * @file
 * Tests of basic-block vectors.
 */

#include <gtest/gtest.h>

#include "phase/bbv.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using adaptsim::phase::Bbv;

TEST(Bbv, NormalisedSumsToOne)
{
    const auto wl = workload::specBenchmark("gzip", 50000);
    const auto trace = wl.generate(0, 2000);
    const auto bbv = Bbv::ofTrace(trace);
    double sum = 0.0;
    for (double v : bbv.values())
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(bbv.opCount(), 2000u);
}

TEST(Bbv, SelfDistanceZero)
{
    const auto wl = workload::specBenchmark("gzip", 50000);
    const auto bbv =
        Bbv::ofTrace(wl.generate(0, 2000));
    EXPECT_NEAR(bbv.manhattan(bbv), 0.0, 1e-12);
}

TEST(Bbv, DistanceSymmetricAndBounded)
{
    const auto wl = workload::specBenchmark("vpr", 100000);
    const auto a = Bbv::ofTrace(wl.generate(0, 2000));
    const auto b = Bbv::ofTrace(wl.generate(60000, 2000));
    EXPECT_NEAR(a.manhattan(b), b.manhattan(a), 1e-12);
    EXPECT_GE(a.manhattan(b), 0.0);
    EXPECT_LE(a.manhattan(b), 2.0);
}

TEST(Bbv, SameKernelIsClose)
{
    const auto wl = workload::specBenchmark("swim", 200000);
    // Two nearby windows inside the same segment.
    const auto a = Bbv::ofTrace(wl.generate(10000, 2000));
    const auto b = Bbv::ofTrace(wl.generate(14000, 2000));
    EXPECT_LT(a.manhattan(b), 0.3);
}

TEST(Bbv, DifferentKernelsAreFar)
{
    const auto wl = workload::specBenchmark("gap", 400000);
    // gap schedules very different kernels (compute vs chase).
    const auto a = Bbv::ofTrace(wl.generate(10000, 3000));
    const auto b = Bbv::ofTrace(wl.generate(250000, 3000));
    EXPECT_GT(a.manhattan(b), 0.8);
}

TEST(Bbv, EmptyTraceIsAllZero)
{
    Bbv bbv;
    bbv.normalise();
    for (double v : bbv.values())
        EXPECT_EQ(v, 0.0);
}
