/**
 * @file
 * Streaming statistics helpers used by counters, benches and tests.
 */

#ifndef ADAPTSIM_COMMON_STATS_HH
#define ADAPTSIM_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace adaptsim
{

/** Welford-style streaming mean/variance with min/max tracking. */
class RunningStat
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of samples so far. */
    std::uint64_t count() const { return n_; }

    /** Mean of samples, 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance, 0 when fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator (parallel Welford combination). */
    void merge(const RunningStat &other);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of strictly positive values; 0 for empty input. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Median (lower middle for even sizes); 0 for empty input. */
double median(std::vector<double> values);

/**
 * Linear-interpolated percentile of @p values (p in [0, 100]).
 * Returns 0 for empty input.
 */
double percentile(std::vector<double> values, double p);

/**
 * Empirical CDF evaluated from the right: fraction of values >= x.
 * Matches the paper's "accumulated from the right" ECDF (Fig. 7).
 */
double ecdfFromRight(const std::vector<double> &values, double x);

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_STATS_HH
