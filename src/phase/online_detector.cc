#include "phase/online_detector.hh"

#include <limits>

namespace adaptsim::phase
{

OnlinePhaseDetector::OnlinePhaseDetector(double threshold,
                                         std::size_t max_phases)
    : threshold_(threshold), maxPhases_(max_phases)
{
}

OnlinePhaseDetector::Observation
OnlinePhaseDetector::observe(const Bbv &bbv)
{
    // Find the closest known signature.
    std::size_t best = ~std::size_t(0);
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        const double d = signatures_[i].manhattan(bbv);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }

    Observation obs;
    if (best != ~std::size_t(0) && best_d <= threshold_) {
        obs.newPhase = false;
        obs.phaseId = best;
        ++observations_[best];
    } else if (signatures_.size() < maxPhases_) {
        obs.newPhase = true;
        obs.phaseId = signatures_.size();
        signatures_.push_back(bbv);
        observations_.push_back(1);
    } else {
        // Table full: fall back to the nearest signature.
        obs.newPhase = false;
        obs.phaseId = best;
        ++observations_[best];
    }
    obs.phaseChanged = obs.phaseId != current_;
    current_ = obs.phaseId;
    return obs;
}

} // namespace adaptsim::phase
