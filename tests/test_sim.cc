/**
 * @file
 * Tests of the pluggable performance-model seam (src/sim).
 *
 * The load-bearing guarantees: the "cycle" backend is bit-identical
 * to driving uarch::Core directly (frozen golden matrix), the
 * "interval" backend tracks cycle-level IPC within a frozen error
 * bound across the whole 26-program suite, and the registry is safe
 * under concurrent lookup (exercised under TSan in tier-1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "harness/gather.hh"
#include "sim/cycle_level_model.hh"
#include "sim/interval_model.hh"
#include "sim/perf_model.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

constexpr std::uint64_t programLength = 100000;

uarch::SimResult
runBackend(const sim::PerfModel &model, const std::string &bench,
           const space::Configuration &cfg,
           std::uint64_t warm = 8000, std::uint64_t detail = 4000)
{
    const auto wl = workload::specBenchmark(bench, programLength);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(cfg);
    const auto session = model.makeSession(cc, wp);
    session->warm(wl.generate(40000 - warm, warm));
    return model.run(*session, wl.generate(40000, detail));
}

} // namespace

TEST(Sim, RegistryHasBuiltins)
{
    const auto names = sim::perfModelNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "cycle"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "interval"),
              names.end());

    const auto &cycle = sim::perfModel("cycle");
    EXPECT_STREQ(cycle.name(), "cycle");
    EXPECT_EQ(cycle.fidelity(), sim::Fidelity::CycleLevel);
    EXPECT_TRUE(cycle.supportsObservers());
    // Tag 0 is the pre-seam reference model: migrated v1 cache
    // records stay valid for exactly this backend.
    EXPECT_EQ(cycle.cacheTag(), 0u);

    const auto &interval = sim::perfModel("interval");
    EXPECT_STREQ(interval.name(), "interval");
    EXPECT_EQ(interval.fidelity(), sim::Fidelity::Analytical);
    EXPECT_FALSE(interval.supportsObservers());
    EXPECT_NE(interval.cacheTag(), cycle.cacheTag());

    EXPECT_EQ(sim::findPerfModel("no-such-backend"), nullptr);
    EXPECT_EQ(sim::findPerfModel("cycle"), &cycle);

    EXPECT_STREQ(sim::fidelityName(sim::Fidelity::CycleLevel),
                 "cycle-level");
    EXPECT_STREQ(sim::fidelityName(sim::Fidelity::Analytical),
                 "analytical");
}

TEST(Sim, DefaultBackendFollowsEnv)
{
    unsetenv("ADAPTSIM_BACKEND");
    EXPECT_STREQ(sim::defaultPerfModel().name(), "cycle");
    setenv("ADAPTSIM_BACKEND", "interval", 1);
    EXPECT_STREQ(sim::defaultPerfModel().name(), "interval");
    unsetenv("ADAPTSIM_BACKEND");
    EXPECT_STREQ(sim::defaultPerfModel().name(), "cycle");
}

TEST(Sim, CycleBackendBitIdenticalToDirectCore)
{
    // The same frozen width/IQ golden matrix as
    // test_pipeline.cc:GoldenResultsAreFrozen — re-homing the
    // pipeline behind the seam must not change a single cycle.
    struct Golden
    {
        const char *bench;
        int width;
        int iq;
        std::uint64_t cycles;
        std::uint64_t committedOps;
        std::uint64_t mispredicts;
        std::uint64_t dcMisses;
        std::uint64_t wrongPathOps;
    };
    const Golden goldens[] = {
        {"eon", 4, -1, 4609ull, 4000ull, 13ull, 104ull, 381ull},
        {"gcc", 4, -1, 12152ull, 4000ull, 232ull, 816ull, 9580ull},
        {"mcf", 4, -1, 18507ull, 4000ull, 56ull, 1675ull, 3497ull},
        {"swim", 2, -1, 7212ull, 4000ull, 28ull, 422ull, 596ull},
        {"crafty", 4, 8, 9674ull, 4000ull, 196ull, 159ull, 8188ull},
        {"sixtrack", 8, -1, 4438ull, 4000ull, 13ull, 103ull,
         934ull},
        {"art", 4, 16, 5927ull, 4000ull, 6ull, 246ull, 249ull},
    };
    const auto &model = sim::perfModel("cycle");
    for (const auto &g : goldens) {
        auto cfg = harness::paperBaselineConfig();
        cfg.setValue(space::Param::Width, g.width);
        if (g.iq > 0)
            cfg.setValue(space::Param::IqSize, g.iq);
        const auto r = runBackend(model, g.bench, cfg);
        EXPECT_EQ(r.cycles, g.cycles) << g.bench;
        EXPECT_EQ(r.events.committedOps, g.committedOps) << g.bench;
        EXPECT_EQ(r.events.mispredicts, g.mispredicts) << g.bench;
        EXPECT_EQ(r.events.dcMisses, g.dcMisses) << g.bench;
        EXPECT_EQ(r.events.wrongPathOps, g.wrongPathOps) << g.bench;
    }
}

TEST(Sim, CycleBackendMatchesDirectCoreEventForEvent)
{
    // Beyond the golden fields: a full EventCounts comparison on one
    // workload, driving the exact same warm/run sequence both ways.
    const auto wl = workload::specBenchmark("gcc", programLength);
    const auto cfg = harness::paperBaselineConfig();
    const auto cc = uarch::CoreConfig::fromConfiguration(cfg);
    const auto warm = wl.generate(32000, 8000);
    const auto trace = wl.generate(40000, 4000);

    workload::WrongPathGenerator wp_direct(wl.averageParams(),
                                           wl.seed() ^ 0x57a71cULL);
    uarch::Core core(cc, wp_direct);
    core.warm(warm);
    const auto direct = core.run(trace);

    workload::WrongPathGenerator wp_seam(wl.averageParams(),
                                         wl.seed() ^ 0x57a71cULL);
    const auto &model = sim::perfModel("cycle");
    const auto session = model.makeSession(cc, wp_seam);
    session->warm(warm);
    const auto seam = model.run(*session, trace);

    EXPECT_EQ(seam.cycles, direct.cycles);
    EXPECT_EQ(seam.events.fetchedOps, direct.events.fetchedOps);
    EXPECT_EQ(seam.events.squashedOps, direct.events.squashedOps);
    EXPECT_EQ(seam.events.icMisses, direct.events.icMisses);
    EXPECT_EQ(seam.events.l2Misses, direct.events.l2Misses);
    EXPECT_EQ(seam.events.bpredLookups, direct.events.bpredLookups);
    EXPECT_EQ(seam.events.iqWakeups, direct.events.iqWakeups);
    EXPECT_EQ(seam.events.rfReads, direct.events.rfReads);
    EXPECT_EQ(seam.events.occRobSum, direct.events.occRobSum);
}

TEST(Sim, IntervalDeterministicAndCommitsTrace)
{
    const auto &model = sim::perfModel("interval");
    const auto cfg = harness::paperBaselineConfig();
    const auto a = runBackend(model, "gcc", cfg);
    const auto b = runBackend(model, "gcc", cfg);
    EXPECT_EQ(a.events.committedOps, 4000u);
    EXPECT_GT(a.cycles, 0u);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events.mispredicts, b.events.mispredicts);
    EXPECT_EQ(a.events.dcMisses, b.events.dcMisses);
}

TEST(Sim, IntervalIpcWithinPhysicalBounds)
{
    const auto &model = sim::perfModel("interval");
    auto cfg = harness::paperBaselineConfig();
    for (const char *bench : {"eon", "mcf", "swim", "crafty"}) {
        const auto r = runBackend(model, bench, cfg);
        EXPECT_GT(r.events.ipc(), 0.0) << bench;
        EXPECT_LE(r.events.ipc(), 4.0) << bench;
    }
    cfg.setValue(space::Param::Width, 2);
    EXPECT_LE(runBackend(model, "sixtrack", cfg).events.ipc(), 2.0);
}

TEST(Sim, IntervalAccuracyBoundedOnSuite)
{
    // The fidelity contract: across the full 26-program suite on the
    // paper baseline, interval-analysis IPC stays close to the
    // cycle-level reference.  The bounds are frozen from the
    // reference build; loosening them is a fidelity regression.
    const auto &cycle = sim::perfModel("cycle");
    const auto &interval = sim::perfModel("interval");
    const auto cfg = harness::paperBaselineConfig();

    double abs_err_sum = 0.0;
    double worst = 0.0;
    std::string worst_bench;
    const auto &names = workload::specNames();
    for (const auto &bench : names) {
        const double ref =
            runBackend(cycle, bench, cfg).events.ipc();
        const double est =
            runBackend(interval, bench, cfg).events.ipc();
        const double err = std::abs(est - ref);
        abs_err_sum += err;
        if (err > worst) {
            worst = err;
            worst_bench = bench;
        }
    }
    const double mae = abs_err_sum / double(names.size());
    std::printf("interval backend: IPC MAE %.4f, worst %.4f (%s)\n",
                mae, worst, worst_bench.c_str());

    // Frozen accuracy bounds (reference build measured MAE 0.041,
    // worst 0.124 on apsi/applu; see DESIGN.md §11).
    EXPECT_LT(mae, 0.06);
    EXPECT_LT(worst, 0.18);
}

TEST(Sim, EvaluateConvenienceMatchesManualPipeline)
{
    const auto wl = workload::specBenchmark("mcf", programLength);
    const auto cfg = harness::paperBaselineConfig();
    const auto warm = wl.generate(32000, 8000);
    const auto trace = wl.generate(40000, 4000);

    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto m = sim::perfModel("cycle").evaluate(cfg, wp, warm,
                                                    trace);
    EXPECT_GT(m.cycles, 0.0);
    EXPECT_DOUBLE_EQ(m.instructions, 4000.0);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_GT(m.joules, 0.0);

    workload::WrongPathGenerator wp2(wl.averageParams(),
                                     wl.seed() ^ 0x57a71cULL);
    const auto m2 = sim::perfModel("cycle").evaluate(cfg, wp2, warm,
                                                     trace);
    EXPECT_DOUBLE_EQ(m2.cycles, m.cycles);
    EXPECT_DOUBLE_EQ(m2.joules, m.joules);
}

TEST(Sim, RegistryConcurrentLookupIsSafe)
{
    // First-touch registration races with lookups from worker
    // threads in real benches; tier-1 runs this under TSan.
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&ok]() {
            for (int i = 0; i < 200; ++i) {
                const auto &cycle = sim::perfModel("cycle");
                const auto &interval = sim::perfModel("interval");
                if (cycle.cacheTag() != interval.cacheTag() &&
                    sim::findPerfModel("nope") == nullptr &&
                    sim::perfModelNames().size() >= 2)
                    ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(ok.load(), 8 * 200);
}
