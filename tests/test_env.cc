/**
 * @file
 * Tests of the environment-variable knobs.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace adaptsim;

TEST(Env, DoubleFallback)
{
    unsetenv("ADAPTSIM_TEST_D");
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 2.5);
    setenv("ADAPTSIM_TEST_D", "1.25", 1);
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 1.25);
    setenv("ADAPTSIM_TEST_D", "garbage", 1);
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 2.5);
    unsetenv("ADAPTSIM_TEST_D");
}

TEST(Env, LongFallback)
{
    unsetenv("ADAPTSIM_TEST_L");
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 7);
    setenv("ADAPTSIM_TEST_L", "42", 1);
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 42);
    unsetenv("ADAPTSIM_TEST_L");
}

TEST(Env, StringFallback)
{
    unsetenv("ADAPTSIM_TEST_S");
    EXPECT_EQ(envString("ADAPTSIM_TEST_S", "dflt"), "dflt");
    setenv("ADAPTSIM_TEST_S", "custom", 1);
    EXPECT_EQ(envString("ADAPTSIM_TEST_S", "dflt"), "custom");
    unsetenv("ADAPTSIM_TEST_S");
}

TEST(Env, ScaleRejectsNonPositive)
{
    setenv("ADAPTSIM_SCALE", "-3", 1);
    EXPECT_EQ(experimentScale(), 1.0);
    setenv("ADAPTSIM_SCALE", "0.5", 1);
    EXPECT_EQ(experimentScale(), 0.5);
    unsetenv("ADAPTSIM_SCALE");
}

TEST(Env, ThreadsPositive)
{
    unsetenv("ADAPTSIM_THREADS");
    EXPECT_GE(numThreads(), 1u);
    setenv("ADAPTSIM_THREADS", "3", 1);
    EXPECT_EQ(numThreads(), 3u);
    unsetenv("ADAPTSIM_THREADS");
}
