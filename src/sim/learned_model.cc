#include "sim/learned_model.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/sync.hh"

namespace adaptsim::sim
{

using isa::MicroOp;
using isa::OpClass;

namespace
{

/** Direct-mapped line-tag filter: a miss-fraction footprint proxy
 *  with none of the real hierarchy's replacement state. */
class LineFilter
{
  public:
    explicit LineFilter(std::size_t lines)
        : tags_(lines, invalidAddr)
    {
    }

    bool
    miss(Addr line)
    {
        Addr &slot = tags_[line & (tags_.size() - 1)];
        if (slot == line)
            return false;
        slot = line;
        return true;
    }

  private:
    std::vector<Addr> tags_;
};

/** Process-wide surrogate state.  Sessions take a shared_ptr
 *  snapshot, so a concurrent retrain never invalidates a session
 *  mid-run. */
struct SurrogateState
{
    Mutex mutex;
    std::shared_ptr<const ml::Surrogate> surrogate
        ADAPTSIM_GUARDED_BY(mutex);
    bool envTried ADAPTSIM_GUARDED_BY(mutex) = false;
};

SurrogateState &
surrogateState()
{
    static SurrogateState s;
    return s;
}

/**
 * Content-addressed memo of trace summaries.  A phase's detail trace
 * is summarised once and reused by every configuration evaluated on
 * it (the summary depends on the trace alone), which removes the
 * dominant per-evaluation cost of the learned backend.  Keys hash
 * the fields that define a µop stream, so two traces collide only
 * if FNV-1a collides — never via pointer reuse.
 */
class SummaryCache
{
  public:
    TraceSummary
    get(std::span<const MicroOp> trace)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        const auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 0x100000001b3ULL;
        };
        mix(trace.size());
        for (const MicroOp &op : trace) {
            mix(op.pc);
            mix(op.effAddr);
            mix((static_cast<std::uint64_t>(op.opClass) << 1) |
                (op.taken ? 1 : 0));
        }

        MutexLock lock(mutex_);
        for (auto &e : entries_) {
            if (e.valid && e.hash == h)
                return e.summary;
        }
        TraceSummary s;
        {
            // Summarise outside nothing: the pass is cheap enough
            // that holding the lock keeps racing threads from
            // duplicating the work.
            s = summariseTrace(trace);
        }
        Entry &slot = entries_[next_];
        next_ = (next_ + 1) % entries_.size();
        slot.valid = true;
        slot.hash = h;
        slot.summary = s;
        return s;
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t hash = 0;
        TraceSummary summary;
    };

    Mutex mutex_;
    std::array<Entry, 64> entries_ ADAPTSIM_GUARDED_BY(mutex_);
    std::size_t next_ ADAPTSIM_GUARDED_BY(mutex_) = 0;
};

SummaryCache &
summaryCache()
{
    static SummaryCache cache;
    return cache;
}

double
log2Of(double v)
{
    return v > 1.0 ? std::log2(v) : 0.0;
}

/**
 * Miss fraction at the configured capacity, log-interpolated between
 * the bracketing filter scales.  @p cap_lo/cap_hi are the filter
 * capacities in bytes.
 */
double
interpolateMiss(double miss_lo, double miss_hi, double cap_lo,
                double cap_hi, double cap)
{
    if (cap <= cap_lo)
        return miss_lo;
    if (cap >= cap_hi)
        return miss_hi;
    const double t = (std::log2(cap) - std::log2(cap_lo)) /
                     (std::log2(cap_hi) - std::log2(cap_lo));
    return miss_lo + (miss_hi - miss_lo) * t;
}

} // namespace

TraceSummary
summariseTrace(std::span<const isa::MicroOp> trace)
{
    TraceSummary s;
    s.ops = trace.size();
    if (s.ops == 0)
        return s;

    LineFilter i256(256), i4k(4096);
    LineFilter d256(256), d1k(1024), d8k(8192);

    // Last-direction table for the toggle proxy (tag + direction,
    // direct-mapped on the branch PC).
    struct DirEntry
    {
        Addr pc = invalidAddr;
        bool taken = false;
    };
    std::vector<DirEntry> dirs(1024);

    // Last-writer trace index per architectural register (int + fp
    // share the 0..63 space exactly as the interval taint tracker).
    std::array<std::int64_t, 64> writer;
    writer.fill(-(std::int64_t{1} << 20));

    std::uint64_t class_count[static_cast<int>(
        OpClass::NumOpClasses)] = {};
    std::uint64_t branches = 0, taken = 0, toggles = 0;
    std::uint64_t fetch_lines = 0, i_miss256 = 0, i_miss4k = 0;
    std::uint64_t mem_ops = 0, d_miss256 = 0, d_miss1k = 0,
                  d_miss8k = 0;
    std::uint64_t short_dep = 0;
    Addr last_line = invalidAddr;

    for (std::size_t si = 0; si < trace.size(); ++si) {
        const MicroOp &op = trace[si];
        const auto i = static_cast<std::int64_t>(si);
        ++class_count[static_cast<int>(op.opClass)];

        const Addr line =
            op.pc / uarch::CoreConfig::cacheLineBytes;
        if (line != last_line) {
            last_line = line;
            ++fetch_lines;
            if (i256.miss(line))
                ++i_miss256;
            if (i4k.miss(line))
                ++i_miss4k;
        }

        if (op.isMem()) {
            ++mem_ops;
            const Addr dline =
                op.effAddr / uarch::CoreConfig::cacheLineBytes;
            if (d256.miss(dline))
                ++d_miss256;
            if (d1k.miss(dline))
                ++d_miss1k;
            if (d8k.miss(dline))
                ++d_miss8k;
        } else if (op.isBranch()) {
            ++branches;
            if (op.taken)
                ++taken;
            DirEntry &e = dirs[(op.pc >> 2) & (dirs.size() - 1)];
            if (e.pc == op.pc && e.taken != op.taken)
                ++toggles;
            e.pc = op.pc;
            e.taken = op.taken;
        }

        const auto close = [&](int r) {
            return r >= 0 && r < 64 &&
                   i - writer[static_cast<std::size_t>(r)] <= 4;
        };
        if (close(op.srcReg0) || close(op.srcReg1))
            ++short_dep;
        if (op.destReg >= 0 && op.destReg < 64)
            writer[static_cast<std::size_t>(op.destReg)] = i;
    }

    const double n = static_cast<double>(s.ops);
    for (int c = 0; c < static_cast<int>(OpClass::NumOpClasses); ++c)
        s.classFrac[c] = static_cast<double>(class_count[c]) / n;
    if (branches > 0) {
        s.branchTaken =
            static_cast<double>(taken) / double(branches);
        s.branchToggle =
            static_cast<double>(toggles) / double(branches);
    }
    if (fetch_lines > 0) {
        s.iLineMiss256 =
            static_cast<double>(i_miss256) / double(fetch_lines);
        s.iLineMiss4k =
            static_cast<double>(i_miss4k) / double(fetch_lines);
    }
    if (mem_ops > 0) {
        s.dLineMiss256 =
            static_cast<double>(d_miss256) / double(mem_ops);
        s.dLineMiss1k =
            static_cast<double>(d_miss1k) / double(mem_ops);
        s.dLineMiss8k =
            static_cast<double>(d_miss8k) / double(mem_ops);
    }
    s.shortDep = static_cast<double>(short_dep) / n;
    return s;
}

std::vector<double>
learnedFeatures(const TraceSummary &s, const uarch::CoreConfig &cfg)
{
    std::vector<double> x;
    x.reserve(40);

    // Trace half.
    for (double f : s.classFrac)
        x.push_back(f);
    x.push_back(s.branchTaken);
    x.push_back(s.branchToggle);
    x.push_back(s.iLineMiss256);
    x.push_back(s.iLineMiss4k);
    x.push_back(s.dLineMiss256);
    x.push_back(s.dLineMiss1k);
    x.push_back(s.dLineMiss8k);
    x.push_back(s.shortDep);

    // Configuration half (log scales where the space is geometric).
    const double width = cfg.width;
    x.push_back(width);
    x.push_back(1.0 / width);
    x.push_back(log2Of(cfg.robSize));
    x.push_back(log2Of(cfg.iqSize));
    x.push_back(log2Of(cfg.lsqSize));
    x.push_back(log2Of(cfg.rfSize));
    x.push_back(cfg.rfRdPorts);
    x.push_back(cfg.rfWrPorts);
    x.push_back(log2Of(cfg.gshareEntries));
    x.push_back(log2Of(cfg.btbEntries));
    x.push_back(cfg.maxBranches);
    x.push_back(log2Of(double(cfg.icacheBytes)));
    x.push_back(log2Of(double(cfg.dcacheBytes)));
    x.push_back(log2Of(double(cfg.l2Bytes)));
    x.push_back(cfg.depthFo4);
    x.push_back(cfg.frontendDelay);

    // Cross terms carrying the analytical structure a linear model
    // cannot synthesise: miss fraction at the configured capacity ×
    // the op fraction that pays it.
    const double mem_frac = s.classFrac[static_cast<int>(
                                OpClass::Load)] +
                            s.classFrac[static_cast<int>(
                                OpClass::Store)];
    const double d_miss = interpolateMiss(
        s.dLineMiss256, s.dLineMiss8k, 256.0 * 64.0, 8192.0 * 64.0,
        double(cfg.dcacheBytes));
    const double d_miss_mid = interpolateMiss(
        s.dLineMiss256, s.dLineMiss1k, 256.0 * 64.0, 1024.0 * 64.0,
        double(cfg.dcacheBytes));
    const double i_miss = interpolateMiss(
        s.iLineMiss256, s.iLineMiss4k, 256.0 * 64.0, 4096.0 * 64.0,
        double(cfg.icacheBytes));
    const double branch_frac =
        s.classFrac[static_cast<int>(OpClass::Branch)];
    x.push_back(mem_frac * d_miss);
    x.push_back(mem_frac * d_miss_mid);
    x.push_back(i_miss);
    x.push_back(branch_frac * s.branchToggle *
                (cfg.frontendDelay + 10.0));
    x.push_back(s.shortDep / width);
    x.push_back(mem_frac * d_miss * s.shortDep);
    // Latency-weighted stall estimates: L1-D misses pay the L2
    // latency, the far-footprint residue pays DRAM, L1-I misses
    // stall the front end, and the ILP-limited floor scales with
    // 1/width.
    const double miss_cpi = mem_frac * d_miss * cfg.l2Latency;
    const double dram_cpi =
        mem_frac * s.dLineMiss8k * cfg.memLatency /
        double(1 + log2Of(double(cfg.l2Bytes)));
    const double bp_cpi = branch_frac * s.branchToggle *
                          (cfg.frontendDelay + 10.0);
    x.push_back(miss_cpi);
    x.push_back(dram_cpi);
    x.push_back(i_miss * cfg.l2Latency);
    x.push_back(s.shortDep * (1.0 / width) *
                (1.0 +
                 s.classFrac[static_cast<int>(OpClass::FpMul)] +
                 s.classFrac[static_cast<int>(OpClass::FpDiv)]));

    // Physics feature: a mini interval-style IPC estimate built
    // from the additive CPI terms above.  The linear head only has
    // to calibrate it, which captures the 1/x response a linear
    // model cannot synthesise from the raw knobs.
    const double base_cpi = 1.0 / width + 0.3 * s.shortDep;
    const double est_cpi = base_cpi + 0.25 * miss_cpi +
                           0.5 * dram_cpi + 0.2 * bp_cpi +
                           0.3 * i_miss * cfg.l2Latency;
    const double est_ipc =
        std::clamp(1.0 / est_cpi, 0.05, width);
    x.push_back(est_ipc);
    x.push_back(est_ipc * est_ipc / width);
    return x;
}

void
setLearnedSurrogate(ml::Surrogate surrogate)
{
    auto &state = surrogateState();
    MutexLock lock(state.mutex);
    state.surrogate = surrogate.trained()
                          ? std::make_shared<const ml::Surrogate>(
                                std::move(surrogate))
                          : nullptr;
    state.envTried = true;   // an explicit install wins over the env
}

std::shared_ptr<const ml::Surrogate>
learnedSurrogateSnapshot()
{
    auto &state = surrogateState();
    MutexLock lock(state.mutex);
    if (!state.surrogate && !state.envTried) {
        state.envTried = true;
        const std::string path = surrogatePath();
        if (!path.empty()) {
            const std::string text = readFile(path);
            ml::Surrogate s;
            if (!text.empty() &&
                ml::Surrogate::deserialize(text, s))
                state.surrogate =
                    std::make_shared<const ml::Surrogate>(
                        std::move(s));
            else
                warn("ADAPTSIM_SURROGATE=", path,
                     ": cannot load surrogate weights; the "
                     "\"learned\" backend stays untrained");
        }
    }
    return state.surrogate;
}

bool
learnedSurrogateTrained()
{
    return learnedSurrogateSnapshot() != nullptr;
}

bool
saveLearnedSurrogate(const std::string &path)
{
    const auto snapshot = learnedSurrogateSnapshot();
    if (!snapshot)
        return false;
    return atomicWriteFile(path, snapshot->serialize());
}

namespace
{

class LearnedSession final : public CoreSession
{
  public:
    LearnedSession(const uarch::CoreConfig &cfg,
                   std::shared_ptr<const ml::Surrogate> surrogate)
        : cfg_(cfg), surrogate_(std::move(surrogate))
    {
    }

    /** The surrogate predicts steady-state behaviour from the detail
     *  window itself; there is no cache/predictor state to warm. */
    void warm(std::span<const isa::MicroOp>) override {}

    uarch::SimResult
    run(std::span<const isa::MicroOp> trace,
        uarch::SimObserver * /* unsupported */) override
    {
        uarch::SimResult result;
        const std::uint64_t n = trace.size();
        if (n == 0) {
            // Degenerate window: a well-defined empty result, no
            // division anywhere (see the empty-trace regression
            // tests).
            energyPerInst_ = 0.0;
            uncertainty_ = 0.0;
            return result;
        }

        const auto summary = summaryCache().get(trace);
        const auto x = learnedFeatures(summary, cfg_);
        const auto p = surrogate_->predict(x);

        // Physical clamps: IPC in (0, width], energy non-negative.
        const double ipc = std::clamp(
            p.primary, 0.05, static_cast<double>(cfg_.width));
        energyPerInst_ = std::max(p.energyPerInst, 1e-12);
        uncertainty_ = p.uncertainty;

        const auto cycles = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(n) / ipc));
        result.cycles = cycles;
        result.events.cycles = cycles;
        result.events.committedOps = n;
        result.events.fetchedOps = n;
        return result;
    }

    const uarch::CoreConfig &config() const override
    {
        return cfg_;
    }

    /** Metrics straight from the surrogate heads — the event counts
     *  carry no energy information for this backend. */
    power::Metrics
    metricsFor(const uarch::SimResult &result) override
    {
        power::Metrics m;
        m.cycles = static_cast<double>(result.cycles);
        m.instructions =
            static_cast<double>(result.events.committedOps);
        if (m.cycles <= 0.0 || m.instructions <= 0.0)
            return m;
        m.seconds = m.cycles * cfg_.clockPeriodSec;
        m.ipc = m.instructions / m.cycles;
        m.ips = m.seconds > 0.0 ? m.instructions / m.seconds : 0.0;
        m.joules = energyPerInst_ * m.instructions;
        m.watts = m.seconds > 0.0 ? m.joules / m.seconds : 0.0;
        m.efficiency = power::efficiencyOf(m.ips, m.watts);
        return m;
    }

    double lastUncertainty() const override { return uncertainty_; }

  private:
    uarch::CoreConfig cfg_;
    std::shared_ptr<const ml::Surrogate> surrogate_;
    double energyPerInst_ = 0.0;
    double uncertainty_ = 0.0;
};

} // namespace

std::unique_ptr<CoreSession>
LearnedModel::makeSession(const uarch::CoreConfig &cfg,
                          workload::WrongPathGenerator &) const
{
    auto snapshot = learnedSurrogateSnapshot();
    if (!snapshot)
        fatal("the \"learned\" backend has no fitted surrogate; "
              "train one with harness::trainLearnedBackend() from "
              "cached cycle-level records, or set "
              "ADAPTSIM_SURROGATE to weights saved by "
              "saveLearnedSurrogate()");
    return std::make_unique<LearnedSession>(cfg,
                                            std::move(snapshot));
}

} // namespace adaptsim::sim
