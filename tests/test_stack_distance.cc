/**
 * @file
 * Tests of the Fenwick-tree stack-distance monitor, including a
 * property test against a naive LRU-stack reference implementation.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/rng.hh"
#include "counters/reuse_distance.hh"
#include "counters/stack_distance.hh"

using namespace adaptsim;
using adaptsim::counters::StackDistanceMonitor;

namespace
{

/** Naive O(n) LRU stack used as the ground truth. */
class NaiveStack
{
  public:
    /** Returns the stack distance, or -1 for a cold access. */
    long
    access(Addr block)
    {
        long dist = 0;
        for (auto it = stack_.begin(); it != stack_.end(); ++it) {
            if (*it == block) {
                stack_.erase(it);
                stack_.push_front(block);
                return dist;
            }
            ++dist;
        }
        stack_.push_front(block);
        return -1;
    }

  private:
    std::list<Addr> stack_;
};

} // namespace

TEST(StackDistance, KnownSequence)
{
    StackDistanceMonitor m(64);
    // Blocks: A B C A  → A's distance is 2 distinct blocks (B, C).
    m.access(0 * 64);
    m.access(1 * 64);
    m.access(2 * 64);
    m.access(0 * 64);
    EXPECT_EQ(m.coldAccesses(), 3u);
    const auto &h = m.histogram();
    EXPECT_EQ(h.numSamples(), 1u);
    EXPECT_EQ(h.count(h.binIndex(2)), 1u);
}

TEST(StackDistance, RepeatAccessIsDistanceZero)
{
    StackDistanceMonitor m(64);
    m.access(0);
    m.access(0);
    const auto &h = m.histogram();
    EXPECT_EQ(h.count(h.binIndex(0)), 1u);
}

TEST(StackDistance, SubBlockAddressesShareBlock)
{
    StackDistanceMonitor m(64);
    m.access(0);
    m.access(63);   // same 64B block
    EXPECT_EQ(m.coldAccesses(), 1u);
    EXPECT_EQ(m.histogram().numSamples(), 1u);
}

TEST(StackDistance, MissRatioForCapacity)
{
    StackDistanceMonitor m(64);
    // Cyclic sweep over 8 blocks, twice: second pass distances = 7.
    for (int pass = 0; pass < 2; ++pass)
        for (int b = 0; b < 8; ++b)
            m.access(Addr(b) * 64);
    // A 4-block LRU cache misses everything (distance 7 ≥ 4 plus
    // the 8 cold accesses): miss ratio 1.
    EXPECT_NEAR(m.missRatioFor(4), 1.0, 1e-12);
    // A 16-block cache holds everything after warm-up: only the 8
    // cold misses remain.
    EXPECT_NEAR(m.missRatioFor(16), 0.5, 1e-12);
}

TEST(StackDistance, MatchesNaiveReferenceOnRandomStreams)
{
    // Property test: exact agreement with a naive LRU stack over
    // random streams with varying locality, including Fenwick-tree
    // growth (more accesses than the initial tree capacity).
    Rng rng(77);
    for (int trial = 0; trial < 3; ++trial) {
        StackDistanceMonitor m(64);
        NaiveStack ref;
        Histogram ref_hist(Histogram::Binning::Log2,
                           adaptsim::counters::reuseBins);
        std::uint64_t ref_cold = 0;
        const int blocks = 50 + int(rng.nextBounded(400));
        for (int i = 0; i < 3000; ++i) {
            const Addr block = rng.nextBounded(blocks);
            m.access(block * 64);
            const long d = ref.access(block);
            if (d < 0)
                ++ref_cold;
            else
                ref_hist.add(std::uint64_t(d));
        }
        EXPECT_EQ(m.coldAccesses(), ref_cold);
        ASSERT_EQ(m.histogram().numBins(), ref_hist.numBins());
        for (std::size_t b = 0; b < ref_hist.numBins(); ++b)
            EXPECT_EQ(m.histogram().count(b), ref_hist.count(b))
                << "bin " << b << " trial " << trial;
    }
}

TEST(StackDistance, ClearResets)
{
    StackDistanceMonitor m(64);
    m.access(0);
    m.access(64);
    m.access(0);
    m.clear();
    EXPECT_EQ(m.accesses(), 0u);
    EXPECT_EQ(m.coldAccesses(), 0u);
    EXPECT_EQ(m.histogram().numSamples(), 0u);
    // Still functional after clear.
    m.access(0);
    m.access(0);
    EXPECT_EQ(m.histogram().numSamples(), 1u);
}

TEST(StackDistance, SurvivesTreeGrowth)
{
    // More than the initial 1024-capacity Fenwick tree.
    StackDistanceMonitor m(64);
    for (int i = 0; i < 5000; ++i)
        m.access(Addr(i % 700) * 64);
    EXPECT_EQ(m.accesses(), 5000u);
    EXPECT_EQ(m.coldAccesses(), 700u);
    // Steady-state distance is 699 for every re-reference.
    const auto &h = m.histogram();
    EXPECT_EQ(h.count(h.binIndex(699)), 5000u - 700u);
}
