#include "uarch/load_store_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::uarch
{

LoadStoreQueue::LoadStoreQueue(int capacity)
    : capacity_(capacity)
{
    if (capacity < 2)
        fatal("LSQ capacity too small: ", capacity);
    slots_.reserve(capacity);
}

void
LoadStoreQueue::insert(std::int32_t rob_idx)
{
    if (full())
        panic("LoadStoreQueue::insert on full queue");
    slots_.push_back(rob_idx);
}

void
LoadStoreQueue::remove(std::int32_t rob_idx)
{
    const auto it = std::find(slots_.begin(), slots_.end(), rob_idx);
    if (it == slots_.end())
        panic("LoadStoreQueue::remove of absent entry");
    slots_.erase(it);
}

LoadStoreQueue::LoadCheck
LoadStoreQueue::checkLoad(const Rob &rob, std::int32_t load_idx,
                          std::uint64_t &searched) const
{
    // Find the load's position, then scan older entries (before it).
    const Addr load_word = rob.entry(load_idx).op.effAddr >> 3;
    LoadCheck result = LoadCheck::NoConflict;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const std::int32_t idx = slots_[i];
        if (idx == load_idx)
            break;
        const RobEntry &e = rob.entry(idx);
        if (!e.op.isStore())
            continue;
        ++searched;
        if ((e.op.effAddr >> 3) == load_word) {
            // Youngest older match wins; keep scanning to find it.
            result = e.state == OpState::Done ||
                     e.state == OpState::Issued ?
                LoadCheck::Forward : LoadCheck::MustWait;
            if (e.state == OpState::Dispatched)
                result = LoadCheck::MustWait;
        }
    }
    return result;
}

} // namespace adaptsim::uarch
