#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace adaptsim
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedGaussian_(0.0), hasCachedGaussian_(false)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("Rng::nextWeighted: negative weight");
        total += w;
    }
    if (total <= 0.0)
        panic("Rng::nextWeighted: weights sum to zero");
    double target = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split(std::uint64_t tag)
{
    return Rng(next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
}

} // namespace adaptsim
