/**
 * @file
 * End-to-end cold-repository gather: per repetition the on-disk
 * cache is wiped and a fresh EvalRepository gathers training data
 * for a fixed phase set.  This is the paper-pipeline bottleneck the
 * shared trace cache attacks: every configuration of a phase replays
 * the same warm (12k µop) + detail (6k µop) traces.
 */

#include "perf_harness.hh"

#include <filesystem>

#include "harness/gather.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);

    const std::uint64_t program_length = 400000;
    const std::uint64_t warm_length = 12000;
    const std::uint64_t detail_length = 6000;

    harness::GatherOptions gopt;
    gopt.sharedRandomConfigs = opt.smoke ? 8 : 16;
    gopt.localNeighbours = opt.smoke ? 4 : 8;
    gopt.oneAtATimeSweep = false;
    gopt.progress = false;

    std::vector<phase::Phase> phases;
    const char *programs[] = {"gcc", "crafty"};
    const std::size_t per_program = opt.smoke ? 1 : 3;
    for (const char *prog : programs) {
        for (std::size_t i = 0; i < per_program; ++i) {
            phase::Phase ph;
            ph.workload = prog;
            ph.index = i;
            ph.startInst = 40000 + i * 60000;
            ph.lengthInsts = detail_length;
            ph.weight = 1.0 / double(per_program);
            phases.push_back(ph);
        }
    }

    const auto dir = std::filesystem::temp_directory_path() /
                     "adaptsim_perf_gather";

    double items = 0.0;
    const auto secs = perf::runTimed(opt, items, [&]() {
        std::filesystem::remove_all(dir);   // cold repository
        harness::EvalRepository repo(
            workload::specSuite(program_length), dir.string(), 1);
        const auto gathered = harness::gatherTrainingData(
            repo, phases, program_length, warm_length, gopt);
        double evals = 0.0;
        for (const auto &g : gathered)
            evals += static_cast<double>(g.evals.size());
        return evals;
    });
    std::filesystem::remove_all(dir);
    perf::emitJson("perf_gather", opt, secs, items, "evals");
    return 0;
}
