/**
 * @file
 * Confidence-gated cascade backend ("cascade"): bulk design-space
 * queries are answered by a cheap model — the learned surrogate when
 * one is trained, the interval analysis otherwise — and only
 * low-confidence points escalate to cycle-level ground truth.
 *
 * Escalation semantics:
 *
 *   - Per run: when the cheap session's lastUncertainty() exceeds
 *     ADAPTSIM_CASCADE_THRESHOLD (IPC units; see common/env), the
 *     trace is re-run on a lazily created cycle-level session.  The
 *     cascade session retains every warm trace it has seen and the
 *     wrong-path generator is untouched by the cheap paths, so for
 *     the single warm+run shape (the repository's) an escalated
 *     result is bit-identical to evaluating the cycle backend
 *     directly.  In multi-interval streams (the controller) a
 *     session escalating late starts its cycle core from the
 *     retained warm state only — escalations there are exact from
 *     the point of creation onward.
 *   - Per batch: the repository asks selectForRefinement() for
 *     near-frontier points (the top slice by efficiency — the
 *     points an adaptivity search acts on) and re-evaluates them on
 *     groundTruthModel(), caching the result under the cycle tag.
 *
 * Escalations are counted process-wide (cascadeEscalations(), obs
 * counter "backend/cascade/escalations").  Records produced through
 * the cascade carry the tag of the backend that actually ran —
 * lastProducer() tells the repository which one that was — so
 * fidelities never mix in the `.evc` store.
 */

#ifndef ADAPTSIM_SIM_CASCADE_MODEL_HH
#define ADAPTSIM_SIM_CASCADE_MODEL_HH

#include "sim/perf_model.hh"

namespace adaptsim::sim
{

/** Process-wide count of uncertainty escalations to cycle level. */
std::uint64_t cascadeEscalations();

/** Confidence-gated cheap-or-exact policy backend ("cascade"). */
class CascadeModel final : public PerfModel
{
  public:
    /** One in this many batch points is refined at ground truth
     *  (at least one per batch).  Kept small: each refinement costs
     *  a full cycle-level evaluation. */
    static constexpr std::size_t kRefineDivisor = 256;

    const char *name() const override { return "cascade"; }
    Fidelity fidelity() const override { return Fidelity::Learned; }

    /** The cheap model's tag: non-escalated results are exactly its
     *  records.  (Escalated results carry the cycle tag via
     *  lastProducer().) */
    std::uint64_t cacheTag() const override;

    /** Accept cycle-level ground truth first — strictly better than
     *  anything the cascade would produce — then cheap records. */
    std::vector<std::uint64_t> cacheLookupTags() const override;

    const PerfModel *groundTruthModel() const override;

    /** Top max(1, n/kRefineDivisor) points by efficiency, further
     *  capped by the caller's @p budget. */
    void selectForRefinement(const std::vector<double> &efficiency,
                             std::size_t budget,
                             std::vector<std::size_t> &out)
        const override;

    bool supportsObservers() const override { return false; }

    std::unique_ptr<CoreSession>
    makeSession(const uarch::CoreConfig &cfg,
                workload::WrongPathGenerator &wrong_path)
        const override;

    /** The model answering bulk queries: "learned" when a surrogate
     *  is installed, else "interval". */
    static const PerfModel &cheapModel();
};

} // namespace adaptsim::sim

#endif // ADAPTSIM_SIM_CASCADE_MODEL_HH
