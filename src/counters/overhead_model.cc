#include "counters/overhead_model.hh"

#include "power/cacti.hh"

namespace adaptsim::counters
{

namespace
{

std::uint64_t
setsOf(std::uint64_t bytes, int assoc, int line)
{
    return bytes / (std::uint64_t(assoc) * line);
}

MonitorOverhead
overheadFor(std::uint64_t cache_bytes, int assoc, int line_bytes,
            std::uint64_t sampled_sets, int bytes_per_entry,
            std::uint64_t entries_per_set)
{
    namespace pw = adaptsim::power;
    const std::uint64_t total_sets =
        setsOf(cache_bytes, assoc, line_bytes);
    if (sampled_sets == 0 || sampled_sets > total_sets)
        sampled_sets = total_sets;
    const double sample_frac =
        double(sampled_sets) / double(total_sets);

    // Monitor storage: a small SRAM sized for the sampled sets.
    const std::uint64_t monitor_bytes =
        sampled_sets * entries_per_set * bytes_per_entry;

    // Every access to a sampled set performs one monitor update
    // (read-modify-write of a few bytes).
    const double update_nj =
        pw::arrayAccessEnergyNj(
            static_cast<int>(sampled_sets * entries_per_set),
            bytes_per_entry) * 2.0;   // read + write
    const double cache_nj =
        pw::sramAccessEnergyNj(cache_bytes, assoc);

    MonitorOverhead out;
    out.dynamicPct = 100.0 * sample_frac * update_nj / cache_nj;
    out.leakagePct = 100.0 * pw::sramLeakageW(monitor_bytes) /
                     pw::sramLeakageW(cache_bytes);
    return out;
}

} // namespace

MonitorOverhead
blockReuseOverhead(std::uint64_t cache_bytes, int assoc,
                   int line_bytes, std::uint64_t sampled_sets)
{
    return overheadFor(cache_bytes, assoc, line_bytes, sampled_sets,
                       blockMonitorBytes,
                       static_cast<std::uint64_t>(assoc));
}

MonitorOverhead
setReuseOverhead(std::uint64_t cache_bytes, int assoc, int line_bytes,
                 std::uint64_t sampled_sets)
{
    return overheadFor(cache_bytes, assoc, line_bytes, sampled_sets,
                       setMonitorBytes, 1);
}

} // namespace adaptsim::counters
