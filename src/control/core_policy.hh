/**
 * @file
 * One predictive adaptivity policy instance — the per-core decision
 * state of the Fig. 2 loop, factored out of the controller so a
 * multi-core chip can run N independent instances against per-core
 * counters (DESIGN.md §15).
 *
 * A CorePolicy owns Stage 1 (the online BBV phase detector) and
 * Stage 3 (the predictive model plus the per-phase prediction
 * memo).  Stage 2 — actually running the profiling interval — stays
 * with the controller, which owns the simulation sessions; the
 * policy only turns the gathered counters into a configuration.
 */

#ifndef ADAPTSIM_CONTROL_CORE_POLICY_HH
#define ADAPTSIM_CONTROL_CORE_POLICY_HH

#include <span>
#include <unordered_map>

#include "counters/counter_bank.hh"
#include "counters/feature_vector.hh"
#include "ml/trainer.hh"
#include "phase/online_detector.hh"

namespace adaptsim::control
{

/** Detector + model + per-phase prediction memory for one core. */
class CorePolicy
{
  public:
    /**
     * @param model trained predictive model (must match
     *        @p feature_set).
     * @param feature_set counter set the model was trained on.
     * @param detector_threshold BBV distance for "new phase".
     */
    CorePolicy(const ml::AdaptivityModel &model,
               counters::FeatureSet feature_set,
               double detector_threshold);

    /** Stage 1 outcome for one interval. */
    struct Decision
    {
        bool phaseChanged = false;
        bool newPhase = false;
        std::size_t phaseId = 0;
    };

    /** Classify one interval's trace (online BBV detection). */
    Decision observe(std::span<const isa::MicroOp> trace);

    /**
     * Stage 3: map a profiled interval's counters to a
     * configuration and remember it for @p phase_id.
     */
    space::Configuration
    predictFrom(std::size_t phase_id,
                const counters::CounterBank &bank);

    /** Stored prediction for @p phase_id, or nullptr. */
    const space::Configuration *
    prediction(std::size_t phase_id) const;

    /** All predictions made so far, by detector phase id. */
    const std::unordered_map<std::size_t, space::Configuration> &
    predictions() const
    {
        return predictions_;
    }

  private:
    const ml::AdaptivityModel &model_;
    counters::FeatureSet featureSet_;
    phase::OnlinePhaseDetector detector_;
    std::unordered_map<std::size_t, space::Configuration>
        predictions_;
};

} // namespace adaptsim::control

#endif // ADAPTSIM_CONTROL_CORE_POLICY_HH
