file(REMOVE_RECURSE
  "CMakeFiles/test_core_config.dir/test_core_config.cc.o"
  "CMakeFiles/test_core_config.dir/test_core_config.cc.o.d"
  "test_core_config"
  "test_core_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
