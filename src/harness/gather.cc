#include "harness/gather.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/obs.hh"
#include "sim/perf_model.hh"
#include "space/sampling.hh"
#include "svc/client.hh"

namespace adaptsim::harness
{

namespace
{

/**
 * Evaluate a batch through the ADAPTSIM_EVAL_SOCKET daemon when the
 * env opts in, falling back to the in-process repository otherwise
 * (connection failure warns once and falls back for the process).
 * Requests are pipelined so the daemon coalesces the whole batch.
 */
std::vector<EvalRecord>
evaluateBatchVia(EvalRepository &repo, const PhaseSpec &spec,
                 const std::vector<space::Configuration> &configs,
                 const sim::PerfModel *backend)
{
    const std::string socket_path = adaptsim::evalSocketPath();
    if (socket_path.empty())
        return repo.evaluateBatch(spec, configs, backend);

    // One connection per process; gather is single-threaded at this
    // level (the parallelism lives server-side).
    static std::unique_ptr<svc::EvalClient> client =
        svc::EvalClient::connect(socket_path);
    static bool warned = false;
    if (!client || client->broken()) {
        if (!warned) {
            warned = true;
            warn("gather: evaluation service at ", socket_path,
                 " unavailable; using the in-process repository");
        }
        return repo.evaluateBatch(spec, configs, backend);
    }

    const std::string backend_name = backend ? backend->name() : "";

    // Sliding window: never more than the per-client in-flight cap
    // unresolved at once, so the daemon's admission control is not
    // tripped by our own pipelining.  Both sides read the same
    // ADAPTSIM_SVC_CLIENT_CAP knob, so the defaults compose; a
    // daemon running a smaller cap sheds the excess with typed
    // errors and the fallback below still completes the gather.
    const std::size_t window =
        std::max<std::size_t>(1, adaptsim::svcClientCap());
    std::vector<std::uint64_t> ids(configs.size(), 0);
    std::vector<EvalRecord> out(configs.size());
    std::size_t submitted = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        while (submitted < configs.size() &&
               submitted < i + window) {
            ids[submitted] = client->submit(spec, configs[submitted],
                                            backend_name);
            ++submitted;
        }
        svc::EvalResult r;
        if (ids[i] != 0)
            r = client->wait(ids[i]);
        if (r.ok) {
            out[i] = r.record;
            continue;
        }
        // A shed or failed request falls back to local evaluation;
        // the gather must always complete.  Warn once, not once per
        // shed request (a big gather pipelines thousands).
        static bool warned_failure = false;
        if (!warned_failure) {
            warned_failure = true;
            warn("gather: service request failed (",
                 svc::errorCodeName(r.error), "): ", r.errorMessage,
                 "; evaluating locally (further fallbacks are "
                 "silent)");
        }
        out[i] = repo.evaluate(spec, configs[i], backend);
    }
    return out;
}

/** Compact wall-time rendering for progress lines. */
std::string
prettySeconds(double s)
{
    char buf[32];
    if (s < 90.0)
        std::snprintf(buf, sizeof(buf), "%.1fs", s);
    else
        std::snprintf(buf, sizeof(buf), "%lum%02lus",
                      static_cast<unsigned long>(s / 60.0),
                      static_cast<unsigned long>(std::fmod(s, 60.0)));
    return buf;
}

/** Gather evals + profiling features for one phase (Sec. V-C). */
GatheredPhase
gatherOnePhase(EvalRepository &repo,
               const std::vector<space::Configuration> &shared,
               const phase::Phase &ph,
               std::uint64_t program_length,
               std::uint64_t warm_length,
               const GatherOptions &options)
{
    GatheredPhase g;
    g.phase = ph;
    g.spec = PhaseSpec{ph.workload, program_length,
                       ph.startInst, warm_length,
                       ph.lengthInsts};

    // 1. Shared uniform sample.
    auto evals =
        evaluateBatchVia(repo, g.spec, shared, options.backend);
    auto record = [&](const space::Configuration &cfg,
                      const EvalRecord &r) {
        g.evals.push_back(ml::ConfigEval{cfg, r.efficiency});
    };
    for (std::size_t i = 0; i < shared.size(); ++i)
        record(shared[i], evals[i]);

    auto best_of = [&]() {
        const ml::ConfigEval *best = &g.evals.front();
        for (const auto &e : g.evals) {
            if (e.efficiency > best->efficiency)
                best = &e;
        }
        return best->config;
    };

    // 2. Local neighbourhood of the best point found so far.
    if (options.localNeighbours > 0) {
        Rng rng(options.seed ^
                (std::hash<std::string>{}(ph.workload) +
                 ph.index * 0x9e37ULL));
        const auto neighbours = space::localNeighbours(
            rng, best_of(), options.localNeighbours);
        const auto n_evals = evaluateBatchVia(
            repo, g.spec, neighbours, options.backend);
        for (std::size_t i = 0; i < neighbours.size(); ++i)
            record(neighbours[i], n_evals[i]);
    }

    // 3. One-at-a-time sweep around the refined best.
    if (options.oneAtATimeSweep) {
        const auto sweep = space::oneAtATimeSweep(best_of());
        const auto s_evals =
            evaluateBatchVia(repo, g.spec, sweep, options.backend);
        for (std::size_t i = 0; i < sweep.size(); ++i)
            record(sweep[i], s_evals[i]);
    }

    // 4. Profiling-configuration counters.
    if (options.profileFeatures)
        g.features = repo.profile(g.spec, options.backend);
    return g;
}

} // namespace

ml::PhaseData
GatheredPhase::toPhaseData(counters::FeatureSet set) const
{
    ml::PhaseData data;
    data.workload = phase.workload;
    data.phaseIndex = phase.index;
    data.weight = phase.weight;
    data.features = set == counters::FeatureSet::Advanced ?
        features.advanced : features.basic;
    data.evals = evals;
    return data;
}

space::Configuration
paperBaselineConfig()
{
    // Table III.
    return space::Configuration::fromValues(
        {4, 144, 48, 32, 160, 4, 1, 16384, 1024, 24,
         64 * 1024, 32 * 1024, 1024 * 1024, 12});
}

std::vector<space::Configuration>
sharedConfigPool(const GatherOptions &options)
{
    Rng rng(options.seed);
    auto pool =
        space::uniformRandomSet(rng, options.sharedRandomConfigs);
    // The paper's Table III baseline is always part of the pool so
    // the best-static search has the classic candidate available.
    pool.push_back(paperBaselineConfig());
    return space::dedupe(std::move(pool));
}

std::vector<GatheredPhase>
gatherTrainingData(EvalRepository &repo,
                   const std::vector<phase::Phase> &phases,
                   std::uint64_t program_length,
                   std::uint64_t warm_length,
                   const GatherOptions &options)
{
    const auto shared = sharedConfigPool(options);

    std::vector<GatheredPhase> out;
    out.reserve(phases.size());

    const auto gather_t0 = std::chrono::steady_clock::now();
    for (const auto &ph : phases) {
        // The span scope closes before the progress line, so the
        // per-phase sim-time histogram already includes this phase.
        {
            OBS_SPAN("gather/phase");
            out.push_back(gatherOnePhase(repo, shared, ph,
                                         program_length, warm_length,
                                         options));
            // Phase boundaries are durable checkpoints: everything
            // buffered by the incremental flusher is committed here.
            repo.flush();
        }

        if (options.progress) {
            const std::size_t done = out.size();
            const std::size_t step =
                std::max<std::size_t>(1, phases.size() / 20);
            if (done % step == 0 || done == phases.size()) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        gather_t0)
                        .count();
                // ETA from the registry's per-phase sim-time
                // histogram when instrumented, else from the
                // elapsed-time average.
                double mean_phase = elapsed / double(done);
#if ADAPTSIM_OBS_ENABLED
                if (const auto *hist =
                        obs::Registry::global().findHistogram(
                            "gather/phase.seconds")) {
                    const auto st = hist->stats();
                    if (st.count > 0)
                        mean_phase = st.mean();
                }
#endif
                const double eta =
                    mean_phase * double(phases.size() - done);
                inform("gather: ", done, "/", phases.size(),
                       " phases (", repo.statsSummary(),
                       "), elapsed ", prettySeconds(elapsed),
                       ", eta ", prettySeconds(eta));
            }
        }
    }
    return out;
}

} // namespace adaptsim::harness
