/**
 * @file
 * Shared experiment driver used by the figure/table benches.
 *
 * Owns the full pipeline of the paper's methodology: build the suite,
 * extract SimPoint phases, gather the Sec. V-C training data through
 * the disk-cached repository, compute the static/dynamic baselines,
 * and produce leave-one-program-out model predictions for both
 * counter sets.  Everything expensive is cached under
 * ADAPTSIM_DATA_DIR, so the first bench invocation pays the gather
 * and subsequent ones are fast.
 */

#ifndef ADAPTSIM_HARNESS_EXPERIMENT_HH
#define ADAPTSIM_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <optional>

#include "harness/baselines.hh"
#include "harness/gather.hh"
#include "ml/cross_validation.hh"

namespace adaptsim::harness
{

/** Experiment geometry and knobs (already ADAPTSIM_SCALE-scaled). */
struct ExperimentOptions
{
    std::uint64_t programLength = 400000;
    std::uint64_t intervalLength = 6000;   ///< detailed interval
    std::uint64_t warmLength = 12000;      ///< functional warm-up
    std::size_t phasesPerProgram = 10;
    GatherOptions gather;
    ml::TrainerOptions trainer;
    std::string dataDir;                   ///< simulation cache
    unsigned threads = 1;

    /** Defaults with ADAPTSIM_SCALE / _DATA_DIR / _THREADS applied. */
    static ExperimentOptions fromEnv();
};

/** The prediction outcome for one phase. */
struct ModelResult
{
    space::Configuration config;   ///< LOOCV-predicted configuration
    double efficiency = 0.0;       ///< measured on the phase
};

/** Lazily-prepared shared experiment state. */
class Experiment
{
  public:
    explicit Experiment(
        ExperimentOptions options = ExperimentOptions::fromEnv());

    const ExperimentOptions &options() const { return opt_; }

    EvalRepository &repository() { return *repo_; }

    /** All gathered phases (26 programs × up to 10), gathering on
     *  first use. */
    const std::vector<GatheredPhase> &phases();

    /** The shared uniform configuration pool (incl. Table III). */
    const std::vector<space::Configuration> &sharedPool();

    /** Best overall static configuration (the paper's baseline). */
    const space::Configuration &baselineConfig();

    /** Baseline efficiency on phase @p idx. */
    double baselineEfficiency(std::size_t idx);

    /** LOOCV model predictions evaluated on their phases. */
    const std::vector<ModelResult> &
    modelResults(counters::FeatureSet set);

    /** Phase indices grouped by program, in suite order. */
    const std::map<std::string, std::vector<std::size_t>> &
    phasesByProgram();

    /**
     * Phase-weighted geometric mean of eff(i)/baseline(i) over the
     * given phase indices — the per-program relative efficiency used
     * by Figs. 4 and 6.
     */
    double relativeEfficiency(
        const std::vector<std::size_t> &idxs,
        const std::function<double(std::size_t)> &efficiency_of);

  private:
    void prepare();
    std::string loocvCachePath(counters::FeatureSet set) const;
    std::vector<ModelResult>
    computeModelResults(counters::FeatureSet set);

    ExperimentOptions opt_;
    std::unique_ptr<EvalRepository> repo_;

    bool prepared_ = false;
    std::vector<GatheredPhase> phases_;
    std::vector<space::Configuration> sharedPool_;
    std::optional<space::Configuration> baseline_;
    std::map<std::string, std::vector<std::size_t>> byProgram_;
    std::optional<std::vector<ModelResult>> basicResults_;
    std::optional<std::vector<ModelResult>> advancedResults_;
};

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_EXPERIMENT_HH
