/**
 * @file
 * The adaptsim micro-ISA.
 *
 * The timing simulator is trace-driven: workload generators emit a
 * deterministic stream of MicroOps (the "correct path"), which the
 * pipeline model replays under different microarchitectural
 * configurations.  A MicroOp carries exactly the information the timing
 * and counter models need: operation class, register dependencies,
 * memory effective address, and resolved branch behaviour.
 */

#ifndef ADAPTSIM_ISA_MICRO_OP_HH
#define ADAPTSIM_ISA_MICRO_OP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace adaptsim::isa
{

/** Functional classes of micro-operations. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer ALU op
    IntMul,     ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FpAlu,      ///< floating-point add/sub/convert
    FpMul,      ///< floating-point multiply
    FpDiv,      ///< unpipelined floating-point divide/sqrt
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< control transfer (conditional or not)
    Nop,        ///< no-operation (consumes a slot only)
    NumOpClasses
};

/** Number of architectural integer (and, separately, FP) registers. */
inline constexpr int numArchRegs = 32;

/** Sentinel for "no register". */
inline constexpr std::int16_t noReg = -1;

/** Human-readable name of an op class. */
const char *opClassName(OpClass c);

/** True for Load and Store. */
bool isMemOp(OpClass c);

/** True for FpAlu/FpMul/FpDiv. */
bool isFpOp(OpClass c);

/**
 * One dynamic micro-operation of the synthetic trace.
 *
 * Register identifiers are architectural; renaming happens in the
 * pipeline model.  FP ops read/write the FP architectural file, all
 * others the integer file (loads/stores may target either via fpData).
 */
struct MicroOp
{
    Addr pc = 0;                    ///< instruction address
    OpClass opClass = OpClass::Nop; ///< functional class
    std::int16_t destReg = noReg;   ///< architectural destination
    std::int16_t srcReg0 = noReg;   ///< first source
    std::int16_t srcReg1 = noReg;   ///< second source
    bool fpData = false;            ///< load/store moves FP data
    Addr effAddr = invalidAddr;     ///< effective address (mem ops)
    std::uint32_t bbId = 0;         ///< basic block id (for BBVs)

    // Branch-only fields (resolved outcome from the generator).
    bool isCond = false;            ///< conditional branch
    bool taken = false;             ///< resolved direction
    Addr target = 0;                ///< resolved target address

    /** True when this op reads or writes memory. */
    bool isMem() const { return isMemOp(opClass); }

    /** True when this op is a load. */
    bool isLoad() const { return opClass == OpClass::Load; }

    /** True when this op is a store. */
    bool isStore() const { return opClass == OpClass::Store; }

    /** True when this op is a branch. */
    bool isBranch() const { return opClass == OpClass::Branch; }

    /** True when the destination lives in the FP register file. */
    bool writesFp() const
    {
        return destReg != noReg && (isFpOp(opClass) ||
                                    (isMem() && fpData));
    }

    /** True when sources live in the FP register file. */
    bool readsFp() const { return isFpOp(opClass); }

    /** Compact one-line rendering for debugging. */
    std::string toString() const;
};

} // namespace adaptsim::isa

#endif // ADAPTSIM_ISA_MICRO_OP_HH
