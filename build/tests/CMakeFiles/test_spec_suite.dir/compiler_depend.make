# Empty compiler generated dependencies file for test_spec_suite.
# This may be replaced when dependencies are built.
