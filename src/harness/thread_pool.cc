#include "harness/thread_pool.hh"

#include <stdexcept>

namespace adaptsim::harness
{

namespace
{

/** Pool whose job the current thread is executing, if any. */
thread_local const ThreadPool *tls_running_pool = nullptr;

/** RAII marker for "this thread is running jobs of pool p".
 *  Restores the previous marker so nested use of *distinct* pools
 *  (inline or pooled) keeps reentrancy detection correct. */
struct RunningScope
{
    explicit RunningScope(const ThreadPool *p)
        : prev(tls_running_pool)
    {
        tls_running_pool = p;
    }
    ~RunningScope() { tls_running_pool = prev; }
    const ThreadPool *prev;
};

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads)
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::runJobs(const std::function<void(std::size_t)> &fn,
                    std::size_t n)
{
    std::size_t claimed = 0;
    for (;;) {
        const std::size_t i =
            nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        ++claimed;
        // After a failure, drain the remaining claims without
        // running them so remaining_ still reaches zero.
        if (abort_.load(std::memory_order_relaxed))
            continue;
        try {
            fn(i);
        } catch (...) {
            abort_.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
    }
    return claimed;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_)
                return;
            seen_generation = generation_;
            job = job_;
            n = jobSize_;
        }
        // A spurious/late wake-up can observe a batch that already
        // completed and was cleared; there is nothing left to claim.
        if (!job)
            continue;

        std::size_t claimed = 0;
        {
            RunningScope scope(this);
            claimed = runJobs(*job, n);
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            remaining_ -= claimed;
            if (remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (tls_running_pool == this)
        throw std::logic_error(
            "ThreadPool::parallelFor called from inside one of its "
            "own jobs (reentrant use is not supported)");
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        RunningScope scope(this);
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One batch at a time; concurrent external callers queue here.
    std::lock_guard<std::mutex> submit(submitMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobSize_ = n;
        nextIndex_.store(0, std::memory_order_relaxed);
        abort_.store(false, std::memory_order_relaxed);
        firstError_ = nullptr;
        remaining_ = n;
        ++generation_;
    }
    wake_.notify_all();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return remaining_ == 0; });
        job_ = nullptr;
        jobSize_ = 0;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace adaptsim::harness
