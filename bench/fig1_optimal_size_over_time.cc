/**
 * @file
 * Fig. 1: how the efficiency-optimal IQ and RF sizes vary over time
 * for gap, applu and apsi at pipeline widths 8 and 4.  For each
 * interval of the program we sweep the parameter (others pinned to
 * the Table III baseline, width overridden) and report the argmax.
 */

#include <cstdio>
#include <vector>

#include "common/ascii_plot.hh"
#include "common/env.hh"
#include "harness/gather.hh"
#include "harness/repository.hh"
#include "space/sampling.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

constexpr std::uint64_t programLength = 400000;
constexpr std::uint64_t intervalLength = 6000;
constexpr std::uint64_t warmLength = 8000;
constexpr std::size_t numIntervals = 20;

/** Optimal value of @p swept at each interval for a pinned width. */
std::vector<double>
optimalOverTime(harness::EvalRepository &repo,
                const std::string &program, int width,
                space::Param swept)
{
    auto centre = harness::paperBaselineConfig();
    centre.setValue(space::Param::Width, width);
    const auto sweep = space::parameterSweep(centre, swept);

    std::vector<double> best_vals;
    const std::uint64_t stride =
        programLength / (numIntervals + 1);
    for (std::size_t i = 0; i < numIntervals; ++i) {
        harness::PhaseSpec spec{program, programLength,
                                (i + 1) * stride, warmLength,
                                intervalLength};
        const auto evals = repo.evaluateBatch(spec, sweep);
        std::size_t best = 0;
        for (std::size_t c = 1; c < evals.size(); ++c) {
            if (evals[c].efficiency > evals[best].efficiency)
                best = c;
        }
        best_vals.push_back(
            double(sweep[best].value(swept)));
    }
    repo.flush();
    return best_vals;
}

} // namespace

int
main()
{
    harness::EvalRepository repo(
        workload::specSuite(programLength), dataDir(),
        numThreads());

    std::vector<double> xs;
    for (std::size_t i = 0; i < numIntervals; ++i)
        xs.push_back(double(i));

    for (const char *program : {"gap", "applu", "apsi"}) {
        for (auto [param, pname] :
             {std::pair{space::Param::IqSize, "IQ size"},
              std::pair{space::Param::RfSize, "RF size"}}) {
            const auto w8 =
                optimalOverTime(repo, program, 8, param);
            const auto w4 =
                optimalOverTime(repo, program, 4, param);
            std::printf("%s\n",
                        linePlot(std::string(program) +
                                     ": optimal " + pname +
                                     " over time",
                                 xs, {"width 8", "width 4"},
                                 {w8, w4})
                            .c_str());
        }
    }
    std::printf("cache: %s\n", repo.statsSummary().c_str());
    std::printf(
        "Paper observations: the optimal sizes vary over time, "
        "differ between widths (gap's RF: 113 -> 67 at width 4), "
        "and applu's demand is width-insensitive.\n");
    return 0;
}
