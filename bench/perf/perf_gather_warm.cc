/**
 * @file
 * Warm steady-state gather: the phase set of perf_gather re-gathered
 * against a persistent store + phase-memo index.  The cold seeding
 * pass (timed once, reported as cold_s) characterises every phase
 * and populates `<dir>/gather_memo.idx`; each timed warm repetition
 * then builds a FRESH repository and scheduler over the same
 * directory — nothing in-process carries over — and re-gathers the
 * recurring phases.  Every phase classifies as a memo hit, so the
 * warm gather spends no simulation at all: samples come from the
 * memo entries (backed by the warm `.evc` store), the profiling
 * counters transfer with the signature, and only the per-phase
 * probe touches the repository.
 *
 * A final perf_gather_warm_stats line records the memo traffic and
 * the warm/cold ratio; CI gates on hit rate > 90% and ratio <= 0.2
 * (both timing-ratio and counter based, so shared-runner noise
 * cancels).
 */

#include "perf_harness.hh"

#include <filesystem>

#include "harness/gather.hh"
#include "harness/gather_scheduler.hh"
#include "phase/bbv.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);

    // Same geometry and knobs as perf_gather, so cold_s here is
    // directly comparable to the perf_gather row.
    const std::uint64_t program_length = 400000;
    const std::uint64_t warm_length = 12000;
    const std::uint64_t detail_length = 6000;

    harness::GatherOptions gopt;
    gopt.sharedRandomConfigs = opt.smoke ? 8 : 16;
    gopt.localNeighbours = opt.smoke ? 4 : 8;
    gopt.oneAtATimeSweep = false;
    gopt.progress = false;
    gopt.memo = harness::GatherOptions::MemoMode::On;

    const auto dir = std::filesystem::temp_directory_path() /
                     "adaptsim_perf_gather_warm";
    std::filesystem::remove_all(dir);

    std::vector<phase::Phase> phases;
    const char *programs[] = {"gcc", "crafty"};
    const std::size_t per_program = opt.smoke ? 1 : 3;
    {
        // Phases carry real interval signatures (the memo classifies
        // by them); one throwaway repository generates the traces.
        harness::EvalRepository repo(
            workload::specSuite(program_length), dir.string(), 1);
        for (const char *prog : programs) {
            const auto &wl = repo.workload(prog);
            for (std::size_t i = 0; i < per_program; ++i) {
                phase::Phase ph;
                ph.workload = prog;
                ph.index = i;
                ph.startInst = 40000 + i * 60000;
                ph.lengthInsts = detail_length;
                ph.weight = 1.0 / double(per_program);
                ph.signature = phase::Bbv::ofTrace(
                    *repo.traceCache().get(wl, ph.startInst,
                                           detail_length));
                phases.push_back(ph);
            }
        }
    }

    const auto gather_once = [&]() {
        harness::EvalRepository repo(
            workload::specSuite(program_length), dir.string(), 1);
        harness::GatherScheduler sched(
            harness::GatherScheduler::indexPathFor(repo));
        harness::GatherOptions o = gopt;
        o.scheduler = &sched;
        const auto gathered = harness::gatherTrainingData(
            repo, phases, program_length, warm_length, o);
        double evals = 0.0;
        for (const auto &g : gathered)
            evals += static_cast<double>(g.evals.size());
        const auto st = sched.stats();
        return std::pair<double, harness::GatherScheduler::Stats>(
            evals, st);
    };

    // Cold seeding pass: fresh directory, every phase novel.
    std::filesystem::remove_all(dir);
    const double cold_t0 = perf::nowSeconds();
    const auto cold = gather_once();
    const double cold_s = perf::nowSeconds() - cold_t0;

    // Timed warm repetitions: recurring phases, disk-warm only.
    std::uint64_t hits = 0, misses = 0, escalations = 0;
    double items = 0.0;
    const auto secs = perf::runTimed(opt, items, [&]() {
        const auto [evals, st] = gather_once();
        hits = st.hits;
        misses = st.misses;
        escalations = st.escalations;
        return evals;
    });
    std::filesystem::remove_all(dir);

    perf::emitJson("perf_gather_warm", opt, secs, items, "evals");

    const double warm_s = perf::median(secs);
    const std::uint64_t classified = hits + misses + escalations;
    const double hit_rate =
        classified > 0 ? double(hits) / double(classified) : 0.0;
    std::printf("{\"name\":\"perf_gather_warm_stats\","
                "\"phases\":%zu,\"warm_hits\":%llu,"
                "\"warm_misses\":%llu,\"warm_escalations\":%llu,"
                "\"warm_hit_rate\":%.4f,\"cold_s\":%.6f,"
                "\"warm_cold_ratio\":%.4f,"
                "\"cold_evals\":%.0f,\"warm_evals\":%.0f}\n",
                phases.size(), (unsigned long long)hits,
                (unsigned long long)misses,
                (unsigned long long)escalations, hit_rate, cold_s,
                cold_s > 0.0 ? warm_s / cold_s : 0.0, cold.first,
                items);
    return 0;
}
