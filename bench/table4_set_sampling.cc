/**
 * @file
 * Table IV: how many cache sets must be sampled per feature type to
 * keep the reuse histograms representative (dynamic set sampling,
 * Sec. VIII).  For each cache and feature we sweep the sampled-set
 * count and pick the smallest one whose normalised histogram stays
 * within a distance bound of the fully-monitored histogram across a
 * spread of workloads.
 */

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "counters/counter_bank.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

constexpr std::uint64_t programLength = 200000;
constexpr std::uint64_t warmLength = 6000;
constexpr std::uint64_t detailLength = 6000;

/** L1 distance of two normalised histograms (range [0, 2]). */
double
histDistance(const Histogram &a, const Histogram &b)
{
    const auto fa = a.normalised();
    const auto fb = b.normalised();
    double d = 0.0;
    for (std::size_t i = 0; i < fa.size(); ++i)
        d += std::abs(fa[i] - fb[i]);
    return d;
}

/** Run a profiling interval with the given sampling spec. */
counters::CounterBank
profileWith(const workload::Workload &wl,
            const counters::SamplingSpec &sampling)
{
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(
        space::Configuration::profiling());
    uarch::Core core(cc, wp);
    core.warm(wl.generate(programLength / 2 - warmLength,
                          warmLength));
    counters::CounterBank bank(cc, sampling);
    const auto result =
        core.run(wl.generate(programLength / 2, detailLength),
                 &bank);
    bank.finalise(result.events);
    return bank;
}

} // namespace

int
main()
{
    const std::vector<std::string> programs = {
        "mcf", "crafty", "swim", "gcc", "eon", "art"};
    const std::vector<std::uint64_t> candidates = {4, 16, 64, 256,
                                                   1024};
    const double bound = 0.35;   // max acceptable L1 distance

    std::vector<workload::Workload> wls;
    for (const auto &name : programs)
        wls.push_back(workload::specBenchmark(name, programLength));

    // Full-monitoring references.
    std::vector<counters::CounterBank> full;
    for (const auto &wl : wls)
        full.push_back(profileWith(wl, {}));

    struct FeatureDef
    {
        const char *feature;
        const char *cache;
        std::uint64_t maxSets;
        std::function<const Histogram &(
            const counters::CounterBank &)> get;
        std::function<void(counters::SamplingSpec &,
                           std::uint64_t)> set;
    };
    const std::vector<FeatureDef> defs = {
        {"Set reuse", "Insn cache", 1024,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.icSetReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.icSetReuse = n;
         }},
        {"Set reuse", "Data cache", 1024,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.dcSetReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.dcSetReuse = n;
         }},
        {"Set reuse", "L2 cache", 8192,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.l2SetReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.l2SetReuse = n;
         }},
        {"Blk reuse", "Insn cache", 1024,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.icBlockReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.icBlockReuse = n;
         }},
        {"Blk reuse", "Data cache", 1024,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.dcBlockReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.dcBlockReuse = n;
         }},
        {"Blk reuse", "L2 cache", 8192,
         [](const counters::CounterBank &b) -> const Histogram & {
             return b.l2BlockReuse().histogram();
         },
         [](counters::SamplingSpec &s, std::uint64_t n) {
             s.l2BlockReuse = n;
         }},
    };

    TextTable table;
    table.setHeader({"Feature", "Cache", "Sets needed",
                     "Avg distance", "Paper sets"});
    const std::map<std::pair<std::string, std::string>,
                   std::uint64_t> paper = {
        {{"Set reuse", "Insn cache"}, 256},
        {{"Set reuse", "Data cache"}, 4},
        {{"Set reuse", "L2 cache"}, 16},
        {{"Blk reuse", "Insn cache"}, 16},
        {{"Blk reuse", "Data cache"}, 128},
        {{"Blk reuse", "L2 cache"}, 32},
    };

    for (const auto &def : defs) {
        std::uint64_t chosen = def.maxSets;
        double chosen_d = 0.0;
        for (std::uint64_t n : candidates) {
            if (n > def.maxSets)
                continue;
            double total_d = 0.0;
            for (std::size_t w = 0; w < wls.size(); ++w) {
                counters::SamplingSpec spec;
                def.set(spec, n);
                const auto sampled = profileWith(wls[w], spec);
                total_d += histDistance(def.get(full[w]),
                                        def.get(sampled));
            }
            const double avg_d = total_d / double(wls.size());
            if (avg_d <= bound) {
                chosen = n;
                chosen_d = avg_d;
                break;
            }
            chosen_d = avg_d;
        }
        table.addRow(
            {def.feature, def.cache, std::to_string(chosen),
             TextTable::num(chosen_d),
             std::to_string(paper.at({def.feature, def.cache}))});
    }

    std::printf("Table IV: sets sampled per cache per feature type\n"
                "(smallest sampled-set count keeping the histogram "
                "within %.2f L1 distance of full monitoring)\n\n%s\n",
                bound, table.render().c_str());
    std::printf("Note: the paper samples over 10M-instruction "
                "intervals; at this reproduction's scaled interval "
                "size the sampled histograms see far fewer events, "
                "so more sets are needed for the same fidelity "
                "(especially for the sparsely-accessed L2).\n");
    return 0;
}
