# Empty dependencies file for test_reuse_distance.
# This may be replaced when dependencies are built.
