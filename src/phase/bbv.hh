/**
 * @file
 * Basic-block vectors (Sherwood et al.) — the program-behaviour
 * signature used for phase detection and SimPoint-style phase
 * extraction.
 */

#ifndef ADAPTSIM_PHASE_BBV_HH
#define ADAPTSIM_PHASE_BBV_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "isa/micro_op.hh"

namespace adaptsim::phase
{

/**
 * A normalised basic-block execution-frequency vector, randomly
 * projected to a fixed dimensionality (as SimPoint does) so vectors
 * from programs with many static blocks stay cheap to cluster.
 */
class Bbv
{
  public:
    /** Projected dimensionality of every BBV. */
    static constexpr std::size_t dimension = 32;

    Bbv();

    /** Accumulate one executed µop (weights its basic block). */
    void addOp(const isa::MicroOp &op);

    /** Build from a whole interval trace. */
    static Bbv ofTrace(std::span<const isa::MicroOp> trace);

    /**
     * Rebuild from previously exported values() / opCount() (used
     * when deserializing signature tables).  @p values must hold
     * exactly @ref dimension entries; extra entries are ignored and
     * missing ones read as zero.
     */
    static Bbv fromValues(const std::vector<double> &values,
                          std::uint64_t ops);

    /** L1-normalise (call once the interval is complete). */
    void normalise();

    /** Manhattan distance to another normalised BBV (range [0,2]). */
    double manhattan(const Bbv &other) const;

    const std::vector<double> &values() const { return values_; }

    std::uint64_t opCount() const { return ops_; }

  private:
    /** Deterministic projection of a block id onto a dimension. */
    static std::size_t project(std::uint32_t bb_id);

    std::vector<double> values_;
    std::uint64_t ops_ = 0;
};

} // namespace adaptsim::phase

#endif // ADAPTSIM_PHASE_BBV_HH
