file(REMOVE_RECURSE
  "CMakeFiles/fig4_model_vs_static.dir/fig4_model_vs_static.cc.o"
  "CMakeFiles/fig4_model_vs_static.dir/fig4_model_vs_static.cc.o.d"
  "fig4_model_vs_static"
  "fig4_model_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_model_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
