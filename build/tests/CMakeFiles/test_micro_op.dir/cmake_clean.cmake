file(REMOVE_RECURSE
  "CMakeFiles/test_micro_op.dir/test_micro_op.cc.o"
  "CMakeFiles/test_micro_op.dir/test_micro_op.cc.o.d"
  "test_micro_op"
  "test_micro_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
