/**
 * @file
 * The per-parameter soft-max model of Sec. IV.
 *
 * P(y = s_k | x) = exp(w_kᵀx) / Σ_j exp(w_jᵀx)          (eq. 3)
 *
 * Prediction avoids the exponentiation entirely: y* = argmax_k (Wᵀx)_k
 * (eq. 8-9).  Training maximises the regularised data log-likelihood
 * (eq. 5-7); note the paper's eq. 6 prints "+ λ tr(WᵀW)" on a
 * maximised objective — we implement the evidently intended penalty
 * (subtract), i.e. standard L2-regularised multinomial logistic
 * regression.
 */

#ifndef ADAPTSIM_ML_SOFTMAX_HH
#define ADAPTSIM_ML_SOFTMAX_HH

#include <span>
#include <vector>

#include "ml/matrix.hh"

namespace adaptsim::ml
{

/**
 * One grouped training example: a phase's counter vector together
 * with the per-class counts of its good configurations.  Grouping by
 * phase is an exact reformulation of the per-sample likelihood (all
 * good configs of a phase share the same x) and makes training ~20x
 * cheaper.
 */
struct GroupedExample
{
    std::vector<double> x;            ///< D features
    std::vector<double> classCount;   ///< K counts (≥ 0, sum > 0)
};

/** Multinomial logistic-regression classifier with argmax inference. */
class SoftmaxClassifier
{
  public:
    SoftmaxClassifier() = default;

    /**
     * @param dim feature dimension D.
     * @param num_classes number of values K the parameter can take.
     */
    SoftmaxClassifier(std::size_t dim, std::size_t num_classes);

    /** Hard prediction: argmax_k of the logits (eq. 8-9). */
    std::size_t predict(std::span<const double> x) const;

    /** Logits b = Wᵀx. */
    std::vector<double> logits(std::span<const double> x) const;

    /** Full posterior P(y = s_k | x) (eq. 3). */
    std::vector<double> probabilities(std::span<const double> x) const;

    std::size_t dim() const { return weights_.rows(); }
    std::size_t numClasses() const { return weights_.cols(); }

    Matrix &weights() { return weights_; }
    const Matrix &weights() const { return weights_; }

  private:
    Matrix weights_;   ///< D × K
};

/**
 * Regularised negative log-likelihood and its gradient over grouped
 * examples:
 *
 *   f(W) = -Σ_g Σ_k c_{gk} log σ_k(x_g, W) + λ tr(WᵀW)
 *
 * @param w flat D×K weights (row-major, as Matrix::data()).
 * @param grad output gradient, same layout, overwritten.
 * @return objective value (to be minimised).
 */
double softmaxObjective(const std::vector<GroupedExample> &examples,
                        std::size_t dim, std::size_t num_classes,
                        double lambda,
                        const std::vector<double> &w,
                        std::vector<double> &grad);

} // namespace adaptsim::ml

#endif // ADAPTSIM_ML_SOFTMAX_HH
