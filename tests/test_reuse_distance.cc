/**
 * @file
 * Tests of the reuse-distance monitors.
 */

#include <gtest/gtest.h>

#include "counters/reuse_distance.hh"

using namespace adaptsim;
using namespace adaptsim::counters;

TEST(ReuseDistance, KnownStream)
{
    ReuseDistanceMonitor m;
    // Stream: A B A → A's reuse distance is 2 (accesses apart).
    m.access(0xA);
    m.access(0xB);
    m.access(0xA);
    EXPECT_EQ(m.accesses(), 3u);
    const auto &h = m.histogram();
    EXPECT_EQ(h.numSamples(), 1u);
    EXPECT_EQ(h.count(h.binIndex(2)), 1u);
}

TEST(ReuseDistance, FirstTouchNotCounted)
{
    ReuseDistanceMonitor m;
    m.access(1);
    m.access(2);
    m.access(3);
    EXPECT_EQ(m.histogram().numSamples(), 0u);
    EXPECT_EQ(m.reuseFraction(), 0.0);
}

TEST(ReuseDistance, ReuseFraction)
{
    ReuseDistanceMonitor m;
    m.access(1);
    m.access(1);
    m.access(1);
    m.access(2);
    EXPECT_NEAR(m.reuseFraction(), 0.5, 1e-12);
}

TEST(ReuseDistance, TightLoopIsShortDistance)
{
    ReuseDistanceMonitor m;
    for (int i = 0; i < 100; ++i) {
        m.access(1);
        m.access(2);
    }
    // All re-references at distance 2 → log2 bin for 2.
    const auto &h = m.histogram();
    EXPECT_EQ(h.count(h.binIndex(2)), h.numSamples());
}

TEST(ReuseDistance, ClearResets)
{
    ReuseDistanceMonitor m;
    m.access(1);
    m.access(1);
    m.clear();
    EXPECT_EQ(m.accesses(), 0u);
    EXPECT_EQ(m.histogram().numSamples(), 0u);
}

TEST(SetReuse, MapsAddressesToSets)
{
    // 64 sets of 64B lines: addresses 0 and 64*64 share set 0.
    SetReuseMonitor m(64, 64);
    m.access(0);
    m.access(64 * 64);   // same set, different block
    const auto &h = m.histogram();
    EXPECT_EQ(h.numSamples(), 1u);   // set re-reference at distance 1
    EXPECT_EQ(h.count(h.binIndex(1)), 1u);
}

TEST(SetReuse, DifferentSetsNoReuse)
{
    SetReuseMonitor m(64, 64);
    m.access(0);
    m.access(64);        // next set
    m.access(2 * 64);
    EXPECT_EQ(m.histogram().numSamples(), 0u);
}

TEST(SetReuse, ReducedGeometryCreatesConflicts)
{
    // The same stream seen by a large cache (1024 sets) and by the
    // "reduced" small geometry (64 sets): the small geometry must
    // observe far more set reuse — exactly the signal the reduced
    // set-reuse counter exists to expose (Sec. III-B2).
    SetReuseMonitor big(1024, 64);
    SetReuseMonitor reduced(64, 64);
    for (int i = 0; i < 256; ++i) {
        const Addr a = Addr(i) * 64;
        big.access(a);
        reduced.access(a);
    }
    // Second pass.
    for (int i = 0; i < 256; ++i) {
        const Addr a = Addr(i) * 64;
        big.access(a);
        reduced.access(a);
    }
    EXPECT_GT(reduced.histogram().numSamples(),
              big.histogram().numSamples());
}

TEST(SetReuse, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT((SetReuseMonitor{100, 64}),
                ::testing::ExitedWithCode(1), "");
}
