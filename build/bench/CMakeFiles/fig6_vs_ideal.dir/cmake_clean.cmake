file(REMOVE_RECURSE
  "CMakeFiles/fig6_vs_ideal.dir/fig6_vs_ideal.cc.o"
  "CMakeFiles/fig6_vs_ideal.dir/fig6_vs_ideal.cc.o.d"
  "fig6_vs_ideal"
  "fig6_vs_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vs_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
