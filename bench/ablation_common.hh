/**
 * @file
 * Shared helper for the ablation benches: split-half validation.
 * Programs are alternately assigned to train/test halves; the model
 * is trained on one half and its held-out phases' predictions are
 * evaluated through the (cached) repository.  Cheaper than full
 * LOOCV while preserving the "never trained on this program" rule.
 */

#ifndef ADAPTSIM_BENCH_ABLATION_COMMON_HH
#define ADAPTSIM_BENCH_ABLATION_COMMON_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"

namespace adaptsim::benchutil
{

/** Optional feature transform (e.g. zero a group for ablation). */
using FeatureTransform =
    std::function<std::vector<double>(const std::vector<double> &)>;

/**
 * Train on even-indexed programs, predict the odd ones; return the
 * geomean over held-out programs of relative-to-baseline efficiency.
 */
inline double
splitHalfRelative(harness::Experiment &exp,
                  counters::FeatureSet set,
                  const ml::TrainerOptions &options,
                  const FeatureTransform &transform = nullptr)
{
    const auto &phases = exp.phases();

    // Stable program ordering.
    std::vector<std::string> programs;
    for (const auto &[name, idxs] : exp.phasesByProgram())
        programs.push_back(name);
    std::set<std::string> train_set;
    for (std::size_t i = 0; i < programs.size(); i += 2)
        train_set.insert(programs[i]);

    std::vector<ml::PhaseData> train;
    for (const auto &g : phases) {
        if (!train_set.count(g.phase.workload))
            continue;
        auto d = g.toPhaseData(set);
        if (transform)
            d.features = transform(d.features);
        train.push_back(std::move(d));
    }
    const auto model = ml::trainModel(train, options);

    // Evaluate held-out programs.
    std::vector<double> per_program;
    for (const auto &[name, idxs] : exp.phasesByProgram()) {
        if (train_set.count(name))
            continue;
        const double rel = exp.relativeEfficiency(
            idxs, [&](std::size_t i) {
                auto x = phases[i].toPhaseData(set).features;
                if (transform)
                    x = transform(x);
                const auto cfg = model.predict(x);
                return exp.repository()
                    .evaluate(phases[i].spec, cfg)
                    .efficiency;
            });
        per_program.push_back(rel);
    }
    exp.repository().flush();
    return adaptsim::geomean(per_program);
}

} // namespace adaptsim::benchutil

#endif // ADAPTSIM_BENCH_ABLATION_COMMON_HH
