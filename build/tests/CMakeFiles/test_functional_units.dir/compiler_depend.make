# Empty compiler generated dependencies file for test_functional_units.
# This may be replaced when dependencies are built.
