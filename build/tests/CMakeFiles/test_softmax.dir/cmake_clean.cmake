file(REMOVE_RECURSE
  "CMakeFiles/test_softmax.dir/test_softmax.cc.o"
  "CMakeFiles/test_softmax.dir/test_softmax.cc.o.d"
  "test_softmax"
  "test_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
