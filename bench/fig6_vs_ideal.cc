/**
 * @file
 * Fig. 6: the model against the two reference points of Sec. VII —
 * the best *specialised* static configuration per program (paper:
 * 1.5x average) and the ideal per-phase *best dynamic* configuration
 * (paper: 2.7x average, model achieving 74% of the available
 * improvement).
 */

#include <cmath>
#include <cstdio>

#include "common/ascii_plot.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    const auto &advanced =
        exp.modelResults(counters::FeatureSet::Advanced);

    TextTable table;
    table.setHeader({"Benchmark", "Model (x)", "Spec static (x)",
                     "Best dynamic (x)"});
    std::vector<double> model_all, spec_all, dyn_all;
    std::vector<std::string> labels;
    std::vector<std::vector<double>> values;

    for (const auto &[program, idxs] : exp.phasesByProgram()) {
        // Per-program specialised static from the shared pool.
        std::vector<harness::GatheredPhase> program_phases;
        for (std::size_t i : idxs)
            program_phases.push_back(exp.phases()[i]);
        const auto spec_cfg = harness::bestStaticForProgram(
            program_phases, exp.sharedPool());

        const double model = exp.relativeEfficiency(
            idxs,
            [&](std::size_t i) { return advanced[i].efficiency; });
        const double spec = exp.relativeEfficiency(
            idxs, [&](std::size_t i) {
                return harness::efficiencyOn(exp.phases()[i],
                                             spec_cfg);
            });
        const double dyn = exp.relativeEfficiency(
            idxs, [&](std::size_t i) {
                return harness::bestDynamic(exp.phases()[i])
                    .efficiency;
            });

        table.addRow({program, TextTable::num(model),
                      TextTable::num(spec), TextTable::num(dyn)});
        model_all.push_back(model);
        spec_all.push_back(spec);
        dyn_all.push_back(dyn);
        labels.push_back(program);
        values.push_back({model, spec, dyn});
    }

    const double mean_model = geomean(model_all);
    const double mean_spec = geomean(spec_all);
    const double mean_dyn = geomean(dyn_all);
    table.addRow({"AVERAGE", TextTable::num(mean_model),
                  TextTable::num(mean_spec),
                  TextTable::num(mean_dyn)});

    std::printf("Fig. 6: model vs specialised static vs ideal "
                "dynamic (all x best overall static)\n\n%s\n",
                table.render().c_str());
    std::printf("%s\n",
                groupedBarChart(
                    "relative efficiency (x baseline)",
                    {"model", "spec-static", "best-dyn"}, labels,
                    values)
                    .c_str());

    // Fraction of the available improvement captured by the model
    // (in log space, consistent with the geomean aggregation).
    double captured = 0.0;
    if (mean_dyn > 1.0)
        captured = std::log(mean_model) / std::log(mean_dyn);
    std::printf(
        "Averages: model %.2fx (paper 2x), specialised static %.2fx "
        "(paper 1.5x), best dynamic %.2fx (paper 2.7x)\n"
        "Model captures %.0f%% of the available improvement "
        "(paper 74%%)\n",
        mean_model, mean_spec, mean_dyn, captured * 100);
    return 0;
}
