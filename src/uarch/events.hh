/**
 * @file
 * Event and occupancy accounting produced by one timing simulation.
 *
 * The pipeline counts micro-events; the power model (Wattch-style)
 * converts them into energy after the fact, and the counter machinery
 * summarises them into model features.
 */

#ifndef ADAPTSIM_UARCH_EVENTS_HH
#define ADAPTSIM_UARCH_EVENTS_HH

#include <cstdint>

#include "common/types.hh"

namespace adaptsim::uarch
{

/** Micro-event counts accumulated over a detailed simulation. */
struct EventCounts
{
    // Global progress.
    std::uint64_t cycles = 0;
    std::uint64_t committedOps = 0;     ///< correct-path retirements
    std::uint64_t fetchedOps = 0;       ///< incl. wrong path
    std::uint64_t wrongPathOps = 0;     ///< fetched on the wrong path
    std::uint64_t squashedOps = 0;      ///< dispatched then squashed
    std::uint64_t iqSquashed = 0;       ///< squashed while in the IQ
    std::uint64_t lsqSquashed = 0;      ///< squashed while in the LSQ

    // Caches.
    std::uint64_t icAccesses = 0, icMisses = 0;
    std::uint64_t dcAccesses = 0, dcMisses = 0, dcWritebacks = 0;
    std::uint64_t l2Accesses = 0, l2Misses = 0;
    std::uint64_t memAccesses = 0;

    // Shared LLC (multi-core chips only; zero on a private-only
    // hierarchy).
    std::uint64_t llcAccesses = 0, llcMisses = 0;
    std::uint64_t llcQueueCycles = 0;   ///< bank-queue + MSHR waits

    // Branch prediction.
    std::uint64_t bpredLookups = 0;
    std::uint64_t bpredUpdates = 0;
    std::uint64_t condBranches = 0;     ///< committed conditional
    std::uint64_t mispredicts = 0;      ///< committed mispredictions
    std::uint64_t btbLookups = 0, btbHits = 0;

    // Pipeline structures.
    std::uint64_t robWrites = 0, robReads = 0;
    std::uint64_t iqWrites = 0, iqIssues = 0, iqWakeups = 0;
    std::uint64_t lsqInserts = 0, lsqSearches = 0;
    std::uint64_t rfReads = 0, rfWrites = 0;

    // Functional unit operations (incl. wrong path).
    std::uint64_t aluOps = 0, mulOps = 0, divOps = 0;
    std::uint64_t fpOps = 0, fpMulOps = 0, fpDivOps = 0;
    std::uint64_t memPortOps = 0;

    // Commit-stall attribution: cycles the ROB head was not ready,
    // split by the class of the blocking op.
    std::uint64_t stallHeadLoad = 0;
    std::uint64_t stallHeadStore = 0;
    std::uint64_t stallHeadFp = 0;
    std::uint64_t stallHeadDiv = 0;
    std::uint64_t stallHeadOther = 0;

    // Occupancy integrals (sum over cycles of entries in use) for
    // per-structure leakage/clock-gating modelling and counters.
    std::uint64_t occRobSum = 0;
    std::uint64_t occIqSum = 0;
    std::uint64_t occLsqSum = 0;
    std::uint64_t occIntRfSum = 0;
    std::uint64_t occFpRfSum = 0;

    /** Accumulate another run's counts (used by multi-interval runs). */
    void
    merge(const EventCounts &o)
    {
        cycles += o.cycles;
        committedOps += o.committedOps;
        fetchedOps += o.fetchedOps;
        wrongPathOps += o.wrongPathOps;
        squashedOps += o.squashedOps;
        iqSquashed += o.iqSquashed;
        lsqSquashed += o.lsqSquashed;
        icAccesses += o.icAccesses;
        icMisses += o.icMisses;
        dcAccesses += o.dcAccesses;
        dcMisses += o.dcMisses;
        dcWritebacks += o.dcWritebacks;
        l2Accesses += o.l2Accesses;
        l2Misses += o.l2Misses;
        memAccesses += o.memAccesses;
        llcAccesses += o.llcAccesses;
        llcMisses += o.llcMisses;
        llcQueueCycles += o.llcQueueCycles;
        bpredLookups += o.bpredLookups;
        bpredUpdates += o.bpredUpdates;
        condBranches += o.condBranches;
        mispredicts += o.mispredicts;
        btbLookups += o.btbLookups;
        btbHits += o.btbHits;
        robWrites += o.robWrites;
        robReads += o.robReads;
        iqWrites += o.iqWrites;
        iqIssues += o.iqIssues;
        iqWakeups += o.iqWakeups;
        lsqInserts += o.lsqInserts;
        lsqSearches += o.lsqSearches;
        rfReads += o.rfReads;
        rfWrites += o.rfWrites;
        aluOps += o.aluOps;
        mulOps += o.mulOps;
        divOps += o.divOps;
        fpOps += o.fpOps;
        fpMulOps += o.fpMulOps;
        fpDivOps += o.fpDivOps;
        memPortOps += o.memPortOps;
        stallHeadLoad += o.stallHeadLoad;
        stallHeadStore += o.stallHeadStore;
        stallHeadFp += o.stallHeadFp;
        stallHeadDiv += o.stallHeadDiv;
        stallHeadOther += o.stallHeadOther;
        occRobSum += o.occRobSum;
        occIqSum += o.occIqSum;
        occLsqSum += o.occLsqSum;
        occIntRfSum += o.occIntRfSum;
        occFpRfSum += o.occFpRfSum;
    }

    /** Instructions per cycle over the run (committed ops). */
    double ipc() const
    {
        return cycles ? double(committedOps) / double(cycles) : 0.0;
    }
};

/** Per-cycle snapshot passed to observers (profiling counters). */
struct CycleSample
{
    std::uint32_t robOcc = 0;
    std::uint32_t iqOcc = 0;
    std::uint32_t lsqOcc = 0;
    std::uint32_t intRegsUsed = 0;
    std::uint32_t fpRegsUsed = 0;
    std::uint32_t rdPortsUsed = 0;
    std::uint32_t wrPortsUsed = 0;
    std::uint32_t aluUsed = 0;
    std::uint32_t memPortsUsed = 0;
    std::uint32_t fpUnitsUsed = 0;
    std::uint32_t iqSpecOps = 0;     ///< speculative ops in the IQ
    std::uint32_t lsqSpecOps = 0;    ///< speculative ops in the LSQ
};

/** Observer interface for profiling-time counter gathering. */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** Called once per simulated cycle; @p repeat ≥ 1 collapses
     *  identical idle cycles that the simulator fast-forwarded. */
    virtual void onCycle(const CycleSample &, std::uint64_t) {}

    /** L1-D demand access (committed-path and wrong-path). */
    virtual void onDCacheAccess(Addr, bool /* write */) {}

    /** L1-I access (one per fetched line). */
    virtual void onICacheAccess(Addr) {}

    /** Unified L2 access (on either L1's miss path). */
    virtual void onL2Access(Addr) {}

    /** Conditional-branch fetch with its BTB outcome. */
    virtual void onBranchFetch(Addr, bool /* btbHit */) {}
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_EVENTS_HH
