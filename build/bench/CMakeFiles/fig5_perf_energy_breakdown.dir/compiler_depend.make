# Empty compiler generated dependencies file for fig5_perf_energy_breakdown.
# This may be replaced when dependencies are built.
