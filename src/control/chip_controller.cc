#include "control/chip_controller.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "power/metrics.hh"

namespace adaptsim::control
{

double
ChipRunStats::meanEfficiency() const
{
    if (cores.empty())
        return 0.0;
    double log_sum = 0.0;
    std::size_t counted = 0;
    for (const auto &c : cores) {
        const double e = c.efficiency();
        if (e > 0.0) {
            log_sum += std::log(e);
            ++counted;
        }
    }
    return counted ? std::exp(log_sum / double(counted)) : 0.0;
}

std::uint64_t
ChipRunStats::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.instructions;
    return total;
}

ChipController::ChipController(
    const std::vector<const workload::Workload *> &workloads,
    const ml::AdaptivityModel &model,
    const ChipControllerOptions &options)
    : workloads_(workloads), opt_(options),
      backend_(options.backend ? *options.backend
                               : sim::defaultPerfModel()),
      profileBackend_(backend_.supportsObservers()
                          ? backend_
                          : sim::perfModel("cycle"))
{
    const std::size_t n = workloads_.size();
    if (n == 0)
        fatal("ChipController: need at least one workload");
    for (std::size_t i = 0; i < n; ++i) {
        if (!workloads_[i])
            fatal("ChipController: null workload for core ", i);
    }

    opt_.chip.coreConfigs.assign(n, opt_.initialConfig);

    wrongPaths_.reserve(n);
    policies_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &wl = *workloads_[i];
        wrongPaths_.push_back(
            std::make_unique<workload::WrongPathGenerator>(
                wl.averageParams(), wl.seed() ^ 0x771ULL));
        policies_.emplace_back(model, opt_.featureSet,
                               opt_.detectorThreshold);
    }
}

ChipRunStats
ChipController::run(std::uint64_t max_instructions)
{
    const std::size_t n = workloads_.size();
    ChipRunStats stats;
    stats.cores.resize(n);
    stats.interference.resize(n);

    const std::uint64_t interval = opt_.intervalLength;
    const std::uint64_t num_intervals = max_instructions / interval;

    std::vector<space::Configuration> current(n,
                                              opt_.initialConfig);
    std::vector<uarch::CoreConfig> current_cc(
        n, uarch::CoreConfig::fromConfiguration(opt_.initialConfig));

    std::vector<workload::WrongPathGenerator *> wpp;
    wpp.reserve(n);
    for (const auto &wp : wrongPaths_)
        wpp.push_back(wp.get());
    const auto chip = backend_.makeChipSession(opt_.chip, wpp);

    // Persistent per-core solo profiling sessions at the profiling
    // configuration (nominal, interference-free counters — the
    // distribution the model was trained on).
    const auto profiling = space::Configuration::profiling();
    const auto profiling_cc =
        uarch::CoreConfig::fromConfiguration(profiling);
    std::vector<std::unique_ptr<sim::CoreSession>> profilers;
    profilers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        profilers.push_back(
            profileBackend_.makeSession(profiling_cc,
                                        *wrongPaths_[i]));

    std::vector<workload::TracePtr> trace_hold(n);
    std::vector<std::vector<isa::MicroOp>> trace_local(n);
    for (std::uint64_t i = 0; i < num_intervals; ++i) {
        std::vector<std::span<const isa::MicroOp>> traces(n);
        std::vector<std::span<const isa::MicroOp>> chip_traces(n);
        std::vector<bool> just_reconfigured(n, false);
        bool any_chip_work = false;

        for (std::size_t c = 0; c < n; ++c) {
            const auto &wl = *workloads_[c];
            if (opt_.traceCache) {
                trace_hold[c] =
                    opt_.traceCache->get(wl, i * interval, interval);
                traces[c] = *trace_hold[c];
            } else {
                trace_local[c] =
                    wl.generate(i * interval, interval);
                traces[c] = trace_local[c];
            }

            // Stage 1 per core.
            const auto obs = policies_[c].observe(traces[c]);
            if (obs.phaseChanged)
                ++stats.cores[c].phaseChanges;

            space::Configuration target = current[c];
            if (obs.newPhase) {
                // Stage 2: solo profile at nominal conditions; the
                // core sits out this chip interval.
                counters::CounterBank bank(profiling_cc);
                uarch::SimResult prof;
                {
                    OBS_SPAN("control/chip_profile");
                    prof = profileBackend_.run(*profilers[c],
                                               traces[c], &bank);
                }
                bank.finalise(prof.events);
                const auto m = power::computeMetrics(profiling_cc,
                                                     prof.events);
                RunStats &cs = stats.cores[c];
                cs.seconds += m.seconds;
                cs.joules += m.joules;
                cs.instructions += prof.events.committedOps;
                ++cs.intervals;
                ++cs.profilingIntervals;

                // Stage 3 per core.
                target = policies_[c].predictFrom(obs.phaseId, bank);
            } else {
                if (const auto *p =
                        policies_[c].prediction(obs.phaseId))
                    target = *p;
                chip_traces[c] = traces[c];
                any_chip_work = true;
            }

            if (target != current[c]) {
                const ReconfigCostModel cost_model(current_cc[c]);
                const Cycles penalty =
                    cost_model.transitionCycles(current[c], target);
                RunStats &cs = stats.cores[c];
                cs.reconfigCycles += penalty;
                cs.seconds +=
                    double(penalty) * current_cc[c].clockPeriodSec;
                ++cs.reconfigurations;
                OBS_ONLY(
                    OBS_COUNTER("control/chip_reconfigurations")
                        .add(1);)
                just_reconfigured[c] = true;

                current[c] = target;
                current_cc[c] =
                    uarch::CoreConfig::fromConfiguration(target);
                // Reconfiguration flush: the chip session rebuilds
                // the core's private state cold.
                chip->reconfigureCore(c, target);
            }
        }

        if (!any_chip_work)
            continue;

        const auto res = chip->run(chip_traces);
        for (std::size_t c = 0; c < n; ++c) {
            if (chip_traces[c].empty())
                continue;
            const auto m = chip->metricsFor(c, res.cores[c]);
            RunStats &cs = stats.cores[c];
            const double joules_before = cs.joules;
            cs.seconds += m.seconds;
            cs.joules += m.joules;
            cs.instructions += res.cores[c].events.committedOps;
            ++cs.intervals;
            if (just_reconfigured[c]) {
                // ~3% energy overhead on the reconfiguring interval
                // (powering transitions, flush traffic) — Sec. VIII.
                cs.joules +=
                    (cs.joules - joules_before) *
                    ReconfigCostModel::intervalEnergyOverhead;
            }
        }
    }

    for (std::size_t c = 0; c < n; ++c)
        stats.interference[c] = chip->interference(c);
    return stats;
}

ChipRunStats
runStaticChip(const std::vector<const workload::Workload *> &workloads,
              const space::Configuration &config,
              const uarch::ChipConfig &chip_geometry,
              std::uint64_t max_instructions,
              std::uint64_t interval_length,
              workload::TraceCache *trace_cache,
              const sim::PerfModel *backend)
{
    const std::size_t n = workloads.size();
    if (n == 0)
        fatal("runStaticChip: need at least one workload");
    const sim::PerfModel &model =
        backend ? *backend : sim::defaultPerfModel();

    uarch::ChipConfig chip_cfg = chip_geometry;
    chip_cfg.coreConfigs.assign(n, config);

    std::vector<std::unique_ptr<workload::WrongPathGenerator>>
        wrong_paths;
    std::vector<workload::WrongPathGenerator *> wpp;
    wrong_paths.reserve(n);
    wpp.reserve(n);
    for (const auto *wl : workloads) {
        if (!wl)
            fatal("runStaticChip: null workload");
        wrong_paths.push_back(
            std::make_unique<workload::WrongPathGenerator>(
                wl->averageParams(), wl->seed() ^ 0x57a71cULL));
        wpp.push_back(wrong_paths.back().get());
    }
    const auto chip = model.makeChipSession(chip_cfg, wpp);

    ChipRunStats stats;
    stats.cores.resize(n);
    stats.interference.resize(n);

    const std::uint64_t num_intervals =
        max_instructions / interval_length;
    std::vector<workload::TracePtr> trace_hold(n);
    std::vector<std::vector<isa::MicroOp>> trace_local(n);
    for (std::uint64_t i = 0; i < num_intervals; ++i) {
        std::vector<std::span<const isa::MicroOp>> traces(n);
        for (std::size_t c = 0; c < n; ++c) {
            const auto &wl = *workloads[c];
            if (trace_cache) {
                trace_hold[c] = trace_cache->get(
                    wl, i * interval_length, interval_length);
                traces[c] = *trace_hold[c];
            } else {
                trace_local[c] = wl.generate(i * interval_length,
                                             interval_length);
                traces[c] = trace_local[c];
            }
        }
        const auto res = chip->run(traces);
        for (std::size_t c = 0; c < n; ++c) {
            const auto m = chip->metricsFor(c, res.cores[c]);
            RunStats &cs = stats.cores[c];
            cs.seconds += m.seconds;
            cs.joules += m.joules;
            cs.instructions += res.cores[c].events.committedOps;
            ++cs.intervals;
        }
    }

    for (std::size_t c = 0; c < n; ++c)
        stats.interference[c] = chip->interference(c);
    return stats;
}

} // namespace adaptsim::control
