/**
 * @file
 * Resource-reconfiguration cost model (Sec. VIII, Table V).
 *
 * Adaptation uses bitline segmentation so partitions can be powered
 * up/down in isolation; powering 1.2M transistors takes 200ns
 * (Royannez et al., ISSCC'05).  Each structure's overhead combines
 * its power-up time (6T SRAM cells), any drain/flush work (pipeline
 * drain, dirty-line writeback) and a fixed control constant.  Most of
 * the time is hidden behind continued execution; only a fraction is
 * charged to the running interval (~3% per reconfiguring interval).
 */

#ifndef ADAPTSIM_CONTROL_RECONFIG_COST_HH
#define ADAPTSIM_CONTROL_RECONFIG_COST_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "space/configuration.hh"
#include "uarch/core_config.hh"

namespace adaptsim::control
{

/** Reconfigurable structures of Table V. */
enum class ReStructure : std::uint8_t
{
    Width,
    RegFile,
    Bpred,
    Rob,
    Iq,
    Lsq,
    ICache,
    DCache,
    UCache,
    NumStructures
};

inline constexpr std::size_t numReStructures =
    static_cast<std::size_t>(ReStructure::NumStructures);

/** Display name of a reconfigurable structure. */
const char *reStructureName(ReStructure s);

/** Table V style per-structure reconfiguration cost model. */
class ReconfigCostModel
{
  public:
    /**
     * @param cfg configuration whose clock and structure sizes set
     *        cycle counts (Table V uses the baseline).
     */
    explicit ReconfigCostModel(const uarch::CoreConfig &cfg);

    /** Full-structure reconfiguration overhead in cycles (Table V). */
    Cycles cyclesFor(ReStructure s) const;

    /**
     * Cycles charged when switching @p from → @p to: the maximum over
     * the structures that actually change (they reconfigure in
     * parallel), scaled by the visible (non-hidden) fraction.
     */
    Cycles transitionCycles(const space::Configuration &from,
                            const space::Configuration &to) const;

    /** Fraction of reconfiguration time not hidden by execution. */
    static constexpr double visibleFraction = 0.2;

    /** Energy overhead of an interval containing a reconfiguration. */
    static constexpr double intervalEnergyOverhead = 0.03;

  private:
    uarch::CoreConfig cfg_;
    std::array<Cycles, numReStructures> cycles_;
};

} // namespace adaptsim::control

#endif // ADAPTSIM_CONTROL_RECONFIG_COST_HH
