#include "sim/cycle_level_model.hh"

namespace adaptsim::sim
{

namespace
{

class CycleLevelSession final : public CoreSession
{
  public:
    CycleLevelSession(const uarch::CoreConfig &cfg,
                      workload::WrongPathGenerator &wrong_path)
        : core_(cfg, wrong_path)
    {
    }

    void warm(std::span<const isa::MicroOp> trace) override
    {
        core_.warm(trace);
    }

    uarch::SimResult run(std::span<const isa::MicroOp> trace,
                         uarch::SimObserver *observer) override
    {
        return core_.run(trace, observer);
    }

    const uarch::CoreConfig &config() const override
    {
        return core_.config();
    }

  private:
    uarch::Core core_;
};

} // namespace

std::unique_ptr<CoreSession>
CycleLevelModel::makeSession(
    const uarch::CoreConfig &cfg,
    workload::WrongPathGenerator &wrong_path) const
{
    return std::make_unique<CycleLevelSession>(cfg, wrong_path);
}

} // namespace adaptsim::sim
