/**
 * @file
 * The full Fig. 2 runtime loop: an AdaptiveController executing a
 * program with online phase detection, profiling-configuration
 * counter gathering, model-driven reconfiguration (with the Table V
 * overheads), compared against running the whole program on the
 * static Table III baseline.
 */

#include <cstdio>

#include "common/table.hh"
#include "control/controller.hh"
#include "harness/gather.hh"
#include "phase/simpoint.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main()
{
    constexpr std::uint64_t program_length = 200000;
    constexpr std::uint64_t interval = 5000;
    constexpr std::uint64_t run_length = 120000;

    // Train a quick model on a few donor programs (never including
    // the programs we will control).
    const std::vector<std::string> donors = {"swim", "crafty",
                                             "mcf", "mesa"};
    std::vector<workload::Workload> suite;
    for (const auto &name : donors)
        suite.push_back(
            workload::specBenchmark(name, program_length));
    harness::EvalRepository repo(suite, "data", 0);

    phase::SimPointOptions sp;
    sp.intervalLength = interval;
    sp.maxPhases = 3;
    std::vector<phase::Phase> phases;
    for (const auto &name : donors) {
        const auto ph =
            phase::extractPhases(repo.workload(name), sp);
        phases.insert(phases.end(), ph.begin(), ph.end());
    }
    harness::GatherOptions gather;
    gather.sharedRandomConfigs = 24;
    gather.localNeighbours = 6;
    gather.oneAtATimeSweep = false;
    std::printf("training the controller's model on %zu donor "
                "phases...\n",
                phases.size());
    const auto gathered = harness::gatherTrainingData(
        repo, phases, program_length, 4000, gather);
    std::vector<ml::PhaseData> data;
    for (const auto &g : gathered)
        data.push_back(
            g.toPhaseData(counters::FeatureSet::Advanced));
    const auto model = ml::trainModel(data, {});
    repo.flush();

    // Drive unseen programs adaptively vs the static baseline.
    TextTable table;
    table.setHeader({"Program", "Static eff", "Adaptive eff",
                     "Gain", "Phases", "Reconfigs"});
    for (const char *program : {"gap", "equake", "gzip"}) {
        const auto wl =
            workload::specBenchmark(program, program_length);

        // Both runs walk the same interval sequence, so one shared
        // cache generates every trace once and replays it twice.
        workload::TraceCache trace_cache;
        const auto static_stats = control::runStatic(
            wl, harness::paperBaselineConfig(), run_length,
            interval, &trace_cache);

        control::ControllerOptions copt;
        copt.intervalLength = interval;
        copt.initialConfig = harness::paperBaselineConfig();
        copt.traceCache = &trace_cache;
        control::AdaptiveController controller(wl, model, copt);
        const auto adaptive_stats = controller.run(run_length);

        table.addRow(
            {program,
             TextTable::sci(static_stats.efficiency()),
             TextTable::sci(adaptive_stats.efficiency()),
             TextTable::num(adaptive_stats.efficiency() /
                            static_stats.efficiency()) + "x",
             std::to_string(adaptive_stats.phaseChanges),
             std::to_string(adaptive_stats.reconfigurations)});
    }
    std::printf("\nadaptive controller vs static Table III baseline "
                "(unseen programs):\n\n%s\n",
                table.render().c_str());
    std::printf("Reconfiguration overheads (Table V model) and "
                "profiling intervals are charged to the adaptive "
                "runs.\n");
    return 0;
}
