#include "workload/workload.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serial.hh"

namespace adaptsim::workload
{

Workload::Workload(std::string name, std::vector<Segment> segments,
                   std::uint64_t seed)
    : name_(std::move(name)),
      uid_(fnv1a64(name_.data(), name_.size())),
      segments_(std::move(segments)), totalLength_(0), seed_(seed)
{
    if (segments_.empty())
        fatal("workload ", name_, " has no segments");
    segmentStart_.reserve(segments_.size());
    for (const auto &seg : segments_) {
        if (seg.length == 0)
            fatal("workload ", name_, " has a zero-length segment");
        segmentStart_.push_back(totalLength_);
        totalLength_ += seg.length;
    }
}

std::uint32_t
Workload::kernelIdOf(std::size_t segment_index) const
{
    const std::string &kname = segments_[segment_index].kernel.name;
    for (std::size_t i = 0; i < segment_index; ++i) {
        if (segments_[i].kernel.name == kname)
            return kernelIdOf(i);
    }
    return static_cast<std::uint32_t>(segment_index);
}

std::vector<isa::MicroOp>
Workload::generate(std::uint64_t start, std::uint64_t count) const
{
    std::vector<isa::MicroOp> out;
    out.reserve(count);

    std::uint64_t pos = start % totalLength_;
    while (out.size() < count) {
        // Locate the segment containing pos.
        const auto it = std::upper_bound(segmentStart_.begin(),
                                         segmentStart_.end(), pos);
        const std::size_t seg_idx =
            static_cast<std::size_t>(it - segmentStart_.begin()) - 1;
        const Segment &seg = segments_[seg_idx];
        const std::uint64_t into = pos - segmentStart_[seg_idx];
        const std::uint64_t remaining_in_seg = seg.length - into;
        const std::uint64_t want = count - out.size();
        const std::uint64_t take = std::min(want, remaining_in_seg);

        // Kernels are seeded by identity so that repeated occurrences
        // of the same kernel replay the same code.
        const std::uint32_t kid = kernelIdOf(seg_idx);
        Kernel kernel(seg.kernel, kid,
                      seed_ ^ (std::uint64_t(kid) * 0x9e37UL));
        kernel.skip(into);
        for (std::uint64_t i = 0; i < take; ++i)
            out.push_back(kernel.next());

        pos = (pos + take) % totalLength_;
    }
    return out;
}

KernelParams
Workload::averageParams() const
{
    KernelParams avg;
    avg.name = name_ + ".avg";
    avg.fracLoad = avg.fracStore = avg.fracFpAlu = avg.fracFpMul = 0.0;
    avg.fracFpDiv = avg.fracIntMul = avg.fracIntDiv = 0.0;
    avg.shortDepFrac = 0.0;
    avg.randomAccessFrac = 0.0;
    avg.pointerChaseFrac = 0.0;
    avg.branchNoise = 0.0;
    avg.hardBranchFrac = 0.0;
    avg.loopBranchFrac = 0.0;
    double ws = 0.0;
    double block_size = 0.0;

    const double total = static_cast<double>(totalLength_);
    for (const auto &seg : segments_) {
        const double w = static_cast<double>(seg.length) / total;
        const KernelParams &k = seg.kernel;
        avg.fracLoad += w * k.fracLoad;
        avg.fracStore += w * k.fracStore;
        avg.fracFpAlu += w * k.fracFpAlu;
        avg.fracFpMul += w * k.fracFpMul;
        avg.fracFpDiv += w * k.fracFpDiv;
        avg.fracIntMul += w * k.fracIntMul;
        avg.fracIntDiv += w * k.fracIntDiv;
        avg.shortDepFrac += w * k.shortDepFrac;
        avg.randomAccessFrac += w * k.randomAccessFrac;
        avg.pointerChaseFrac += w * k.pointerChaseFrac;
        avg.branchNoise += w * k.branchNoise;
        avg.hardBranchFrac += w * k.hardBranchFrac;
        avg.loopBranchFrac += w * k.loopBranchFrac;
        ws += w * static_cast<double>(k.dataWorkingSet);
        block_size += w * k.blockSize;
    }
    avg.dataWorkingSet = static_cast<std::uint64_t>(ws);
    avg.blockSize = std::max(2, static_cast<int>(block_size));
    return avg;
}

} // namespace adaptsim::workload
