/**
 * @file
 * Ablation / Sec. VIII model-cost study: quantising the trained model
 * to signed 8-bit weights (the perceptron-style hardware inference).
 * Reports weight storage, per-parameter prediction agreement with
 * the full-precision model, and the efficiency achieved by the
 * quantised predictions on held-out programs.
 */

#include <cstdio>
#include <set>

#include "ablation_common.hh"
#include "common/table.hh"
#include "ml/quantised.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    const auto &phases = exp.phases();

    // Split-half training (same protocol as the other ablations).
    std::vector<std::string> programs;
    for (const auto &[name, idxs] : exp.phasesByProgram())
        programs.push_back(name);
    std::set<std::string> train_set;
    for (std::size_t i = 0; i < programs.size(); i += 2)
        train_set.insert(programs[i]);

    std::vector<ml::PhaseData> train;
    std::vector<std::vector<double>> heldout_features;
    for (const auto &g : phases) {
        auto d = g.toPhaseData(counters::FeatureSet::Advanced);
        if (train_set.count(g.phase.workload))
            train.push_back(std::move(d));
        else
            heldout_features.push_back(d.features);
    }
    const auto model = ml::trainModel(train, {});
    const ml::QuantisedModel quantised(model);

    std::printf("Sec. VIII model implementation study\n\n");
    std::printf("full-precision weights: %zu doubles (%zu bytes)\n",
                model.totalWeights(),
                model.totalWeights() * sizeof(double));
    std::printf("quantised storage: %zu bytes of int8 (paper "
                "estimates ~2KB at its feature dimensionality)\n",
                quantised.storageBytes());
    std::printf("per-parameter prediction agreement on held-out "
                "phases: %.1f%%\n\n",
                quantised.agreement(model, heldout_features) * 100);

    // Efficiency comparison on held-out programs.
    auto rel_of = [&](auto &&predict) {
        std::vector<double> per_program;
        for (const auto &[name, idxs] : exp.phasesByProgram()) {
            if (train_set.count(name))
                continue;
            per_program.push_back(exp.relativeEfficiency(
                idxs, [&](std::size_t i) {
                    const auto cfg = predict(
                        phases[i]
                            .toPhaseData(
                                counters::FeatureSet::Advanced)
                            .features);
                    return exp.repository()
                        .evaluate(phases[i].spec, cfg)
                        .efficiency;
                }));
        }
        return geomean(per_program);
    };

    const double full_rel =
        rel_of([&](const std::vector<double> &x) {
            return model.predict(x);
        });
    const double quant_rel =
        rel_of([&](const std::vector<double> &x) {
            return quantised.predict(x);
        });
    exp.repository().flush();

    TextTable table;
    table.setHeader({"Model", "Held-out efficiency (x baseline)"});
    table.addRow({"full precision", TextTable::num(full_rel)});
    table.addRow({"int8 quantised", TextTable::num(quant_rel)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
