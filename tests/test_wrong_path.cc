/**
 * @file
 * Tests of the synthetic wrong-path µop generator.
 */

#include <gtest/gtest.h>

#include "workload/spec_suite.hh"
#include "workload/wrong_path.hh"

using namespace adaptsim;
using namespace adaptsim::workload;

TEST(WrongPath, DeterministicPerBranchPc)
{
    const auto mix = specBenchmark("gcc", 50000).averageParams();
    WrongPathGenerator a(mix, 1);
    WrongPathGenerator b(mix, 1);
    a.startBurst(0x400100);
    b.startBurst(0x400100);
    for (int i = 0; i < 200; ++i) {
        const auto oa = a.next();
        const auto ob = b.next();
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.opClass, ob.opClass);
        EXPECT_EQ(oa.effAddr, ob.effAddr);
    }
}

TEST(WrongPath, SameBranchAlwaysSameWrongPath)
{
    const auto mix = specBenchmark("gcc", 50000).averageParams();
    WrongPathGenerator gen(mix, 7);
    gen.startBurst(0x400200);
    const auto first = gen.next();
    gen.startBurst(0x400300);   // different branch
    (void)gen.next();
    gen.startBurst(0x400200);   // back to the first branch
    const auto again = gen.next();
    EXPECT_EQ(first.pc, again.pc);
    EXPECT_EQ(first.opClass, again.opClass);
}

TEST(WrongPath, PcsAdvance)
{
    const auto mix = specBenchmark("eon", 50000).averageParams();
    WrongPathGenerator gen(mix, 3);
    gen.startBurst(0x500000);
    Addr prev = 0x500000;
    for (int i = 0; i < 50; ++i) {
        const auto op = gen.next();
        EXPECT_GT(op.pc, prev);
        prev = op.pc;
    }
}

TEST(WrongPath, MixRoughlyFollowsWorkload)
{
    auto mix = specBenchmark("mcf", 50000).averageParams();
    WrongPathGenerator gen(mix, 11);
    gen.startBurst(0x400000);
    int loads = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto op = gen.next();
        if (op.isBranch())
            continue;
        loads += op.isLoad();
        ++total;
    }
    EXPECT_NEAR(double(loads) / total, mix.fracLoad, 0.05);
}

TEST(WrongPath, MarkedWithWrongPathBlockId)
{
    const auto mix = specBenchmark("gzip", 50000).averageParams();
    WrongPathGenerator gen(mix, 5);
    gen.startBurst(0x400000);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(gen.next().bbId, 0xffff0000u);
}

TEST(WrongPath, EmitsBranches)
{
    const auto mix = specBenchmark("gzip", 50000).averageParams();
    WrongPathGenerator gen(mix, 5);
    gen.startBurst(0x400000);
    int branches = 0;
    for (int i = 0; i < 1000; ++i)
        branches += gen.next().isBranch();
    EXPECT_GT(branches, 50);
    EXPECT_LT(branches, 400);
}
