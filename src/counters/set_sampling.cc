#include "counters/set_sampling.hh"

#include "common/logging.hh"

namespace adaptsim::counters
{

SetSampler::SetSampler(std::uint64_t total_sets,
                       std::uint64_t sampled_sets)
    : totalSets_(total_sets),
      sampledSets_(sampled_sets == 0 ? total_sets : sampled_sets)
{
    if (total_sets == 0 || (total_sets & (total_sets - 1)) != 0)
        fatal("SetSampler: total sets must be a power of two");
    if ((sampledSets_ & (sampledSets_ - 1)) != 0 ||
        sampledSets_ > totalSets_) {
        fatal("SetSampler: sampled sets must be a power of two ≤ "
              "total sets");
    }
    // Monitor every (total/sampled)-th set.
    strideMask_ = totalSets_ / sampledSets_ - 1;
}

} // namespace adaptsim::counters
