#include "workload/spec_suite.hh"

#include <cmath>

#include "common/logging.hh"

namespace adaptsim::workload
{

namespace
{

constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t mB = 1024 * 1024;

/** Regular strided numeric loop: high ILP when short_dep is low. */
KernelParams
streamKernel(const std::string &name, std::uint64_t ws, int stride,
             double fp_share, double short_dep)
{
    KernelParams k;
    k.name = name;
    k.fracLoad = 0.28;
    k.fracStore = 0.12;
    k.fracFpAlu = fp_share * 0.6;
    k.fracFpMul = fp_share * 0.4;
    k.fracIntMul = 0.01;
    k.shortDepFrac = short_dep;
    k.numBlocks = 24;
    k.blockSize = 14;          // long blocks: few, predictable branches
    k.branchNoise = 0.002;
    k.hardBranchFrac = 0.02;
    k.loopBranchFrac = 0.55;   // loopy numeric code
    k.loopTripCount = 48;
    k.dataWorkingSet = ws;
    k.randomAccessFrac = 0.04;
    k.strideBytes = stride;
    return k;
}

/** Pointer-chasing, latency-bound kernel (mcf/ammp style). */
KernelParams
chaseKernel(const std::string &name, std::uint64_t ws, double chase_frac,
            double fp_share = 0.0)
{
    KernelParams k;
    k.name = name;
    k.fracLoad = 0.34;
    k.fracStore = 0.08;
    k.fracFpAlu = fp_share;
    k.shortDepFrac = 0.65;
    k.numBlocks = 96;
    k.blockSize = 7;
    k.branchNoise = 0.01;
    k.hardBranchFrac = 0.22;   // data-dependent pointer tests
    k.loopBranchFrac = 0.30;
    k.loopTripCount = 6;
    k.dataWorkingSet = ws;
    k.randomAccessFrac = 0.55;
    k.strideBytes = 24;
    k.pointerChaseFrac = chase_frac;
    return k;
}

/**
 * Control-heavy integer kernel; @p noise sets the share of
 * data-dependent branches (hardBranchFrac = 1.5x noise).
 */
KernelParams
branchyKernel(const std::string &name, double noise, int blocks,
              std::uint64_t ws, double short_dep = 0.45)
{
    KernelParams k;
    k.name = name;
    k.fracLoad = 0.24;
    k.fracStore = 0.10;
    k.fracIntMul = 0.02;
    k.shortDepFrac = short_dep;
    k.numBlocks = blocks;
    k.blockSize = 5;           // short blocks: branch every 5 µops
    k.branchNoise = 0.01;
    k.hardBranchFrac = std::min(0.45, noise * 1.5);
    k.loopBranchFrac = 0.35;
    k.loopTripCount = 4;
    k.dataWorkingSet = ws;
    k.randomAccessFrac = 0.30;
    k.strideBytes = 16;
    return k;
}

/** Compute-dominated kernel, small data footprint. */
KernelParams
computeKernel(const std::string &name, double fp_share, double short_dep,
              std::uint64_t ws = 16 * kB, int blocks = 32)
{
    KernelParams k;
    k.name = name;
    k.fracLoad = 0.14;
    k.fracStore = 0.05;
    k.fracFpAlu = fp_share * 0.5;
    k.fracFpMul = fp_share * 0.35;
    k.fracFpDiv = fp_share * 0.004;
    k.fracIntMul = fp_share > 0 ? 0.01 : 0.05;
    k.shortDepFrac = short_dep;
    k.numBlocks = blocks;
    k.blockSize = 12;
    k.branchNoise = 0.002;
    k.hardBranchFrac = 0.03;
    k.loopBranchFrac = 0.50;
    k.loopTripCount = 32;
    k.dataWorkingSet = ws;
    k.randomAccessFrac = 0.05;
    k.strideBytes = 8;
    return k;
}

/** Variant with a large static code footprint (gcc/vortex style). */
KernelParams
bigCode(KernelParams k, int blocks)
{
    k.numBlocks = blocks;
    return k;
}

struct WeightedSegment
{
    KernelParams kernel;
    double weight;
};

std::vector<Segment>
scale(const std::vector<WeightedSegment> &parts, std::uint64_t total)
{
    double wsum = 0.0;
    for (const auto &p : parts)
        wsum += p.weight;
    if (wsum <= 0.0)
        panic("segment weights must be positive");
    std::vector<Segment> segs;
    segs.reserve(parts.size());
    for (const auto &p : parts) {
        const auto len = static_cast<std::uint64_t>(
            std::llround(p.weight / wsum * double(total)));
        segs.push_back({p.kernel, std::max<std::uint64_t>(len, 512)});
    }
    return segs;
}

std::vector<WeightedSegment>
schedule(const std::string &bench)
{
    // INT benchmarks ----------------------------------------------------
    if (bench == "gzip") {
        auto scan = streamKernel("gzip.scan", 256 * kB, 8, 0.0, 0.35);
        auto match = branchyKernel("gzip.match", 0.08, 80, 64 * kB);
        auto huff = computeKernel("gzip.huff", 0.0, 0.55, 32 * kB);
        return {{scan, 0.25}, {match, 0.30}, {huff, 0.15},
                {scan, 0.15}, {match, 0.15}};
    }
    if (bench == "vpr") {
        auto place = branchyKernel("vpr.place", 0.12, 160, 512 * kB);
        auto route = chaseKernel("vpr.route", 1 * mB, 0.25);
        auto cost = computeKernel("vpr.cost", 0.3, 0.4, 64 * kB);
        return {{place, 0.35}, {cost, 0.15}, {route, 0.35},
                {cost, 0.15}};
    }
    if (bench == "gcc") {
        auto parse = bigCode(
            branchyKernel("gcc.parse", 0.10, 900, 384 * kB), 900);
        auto opt = bigCode(
            branchyKernel("gcc.opt", 0.07, 1200, 768 * kB, 0.5), 1200);
        auto emit = streamKernel("gcc.emit", 128 * kB, 16, 0.0, 0.4);
        return {{parse, 0.3}, {opt, 0.4}, {emit, 0.15},
                {parse, 0.15}};
    }
    if (bench == "mcf") {
        auto simplex = chaseKernel("mcf.simplex", 6 * mB, 0.6);
        auto refresh = streamKernel("mcf.refresh", 4 * mB, 64, 0.0,
                                    0.5);
        auto price = chaseKernel("mcf.price", 8 * mB, 0.7);
        return {{simplex, 0.4}, {refresh, 0.15}, {price, 0.35},
                {refresh, 0.10}};
    }
    if (bench == "crafty") {
        // Small data set (fits in L1/L2), big code, predictable-ish.
        auto search = bigCode(
            branchyKernel("crafty.search", 0.05, 500, 48 * kB, 0.4),
            500);
        auto eval = computeKernel("crafty.eval", 0.0, 0.35, 24 * kB,
                                  200);
        auto hash = branchyKernel("crafty.hash", 0.03, 120, 96 * kB);
        return {{search, 0.4}, {eval, 0.3}, {hash, 0.15},
                {search, 0.15}};
    }
    if (bench == "parser") {
        // Heavily mis-speculated (Fig. 3): very noisy short branches.
        auto link = branchyKernel("parser.link", 0.22, 300, 192 * kB,
                                  0.55);
        auto dict = chaseKernel("parser.dict", 512 * kB, 0.3);
        auto prune = branchyKernel("parser.prune", 0.16, 140, 96 * kB);
        return {{link, 0.35}, {dict, 0.25}, {prune, 0.25},
                {link, 0.15}};
    }
    if (bench == "eon") {
        // Steady single-behaviour program: the best static config is
        // already near-optimal (paper Sec. VI-B).
        auto render = computeKernel("eon.render", 0.55, 0.4, 48 * kB,
                                    96);
        auto shade = computeKernel("eon.shade", 0.5, 0.42, 64 * kB,
                                   96);
        return {{render, 0.55}, {shade, 0.45}};
    }
    if (bench == "perlbmk") {
        auto interp = bigCode(
            branchyKernel("perl.interp", 0.12, 800, 256 * kB, 0.5),
            800);
        auto regex = branchyKernel("perl.regex", 0.18, 220, 128 * kB,
                                   0.6);
        auto gc = streamKernel("perl.gc", 512 * kB, 32, 0.0, 0.45);
        return {{interp, 0.4}, {regex, 0.3}, {gc, 0.15},
                {interp, 0.15}};
    }
    if (bench == "gap") {
        // Phase-varying working set (Fig. 1 discusses gap's RF needs).
        auto small = computeKernel("gap.small", 0.0, 0.3, 32 * kB, 64);
        auto grow = streamKernel("gap.grow", 1 * mB, 16, 0.0, 0.35);
        auto huge = chaseKernel("gap.huge", 3 * mB, 0.4);
        return {{small, 0.3}, {grow, 0.25}, {huge, 0.25},
                {small, 0.2}};
    }
    if (bench == "vortex") {
        // Like parser: significant mis-speculation plus big code.
        auto tree = bigCode(
            branchyKernel("vortex.tree", 0.20, 700, 384 * kB, 0.55),
            700);
        auto mem = chaseKernel("vortex.mem", 768 * kB, 0.35);
        auto io = streamKernel("vortex.io", 256 * kB, 16, 0.0, 0.45);
        return {{tree, 0.4}, {mem, 0.3}, {io, 0.15}, {tree, 0.15}};
    }
    if (bench == "bzip2") {
        auto sort = branchyKernel("bzip2.sort", 0.09, 120, 768 * kB,
                                  0.5);
        auto mtf = streamKernel("bzip2.mtf", 384 * kB, 8, 0.0, 0.55);
        auto huff = computeKernel("bzip2.huff", 0.0, 0.5, 64 * kB);
        return {{sort, 0.35}, {mtf, 0.3}, {huff, 0.2},
                {sort, 0.15}};
    }
    if (bench == "twolf") {
        auto anneal = branchyKernel("twolf.anneal", 0.13, 200,
                                    256 * kB, 0.5);
        auto move = chaseKernel("twolf.move", 384 * kB, 0.3);
        return {{anneal, 0.4}, {move, 0.3}, {anneal, 0.3}};
    }

    // FP benchmarks -----------------------------------------------------
    if (bench == "wupwise") {
        auto zgemm = computeKernel("wup.zgemm", 0.8, 0.22, 512 * kB,
                                   48);
        auto comm = streamKernel("wup.comm", 1 * mB, 16, 0.7, 0.3);
        return {{zgemm, 0.55}, {comm, 0.25}, {zgemm, 0.2}};
    }
    if (bench == "swim") {
        // Large strided FP streams; LSQ demand high (Fig. 3: 72).
        auto calc1 = streamKernel("swim.calc1", 6 * mB, 8, 0.85, 0.2);
        auto calc2 = streamKernel("swim.calc2", 6 * mB, 16, 0.85,
                                  0.22);
        auto shift = streamKernel("swim.shift", 4 * mB, 8, 0.6, 0.3);
        return {{calc1, 0.4}, {calc2, 0.35}, {shift, 0.25}};
    }
    if (bench == "mgrid") {
        // Medium regular FP; moderate LSQ demand (Fig. 3: 32).
        auto resid = streamKernel("mgrid.resid", 1 * mB, 8, 0.8, 0.3);
        auto psinv = streamKernel("mgrid.psinv", 512 * kB, 8, 0.8,
                                  0.35);
        auto interp = computeKernel("mgrid.interp", 0.7, 0.3,
                                    256 * kB);
        return {{resid, 0.4}, {psinv, 0.3}, {interp, 0.3}};
    }
    if (bench == "applu") {
        // Width-insensitive steady FP (Fig. 1).
        auto blts = streamKernel("applu.blts", 2 * mB, 8, 0.8, 0.35);
        auto buts = streamKernel("applu.buts", 2 * mB, 8, 0.8, 0.35);
        auto rhs = streamKernel("applu.rhs", 1 * mB, 16, 0.7, 0.3);
        return {{blts, 0.35}, {buts, 0.35}, {rhs, 0.3}};
    }
    if (bench == "mesa") {
        auto raster = streamKernel("mesa.raster", 256 * kB, 8, 0.5,
                                   0.3);
        auto xform = computeKernel("mesa.xform", 0.75, 0.25, 64 * kB);
        auto clip = branchyKernel("mesa.clip", 0.07, 90, 64 * kB);
        return {{raster, 0.35}, {xform, 0.35}, {clip, 0.3}};
    }
    if (bench == "galgel") {
        // High phase variance: alternating tiny-compute and huge-
        // stream phases (paper: 4x available, model reaches 2x).
        auto dense = computeKernel("galgel.dense", 0.85, 0.18,
                                   32 * kB, 24);
        auto spread = streamKernel("galgel.spread", 4 * mB, 32, 0.7,
                                   0.45);
        auto mixed = chaseKernel("galgel.mixed", 2 * mB, 0.35, 0.4);
        return {{dense, 0.25}, {spread, 0.25}, {dense, 0.2},
                {mixed, 0.3}};
    }
    if (bench == "art") {
        // Streaming over a too-big-for-L2 matrix: memory bound.
        auto match = streamKernel("art.match", 8 * mB, 8, 0.75, 0.25);
        auto learn = streamKernel("art.learn", 8 * mB, 8, 0.75, 0.3);
        return {{match, 0.55}, {learn, 0.45}};
    }
    if (bench == "equake") {
        auto smvp = chaseKernel("equake.smvp", 3 * mB, 0.45, 0.6);
        auto time = computeKernel("equake.time", 0.7, 0.3, 128 * kB);
        return {{smvp, 0.55}, {time, 0.25}, {smvp, 0.2}};
    }
    if (bench == "facerec") {
        auto gabor = computeKernel("facerec.gabor", 0.8, 0.2,
                                   256 * kB, 40);
        auto graph = chaseKernel("facerec.graph", 1 * mB, 0.3, 0.5);
        return {{gabor, 0.5}, {graph, 0.3}, {gabor, 0.2}};
    }
    if (bench == "ammp") {
        auto nonbon = chaseKernel("ammp.nonbon", 2 * mB, 0.5, 0.6);
        auto vector = streamKernel("ammp.vector", 1 * mB, 8, 0.7,
                                   0.3);
        return {{nonbon, 0.5}, {vector, 0.25}, {nonbon, 0.25}};
    }
    if (bench == "lucas") {
        // Streaming FFT-like passes, steady: static config suffices.
        auto fft = streamKernel("lucas.fft", 2 * mB, 8, 0.85, 0.28);
        auto square = streamKernel("lucas.square", 2 * mB, 8, 0.85,
                                   0.3);
        return {{fft, 0.55}, {square, 0.45}};
    }
    if (bench == "fma3d") {
        auto elem = computeKernel("fma3d.elem", 0.75, 0.3, 384 * kB,
                                  160);
        auto asm_ = streamKernel("fma3d.asm", 1 * mB, 24, 0.6, 0.35);
        auto contact = branchyKernel("fma3d.contact", 0.10, 140,
                                     512 * kB);
        return {{elem, 0.4}, {asm_, 0.3}, {contact, 0.3}};
    }
    if (bench == "sixtrack") {
        auto track = computeKernel("sixtrack.track", 0.9, 0.15,
                                   64 * kB, 56);
        auto thin = computeKernel("sixtrack.thin", 0.85, 0.2,
                                  96 * kB, 56);
        return {{track, 0.6}, {thin, 0.4}};
    }
    if (bench == "apsi") {
        auto advect = streamKernel("apsi.advect", 1 * mB, 8, 0.75,
                                   0.3);
        auto small = computeKernel("apsi.small", 0.7, 0.3, 48 * kB);
        auto wide = streamKernel("apsi.wide", 3 * mB, 16, 0.7, 0.35);
        return {{advect, 0.3}, {small, 0.25}, {wide, 0.25},
                {advect, 0.2}};
    }

    fatal("unknown benchmark name: ", bench);
}

} // namespace

const std::vector<std::string> &
specNames()
{
    static const std::vector<std::string> names = {
        // SPECint 2000
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon",
        "perlbmk", "gap", "vortex", "bzip2", "twolf",
        // SPECfp 2000
        "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art",
        "equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack",
        "apsi",
    };
    return names;
}

Workload
specBenchmark(const std::string &name, std::uint64_t program_length,
              std::uint64_t seed)
{
    return Workload(name, scale(schedule(name), program_length),
                    seed ^ std::hash<std::string>{}(name));
}

std::vector<Workload>
specSuite(std::uint64_t program_length, std::uint64_t seed)
{
    std::vector<Workload> suite;
    suite.reserve(specNames().size());
    for (const auto &name : specNames())
        suite.push_back(specBenchmark(name, program_length, seed));
    return suite;
}

} // namespace adaptsim::workload
