/**
 * @file
 * Tests that the design space matches Table I exactly.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "space/design_space.hh"

using namespace adaptsim::space;

TEST(DesignSpace, ParameterCounts)
{
    const auto &ds = DesignSpace::the();
    EXPECT_EQ(ds.numValues(Param::Width), 4u);
    EXPECT_EQ(ds.numValues(Param::RobSize), 17u);
    EXPECT_EQ(ds.numValues(Param::IqSize), 10u);
    EXPECT_EQ(ds.numValues(Param::LsqSize), 10u);
    EXPECT_EQ(ds.numValues(Param::RfSize), 16u);
    EXPECT_EQ(ds.numValues(Param::RfRdPorts), 8u);
    EXPECT_EQ(ds.numValues(Param::RfWrPorts), 8u);
    EXPECT_EQ(ds.numValues(Param::GshareSize), 6u);
    EXPECT_EQ(ds.numValues(Param::BtbSize), 3u);
    EXPECT_EQ(ds.numValues(Param::MaxBranches), 4u);
    EXPECT_EQ(ds.numValues(Param::ICacheSize), 5u);
    EXPECT_EQ(ds.numValues(Param::DCacheSize), 5u);
    EXPECT_EQ(ds.numValues(Param::L2CacheSize), 5u);
    EXPECT_EQ(ds.numValues(Param::Depth), 10u);
}

TEST(DesignSpace, TotalPointsIs627Billion)
{
    EXPECT_DOUBLE_EQ(DesignSpace::the().totalPoints(),
                     626688000000.0);
}

TEST(DesignSpace, RangeEndpoints)
{
    const auto &ds = DesignSpace::the();
    EXPECT_EQ(ds.value(Param::RobSize, 0), 32u);
    EXPECT_EQ(ds.value(Param::RobSize, 16), 160u);
    EXPECT_EQ(ds.value(Param::GshareSize, 0), 1024u);
    EXPECT_EQ(ds.value(Param::GshareSize, 5), 32768u);
    EXPECT_EQ(ds.value(Param::L2CacheSize, 4),
              4u * 1024 * 1024);
    EXPECT_EQ(ds.value(Param::Depth, 0), 9u);
    EXPECT_EQ(ds.value(Param::Depth, 9), 36u);
}

TEST(DesignSpace, ValuesStrictlyAscending)
{
    const auto &ds = DesignSpace::the();
    for (auto p : allParams()) {
        const auto &vals = ds.values(p);
        for (std::size_t i = 1; i < vals.size(); ++i)
            EXPECT_LT(vals[i - 1], vals[i]) << ds.name(p);
    }
}

TEST(DesignSpace, IndexOfRoundTrips)
{
    const auto &ds = DesignSpace::the();
    for (auto p : allParams()) {
        for (std::size_t i = 0; i < ds.numValues(p); ++i)
            EXPECT_EQ(ds.indexOf(p, ds.value(p, i)), i);
    }
}

TEST(DesignSpace, ClosestIndex)
{
    const auto &ds = DesignSpace::the();
    // 100 is between RF values 96 and 104; 96 is closer.
    EXPECT_EQ(ds.value(Param::RfSize,
                       ds.closestIndex(Param::RfSize, 100)),
              96u);
    EXPECT_EQ(ds.closestIndex(Param::Width, 0), 0u);
    EXPECT_EQ(ds.closestIndex(Param::Width, 100),
              ds.numValues(Param::Width) - 1);
}

TEST(DesignSpace, NamesNonEmptyAndUnique)
{
    const auto &ds = DesignSpace::the();
    std::set<std::string> names;
    for (auto p : allParams()) {
        EXPECT_FALSE(ds.name(p).empty());
        names.insert(ds.name(p));
    }
    EXPECT_EQ(names.size(), numParams);
}
