/**
 * @file
 * Tests of SimPoint-style phase extraction.
 */

#include <gtest/gtest.h>

#include "phase/simpoint.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::phase;

TEST(SimPoint, ExtractsAtMostMaxPhases)
{
    const auto wl = workload::specBenchmark("gap", 200000);
    SimPointOptions opt;
    opt.intervalLength = 5000;
    opt.maxPhases = 10;
    const auto phases = extractPhases(wl, opt);
    EXPECT_GE(phases.size(), 2u);
    EXPECT_LE(phases.size(), 10u);
}

TEST(SimPoint, WeightsSumToOne)
{
    const auto wl = workload::specBenchmark("vpr", 200000);
    SimPointOptions opt;
    opt.intervalLength = 5000;
    const auto phases = extractPhases(wl, opt);
    double total = 0.0;
    for (const auto &p : phases)
        total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoint, PhasesOrderedAndAligned)
{
    const auto wl = workload::specBenchmark("gcc", 200000);
    SimPointOptions opt;
    opt.intervalLength = 4000;
    const auto phases = extractPhases(wl, opt);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        EXPECT_EQ(phases[i].index, i);
        EXPECT_EQ(phases[i].startInst % opt.intervalLength, 0u);
        EXPECT_EQ(phases[i].lengthInsts, opt.intervalLength);
        if (i > 0) {
            EXPECT_GT(phases[i].startInst, prev);
        }
        prev = phases[i].startInst;
        EXPECT_EQ(phases[i].workload, "gcc");
    }
}

TEST(SimPoint, Deterministic)
{
    const auto wl = workload::specBenchmark("mesa", 200000);
    SimPointOptions opt;
    opt.intervalLength = 5000;
    const auto a = extractPhases(wl, opt);
    const auto b = extractPhases(wl, opt);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].startInst, b[i].startInst);
        EXPECT_NEAR(a[i].weight, b[i].weight, 1e-12);
    }
}

TEST(SimPoint, MultiSegmentProgramsYieldMultiplePhases)
{
    // gap has four very different behaviour segments; with enough
    // intervals the extractor must find at least 3 phases.
    const auto wl = workload::specBenchmark("gap", 400000);
    SimPointOptions opt;
    opt.intervalLength = 5000;
    opt.maxPhases = 10;
    const auto phases = extractPhases(wl, opt);
    EXPECT_GE(phases.size(), 3u);
}

TEST(SimPoint, IntervalBbvCount)
{
    const auto wl = workload::specBenchmark("eon", 100000);
    const auto bbvs = intervalBbvs(wl, 10000);
    EXPECT_EQ(bbvs.size(), 10u);
    for (const auto &b : bbvs)
        EXPECT_EQ(b.opCount(), 10000u);
}

TEST(SimPoint, TooShortProgramIsFatal)
{
    const auto wl = workload::specBenchmark("eon", 20000);
    SimPointOptions opt;
    opt.intervalLength = 1u << 20;
    EXPECT_EXIT((void)extractPhases(wl, opt),
                ::testing::ExitedWithCode(1), "");
}
