/**
 * @file
 * Integration tests of the out-of-order pipeline timing model.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;

namespace
{

constexpr std::uint64_t programLength = 100000;

SimResult
runOn(const std::string &bench, const space::Configuration &cfg,
      std::uint64_t warm = 8000, std::uint64_t detail = 4000,
      SimObserver *obs = nullptr)
{
    const auto wl = workload::specBenchmark(bench, programLength);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = CoreConfig::fromConfiguration(cfg);
    Core core(cc, wp);
    core.warm(wl.generate(40000 - warm, warm));
    return core.run(wl.generate(40000, detail), obs);
}

} // namespace

TEST(Pipeline, CommitsExactlyTheTrace)
{
    const auto r = runOn("eon", harness::paperBaselineConfig());
    EXPECT_EQ(r.events.committedOps, 4000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Pipeline, Deterministic)
{
    const auto a = runOn("gcc", harness::paperBaselineConfig());
    const auto b = runOn("gcc", harness::paperBaselineConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events.mispredicts, b.events.mispredicts);
    EXPECT_EQ(a.events.dcMisses, b.events.dcMisses);
    EXPECT_EQ(a.events.wrongPathOps, b.events.wrongPathOps);
}

TEST(Pipeline, IpcWithinPhysicalBounds)
{
    for (const char *bench : {"eon", "mcf", "swim", "crafty"}) {
        const auto r = runOn(bench,
                             harness::paperBaselineConfig());
        const double ipc = r.events.ipc();
        EXPECT_GT(ipc, 0.0) << bench;
        EXPECT_LE(ipc, 4.0) << bench;   // width bound
    }
}

TEST(Pipeline, NarrowWidthBoundsIpc)
{
    auto cfg = harness::paperBaselineConfig();
    cfg.setValue(space::Param::Width, 2);
    const auto r = runOn("sixtrack", cfg);
    EXPECT_LE(r.events.ipc(), 2.0);
}

TEST(Pipeline, WiderCoreFasterOnIlpCode)
{
    // Width 2 → 4 on compute code must pay off.  (Width 8 can lose
    // a little to deeper wrong-path cache pollution on this
    // mispredict-sensitive substrate, as on real machines.)
    auto narrow = harness::paperBaselineConfig();
    narrow.setValue(space::Param::Width, 2);
    auto wide = harness::paperBaselineConfig();
    wide.setValue(space::Param::Width, 4);
    wide.setValue(space::Param::RfRdPorts, 16);
    wide.setValue(space::Param::RfWrPorts, 8);
    // Longer warm-up: the property holds once the predictor is
    // trained (an under-warmed run is mispredict-dominated).
    const auto n = runOn("sixtrack", narrow, 24000);
    const auto w = runOn("sixtrack", wide, 24000);
    EXPECT_GT(w.events.ipc(), n.events.ipc() * 1.03);
}

TEST(Pipeline, TinyIqHurtsIlpCode)
{
    auto big = space::Configuration::profiling();
    auto small = big;
    small.setValue(space::Param::IqSize, 8);
    const auto b = runOn("sixtrack", big);
    const auto s = runOn("sixtrack", small);
    EXPECT_GT(b.events.ipc(), s.events.ipc());
}

TEST(Pipeline, WrongPathOpsTrackMispredicts)
{
    const auto r = runOn("parser", harness::paperBaselineConfig());
    EXPECT_GT(r.events.mispredicts, 0u);
    EXPECT_GT(r.events.wrongPathOps, r.events.mispredicts);
    EXPECT_GT(r.events.squashedOps, 0u);
    // Squashed ops are exactly the dispatched wrong-path ops (they
    // never commit).
    EXPECT_LE(r.events.squashedOps, r.events.wrongPathOps);
}

TEST(Pipeline, PredictableCodeHasFewMispredicts)
{
    const auto r = runOn("swim", harness::paperBaselineConfig(),
                         16000);
    const double mr = double(r.events.mispredicts) /
                      double(r.events.condBranches);
    EXPECT_LT(mr, 0.12);
    // And far fewer than inherently branchy code.
    const auto p = runOn("parser", harness::paperBaselineConfig(),
                         16000);
    const double pmr = double(p.events.mispredicts) /
                       double(p.events.condBranches);
    EXPECT_GT(pmr, 1.25 * mr);
}

TEST(Pipeline, MemoryBoundCodeMissesInCaches)
{
    const auto mcf = runOn("mcf", harness::paperBaselineConfig());
    const auto eon = runOn("eon", harness::paperBaselineConfig());
    const double mcf_miss = double(mcf.events.dcMisses) /
                            double(mcf.events.dcAccesses);
    const double eon_miss = double(eon.events.dcMisses) /
                            double(eon.events.dcAccesses);
    EXPECT_GT(mcf_miss, 2.0 * eon_miss);
    EXPECT_GT(mcf.events.memAccesses, eon.events.memAccesses);
}

TEST(Pipeline, OccupancySumsBoundedByCapacity)
{
    const auto r = runOn("gap", harness::paperBaselineConfig());
    EXPECT_LE(r.events.occRobSum, r.cycles * 144);
    EXPECT_LE(r.events.occIqSum, r.cycles * 48);
    EXPECT_LE(r.events.occLsqSum, r.cycles * 32);
    EXPECT_LE(r.events.occIntRfSum, r.cycles * 160);
}

TEST(Pipeline, ObserverCyclesMatchSimCycles)
{
    struct CycleCounter : SimObserver
    {
        std::uint64_t cycles = 0;
        void
        onCycle(const CycleSample &, std::uint64_t repeat) override
        {
            cycles += repeat;
        }
    } counter;
    const auto r = runOn("gzip", harness::paperBaselineConfig(),
                         8000, 4000, &counter);
    EXPECT_EQ(counter.cycles, r.cycles);
}

TEST(Pipeline, ObserverOccupanciesRespectCapacities)
{
    struct Checker : SimObserver
    {
        const CoreConfig cfg = CoreConfig::fromConfiguration(
            harness::paperBaselineConfig());
        void
        onCycle(const CycleSample &s, std::uint64_t) override
        {
            ASSERT_LE(s.robOcc, std::uint32_t(cfg.robSize));
            ASSERT_LE(s.iqOcc, std::uint32_t(cfg.iqSize));
            ASSERT_LE(s.lsqOcc, std::uint32_t(cfg.lsqSize));
            ASSERT_LE(s.intRegsUsed, std::uint32_t(cfg.rfSize));
            ASSERT_LE(s.fpRegsUsed, std::uint32_t(cfg.rfSize));
            ASSERT_LE(s.rdPortsUsed,
                      std::uint32_t(cfg.rfRdPorts));
            ASSERT_LE(s.wrPortsUsed,
                      std::uint32_t(cfg.rfWrPorts));
            ASSERT_LE(s.aluUsed, std::uint32_t(cfg.numAlu));
            ASSERT_LE(s.iqSpecOps, s.iqOcc);
            ASSERT_LE(s.lsqSpecOps, s.lsqOcc);
        }
    } checker;
    (void)runOn("vortex", harness::paperBaselineConfig(), 8000,
                4000, &checker);
}

TEST(Pipeline, RfWritePortThrottling)
{
    auto one_port = space::Configuration::profiling();
    one_port.setValue(space::Param::RfWrPorts, 1);
    auto many_ports = space::Configuration::profiling();
    const auto slow = runOn("sixtrack", one_port);
    const auto fast = runOn("sixtrack", many_ports);
    EXPECT_GT(fast.events.ipc(), slow.events.ipc());
}

TEST(Pipeline, DepthAffectsMispredictCost)
{
    // Same ISA work at a deeper pipeline → more cycles lost per
    // mispredict on branchy code.
    auto shallow = harness::paperBaselineConfig();
    shallow.setValue(space::Param::Depth, 36);
    auto deep = harness::paperBaselineConfig();
    deep.setValue(space::Param::Depth, 9);
    const auto s = runOn("parser", shallow);
    const auto d = runOn("parser", deep);
    EXPECT_GT(d.cycles, s.cycles);
}

/** Property sweep: the pipeline completes every trace without
 *  deadlock across extreme corner configurations. */
class PipelineCornerSweep
    : public ::testing::TestWithParam<
          std::tuple<const char *, int>>
{
};

TEST_P(PipelineCornerSweep, RunsToCompletion)
{
    const auto [bench, corner] = GetParam();
    space::Configuration cfg;
    switch (corner) {
      case 0:   // everything minimal
        cfg = space::Configuration::fromValues(
            {2, 32, 8, 8, 40, 2, 1, 1024, 1024, 8, 8192, 8192,
             262144, 36});
        break;
      case 1:   // everything maximal
        cfg = space::Configuration::profiling();
        break;
      case 2:   // wide core, starved register file
        cfg = space::Configuration::fromValues(
            {8, 160, 80, 80, 40, 2, 1, 32768, 4096, 32, 131072,
             131072, 4194304, 9});
        break;
      default:  // narrow core, huge windows
        cfg = space::Configuration::fromValues(
            {2, 160, 80, 80, 160, 16, 8, 1024, 1024, 32, 8192,
             8192, 262144, 9});
        break;
    }
    const auto r = runOn(bench, cfg, 4000, 2000);
    EXPECT_EQ(r.events.committedOps, 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, PipelineCornerSweep,
    ::testing::Combine(::testing::Values("mcf", "parser", "swim",
                                         "gcc"),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Pipeline, MispredictRecoveryPromptDespiteWrongPathMisses)
{
    // Regression test: a wrong-path I-cache miss (the wrong path
    // running into never-fetched code, potentially a DRAM-latency
    // fill) must not keep the front end frozen after the mispredicted
    // branch resolves — the redirect cancels the stall.  Before the
    // fix each such mispredict cost an extra ~memLatency cycles.
    using isa::MicroOp;
    using isa::OpClass;

    std::vector<MicroOp> trace;
    Addr pc = 0x40'0000;
    for (int block = 0; block < 20; ++block) {
        for (int i = 0; i < 10; ++i) {
            MicroOp op;
            op.pc = pc;
            pc += 4;
            op.opClass = OpClass::IntAlu;
            op.srcReg0 = 0;
            op.destReg = std::int16_t(1 + (i % 30));
            op.bbId = 1;
            trace.push_back(op);
        }
        // A taken branch to a far target; the cold predictor says
        // not-taken, so every one mispredicts and the wrong path
        // falls through into virgin code (cold I-cache lines).
        MicroOp br;
        br.pc = pc;
        br.opClass = OpClass::Branch;
        br.isCond = true;
        br.srcReg0 = 0;
        br.taken = true;
        br.target = pc + 0x10000;   // far: new cache lines
        pc = br.target;
        br.bbId = 1;
        trace.push_back(br);
    }

    workload::KernelParams mix;
    workload::WrongPathGenerator wp(mix, 3);
    const auto cc = CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    Core core(cc, wp);
    const auto r = core.run(trace);

    EXPECT_EQ(r.events.committedOps, trace.size());
    EXPECT_GE(r.events.mispredicts, 15u);

    // Budget: correct-path I-cache cold misses (~21 lines reach
    // memory) plus per-mispredict resolution+refill.  Without the
    // stall cancellation this needs ~20 extra memory latencies.
    // (the target line is also cold on the correct path after each
    // redirect, so both directions pay one memory fill per block).
    const Cycles budget =
        21 * Cycles(cc.memLatency + cc.l2Latency + 8) +
        20 * Cycles(cc.frontendDelay + 60) + 1200;
    EXPECT_LT(r.cycles, budget);
    // The regression being guarded against adds roughly one memory
    // latency per mispredict (~20 x memLatency ≈ 3400 cycles here).
}

TEST(Pipeline, GoldenResultsAreFrozen)
{
    // Exact SimResult values captured from the reference build
    // across a width/IQ matrix of benchmarks.  Any timing-model
    // change that alters these is NOT a pure optimisation: hot-loop
    // work (trace caching, producer-readiness memoisation, scratch
    // hoisting) must reproduce them bit-for-bit.
    struct Golden
    {
        const char *bench;
        int width;
        int iq;   ///< -1 keeps the baseline IQ size
        std::uint64_t cycles;
        std::uint64_t committedOps;
        std::uint64_t mispredicts;
        std::uint64_t dcMisses;
        std::uint64_t wrongPathOps;
    };
    const Golden goldens[] = {
        {"eon", 4, -1, 4609ull, 4000ull, 13ull, 104ull, 381ull},
        {"gcc", 4, -1, 12152ull, 4000ull, 232ull, 816ull, 9580ull},
        {"mcf", 4, -1, 18507ull, 4000ull, 56ull, 1675ull, 3497ull},
        {"swim", 2, -1, 7212ull, 4000ull, 28ull, 422ull, 596ull},
        {"crafty", 4, 8, 9674ull, 4000ull, 196ull, 159ull, 8188ull},
        {"sixtrack", 8, -1, 4438ull, 4000ull, 13ull, 103ull,
         934ull},
        {"art", 4, 16, 5927ull, 4000ull, 6ull, 246ull, 249ull},
    };
    for (const auto &g : goldens) {
        auto cfg = harness::paperBaselineConfig();
        cfg.setValue(space::Param::Width, g.width);
        if (g.iq > 0)
            cfg.setValue(space::Param::IqSize, g.iq);
        const auto r = runOn(g.bench, cfg);
        EXPECT_EQ(r.cycles, g.cycles) << g.bench;
        EXPECT_EQ(r.events.committedOps, g.committedOps) << g.bench;
        EXPECT_EQ(r.events.mispredicts, g.mispredicts) << g.bench;
        EXPECT_EQ(r.events.dcMisses, g.dcMisses) << g.bench;
        EXPECT_EQ(r.events.wrongPathOps, g.wrongPathOps) << g.bench;
    }
}
