/**
 * @file
 * Wattch-style event-driven energy accounting.
 *
 * Per-event energies are derived once from the core configuration via
 * the Cacti-style technology model; a simulation's EventCounts are
 * then converted into a per-structure energy breakdown.  Conditional
 * clock gating is modelled the Wattch way: unused structures still
 * burn a fraction of their active power through the clock tree, and
 * leakage accrues with real time (cycles × period).
 */

#ifndef ADAPTSIM_POWER_ENERGY_MODEL_HH
#define ADAPTSIM_POWER_ENERGY_MODEL_HH

#include <array>
#include <string>

#include "uarch/core_config.hh"
#include "uarch/events.hh"

namespace adaptsim::power
{

/** Structures tracked in the energy breakdown. */
enum class Structure : std::uint8_t
{
    ICache,
    DCache,
    L2Cache,
    RegFile,
    Rob,
    IssueQueue,
    Lsq,
    Bpred,
    FuncUnits,
    ClockTree,
    Dram,
    NumStructures
};

/** Number of breakdown structures. */
inline constexpr std::size_t numStructures =
    static_cast<std::size_t>(Structure::NumStructures);

/** Name of a breakdown structure. */
const char *structureName(Structure s);

/** Energy totals of one simulated interval. */
struct EnergyBreakdown
{
    std::array<double, numStructures> dynamicJ{};
    double leakageJ = 0.0;

    double totalDynamicJ() const;
    double totalJ() const { return totalDynamicJ() + leakageJ; }
};

/** Per-configuration energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const uarch::CoreConfig &cfg);

    /** Convert event counts into an energy breakdown. */
    EnergyBreakdown evaluate(const uarch::EventCounts &ev) const;

    /** Total leakage power of the configuration in watts. */
    double leakageWatts() const { return leakageW_; }

    /** Peak dynamic power estimate in watts (all events maximal). */
    double clockTreeWattsAtFullSpeed() const;

  private:
    uarch::CoreConfig cfg_;

    // Per-event energies in nanojoules.
    double icAccessNj_;
    double dcAccessNj_;
    double l2AccessNj_;
    double rfAccessNj_;
    double robAccessNj_;
    double iqAccessNj_;
    double iqWakeupPerEntryNj_;
    double lsqAccessNj_;
    double lsqSearchPerEntryNj_;
    double gshareAccessNj_;
    double btbAccessNj_;
    double clockPerCycleNj_;
    double leakageW_;
};

} // namespace adaptsim::power

#endif // ADAPTSIM_POWER_ENERGY_MODEL_HH
