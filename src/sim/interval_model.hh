/**
 * @file
 * Interval-analysis backend ("interval"): a Karkhanis/Eeckhout-style
 * analytical performance estimate with no per-cycle simulation.
 *
 * The trace is replayed once, linearly, through the *same*
 * CacheHierarchy and BranchPredictor models the detailed pipeline
 * uses, so miss and misprediction events are exact for the correct
 * path.  Execution time is then composed as
 *
 *     cycles = B + sum(penalties)
 *
 * where B is the steady-state bound — the maximum of the dispatch
 * bound ceil(N/width) and the structural throughput bounds of the
 * memory ports and functional units — and each miss event adds the
 * penalty interval analysis assigns it:
 *
 *   - L1-I miss: the extra fetch latency, discounted by the fraction
 *     the out-of-order backend hides (kFetchExposedPct);
 *   - branch mispredict: frontend refill + branch resolution time;
 *   - predicted-taken branch without a BTB target: a 2-cycle
 *     fetch bubble (exactly the detailed model's);
 *   - L1-D load miss to DRAM: an exposed fraction of the memory
 *     latency chosen by a register-taint dependence classifier —
 *     a miss feeding off an in-flight miss (pointer chase) pays
 *     kSerialMissPct, one issued close behind an independent miss
 *     overlaps with it (memory-level parallelism) and pays only
 *     kParallelMissPct, and an isolated miss pays kIsolatedMissPct
 *     (the ROB hides the rest).  L2-hit latencies are assumed
 *     hidden; store latency by the store buffer;
 *   - FP ALU/MUL ops add kFpStallCentiCycles each for dependent-
 *     chain latency stalls the base bound cannot see.
 *
 * All exposed-fraction constants are calibrated once against the
 * cycle-level reference on the 26-program suite and frozen; the
 * accuracy bound is asserted by tests/test_sim.cc (DESIGN.md §11).
 *
 * The synthesised EventCounts carry the exact cache/branch event
 * counts plus deterministic Little's-law occupancy estimates so the
 * power model produces sensible energy numbers; only the IPC error
 * bound is asserted (see tests/test_sim.cc and DESIGN.md §11).
 */

#ifndef ADAPTSIM_SIM_INTERVAL_MODEL_HH
#define ADAPTSIM_SIM_INTERVAL_MODEL_HH

#include "sim/perf_model.hh"

namespace adaptsim::sim
{

/** Analytical interval-analysis backend ("interval"). */
class IntervalModel final : public PerfModel
{
  public:
    /** Distinct nonzero tag keeps interval records from ever
     *  colliding with cycle-level ones in caches (tag 0 is the
     *  cycle-level reserve). */
    static constexpr std::uint64_t kCacheTag = 0x494e5456414c5953ULL;

    /** Branch resolution time beyond the frontend refill: dispatch
     *  to execute of the mispredicted branch (calibrated against
     *  the cycle-level model on the deterministic suite). */
    static constexpr int kBranchResolveCycles = 10;

    /** Exposed percentage of DRAM latency per data miss, by the
     *  dependence class the linear pass assigns (calibrated; see
     *  file comment). */
    static constexpr int kIsolatedMissPct = 25;
    static constexpr int kSerialMissPct = 16;
    static constexpr int kParallelMissPct = 4;

    /** Two independent DRAM misses at most this many ops apart are
     *  considered concurrently in flight (MLP). */
    static constexpr int kParallelWindowOps = 16;

    /** Exposed percentage of an L1-I miss's extra fetch latency. */
    static constexpr int kFetchExposedPct = 30;

    /** Dependent-chain FP stall, in hundredths of a cycle per
     *  FP ALU/MUL op. */
    static constexpr int kFpStallCentiCycles = 15;

    const char *name() const override { return "interval"; }
    Fidelity fidelity() const override
    {
        return Fidelity::Analytical;
    }
    std::uint64_t cacheTag() const override { return kCacheTag; }

    /** No per-cycle loop, so no per-cycle observer callbacks;
     *  profiling must fall back to a cycle-level backend. */
    bool supportsObservers() const override { return false; }

    std::unique_ptr<CoreSession>
    makeSession(const uarch::CoreConfig &cfg,
                workload::WrongPathGenerator &wrong_path)
        const override;
};

} // namespace adaptsim::sim

#endif // ADAPTSIM_SIM_INTERVAL_MODEL_HH
