/**
 * @file
 * Tests of the µop record and op-class helpers.
 */

#include <gtest/gtest.h>

#include "isa/micro_op.hh"

using namespace adaptsim::isa;

TEST(OpClass, MemPredicate)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_FALSE(isMemOp(OpClass::Branch));
}

TEST(OpClass, FpPredicate)
{
    EXPECT_TRUE(isFpOp(OpClass::FpAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpMul));
    EXPECT_TRUE(isFpOp(OpClass::FpDiv));
    EXPECT_FALSE(isFpOp(OpClass::Load));
    EXPECT_FALSE(isFpOp(OpClass::IntMul));
}

TEST(OpClass, NamesDistinct)
{
    EXPECT_STRNE(opClassName(OpClass::IntAlu),
                 opClassName(OpClass::FpAlu));
    EXPECT_STREQ(opClassName(OpClass::Load), "Load");
}

TEST(MicroOp, FlagHelpers)
{
    MicroOp op;
    op.opClass = OpClass::Load;
    EXPECT_TRUE(op.isMem());
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isBranch());

    op.opClass = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
    EXPECT_FALSE(op.isMem());
}

TEST(MicroOp, FpDestination)
{
    MicroOp op;
    op.opClass = OpClass::FpMul;
    op.destReg = 3;
    EXPECT_TRUE(op.writesFp());
    EXPECT_TRUE(op.readsFp());

    op.opClass = OpClass::Load;
    op.fpData = true;
    EXPECT_TRUE(op.writesFp());   // FP load
    EXPECT_FALSE(op.readsFp());   // address is integer

    op.fpData = false;
    EXPECT_FALSE(op.writesFp());

    op.destReg = noReg;
    op.opClass = OpClass::FpAlu;
    EXPECT_FALSE(op.writesFp());  // no destination at all
}

TEST(MicroOp, ToStringMentionsFields)
{
    MicroOp op;
    op.pc = 0x1000;
    op.opClass = OpClass::Branch;
    op.isCond = true;
    op.taken = true;
    op.target = 0x2000;
    const auto s = op.toString();
    EXPECT_NE(s.find("Branch"), std::string::npos);
    EXPECT_NE(s.find("taken"), std::string::npos);
    EXPECT_NE(s.find("1000"), std::string::npos);
}
