/**
 * @file
 * Tests of the environment-variable knobs.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace adaptsim;

TEST(Env, DoubleFallback)
{
    unsetenv("ADAPTSIM_TEST_D");
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 2.5);
    setenv("ADAPTSIM_TEST_D", "1.25", 1);
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 1.25);
    setenv("ADAPTSIM_TEST_D", "garbage", 1);
    EXPECT_EQ(envDouble("ADAPTSIM_TEST_D", 2.5), 2.5);
    unsetenv("ADAPTSIM_TEST_D");
}

TEST(Env, LongFallback)
{
    unsetenv("ADAPTSIM_TEST_L");
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 7);
    setenv("ADAPTSIM_TEST_L", "42", 1);
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 42);
    unsetenv("ADAPTSIM_TEST_L");
}

TEST(Env, StringFallback)
{
    unsetenv("ADAPTSIM_TEST_S");
    EXPECT_EQ(envString("ADAPTSIM_TEST_S", "dflt"), "dflt");
    setenv("ADAPTSIM_TEST_S", "custom", 1);
    EXPECT_EQ(envString("ADAPTSIM_TEST_S", "dflt"), "custom");
    unsetenv("ADAPTSIM_TEST_S");
}

TEST(Env, ScaleRejectsNonPositive)
{
    setenv("ADAPTSIM_SCALE", "-3", 1);
    EXPECT_EQ(experimentScale(), 1.0);
    setenv("ADAPTSIM_SCALE", "0.5", 1);
    EXPECT_EQ(experimentScale(), 0.5);
    unsetenv("ADAPTSIM_SCALE");
}

TEST(Env, ThreadsPositive)
{
    unsetenv("ADAPTSIM_THREADS");
    EXPECT_GE(numThreads(), 1u);
    setenv("ADAPTSIM_THREADS", "3", 1);
    EXPECT_EQ(numThreads(), 3u);
    setenv("ADAPTSIM_THREADS", "-2", 1);
    EXPECT_GE(numThreads(), 1u);
    unsetenv("ADAPTSIM_THREADS");
}

TEST(Env, LongPartialParseAndEmpty)
{
    setenv("ADAPTSIM_TEST_L", "", 1);
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 7);
    // strtol stops at the first non-digit; a leading number wins.
    setenv("ADAPTSIM_TEST_L", "12abc", 1);
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 12);
    setenv("ADAPTSIM_TEST_L", "abc", 1);
    EXPECT_EQ(envLong("ADAPTSIM_TEST_L", 7), 7);
    unsetenv("ADAPTSIM_TEST_L");
}

TEST(Env, DataDirDefaultAndOverride)
{
    unsetenv("ADAPTSIM_DATA_DIR");
    EXPECT_EQ(dataDir(), "data");
    setenv("ADAPTSIM_DATA_DIR", "/tmp/cache", 1);
    EXPECT_EQ(dataDir(), "/tmp/cache");
    unsetenv("ADAPTSIM_DATA_DIR");
}

TEST(Env, FlushEveryDefaultAndClamp)
{
    unsetenv("ADAPTSIM_FLUSH_EVERY");
    EXPECT_EQ(flushEvery(), 64u);
    setenv("ADAPTSIM_FLUSH_EVERY", "128", 1);
    EXPECT_EQ(flushEvery(), 128u);
    // Zero and negative clamp to the minimum of 1.
    setenv("ADAPTSIM_FLUSH_EVERY", "0", 1);
    EXPECT_EQ(flushEvery(), 1u);
    setenv("ADAPTSIM_FLUSH_EVERY", "-5", 1);
    EXPECT_EQ(flushEvery(), 1u);
    setenv("ADAPTSIM_FLUSH_EVERY", "garbage", 1);
    EXPECT_EQ(flushEvery(), 64u);
    unsetenv("ADAPTSIM_FLUSH_EVERY");
}

TEST(Env, MetricsTristate)
{
    unsetenv("ADAPTSIM_METRICS");
    EXPECT_TRUE(metricsEnabled());
    EXPECT_EQ(metricsJsonPath(), "");
    setenv("ADAPTSIM_METRICS", "1", 1);
    EXPECT_TRUE(metricsEnabled());
    EXPECT_EQ(metricsJsonPath(), "");
    setenv("ADAPTSIM_METRICS", "0", 1);
    EXPECT_FALSE(metricsEnabled());
    EXPECT_EQ(metricsJsonPath(), "");
    setenv("ADAPTSIM_METRICS", "off", 1);
    EXPECT_FALSE(metricsEnabled());
    // Any other value doubles as the JSON dump path.
    setenv("ADAPTSIM_METRICS", "out/metrics.json", 1);
    EXPECT_TRUE(metricsEnabled());
    EXPECT_EQ(metricsJsonPath(), "out/metrics.json");
    unsetenv("ADAPTSIM_METRICS");
}

TEST(Env, TraceKnobs)
{
    unsetenv("ADAPTSIM_TRACE");
    EXPECT_FALSE(traceEnabled());
    setenv("ADAPTSIM_TRACE", "0", 1);
    EXPECT_FALSE(traceEnabled());
    setenv("ADAPTSIM_TRACE", "off", 1);
    EXPECT_FALSE(traceEnabled());
    setenv("ADAPTSIM_TRACE", "1", 1);
    EXPECT_TRUE(traceEnabled());
    unsetenv("ADAPTSIM_TRACE");

    unsetenv("ADAPTSIM_TRACE_FILE");
    EXPECT_EQ(traceFile(), "adaptsim_trace.json");
    setenv("ADAPTSIM_TRACE_FILE", "t.json", 1);
    EXPECT_EQ(traceFile(), "t.json");
    unsetenv("ADAPTSIM_TRACE_FILE");
}

TEST(Env, TraceCacheCapacityDefaultAndClamp)
{
    unsetenv("ADAPTSIM_TRACE_CACHE");
    EXPECT_EQ(traceCacheCapacity(), 48u);
    setenv("ADAPTSIM_TRACE_CACHE", "6", 1);
    EXPECT_EQ(traceCacheCapacity(), 6u);
    // Zero and negative clamp to the minimum of 1.
    setenv("ADAPTSIM_TRACE_CACHE", "0", 1);
    EXPECT_EQ(traceCacheCapacity(), 1u);
    setenv("ADAPTSIM_TRACE_CACHE", "-9", 1);
    EXPECT_EQ(traceCacheCapacity(), 1u);
    setenv("ADAPTSIM_TRACE_CACHE", "garbage", 1);
    EXPECT_EQ(traceCacheCapacity(), 48u);
    unsetenv("ADAPTSIM_TRACE_CACHE");
}

TEST(Env, CycleTrace)
{
    unsetenv("ADAPTSIM_CYCLE_TRACE");
    EXPECT_FALSE(cycleTraceEnabled());
    setenv("ADAPTSIM_CYCLE_TRACE", "0", 1);
    EXPECT_FALSE(cycleTraceEnabled());
    setenv("ADAPTSIM_CYCLE_TRACE", "off", 1);
    EXPECT_FALSE(cycleTraceEnabled());
    setenv("ADAPTSIM_CYCLE_TRACE", "1", 1);
    EXPECT_TRUE(cycleTraceEnabled());
    unsetenv("ADAPTSIM_CYCLE_TRACE");
}

TEST(Env, BackendNameDefaultAndOverride)
{
    unsetenv("ADAPTSIM_BACKEND");
    EXPECT_EQ(backendName(), "cycle");
    setenv("ADAPTSIM_BACKEND", "interval", 1);
    EXPECT_EQ(backendName(), "interval");
    setenv("ADAPTSIM_BACKEND", "", 1);
    EXPECT_EQ(backendName(), "cycle");
    unsetenv("ADAPTSIM_BACKEND");
}

TEST(Env, CascadeThresholdDefaultAndOverride)
{
    unsetenv("ADAPTSIM_CASCADE_THRESHOLD");
    EXPECT_EQ(cascadeThreshold(), 0.08);
    setenv("ADAPTSIM_CASCADE_THRESHOLD", "0.25", 1);
    EXPECT_EQ(cascadeThreshold(), 0.25);
    // Negative values are legal: they force every cascade run to
    // escalate (the bit-exactness escape hatch).
    setenv("ADAPTSIM_CASCADE_THRESHOLD", "-1", 1);
    EXPECT_EQ(cascadeThreshold(), -1.0);
    setenv("ADAPTSIM_CASCADE_THRESHOLD", "garbage", 1);
    EXPECT_EQ(cascadeThreshold(), 0.08);
    unsetenv("ADAPTSIM_CASCADE_THRESHOLD");
}

TEST(Env, SurrogatePathDefaultsEmpty)
{
    unsetenv("ADAPTSIM_SURROGATE");
    EXPECT_EQ(surrogatePath(), "");
    setenv("ADAPTSIM_SURROGATE", "/tmp/weights.txt", 1);
    EXPECT_EQ(surrogatePath(), "/tmp/weights.txt");
    unsetenv("ADAPTSIM_SURROGATE");
}

TEST(Env, EvalSocketPathDefaultsEmpty)
{
    unsetenv("ADAPTSIM_EVAL_SOCKET");
    EXPECT_EQ(evalSocketPath(), "");
    setenv("ADAPTSIM_EVAL_SOCKET", "/tmp/d.sock", 1);
    EXPECT_EQ(evalSocketPath(), "/tmp/d.sock");
    unsetenv("ADAPTSIM_EVAL_SOCKET");
}

TEST(Env, EvalShardsDefaultAndClamp)
{
    unsetenv("ADAPTSIM_EVAL_SHARDS");
    EXPECT_EQ(evalShards(), 1u);
    setenv("ADAPTSIM_EVAL_SHARDS", "8", 1);
    EXPECT_EQ(evalShards(), 8u);
    // Clamped to the 1..64 file-probe range.
    setenv("ADAPTSIM_EVAL_SHARDS", "0", 1);
    EXPECT_EQ(evalShards(), 1u);
    setenv("ADAPTSIM_EVAL_SHARDS", "-4", 1);
    EXPECT_EQ(evalShards(), 1u);
    setenv("ADAPTSIM_EVAL_SHARDS", "1000", 1);
    EXPECT_EQ(evalShards(), 64u);
    setenv("ADAPTSIM_EVAL_SHARDS", "garbage", 1);
    EXPECT_EQ(evalShards(), 1u);
    unsetenv("ADAPTSIM_EVAL_SHARDS");
}

TEST(Env, SvcMaxQueueDefaultAndUnlimited)
{
    unsetenv("ADAPTSIM_SVC_MAX_QUEUE");
    EXPECT_EQ(svcMaxQueue(), 256u);
    setenv("ADAPTSIM_SVC_MAX_QUEUE", "16", 1);
    EXPECT_EQ(svcMaxQueue(), 16u);
    // Zero (and anything negative) disables the bound entirely.
    setenv("ADAPTSIM_SVC_MAX_QUEUE", "0", 1);
    EXPECT_EQ(svcMaxQueue(), 0u);
    setenv("ADAPTSIM_SVC_MAX_QUEUE", "-1", 1);
    EXPECT_EQ(svcMaxQueue(), 0u);
    unsetenv("ADAPTSIM_SVC_MAX_QUEUE");
}

TEST(Env, GatherMemoOnOffSwitch)
{
    unsetenv("ADAPTSIM_GATHER_MEMO");
    EXPECT_TRUE(gatherMemoEnabled());
    setenv("ADAPTSIM_GATHER_MEMO", "1", 1);
    EXPECT_TRUE(gatherMemoEnabled());
    // "0" and "off" are the bit-exactness escape hatch: every phase
    // takes the full pre-memo sampling path.
    setenv("ADAPTSIM_GATHER_MEMO", "0", 1);
    EXPECT_FALSE(gatherMemoEnabled());
    setenv("ADAPTSIM_GATHER_MEMO", "off", 1);
    EXPECT_FALSE(gatherMemoEnabled());
    unsetenv("ADAPTSIM_GATHER_MEMO");
}

TEST(Env, GatherMemoThresholdAndTolerance)
{
    unsetenv("ADAPTSIM_GATHER_MEMO_THRESHOLD");
    EXPECT_EQ(gatherMemoThreshold(), 0.25);
    setenv("ADAPTSIM_GATHER_MEMO_THRESHOLD", "0.1", 1);
    EXPECT_EQ(gatherMemoThreshold(), 0.1);
    unsetenv("ADAPTSIM_GATHER_MEMO_THRESHOLD");

    unsetenv("ADAPTSIM_GATHER_MEMO_TOLERANCE");
    EXPECT_EQ(gatherMemoTolerance(), 0.1);
    setenv("ADAPTSIM_GATHER_MEMO_TOLERANCE", "0.05", 1);
    EXPECT_EQ(gatherMemoTolerance(), 0.05);
    // Negative is legal: every recognised phase escalates to full
    // re-characterisation.
    setenv("ADAPTSIM_GATHER_MEMO_TOLERANCE", "-1", 1);
    EXPECT_EQ(gatherMemoTolerance(), -1.0);
    unsetenv("ADAPTSIM_GATHER_MEMO_TOLERANCE");
}

TEST(Env, GatherMemoProbesDefaultAndMinimum)
{
    unsetenv("ADAPTSIM_GATHER_MEMO_PROBES");
    EXPECT_EQ(gatherMemoProbes(), 1u);
    setenv("ADAPTSIM_GATHER_MEMO_PROBES", "3", 1);
    EXPECT_EQ(gatherMemoProbes(), 3u);
    // A recognised phase always re-measures at least one config.
    setenv("ADAPTSIM_GATHER_MEMO_PROBES", "0", 1);
    EXPECT_EQ(gatherMemoProbes(), 1u);
    setenv("ADAPTSIM_GATHER_MEMO_PROBES", "-2", 1);
    EXPECT_EQ(gatherMemoProbes(), 1u);
    unsetenv("ADAPTSIM_GATHER_MEMO_PROBES");
}

TEST(Env, SvcClientCapDefaultAndMinimum)
{
    unsetenv("ADAPTSIM_SVC_CLIENT_CAP");
    EXPECT_EQ(svcClientCap(), 64u);
    setenv("ADAPTSIM_SVC_CLIENT_CAP", "4", 1);
    EXPECT_EQ(svcClientCap(), 4u);
    // A client must always be allowed one request in flight.
    setenv("ADAPTSIM_SVC_CLIENT_CAP", "0", 1);
    EXPECT_EQ(svcClientCap(), 1u);
    setenv("ADAPTSIM_SVC_CLIENT_CAP", "-7", 1);
    EXPECT_EQ(svcClientCap(), 1u);
    unsetenv("ADAPTSIM_SVC_CLIENT_CAP");
}

TEST(Env, ChipCoresRejectsOutOfRange)
{
    unsetenv("ADAPTSIM_CHIP_CORES");
    EXPECT_EQ(chipCores(), 1u);
    setenv("ADAPTSIM_CHIP_CORES", "4", 1);
    EXPECT_EQ(chipCores(), 4u);
    setenv("ADAPTSIM_CHIP_CORES", "8", 1);
    EXPECT_EQ(chipCores(), 8u);
    // Out-of-range values are REJECTED (typed warning + default),
    // never clamped: a silently shrunk chip invalidates any co-run
    // comparison made with it.
    setenv("ADAPTSIM_CHIP_CORES", "0", 1);
    EXPECT_EQ(chipCores(), 1u);
    setenv("ADAPTSIM_CHIP_CORES", "9", 1);
    EXPECT_EQ(chipCores(), 1u);
    setenv("ADAPTSIM_CHIP_CORES", "-2", 1);
    EXPECT_EQ(chipCores(), 1u);
    // Trailing garbage is a typo, not a number (strict parse).
    setenv("ADAPTSIM_CHIP_CORES", "4x", 1);
    EXPECT_EQ(chipCores(), 1u);
    setenv("ADAPTSIM_CHIP_CORES", "garbage", 1);
    EXPECT_EQ(chipCores(), 1u);
    unsetenv("ADAPTSIM_CHIP_CORES");
}

TEST(Env, LlcBanksRejectsNonPowerOfTwo)
{
    unsetenv("ADAPTSIM_LLC_BANKS");
    EXPECT_EQ(llcBanks(), 8u);
    setenv("ADAPTSIM_LLC_BANKS", "1", 1);
    EXPECT_EQ(llcBanks(), 1u);
    setenv("ADAPTSIM_LLC_BANKS", "16", 1);
    EXPECT_EQ(llcBanks(), 16u);
    setenv("ADAPTSIM_LLC_BANKS", "64", 1);
    EXPECT_EQ(llcBanks(), 64u);
    // Rejected with a warning, keeping the default — not clamped.
    setenv("ADAPTSIM_LLC_BANKS", "12", 1);
    EXPECT_EQ(llcBanks(), 8u);
    setenv("ADAPTSIM_LLC_BANKS", "0", 1);
    EXPECT_EQ(llcBanks(), 8u);
    setenv("ADAPTSIM_LLC_BANKS", "128", 1);
    EXPECT_EQ(llcBanks(), 8u);
    setenv("ADAPTSIM_LLC_BANKS", "-8", 1);
    EXPECT_EQ(llcBanks(), 8u);
    setenv("ADAPTSIM_LLC_BANKS", "8banks", 1);
    EXPECT_EQ(llcBanks(), 8u);
    unsetenv("ADAPTSIM_LLC_BANKS");
}

TEST(Env, MixSeedRejectsOutOfRange)
{
    unsetenv("ADAPTSIM_MIX_SEED");
    EXPECT_EQ(mixSeed(), 2010u);
    setenv("ADAPTSIM_MIX_SEED", "0", 1);
    EXPECT_EQ(mixSeed(), 0u);
    setenv("ADAPTSIM_MIX_SEED", "12345", 1);
    EXPECT_EQ(mixSeed(), 12345u);
    setenv("ADAPTSIM_MIX_SEED", "4294967295", 1);
    EXPECT_EQ(mixSeed(), 4294967295u);
    // Out of the u32 range or malformed: warned and defaulted.
    setenv("ADAPTSIM_MIX_SEED", "-1", 1);
    EXPECT_EQ(mixSeed(), 2010u);
    setenv("ADAPTSIM_MIX_SEED", "4294967296", 1);
    EXPECT_EQ(mixSeed(), 2010u);
    setenv("ADAPTSIM_MIX_SEED", "20ten", 1);
    EXPECT_EQ(mixSeed(), 2010u);
    unsetenv("ADAPTSIM_MIX_SEED");
}
