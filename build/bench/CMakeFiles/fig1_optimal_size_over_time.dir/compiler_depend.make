# Empty compiler generated dependencies file for fig1_optimal_size_over_time.
# This may be replaced when dependencies are built.
