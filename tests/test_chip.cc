/**
 * @file
 * Tests of the multi-core chip model and the chip-session seam.
 *
 * The single most important property here: a one-core Chip is
 * bit-identical to the original single-core path — the frozen golden
 * matrix from test_pipeline must hold, value for value, when the
 * same runs go through Chip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "harness/gather.hh"
#include "sim/chip_session.hh"
#include "sim/perf_model.hh"
#include "uarch/chip.hh"
#include "workload/mix.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;

namespace
{

constexpr std::uint64_t programLength = 100000;

/** Same windowing as test_pipeline's runOn, through a 1-core Chip. */
SimResult
chipRunOn(const std::string &bench, const space::Configuration &cfg,
          std::uint64_t warm = 8000, std::uint64_t detail = 4000)
{
    const auto wl = workload::specBenchmark(bench, programLength);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    Chip chip(ChipConfig::homogeneous(cfg, 1), {&wp});
    chip.warm(0, wl.generate(40000 - warm, warm));
    const auto res = chip.run({wl.generate(40000, detail)});
    return res.cores[0];
}

/** A small-LLC 2-core chip geometry that makes contention visible
 *  on 4000-µop traces. */
ChipConfig
smallChip(const space::Configuration &cfg, std::size_t cores)
{
    auto chip = ChipConfig::homogeneous(cfg, cores);
    chip.llcBytes = 256 * 1024;
    chip.llcBanks = 2;
    chip.llcMshrsPerBank = 2;
    return chip;
}

struct CoRunSetup
{
    std::vector<workload::Workload> workloads;
    std::vector<std::unique_ptr<workload::WrongPathGenerator>> wps;
    std::vector<workload::WrongPathGenerator *> wpp;
    std::vector<std::vector<isa::MicroOp>> warm, detail;
    std::vector<std::span<const isa::MicroOp>> traces;
};

CoRunSetup
coRunSetup(const std::vector<std::string> &benches)
{
    CoRunSetup s;
    for (const auto &b : benches) {
        s.workloads.push_back(
            workload::specBenchmark(b, programLength));
        const auto &wl = s.workloads.back();
        s.wps.push_back(
            std::make_unique<workload::WrongPathGenerator>(
                wl.averageParams(), wl.seed() ^ 0x57a71cULL));
        s.warm.push_back(wl.generate(32000, 8000));
        s.detail.push_back(wl.generate(40000, 4000));
    }
    for (auto &wp : s.wps)
        s.wpp.push_back(wp.get());
    for (auto &d : s.detail)
        s.traces.emplace_back(d);
    return s;
}

} // namespace

TEST(Chip, SingleCoreMatchesTheFrozenGoldenMatrix)
{
    // The exact values frozen in test_pipeline's
    // GoldenResultsAreFrozen: N=1 through Chip must reproduce them
    // bit-for-bit (no LLC is attached, the quantum is unbounded).
    struct Golden
    {
        const char *bench;
        std::uint64_t cycles, committedOps, mispredicts, dcMisses,
            wrongPathOps;
    };
    const Golden goldens[] = {
        {"eon", 4609ull, 4000ull, 13ull, 104ull, 381ull},
        {"gcc", 12152ull, 4000ull, 232ull, 816ull, 9580ull},
        {"mcf", 18507ull, 4000ull, 56ull, 1675ull, 3497ull},
    };
    for (const auto &g : goldens) {
        const auto r =
            chipRunOn(g.bench, harness::paperBaselineConfig());
        EXPECT_EQ(r.cycles, g.cycles) << g.bench;
        EXPECT_EQ(r.events.committedOps, g.committedOps) << g.bench;
        EXPECT_EQ(r.events.mispredicts, g.mispredicts) << g.bench;
        EXPECT_EQ(r.events.dcMisses, g.dcMisses) << g.bench;
        EXPECT_EQ(r.events.wrongPathOps, g.wrongPathOps) << g.bench;
        // And no LLC events: the single-core chip has no LLC.
        EXPECT_EQ(r.events.llcAccesses, 0u) << g.bench;
    }
}

TEST(Chip, CoRunIsDeterministic)
{
    auto runOnce = [] {
        auto s = coRunSetup({"mcf", "gcc"});
        Chip chip(smallChip(harness::paperBaselineConfig(), 2),
                  s.wpp);
        chip.warm(0, s.warm[0]);
        chip.warm(1, s.warm[1]);
        return chip.run(s.traces);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].events.llcAccesses,
                  b.cores[c].events.llcAccesses);
        EXPECT_EQ(a.occupancyShare[c], b.occupancyShare[c]);
    }
}

TEST(Chip, CoRunShowsInterference)
{
    // The controlled comparison: the same core, same chip geometry,
    // with and without a co-runner.  Contention (bank queueing, LLC
    // competition) can only slow the measured core down.
    auto solo = coRunSetup({"mcf", "gcc"});
    Chip alone(smallChip(harness::paperBaselineConfig(), 2),
               solo.wpp);
    alone.warm(0, solo.warm[0]);
    const auto solo_res =
        alone.run({solo.traces[0], std::span<const isa::MicroOp>{}});

    auto both = coRunSetup({"mcf", "gcc"});
    Chip chip(smallChip(harness::paperBaselineConfig(), 2),
              both.wpp);
    chip.warm(0, both.warm[0]);
    chip.warm(1, both.warm[1]);
    const auto corun = chip.run(both.traces);

    EXPECT_EQ(solo_res.cores[0].events.committedOps, 4000u);
    EXPECT_EQ(corun.cores[0].events.committedOps, 4000u);
    EXPECT_EQ(corun.cores[1].events.committedOps, 4000u);
    // Co-run IPC below solo IPC on the contended core.
    EXPECT_GT(corun.cores[0].cycles, solo_res.cores[0].cycles);
    // Both cores saw LLC traffic and hold part of the cache.
    EXPECT_GT(corun.cores[0].events.llcAccesses, 0u);
    EXPECT_GT(corun.cores[1].events.llcAccesses, 0u);
    EXPECT_GT(corun.occupancyShare[0], 0.0);
    EXPECT_GT(corun.occupancyShare[1], 0.0);
    EXPECT_LE(corun.occupancyShare[0] + corun.occupancyShare[1],
              1.0 + 1e-12);
    // Queue cycles are the direct contention signal.
    EXPECT_GT(corun.cores[0].events.llcQueueCycles +
                  corun.cores[1].events.llcQueueCycles,
              0u);
}

TEST(Chip, ReconfigureCoreKeepsElapsedAndLlcContents)
{
    auto s = coRunSetup({"mcf", "gcc"});
    Chip chip(smallChip(harness::paperBaselineConfig(), 2), s.wpp);
    chip.warm(0, s.warm[0]);
    chip.warm(1, s.warm[1]);
    chip.run(s.traces);
    const Cycles elapsed0 = chip.elapsed(0);
    ASSERT_GT(elapsed0, 0u);
    const auto before = chip.llc()->coreStats(1).linesOwned;
    ASSERT_GT(before, 0u);

    auto narrow = harness::paperBaselineConfig();
    narrow.setValue(space::Param::Width, 2);
    chip.reconfigureCore(0, narrow);

    // The core restarted cold but its clock and the shared LLC
    // contents (including the *other* core's lines) survived.
    EXPECT_EQ(chip.elapsed(0), elapsed0);
    EXPECT_EQ(chip.llc()->coreStats(1).linesOwned, before);
    const auto res2 = chip.run(s.traces);
    EXPECT_EQ(res2.cores[0].events.committedOps, 4000u);
}

TEST(ChipSession, SingleCoreProxyIsPassthrough)
{
    // On one core the proxy session must delegate directly to the
    // backend's CoreSession — same numbers as calling the backend.
    const auto &interval = sim::perfModel("interval");
    const auto wl = workload::specBenchmark("swim", programLength);
    const auto cc = uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());

    workload::WrongPathGenerator wp_a(wl.averageParams(),
                                      wl.seed() ^ 0x57a71cULL);
    const auto direct = interval.makeSession(cc, wp_a);
    const auto warm = wl.generate(32000, 8000);
    const auto detail = wl.generate(40000, 4000);
    direct->warm(warm);
    const auto want = interval.run(*direct, detail);

    workload::WrongPathGenerator wp_b(wl.averageParams(),
                                      wl.seed() ^ 0x57a71cULL);
    const auto chip = interval.makeChipSession(
        uarch::ChipConfig::homogeneous(
            harness::paperBaselineConfig(), 1),
        {&wp_b});
    chip->warm(0, warm);
    const auto got = chip->run({detail});
    EXPECT_EQ(got.cores[0].cycles, want.cycles);
    EXPECT_EQ(got.cores[0].events.committedOps,
              want.events.committedOps);
}

TEST(ChipSession, ProxyMeasuresInterferenceForAnalyticalBackends)
{
    const auto &interval = sim::perfModel("interval");
    auto s = coRunSetup({"mcf", "gcc"});
    const auto chip = interval.makeChipSession(
        smallChip(harness::paperBaselineConfig(), 2), s.wpp);
    chip->warm(0, s.warm[0]);
    chip->warm(1, s.warm[1]);
    const auto res = chip->run(s.traces);

    ASSERT_EQ(res.cores.size(), 2u);
    EXPECT_EQ(res.cores[0].events.committedOps, 4000u);
    EXPECT_EQ(res.cores[1].events.committedOps, 4000u);
    for (std::size_t c = 0; c < 2; ++c) {
        const auto f = chip->interference(c);
        EXPECT_GT(f.occupancyShare, 0.0) << c;
        EXPECT_GE(f.sharedMissRatio, 0.0) << c;
        EXPECT_LE(f.sharedMissRatio, 1.0) << c;
    }
    // Both cores must see per-core metrics with real energy.
    for (std::size_t c = 0; c < 2; ++c) {
        const auto m = chip->metricsFor(c, res.cores[c]);
        EXPECT_GT(m.seconds, 0.0) << c;
        EXPECT_GT(m.joules, 0.0) << c;
    }
}

TEST(ChipSession, CycleBackendWrapsTheRealChip)
{
    // The cycle backend's chip session must agree exactly with a
    // hand-driven uarch::Chip under the same seeds and geometry.
    const auto &cycle = sim::perfModel("cycle");
    auto via_session = coRunSetup({"mcf", "gcc"});
    const auto session = cycle.makeChipSession(
        smallChip(harness::paperBaselineConfig(), 2),
        via_session.wpp);
    session->warm(0, via_session.warm[0]);
    session->warm(1, via_session.warm[1]);
    const auto got = session->run(via_session.traces);

    auto direct = coRunSetup({"mcf", "gcc"});
    Chip chip(smallChip(harness::paperBaselineConfig(), 2),
              direct.wpp);
    chip.warm(0, direct.warm[0]);
    chip.warm(1, direct.warm[1]);
    const auto want = chip.run(direct.traces);

    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(got.cores[c].cycles, want.cores[c].cycles) << c;
        EXPECT_EQ(got.cores[c].events.llcAccesses,
                  want.cores[c].events.llcAccesses)
            << c;
        EXPECT_EQ(got.occupancyShare[c], want.occupancyShare[c]) << c;
    }
}

TEST(Mixes, DeterministicAndDistinct)
{
    const auto a = workload::specMixes(2, 8, 2010);
    const auto b = workload::specMixes(2, 8, 2010);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].programs, b[i].programs);
        EXPECT_EQ(a[i].key(), b[i].key());
        EXPECT_EQ(a[i].cores(), 2u);
        // No program co-runs with itself within a mix.
        EXPECT_NE(a[i].programs[0], a[i].programs[1]);
    }
    // A different seed yields a different schedule.
    const auto c = workload::specMixes(2, 8, 7);
    bool any_differ = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_differ |= a[i].programs != c[i].programs;
    EXPECT_TRUE(any_differ);
    // Order matters in the key: swapped placement is a new identity.
    workload::CoRunMix swapped = a[0];
    std::swap(swapped.programs[0], swapped.programs[1]);
    EXPECT_NE(swapped.key(), a[0].key());
}

TEST(Mixes, RejectsImpossibleWidths)
{
    EXPECT_EXIT(workload::specMixes(0, 1),
                ::testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(workload::specMixes(27, 1),
                ::testing::ExitedWithCode(1), "outside");
}

TEST(ChipConfigKey, SoloIsZeroAndMixesAreStable)
{
    const auto base = harness::paperBaselineConfig();
    EXPECT_EQ(uarch::ChipConfig::homogeneous(base, 1).key(), 0u);
    const auto two = uarch::ChipConfig::homogeneous(base, 2);
    EXPECT_NE(two.key(), 0u);
    EXPECT_EQ(two.key(), uarch::ChipConfig::homogeneous(base, 2).key());
    EXPECT_NE(two.key(),
              uarch::ChipConfig::homogeneous(base, 4).key());
    auto other = two;
    other.llcBytes /= 2;
    EXPECT_NE(other.key(), two.key());
}
