#include "uarch/core.hh"

#include "obs/obs.hh"

namespace adaptsim::uarch
{

Core::Core(const CoreConfig &cfg,
           workload::WrongPathGenerator &wrong_path,
           SharedLlc *llc, unsigned core_id)
    : cfg_(cfg), caches_(cfg, llc, core_id),
      bpred_(cfg.gshareEntries, cfg.btbEntries,
             CoreConfig::btbAssoc),
      wrongPath_(wrong_path)
{
}

void
Core::warm(std::span<const isa::MicroOp> trace)
{
    OBS_SPAN("uarch/warm");
    Addr last_line = invalidAddr;
    for (const auto &op : trace) {
        const Addr line = op.pc / CoreConfig::cacheLineBytes;
        if (line != last_line) {
            caches_.warmFetch(op.pc);
            last_line = line;
        }
        if (op.isMem())
            caches_.warmData(op.effAddr, op.isStore());
        else if (op.isBranch())
            bpred_.warmAccess(op.pc, op.taken);
    }
}

SimResult
Core::run(std::span<const isa::MicroOp> trace, SimObserver *observer)
{
    OBS_SPAN("uarch/run");
    Pipeline pipeline(cfg_, caches_, bpred_, wrongPath_, observer);
    return pipeline.run(trace);
}

} // namespace adaptsim::uarch
