/**
 * @file
 * Tests of the static/dynamic baseline selection on synthetic data.
 */

#include <gtest/gtest.h>

#include "harness/baselines.hh"

using namespace adaptsim;
using namespace adaptsim::harness;

namespace
{

/** Two candidate configurations with controlled efficiencies. */
struct Fixture
{
    space::Configuration a, b;
    std::vector<GatheredPhase> phases;

    Fixture()
    {
        b.setValue(space::Param::Width, 8);
        // Phase 0: a=4, b=1.  Phase 1: a=2, b=3.
        phases.resize(2);
        for (std::size_t i = 0; i < 2; ++i) {
            // std::string{} sidesteps GCC 12's bogus -Wrestrict on
            // char*-assignment into a loop-indexed string at -O3.
            phases[i].phase.workload = std::string("x");
            phases[i].phase.index = i;
            phases[i].phase.weight = 0.5;
        }
        phases[0].evals = {{a, 4.0}, {b, 1.0}};
        phases[1].evals = {{a, 2.0}, {b, 3.0}};
    }
};

} // namespace

TEST(Baselines, EfficiencyOnFindsSampledConfig)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(efficiencyOn(f.phases[0], f.a), 4.0);
    EXPECT_DOUBLE_EQ(efficiencyOn(f.phases[1], f.b), 3.0);
}

TEST(Baselines, EfficiencyOnUnsampledIsFatal)
{
    Fixture f;
    space::Configuration other;
    other.setValue(space::Param::Depth, 36);
    EXPECT_EXIT((void)efficiencyOn(f.phases[0], other),
                ::testing::ExitedWithCode(1), "not evaluated");
}

TEST(Baselines, MeanEfficiencyIsWeightedGeomean)
{
    Fixture f;
    // a: sqrt(4*2) = 2.83; b: sqrt(1*3) = 1.73.
    EXPECT_NEAR(meanEfficiencyOf(f.phases, f.a), 2.8284, 1e-3);
    EXPECT_NEAR(meanEfficiencyOf(f.phases, f.b), 1.7320, 1e-3);
}

TEST(Baselines, BestStaticPicksHighestGeomean)
{
    Fixture f;
    const auto best = bestStaticConfig(f.phases, {f.a, f.b});
    EXPECT_EQ(best, f.a);
}

TEST(Baselines, WeightsMatter)
{
    Fixture f;
    // Give phase 1 overwhelming weight: b (3.0 there) should win.
    f.phases[0].phase.weight = 0.01;
    f.phases[1].phase.weight = 0.99;
    const auto best = bestStaticConfig(f.phases, {f.a, f.b});
    EXPECT_EQ(best, f.b);
}

TEST(Baselines, BestDynamicPerPhase)
{
    Fixture f;
    EXPECT_EQ(bestDynamic(f.phases[0]).config, f.a);
    EXPECT_EQ(bestDynamic(f.phases[1]).config, f.b);
    EXPECT_DOUBLE_EQ(bestDynamic(f.phases[1]).efficiency, 3.0);
}

TEST(Baselines, SpecialisedStaticEqualsBestStaticOnSubset)
{
    Fixture f;
    const std::vector<GatheredPhase> only_first = {f.phases[0]};
    const auto best =
        bestStaticForProgram(only_first, {f.a, f.b});
    EXPECT_EQ(best, f.a);
}

TEST(Baselines, EmptyCandidatesIsFatal)
{
    Fixture f;
    EXPECT_EXIT((void)bestStaticConfig(f.phases, {}),
                ::testing::ExitedWithCode(1), "");
}
