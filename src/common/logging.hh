/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits cleanly.
 * warn()   - something is approximated but usable.
 * inform() - plain status output.
 */

#ifndef ADAPTSIM_COMMON_LOGGING_HH
#define ADAPTSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace adaptsim
{

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &... rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &... args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/** Abort: an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args &... args)
{
    std::fprintf(stderr, "panic: %s\n", detail::concat(args...).c_str());
    std::abort();
}

/** Exit with an error: the user requested something impossible. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &... args)
{
    std::fprintf(stderr, "fatal: %s\n", detail::concat(args...).c_str());
    std::exit(1);
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(const Args &... args)
{
    std::fprintf(stderr, "warn: %s\n", detail::concat(args...).c_str());
}

/** Plain status message. */
template <typename... Args>
void
inform(const Args &... args)
{
    std::fprintf(stdout, "info: %s\n", detail::concat(args...).c_str());
    std::fflush(stdout);
}

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_LOGGING_HH
