/**
 * @file
 * Future-work study (paper Sec. X): if each structure could
 * reconfigure at its own frequency, which would need to change often?
 *
 * From the gathered per-phase data we compute, for every parameter:
 * how often its per-phase best value changes between consecutive
 * phases of the same program (the demanded adaptation rate), and how
 * much efficiency a structure-pinned design loses (the cost of NOT
 * adapting it, from the Fig. 8 machinery).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    const auto &phases = exp.phases();
    const auto &ds = space::DesignSpace::the();

    TextTable table;
    table.setHeader({"Parameter", "Change rate",
                     "Median pinned-best eff", "Worst phase eff"});

    for (auto p : space::allParams()) {
        // Per-phase best value index for this parameter.
        std::vector<int> best_val(phases.size(), -1);
        for (std::size_t i = 0; i < phases.size(); ++i) {
            double best = -1.0;
            for (const auto &e : phases[i].evals) {
                if (e.efficiency > best) {
                    best = e.efficiency;
                    best_val[i] = int(e.config.index(p));
                }
            }
        }

        // Change rate between consecutive phases of one program.
        std::size_t transitions = 0, changes = 0;
        for (const auto &[name, idxs] : exp.phasesByProgram()) {
            for (std::size_t k = 1; k < idxs.size(); ++k) {
                ++transitions;
                changes += best_val[idxs[k]] !=
                           best_val[idxs[k - 1]];
            }
        }

        // Cost of pinning: for each phase, the best achievable with
        // the parameter fixed to its single most-popular value,
        // normalised by the phase's overall best.
        std::vector<std::size_t> votes(ds.numValues(p), 0);
        for (int v : best_val) {
            if (v >= 0)
                ++votes[std::size_t(v)];
        }
        const std::size_t pinned = static_cast<std::size_t>(
            std::max_element(votes.begin(), votes.end()) -
            votes.begin());

        std::vector<double> pinned_rel;
        for (const auto &phase : phases) {
            double best_all = 0.0, best_pinned = 0.0;
            for (const auto &e : phase.evals) {
                best_all = std::max(best_all, e.efficiency);
                if (e.config.index(p) == pinned)
                    best_pinned =
                        std::max(best_pinned, e.efficiency);
            }
            if (best_all > 0.0 && best_pinned > 0.0)
                pinned_rel.push_back(best_pinned / best_all);
        }

        const double rate = transitions ?
            double(changes) / double(transitions) : 0.0;
        const double med = median(pinned_rel);
        const double worst = pinned_rel.empty() ? 0.0 :
            *std::min_element(pinned_rel.begin(),
                              pinned_rel.end());
        table.addRow({ds.name(p), TextTable::num(rate),
                      TextTable::num(med),
                      TextTable::num(worst)});
    }

    std::printf(
        "Future-work study: per-structure adaptation demand\n"
        "(change rate = fraction of consecutive-phase transitions "
        "whose best value differs;\n pinned-best = best achievable "
        "with the parameter fixed to its most popular value,\n as a "
        "fraction of the per-phase optimum)\n\n%s\n",
        table.render().c_str());
    std::printf(
        "Structures with high change rates and low pinned "
        "efficiency need fast reconfiguration; ones with low rates "
        "could be adapted rarely — the per-resource frequency the "
        "paper's Sec. X anticipates.\n");
    return 0;
}
