/**
 * @file
 * adaptsim-lint CLI: walk the source tree and report every project-
 * invariant violation as `file:line: [rule] message`.
 *
 *     adaptsim_lint [--root DIR] [SUBDIR...]
 *
 * DIR defaults to the current directory; SUBDIRs default to
 * `src bench tests examples`.  Exit status: 0 clean, 1 violations
 * found, 2 usage or I/O error.  Registered as the ctest test `lint`.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint_engine.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> subdirs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "adaptsim_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: adaptsim_lint [--root DIR] [SUBDIR...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "adaptsim_lint: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            subdirs.push_back(arg);
        }
    }
    if (subdirs.empty())
        subdirs = {"src", "bench", "tests", "examples"};

    adaptsim::lint::TreeResult res;
    try {
        res = adaptsim::lint::lintTree(root, subdirs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "adaptsim_lint: %s\n", e.what());
        return 2;
    }
    for (const auto &d : res.diagnostics)
        std::printf("%s\n", adaptsim::lint::render(d).c_str());
    std::printf("adaptsim_lint: %zu violation(s) in %zu file(s) "
                "scanned\n",
                res.diagnostics.size(), res.filesScanned);
    return res.diagnostics.empty() ? 0 : 1;
}
