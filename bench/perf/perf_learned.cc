/**
 * @file
 * Learned-surrogate backend benchmarks.  Untimed setup gathers
 * cycle-level training records into a scratch repository and fits
 * the surrogate (harness/learned_trainer); the timed sections then
 * measure
 *
 *   - perf_learned:          raw backend throughput (same shape as
 *                            perf_interval, for the speedup column)
 *   - perf_gather_interval:  cold-repository gather via "interval"
 *   - perf_gather_cascade:   the same gather via "cascade"
 *
 * plus one extra JSON line, perf_learned_mae — the surrogate's IPC
 * error against held-out cycle-level ground truth — which the CI
 * perf-smoke job gates on (see .github/workflows/ci.yml).  The
 * gathers skip the profiling-counter run (profileFeatures=false) so
 * the cycle-level profiling cost does not mask the backend cost
 * under measurement.
 */

#include "perf_harness.hh"

#include <cmath>
#include <filesystem>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "harness/gather.hh"
#include "harness/learned_trainer.hh"
#include "sim/cascade_model.hh"
#include "sim/learned_model.hh"
#include "sim/perf_model.hh"
#include "space/sampling.hh"
#include "uarch/core_config.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

std::vector<phase::Phase>
benchPhases(bool smoke, std::uint64_t detail_length)
{
    std::vector<phase::Phase> phases;
    const char *programs[] = {"gcc", "crafty"};
    const std::size_t per_program = smoke ? 1 : 3;
    for (const char *prog : programs) {
        for (std::size_t i = 0; i < per_program; ++i) {
            phase::Phase ph;
            ph.workload = prog;
            ph.index = i;
            ph.startInst = 40000 + i * 60000;
            ph.lengthInsts = detail_length;
            ph.weight = 1.0 / double(per_program);
            phases.push_back(ph);
        }
    }
    return phases;
}

std::vector<double>
timeColdGather(const perf::PerfOptions &opt,
               const std::vector<phase::Phase> &phases,
               std::uint64_t program_length,
               std::uint64_t warm_length,
               const harness::GatherOptions &gopt, double &items)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "adaptsim_perf_learned_gather";
    auto secs = perf::runTimed(opt, items, [&]() {
        std::filesystem::remove_all(dir);   // cold repository
        harness::EvalRepository repo(
            workload::specSuite(program_length), dir.string(), 1);
        const auto gathered = harness::gatherTrainingData(
            repo, phases, program_length, warm_length, gopt);
        double evals = 0.0;
        for (const auto &g : gathered)
            evals += static_cast<double>(g.evals.size());
        return evals;
    });
    std::filesystem::remove_all(dir);
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);

    const std::uint64_t program_length = 400000;
    const std::uint64_t warm_length = 12000;
    const std::uint64_t detail_length = 6000;
    const auto phases = benchPhases(opt.smoke, detail_length);

    // ---- Untimed setup: cycle-level training data + surrogate fit,
    // then accuracy against held-out cycle-level ground truth.  The
    // repository lives in this scope so its destructor flushes
    // before the scratch directory is removed.
    const auto train_dir = std::filesystem::temp_directory_path() /
                           "adaptsim_perf_learned_train";
    std::filesystem::remove_all(train_dir);
    const auto &learned = sim::perfModel("learned");
    {
        harness::EvalRepository train_repo(
            workload::specSuite(program_length), train_dir.string(),
            adaptsim::numThreads());

        Rng train_rng(7);
        auto train_pool = space::uniformRandomSet(
            train_rng, opt.smoke ? 40 : 64);
        train_pool.push_back(harness::paperBaselineConfig());
        train_pool = space::dedupe(std::move(train_pool));

        std::vector<harness::PhaseSpec> specs;
        for (const auto &ph : phases) {
            specs.push_back(harness::PhaseSpec{
                ph.workload, program_length, ph.startInst,
                warm_length, ph.lengthInsts});
            (void)train_repo.evaluateBatch(
                specs.back(), train_pool, &sim::perfModel("cycle"));
        }
        const auto report =
            harness::trainLearnedBackend(train_repo, specs);
        if (!report.trained)
            fatal("perf_learned: surrogate training failed (",
                  report.samples, " samples)");

        Rng eval_rng(99);
        const auto eval_pool = space::dedupe(
            space::uniformRandomSet(eval_rng, opt.smoke ? 8 : 16));
        double abs_err = 0.0;
        std::size_t samples = 0;
        for (const auto &spec : specs) {
            const auto truth = train_repo.evaluateBatch(
                spec, eval_pool, &sim::perfModel("cycle"));
            const auto pred = train_repo.evaluateBatch(
                spec, eval_pool, &learned);
            for (std::size_t i = 0; i < eval_pool.size(); ++i) {
                abs_err += std::abs(pred[i].ipc - truth[i].ipc);
                ++samples;
            }
        }
        const double mae = samples ? abs_err / double(samples) : 0.0;
        std::printf("{\"name\":\"perf_learned_mae\",\"smoke\":%s,"
                    "\"mae_ipc\":%.4f,\"samples\":%zu,"
                    "\"train_samples\":%zu,\"threshold\":0.10}\n",
                    opt.smoke ? "true" : "false", mae, samples,
                    report.samples);
    }

    // ---- Raw backend throughput (perf_interval's shape).
    {
        const std::uint64_t detail = opt.smoke ? 20000 : 120000;
        const auto wl = workload::specBenchmark("gcc", 400000);
        const auto cc = uarch::CoreConfig::fromConfiguration(
            harness::paperBaselineConfig());
        const auto trace = wl.generate(40000, detail);
        double items = 0.0;
        const auto secs = perf::runTimed(opt, items, [&]() {
            workload::WrongPathGenerator wp(
                wl.averageParams(), wl.seed() ^ 0x57a71cULL);
            const auto session = learned.makeSession(cc, wp);
            const auto r = learned.run(*session, trace);
            return static_cast<double>(r.events.committedOps);
        });
        perf::emitJson("perf_learned", opt, secs, items, "uops");
    }

    // ---- Cold gathers: interval vs confidence-gated cascade.
    harness::GatherOptions gopt;
    gopt.sharedRandomConfigs = opt.smoke ? 16 : 192;
    gopt.localNeighbours = opt.smoke ? 4 : 48;
    gopt.oneAtATimeSweep = false;
    gopt.progress = false;
    gopt.profileFeatures = false;

    double items = 0.0;
    gopt.backend = &sim::perfModel("interval");
    const auto interval_secs = timeColdGather(
        opt, phases, program_length, warm_length, gopt, items);
    perf::emitJson("perf_gather_interval", opt, interval_secs, items,
                   "evals");

    const std::uint64_t esc0 = sim::cascadeEscalations();
    gopt.backend = &sim::perfModel("cascade");
    const auto cascade_secs = timeColdGather(
        opt, phases, program_length, warm_length, gopt, items);
    perf::emitJson("perf_gather_cascade", opt, cascade_secs, items,
                   "evals");
    // stderr so the JSON lines on stdout stay machine-readable.
    lockedWrite(stderr,
                "perf_learned: " +
                    std::to_string(sim::cascadeEscalations() - esc0) +
                    " cascade escalation(s) across all gather reps\n");

    std::filesystem::remove_all(train_dir);
    return 0;
}
