# Empty compiler generated dependencies file for example_explore_design_space.
# This may be replaced when dependencies are built.
