#include "uarch/functional_units.hh"

#include "common/logging.hh"

namespace adaptsim::uarch
{

using isa::OpClass;

FunctionalUnits::FunctionalUnits(const CoreConfig &cfg)
    : cfg_(cfg)
{
}

void
FunctionalUnits::beginCycle(Cycles)
{
    aluUsed_ = 0;
    memUsed_ = 0;
    fpUsed_ = 0;
    mulUsed_ = 0;
}

bool
FunctionalUnits::canIssue(OpClass cls, Cycles now) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return aluUsed_ < cfg_.numAlu;
      case OpClass::IntMul:
        return mulUsed_ < cfg_.numMul;
      case OpClass::IntDiv:
        return mulUsed_ < cfg_.numMul && intDivBusyUntil_ <= now;
      case OpClass::FpAlu:
      case OpClass::FpMul:
        return fpUsed_ < cfg_.numFpu;
      case OpClass::FpDiv:
        return fpUsed_ < cfg_.numFpu && fpDivBusyUntil_ <= now;
      case OpClass::Load:
      case OpClass::Store:
        return memUsed_ < cfg_.numMemPorts;
      default:
        return false;
    }
}

void
FunctionalUnits::issue(OpClass cls, Cycles now, int latency)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        ++aluUsed_;
        break;
      case OpClass::IntMul:
        ++mulUsed_;
        break;
      case OpClass::IntDiv:
        ++mulUsed_;
        intDivBusyUntil_ = now + latency;
        break;
      case OpClass::FpAlu:
      case OpClass::FpMul:
        ++fpUsed_;
        break;
      case OpClass::FpDiv:
        ++fpUsed_;
        fpDivBusyUntil_ = now + latency;
        break;
      case OpClass::Load:
      case OpClass::Store:
        ++memUsed_;
        break;
      default:
        panic("FunctionalUnits::issue of invalid op class");
    }
}

} // namespace adaptsim::uarch
