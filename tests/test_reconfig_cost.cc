/**
 * @file
 * Tests of the Table V reconfiguration cost model.
 */

#include <gtest/gtest.h>

#include "control/reconfig_cost.hh"
#include "harness/gather.hh"

using namespace adaptsim;
using namespace adaptsim::control;

namespace
{

ReconfigCostModel
baselineModel()
{
    return ReconfigCostModel(uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig()));
}

} // namespace

TEST(ReconfigCost, L2DominatesEverything)
{
    const auto model = baselineModel();
    const auto l2 = model.cyclesFor(ReStructure::UCache);
    for (auto s : {ReStructure::Width, ReStructure::RegFile,
                   ReStructure::Bpred, ReStructure::Rob,
                   ReStructure::Iq, ReStructure::Lsq,
                   ReStructure::ICache, ReStructure::DCache}) {
        EXPECT_GT(l2, 5 * model.cyclesFor(s))
            << reStructureName(s);
    }
}

TEST(ReconfigCost, MagnitudesInTableVBallpark)
{
    // Paper values: Width 443, RF 487, Bpred 154, ROB 255, IQ 234,
    // LSQ 275, IC 478, DC 620, L2 18322.  We require same order of
    // magnitude (0.2x - 5x).
    const auto model = baselineModel();
    const std::pair<ReStructure, double> expected[] = {
        {ReStructure::Width, 443},   {ReStructure::RegFile, 487},
        {ReStructure::Bpred, 154},   {ReStructure::Rob, 255},
        {ReStructure::Iq, 234},      {ReStructure::Lsq, 275},
        {ReStructure::ICache, 478},  {ReStructure::DCache, 620},
        {ReStructure::UCache, 18322},
    };
    for (const auto &[s, paper] : expected) {
        const double ours = double(model.cyclesFor(s));
        EXPECT_GT(ours, paper * 0.2) << reStructureName(s);
        EXPECT_LT(ours, paper * 5.0) << reStructureName(s);
    }
}

TEST(ReconfigCost, NoChangeNoCost)
{
    const auto model = baselineModel();
    const auto cfg = harness::paperBaselineConfig();
    EXPECT_EQ(model.transitionCycles(cfg, cfg), 0u);
}

TEST(ReconfigCost, TransitionIsMaxOfChangedStructures)
{
    const auto model = baselineModel();
    const auto from = harness::paperBaselineConfig();

    auto bump_iq = from;
    bump_iq.setValue(space::Param::IqSize, 80);
    const auto iq_only = model.transitionCycles(from, bump_iq);

    auto bump_both = bump_iq;
    bump_both.setValue(space::Param::L2CacheSize, 4 * 1024 * 1024);
    const auto with_l2 = model.transitionCycles(from, bump_both);

    EXPECT_GT(with_l2, iq_only);
    // Structures reconfigure in parallel: adding the IQ change to an
    // L2 change costs no more than the L2 change alone.
    auto l2_only_cfg = from;
    l2_only_cfg.setValue(space::Param::L2CacheSize,
                         4 * 1024 * 1024);
    EXPECT_EQ(with_l2, model.transitionCycles(from, l2_only_cfg));
}

TEST(ReconfigCost, VisibleFractionApplied)
{
    const auto model = baselineModel();
    const auto from = harness::paperBaselineConfig();
    auto to = from;
    to.setValue(space::Param::L2CacheSize, 4 * 1024 * 1024);
    const auto visible = model.transitionCycles(from, to);
    const auto full = model.cyclesFor(ReStructure::UCache);
    EXPECT_NEAR(double(visible),
                double(full) * ReconfigCostModel::visibleFraction,
                1.0);
}

TEST(ReconfigCost, DeeperClockMeansMoreCycles)
{
    auto deep_cfg = harness::paperBaselineConfig();
    deep_cfg.setValue(space::Param::Depth, 9);
    auto shallow_cfg = harness::paperBaselineConfig();
    shallow_cfg.setValue(space::Param::Depth, 36);
    const ReconfigCostModel deep(
        uarch::CoreConfig::fromConfiguration(deep_cfg));
    const ReconfigCostModel shallow(
        uarch::CoreConfig::fromConfiguration(shallow_cfg));
    // Fixed power-up time in ns → more cycles at a faster clock.
    EXPECT_GT(deep.cyclesFor(ReStructure::UCache),
              shallow.cyclesFor(ReStructure::UCache));
}

TEST(ReconfigCost, StructureNames)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numReStructures; ++i)
        names.insert(reStructureName(static_cast<ReStructure>(i)));
    EXPECT_EQ(names.size(), numReStructures);
}
