# Empty compiler generated dependencies file for test_quantised.
# This may be replaced when dependencies are built.
