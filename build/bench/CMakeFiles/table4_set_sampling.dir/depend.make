# Empty dependencies file for table4_set_sampling.
# This may be replaced when dependencies are built.
