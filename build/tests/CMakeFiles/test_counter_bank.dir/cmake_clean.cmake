file(REMOVE_RECURSE
  "CMakeFiles/test_counter_bank.dir/test_counter_bank.cc.o"
  "CMakeFiles/test_counter_bank.dir/test_counter_bank.cc.o.d"
  "test_counter_bank"
  "test_counter_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
