#include "harness/gather_scheduler.hh"

#include <limits>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "harness/gather.hh"
#include "obs/obs.hh"

namespace adaptsim::harness
{

namespace
{

// Index layout: header, per-bucket key + serialized detector +
// entries, trailing FNV-1a checksum over everything before it.
// Version 2 added the chip-mix key to each memo's PhaseSpec;
// version-1 indexes (all solo gathers) load with chip key 0.
constexpr std::uint64_t kIndexMagic = 0x41445349'4d474d58ULL;
constexpr std::uint64_t kIndexVersion = 2;

constexpr std::size_t kNpos = ~std::size_t(0);

// Within-run matches must be genuine recurrences: entries recorded
// by the running gather only match (far) below any inter-phase
// signature distance, while disk-loaded entries use the full
// threshold (see the file comment in the header).
constexpr double kExactEpsilon = 1e-9;

void
putSpec(std::string &out, const PhaseSpec &spec)
{
    putString(out, spec.workload);
    putU64(out, spec.programLength);
    putU64(out, spec.startInst);
    putU64(out, spec.warmLength);
    putU64(out, spec.detailLength);
    putU64(out, spec.chipMix);
}

bool
getSpec(const std::string &in, std::size_t &off, PhaseSpec &spec,
        bool has_chip)
{
    if (!getString(in, off, spec.workload))
        return false;
    const std::size_t want = has_chip ? 40 : 32;
    if (off + want > in.size())
        return false;
    spec.programLength = getU64(in.data() + off);
    spec.startInst = getU64(in.data() + off + 8);
    spec.warmLength = getU64(in.data() + off + 16);
    spec.detailLength = getU64(in.data() + off + 24);
    // Version-1 memos predate the chip model: all solo gathers.
    spec.chipMix = has_chip ? getU64(in.data() + off + 32) : 0;
    off += want;
    return true;
}

void
putDoubles(std::string &out, const std::vector<double> &v)
{
    putU64(out, v.size());
    for (double d : v)
        putDouble(out, d);
}

bool
getDoubles(const std::string &in, std::size_t &off,
           std::vector<double> &v)
{
    if (off + 8 > in.size())
        return false;
    const std::uint64_t n = getU64(in.data() + off);
    off += 8;
    if (n > (in.size() - off) / 8)
        return false;
    v.resize(n);
    for (std::uint64_t i = 0; i < n; ++i, off += 8)
        v[i] = getDouble(in.data() + off);
    return true;
}

} // namespace

GatherScheduler::Options
GatherScheduler::optionsFromEnv()
{
    Options opt;
    opt.threshold = gatherMemoThreshold();
    opt.tolerance = gatherMemoTolerance();
    opt.uncertaintyThreshold = cascadeThreshold();
    opt.probes = gatherMemoProbes();
    return opt;
}

GatherScheduler::GatherScheduler(std::string index_path,
                                 Options options)
    : path_(std::move(index_path)), opt_(options)
{
    load();
}

std::string
GatherScheduler::indexPathFor(const EvalRepository &repo)
{
    return repo.dataDir() + "/gather_memo.idx";
}

std::string
GatherScheduler::bucketKey(const PhaseSpec &spec)
{
    std::string key = spec.workload + "|w" +
                      std::to_string(spec.warmLength) + "|d" +
                      std::to_string(spec.detailLength);
    // Chip co-runs memoise separately: characterisations gathered
    // under interference must never answer solo lookups (or other
    // mixes).  Solo specs keep the historical key.
    if (spec.chipMix != 0)
        key += "|m" + std::to_string(spec.chipMix);
    return key;
}

std::size_t
GatherScheduler::matchIn(const Bucket &b, const phase::Bbv &sig,
                         double *distance) const
{
    const auto best = b.detector.bestMatch(sig);
    if (!best)
        return kNpos;
    const bool usable =
        best->distance <= kExactEpsilon ||
        (b.fromDisk[best->phaseId] && best->distance <= opt_.threshold);
    if (!usable)
        return kNpos;
    if (distance)
        *distance = best->distance;
    return best->phaseId;
}

std::optional<GatherScheduler::Lookup>
GatherScheduler::lookup(const PhaseSpec &spec,
                        const phase::Bbv &sig) const
{
    MutexLock lock(mutex_);
    const auto it = buckets_.find(bucketKey(spec));
    if (it == buckets_.end())
        return std::nullopt;
    Lookup hit;
    const std::size_t id = matchIn(it->second, sig, &hit.distance);
    if (id == kNpos)
        return std::nullopt;
    hit.memo = it->second.entries[id];
    return hit;
}

bool
GatherScheduler::wouldHit(const PhaseSpec &spec,
                          const phase::Bbv &sig) const
{
    MutexLock lock(mutex_);
    const auto it = buckets_.find(bucketKey(spec));
    return it != buckets_.end() &&
           matchIn(it->second, sig, nullptr) != kNpos;
}

void
GatherScheduler::record(const PhaseSpec &spec, const phase::Bbv &sig,
                        const GatheredPhase &gathered)
{
    Memo memo;
    memo.spec = spec;
    memo.evals.reserve(gathered.evals.size());
    memo.bestEfficiency = -std::numeric_limits<double>::max();
    for (const auto &e : gathered.evals) {
        const std::uint64_t code = e.config.encode();
        memo.evals.emplace_back(code, e.efficiency);
        if (e.efficiency > memo.bestEfficiency) {
            memo.bestEfficiency = e.efficiency;
            memo.bestCode = code;
        }
    }
    memo.features = gathered.features;

    MutexLock lock(mutex_);
    // Slot allocation matches at the exact-recurrence epsilon, NOT
    // the cross-run lookup threshold: distinct phases of one
    // workload can sit inside that threshold, and allocating at it
    // would merge them into one slot that then thrashes (every
    // gather escalates the pair and re-records over the other's
    // characterisation).  matchIn() is unaffected — bestMatch() is
    // threshold-free and the lookup thresholds are applied there.
    Bucket &b =
        buckets_
            .try_emplace(bucketKey(spec),
                         Bucket{phase::OnlinePhaseDetector(
                                    kExactEpsilon,
                                    opt_.maxPhasesPerBucket),
                                {},
                                {}})
            .first->second;
    const auto obs = b.detector.observe(sig);
    if (obs.newPhase) {
        b.entries.push_back(std::move(memo));
        b.fromDisk.push_back(false);
    } else {
        // Re-characterisation of a recurring phase, or replacement
        // of the nearest entry once the signature table is full.
        memo.hits = b.entries[obs.phaseId].hits;
        b.entries[obs.phaseId] = std::move(memo);
        b.fromDisk[obs.phaseId] = false;
    }
}

void
GatherScheduler::noteHit(std::uint64_t reused_evals)
{
    {
        MutexLock lock(mutex_);
        ++stats_.hits;
        stats_.reusedEvals += reused_evals;
    }
    OBS_ONLY(OBS_COUNTER("gather/memo/hit").add(1);)
    OBS_ONLY(OBS_COUNTER("gather/memo/reused_evals")
                 .add(reused_evals);)
}

void
GatherScheduler::noteMiss()
{
    {
        MutexLock lock(mutex_);
        ++stats_.misses;
    }
    OBS_ONLY(OBS_COUNTER("gather/memo/miss").add(1);)
}

void
GatherScheduler::noteEscalation()
{
    {
        MutexLock lock(mutex_);
        ++stats_.escalations;
    }
    OBS_ONLY(OBS_COUNTER("gather/memo/escalated").add(1);)
}

GatherScheduler::Stats
GatherScheduler::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

std::size_t
GatherScheduler::size() const
{
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const auto &[key, b] : buckets_)
        n += b.entries.size();
    return n;
}

std::string
GatherScheduler::serializeLocked() const
{
    std::string out;
    putU64(out, kIndexMagic);
    putU64(out, kIndexVersion);
    putU64(out, buckets_.size());
    for (const auto &[key, b] : buckets_) {
        putString(out, key);
        putString(out, b.detector.serialize());
        putU64(out, b.entries.size());
        for (const auto &m : b.entries) {
            putSpec(out, m.spec);
            putU64(out, m.bestCode);
            putDouble(out, m.bestEfficiency);
            putU64(out, m.hits);
            putU64(out, m.evals.size());
            for (const auto &[code, eff] : m.evals) {
                putU64(out, code);
                putDouble(out, eff);
            }
            putDoubles(out, m.features.basic);
            putDoubles(out, m.features.advanced);
        }
    }
    putU64(out, fnv1a64(out.data(), out.size()));
    return out;
}

bool
GatherScheduler::deserialize(const std::string &bytes)
{
    if (bytes.size() < 32)
        return false;
    const std::size_t body = bytes.size() - 8;
    if (getU64(bytes.data() + body) != fnv1a64(bytes.data(), body))
        return false;
    if (getU64(bytes.data()) != kIndexMagic)
        return false;
    const std::uint64_t version = getU64(bytes.data() + 8);
    if (version != 1 && version != kIndexVersion)
        return false;
    const bool has_chip = version >= 2;

    std::map<std::string, Bucket> loaded;
    const std::uint64_t n_buckets = getU64(bytes.data() + 16);
    std::size_t off = 24;
    for (std::uint64_t bi = 0; bi < n_buckets; ++bi) {
        std::string key, det_bytes;
        if (!getString(bytes, off, key) ||
            !getString(bytes, off, det_bytes))
            return false;
        auto det = phase::OnlinePhaseDetector::deserialize(det_bytes);
        if (!det)
            return false;
        Bucket b{std::move(*det), {}, {}};
        if (off + 8 > body)
            return false;
        const std::uint64_t n_entries = getU64(bytes.data() + off);
        off += 8;
        if (n_entries != b.detector.numPhases())
            return false;
        for (std::uint64_t ei = 0; ei < n_entries; ++ei) {
            Memo m;
            if (!getSpec(bytes, off, m.spec, has_chip))
                return false;
            if (off + 32 > body)
                return false;
            m.bestCode = getU64(bytes.data() + off);
            m.bestEfficiency = getDouble(bytes.data() + off + 8);
            m.hits = getU64(bytes.data() + off + 16);
            const std::uint64_t n_evals =
                getU64(bytes.data() + off + 24);
            off += 32;
            if (n_evals > (body - off) / 16)
                return false;
            m.evals.reserve(n_evals);
            for (std::uint64_t k = 0; k < n_evals; ++k, off += 16) {
                m.evals.emplace_back(
                    getU64(bytes.data() + off),
                    getDouble(bytes.data() + off + 8));
            }
            if (!getDoubles(bytes, off, m.features.basic) ||
                !getDoubles(bytes, off, m.features.advanced))
                return false;
            b.entries.push_back(std::move(m));
            b.fromDisk.push_back(true);
        }
        loaded.emplace(std::move(key), std::move(b));
    }
    if (off != body)
        return false;
    buckets_ = std::move(loaded);
    return true;
}

void
GatherScheduler::load()
{
    if (path_.empty())
        return;
    const std::string bytes = readFile(path_);
    if (bytes.empty())
        return;
    MutexLock lock(mutex_);
    if (!deserialize(bytes)) {
        warn("gather memo index ", path_,
             " is corrupt or unreadable; starting empty");
        buckets_.clear();
    }
}

bool
GatherScheduler::save() const
{
    if (path_.empty())
        return true;
    std::string bytes;
    {
        MutexLock lock(mutex_);
        bytes = serializeLocked();
    }
    if (!atomicWriteFile(path_, bytes)) {
        warn("cannot persist gather memo index ", path_);
        return false;
    }
    return true;
}

} // namespace adaptsim::harness
