/**
 * @file
 * Per-core predictive adaptivity control on a multi-core chip.
 *
 * One CorePolicy instance per core runs the Fig. 2 loop against that
 * core's own counters while all cores co-execute on a shared-LLC
 * chip (sim::ChipSession).  Profiling intervals run on a persistent
 * per-core *solo* session at the profiling configuration — the
 * predictive model was trained on interference-free profiles, so
 * feeding it nominal-condition counters keeps the feature
 * distribution it learned; the interference itself reaches the
 * timing through the chip model, not the features.  The profiled
 * core sits out the chip interval (its work happened on the
 * profiling core), exactly mirroring the single-core controller's
 * semantics.
 */

#ifndef ADAPTSIM_CONTROL_CHIP_CONTROLLER_HH
#define ADAPTSIM_CONTROL_CHIP_CONTROLLER_HH

#include <memory>
#include <vector>

#include "control/controller.hh"
#include "sim/chip_session.hh"
#include "uarch/core_config.hh"

namespace adaptsim::control
{

/** ChipController knobs. */
struct ChipControllerOptions
{
    std::uint64_t intervalLength = 10000;
    counters::FeatureSet featureSet =
        counters::FeatureSet::Advanced;
    double detectorThreshold = 1.0;
    space::Configuration initialConfig;   ///< every core starts here

    /** Chip geometry; coreConfigs is overwritten with one
     *  initialConfig per workload. */
    uarch::ChipConfig chip;

    workload::TraceCache *traceCache = nullptr;

    /** Backend for the chip intervals; nullptr selects the
     *  ADAPTSIM_BACKEND default.  Profiling uses an observer-capable
     *  backend (cycle fallback), as in the single-core controller. */
    const sim::PerfModel *backend = nullptr;
};

/** Whole-run outcome of a chip execution. */
struct ChipRunStats
{
    std::vector<RunStats> cores;               ///< one per core
    std::vector<sim::CoreInterference> interference;  ///< final

    /** Geometric-mean per-core efficiency (bsq/W each). */
    double meanEfficiency() const;

    /** Sum of per-core committed instructions. */
    std::uint64_t totalInstructions() const;
};

/** N independent predictive policies over one shared-LLC chip. */
class ChipController
{
  public:
    /**
     * @param workloads one program per core (lifetime must cover
     *        the controller's).
     * @param model trained predictive model, shared by all policies
     *        (policies keep independent detector/prediction state).
     * @param options controller knobs.
     */
    ChipController(
        const std::vector<const workload::Workload *> &workloads,
        const ml::AdaptivityModel &model,
        const ChipControllerOptions &options);

    /** Execute @p max_instructions µops per core adaptively. */
    ChipRunStats run(std::uint64_t max_instructions);

    std::size_t numCores() const { return workloads_.size(); }

    /** Core @p i's predictions so far, by detector phase id. */
    const std::unordered_map<std::size_t, space::Configuration> &
    phasePredictions(std::size_t core) const
    {
        return policies_[core].predictions();
    }

  private:
    std::vector<const workload::Workload *> workloads_;
    ChipControllerOptions opt_;
    const sim::PerfModel &backend_;
    const sim::PerfModel &profileBackend_;

    std::vector<std::unique_ptr<workload::WrongPathGenerator>>
        wrongPaths_;
    std::vector<CorePolicy> policies_;
};

/**
 * Reference point: every core pinned to @p config for the whole run
 * on the same chip geometry.  @p backend nullptr selects the
 * ADAPTSIM_BACKEND default.
 */
ChipRunStats
runStaticChip(const std::vector<const workload::Workload *> &workloads,
              const space::Configuration &config,
              const uarch::ChipConfig &chip,
              std::uint64_t max_instructions,
              std::uint64_t interval_length = 10000,
              workload::TraceCache *trace_cache = nullptr,
              const sim::PerfModel *backend = nullptr);

} // namespace adaptsim::control

#endif // ADAPTSIM_CONTROL_CHIP_CONTROLLER_HH
