#include "ml/quantised.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::ml
{

std::vector<std::uint8_t>
quantiseFeatures(std::span<const double> x)
{
    // Features are assembled in [0, 1]; map to [0, 255].
    std::vector<std::uint8_t> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double v = std::clamp(x[i], 0.0, 1.0);
        out[i] = static_cast<std::uint8_t>(
            std::lround(v * 255.0));
    }
    return out;
}

QuantisedClassifier::QuantisedClassifier(
    const SoftmaxClassifier &source)
    : dim_(source.dim()), numClasses_(source.numClasses()),
      weights_(dim_ * numClasses_)
{
    // Symmetric per-classifier scale.  Argmax is scale-invariant, so
    // a single positive scale preserves the decision as long as the
    // quantisation error stays small relative to logit gaps.
    double max_abs = 0.0;
    for (double v : source.weights().data())
        max_abs = std::max(max_abs, std::abs(v));
    const double scale = max_abs > 0.0 ? 127.0 / max_abs : 1.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        weights_[i] = static_cast<std::int8_t>(std::clamp(
            std::lround(source.weights().data()[i] * scale),
            long(-127), long(127)));
    }
}

std::size_t
QuantisedClassifier::predict(std::span<const double> x) const
{
    const auto qx = quantiseFeatures(x);
    // 32-bit accumulators suffice: 255 * 127 * D ≤ 2^31 for D ≤ 66k.
    std::vector<std::int64_t> acc(numClasses_, 0);
    for (std::size_t d = 0; d < dim_; ++d) {
        const std::int64_t xv = qx[d];
        if (xv == 0)
            continue;
        const std::int8_t *row = &weights_[d * numClasses_];
        for (std::size_t k = 0; k < numClasses_; ++k)
            acc[k] += xv * row[k];
    }
    return static_cast<std::size_t>(
        std::max_element(acc.begin(), acc.end()) - acc.begin());
}

QuantisedModel::QuantisedModel(const AdaptivityModel &source)
{
    for (auto p : space::allParams()) {
        classifiers_[static_cast<std::size_t>(p)] =
            QuantisedClassifier(source.classifier(p));
    }
}

space::Configuration
QuantisedModel::predict(std::span<const double> x) const
{
    space::Configuration cfg;
    for (auto p : space::allParams()) {
        cfg.setIndex(p, static_cast<std::uint8_t>(
            classifiers_[static_cast<std::size_t>(p)].predict(x)));
    }
    return cfg;
}

std::size_t
QuantisedModel::storageBytes() const
{
    std::size_t total = 0;
    for (const auto &clf : classifiers_)
        total += clf.storageBytes();
    return total;
}

double
QuantisedModel::agreement(
    const AdaptivityModel &reference,
    const std::vector<std::vector<double>> &features) const
{
    if (features.empty())
        return 1.0;
    std::size_t matches = 0;
    std::size_t total = 0;
    for (const auto &x : features) {
        const auto full = reference.predict(x);
        const auto quant = predict(x);
        for (auto p : space::allParams()) {
            ++total;
            if (full.index(p) == quant.index(p))
                ++matches;
        }
    }
    return static_cast<double>(matches) /
           static_cast<double>(total);
}

} // namespace adaptsim::ml
