/**
 * @file
 * Ablation: the "good configuration" labelling threshold.  The paper
 * trains on configurations within 5% of each phase's best (0.95);
 * this sweeps the cut-off.
 */

#include <cstdio>

#include "ablation_common.hh"
#include "common/table.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    TextTable table;
    table.setHeader({"Good threshold",
                     "Held-out efficiency (x baseline)"});
    for (double threshold : {0.995, 0.95, 0.9, 0.8, 0.6}) {
        ml::TrainerOptions opt;
        opt.goodThreshold = threshold;
        const double rel = benchutil::splitHalfRelative(
            exp, counters::FeatureSet::Advanced, opt);
        table.addRow({TextTable::num(threshold),
                      TextTable::num(rel)});
    }
    std::printf("Ablation: good-set threshold (paper: within 5%% of "
                "best, i.e. 0.95)\n\n%s\n",
                table.render().c_str());
    return 0;
}
