# Empty compiler generated dependencies file for ablation_quantisation.
# This may be replaced when dependencies are built.
