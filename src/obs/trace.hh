/**
 * @file
 * Chrome trace-event JSON writer (chrome://tracing / Perfetto).
 *
 * Spans record complete ("X") events with microsecond timestamps
 * relative to the writer's construction; thread ids are small
 * integers assigned in order of first appearance, with optional
 * "thread_name" metadata events.  Events are buffered in memory and
 * written as one JSON object ({"traceEvents": [...]}) by finish(),
 * using the crash-safe atomic-rename writer from common/serial.
 *
 * One process-wide writer can be installed with setActive(); the
 * OBS_SPAN machinery emits to it when present and skips a single
 * atomic load when not.
 */

#ifndef ADAPTSIM_OBS_TRACE_HH
#define ADAPTSIM_OBS_TRACE_HH

#include <chrono>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.hh"

namespace adaptsim::obs
{

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Buffering Chrome trace-event writer; see file comment. */
class TraceWriter
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TraceWriter(std::string path);
    ~TraceWriter();   ///< finish()es if nobody did

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Record one complete ("X") event on the calling thread. */
    void completeEvent(std::string_view name, Clock::time_point start,
                       Clock::time_point end);

    /** Emit a "thread_name" metadata event for the calling thread. */
    void nameCurrentThread(const std::string &name);

    /**
     * Serialize everything and atomically write the file.  First
     * call wins; later events and calls are ignored.
     * @return true when the file was written successfully.
     */
    bool finish();

    const std::string &path() const { return path_; }
    std::size_t eventCount() const;

    /** Process-wide writer used by spans (nullptr when disabled). */
    static TraceWriter *active();
    static void setActive(TraceWriter *writer);

  private:
    struct Event
    {
        std::string name;
        char ph;            ///< 'X' span or 'M' metadata
        double tsMicros;
        double durMicros;   ///< X only
        int tid;
    };

    /** Small stable id for the calling thread (mutex_ held). */
    int tidLocked() ADAPTSIM_REQUIRES(mutex_);

    std::string path_;
    Clock::time_point epoch_;

    mutable Mutex mutex_;
    std::vector<Event> events_ ADAPTSIM_GUARDED_BY(mutex_);
    std::unordered_map<std::thread::id, int> tids_
        ADAPTSIM_GUARDED_BY(mutex_);
    bool finished_ ADAPTSIM_GUARDED_BY(mutex_) = false;
};

} // namespace adaptsim::obs

#endif // ADAPTSIM_OBS_TRACE_HH
