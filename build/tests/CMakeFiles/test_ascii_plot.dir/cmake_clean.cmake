file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_plot.dir/test_ascii_plot.cc.o"
  "CMakeFiles/test_ascii_plot.dir/test_ascii_plot.cc.o.d"
  "test_ascii_plot"
  "test_ascii_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
