file(REMOVE_RECURSE
  "CMakeFiles/test_issue_queue.dir/test_issue_queue.cc.o"
  "CMakeFiles/test_issue_queue.dir/test_issue_queue.cc.o.d"
  "test_issue_queue"
  "test_issue_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_issue_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
