/**
 * @file
 * Issue queue: age-ordered list of ROB slots waiting to issue.
 */

#ifndef ADAPTSIM_UARCH_ISSUE_QUEUE_HH
#define ADAPTSIM_UARCH_ISSUE_QUEUE_HH

#include <cstdint>
#include <vector>

namespace adaptsim::uarch
{

/** Age-ordered issue queue holding ROB slot indices. */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity);

    bool full() const
    {
        return static_cast<int>(slots_.size()) == capacity_;
    }
    bool empty() const { return slots_.empty(); }
    int occupancy() const { return static_cast<int>(slots_.size()); }
    int capacity() const { return capacity_; }

    /** Insert a newly dispatched op (youngest). */
    void insert(std::int32_t rob_idx);

    /** Age-ordered view for the issue scan. */
    const std::vector<std::int32_t> &slots() const { return slots_; }

    /**
     * Remove the entries at the positions in @p positions (ascending
     * order, as produced by the issue scan).
     */
    void removeAt(const std::vector<std::size_t> &positions);

    /** Remove every entry for which @p pred(rob_idx) is true. */
    template <typename Pred>
    void
    removeIf(Pred &&pred)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (!pred(slots_[i]))
                slots_[out++] = slots_[i];
        }
        slots_.resize(out);
    }

  private:
    int capacity_;
    std::vector<std::int32_t> slots_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_ISSUE_QUEUE_HH
