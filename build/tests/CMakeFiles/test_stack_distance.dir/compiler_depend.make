# Empty compiler generated dependencies file for test_stack_distance.
# This may be replaced when dependencies are built.
