# Empty dependencies file for test_conjugate_gradient.
# This may be replaced when dependencies are built.
