/**
 * @file
 * Fig. 8: distribution of the highest achievable efficiency across
 * the 260 phases when one parameter is pinned to each of its values
 * and everything else is free (within the sampled space), normalised
 * per phase by the overall sampled best.  Shown for Width, IQ size
 * and I-cache size, with the percentage of phases for which each
 * value is optimal.
 */

#include <cstdio>
#include <vector>

#include "common/ascii_plot.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

namespace
{

void
violinFor(harness::Experiment &exp, space::Param p)
{
    const auto &ds = space::DesignSpace::the();
    const auto &phases = exp.phases();
    const std::size_t num_vals = ds.numValues(p);

    // Per value: distribution over phases of (best with value fixed)
    // / (overall best); and % of phases where the value is optimal.
    std::vector<std::vector<double>> dist(num_vals);
    std::vector<std::size_t> wins(num_vals, 0);

    for (const auto &phase : phases) {
        std::vector<double> best_at(num_vals, 0.0);
        double best_all = 0.0;
        for (const auto &e : phase.evals) {
            const std::size_t v = e.config.index(p);
            best_at[v] = std::max(best_at[v], e.efficiency);
            best_all = std::max(best_all, e.efficiency);
        }
        if (best_all <= 0.0)
            continue;
        std::size_t winner = 0;
        for (std::size_t v = 0; v < num_vals; ++v) {
            if (best_at[v] > 0.0)
                dist[v].push_back(best_at[v] / best_all);
            if (best_at[v] > best_at[winner])
                winner = v;
        }
        ++wins[winner];
    }

    std::printf("Parameter: %s (fraction of per-phase optimum when "
                "pinned; %% = phases where the value is best)\n",
                ds.name(p).c_str());
    for (std::size_t v = 0; v < num_vals; ++v) {
        const double pct = 100.0 * double(wins[v]) /
                           double(phases.size());
        char label[64];
        std::snprintf(label, sizeof(label), "%8llu (%4.1f%%)",
                      static_cast<unsigned long long>(
                          ds.value(p, v)),
                      pct);
        std::printf("%s", violinLine(label, dist[v]).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    harness::Experiment exp;
    exp.phases();

    std::printf("Fig. 8: efficiency distributions with one parameter "
                "fixed (sampled space)\n\n");
    violinFor(exp, space::Param::Width);
    violinFor(exp, space::Param::IqSize);
    violinFor(exp, space::Param::ICacheSize);

    std::printf("Paper observations to compare: no single value is "
                "best for all phases; width 4 best for ~32%% of "
                "phases; small I-cache best for ~28%% with the "
                "highest median but also the worst tail.\n");
    return 0;
}
