# Empty dependencies file for fig9_counter_overheads.
# This may be replaced when dependencies are built.
