#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    mean_ += delta * nb / nab;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    const std::size_t mid = (values.size() - 1) / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    p = std::clamp(p, 0.0, 100.0);
    const double pos = p / 100.0 *
                       static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
ecdfFromRight(const std::vector<double> &values, double x)
{
    if (values.empty())
        return 0.0;
    std::size_t at_least = 0;
    for (double v : values) {
        if (v >= x)
            ++at_least;
    }
    return static_cast<double>(at_least) /
           static_cast<double>(values.size());
}

} // namespace adaptsim
