#include "harness/learned_trainer.hh"

#include <cmath>

#include "common/logging.hh"
#include "sim/cycle_level_model.hh"
#include "sim/learned_model.hh"
#include "uarch/core_config.hh"

namespace adaptsim::harness
{

TrainReport
trainLearnedBackend(EvalRepository &repo,
                    const std::vector<PhaseSpec> &specs,
                    const TrainOptions &options)
{
    TrainReport report;

    std::vector<std::vector<double>> features;
    std::vector<double> ipc;   ///< primary fit target
    std::vector<double> epi;

    for (const auto &spec : specs) {
        const auto cached =
            repo.records(spec, sim::CycleLevelModel::kCacheTag);
        if (cached.empty())
            continue;
        // One trace summary per phase, shared by every cached config
        // of that phase (the phase half of the feature vector).
        const auto &wl = repo.workload(spec.workload);
        const auto trace = repo.traceCache().get(
            wl, spec.startInst, spec.detailLength);
        const auto summary = sim::summariseTrace(*trace);
        bool contributed = false;
        for (const auto &[code, r] : cached) {
            if (!(r.instructions > 0.0) || !(r.ipc > 0.0))
                continue;   // degenerate window: nothing to learn
            const auto cfg = space::Configuration::decode(code);
            const auto cc =
                uarch::CoreConfig::fromConfiguration(cfg);
            features.push_back(sim::learnedFeatures(summary, cc));
            ipc.push_back(r.ipc);
            epi.push_back(r.joules / r.instructions);
            contributed = true;
        }
        if (contributed)
            ++report.phases;
    }

    report.samples = features.size();
    if (report.samples < options.minSamples) {
        warn("learned-backend training: only ", report.samples,
             " cached cycle-level sample(s) (need ",
             options.minSamples, "); surrogate not trained");
        return report;
    }

    const std::size_t dim = features.front().size();
    ml::Matrix x(report.samples, dim);
    for (std::size_t i = 0; i < report.samples; ++i)
        for (std::size_t j = 0; j < dim; ++j)
            x(i, j) = features[i][j];

    auto surrogate =
        ml::Surrogate::fit(x, ipc, epi, options.surrogate);

    double abs_err = 0.0;
    for (std::size_t i = 0; i < report.samples; ++i) {
        const auto p = surrogate.predict(features[i]);
        abs_err += std::abs(p.primary - ipc[i]);
    }
    report.maeIpc = abs_err / static_cast<double>(report.samples);
    report.trained = true;
    sim::setLearnedSurrogate(std::move(surrogate));
    return report;
}

} // namespace adaptsim::harness
