/**
 * @file
 * Tests of the byte-exact serialization and crash-safe file helpers.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>

#include "common/serial.hh"

using namespace adaptsim;

namespace
{

class SerialFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/adaptsim_serial_test";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

} // namespace

TEST(Fnv1a64, MatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, SeedChains)
{
    const std::uint64_t whole = fnv1a64("foobar", 6);
    const std::uint64_t part = fnv1a64("foo", 3);
    EXPECT_EQ(fnv1a64("bar", 3, part), whole);
}

TEST(Serial, U64RoundTrip)
{
    const std::uint64_t cases[] = {
        0, 1, 0xff, 0x0102030405060708ULL,
        std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t v : cases) {
        std::string buf;
        putU64(buf, v);
        ASSERT_EQ(buf.size(), 8u);
        EXPECT_EQ(getU64(buf.data()), v);
    }
}

TEST(Serial, U64IsLittleEndian)
{
    std::string buf;
    putU64(buf, 0x0102030405060708ULL);
    EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x08);
    EXPECT_EQ(static_cast<unsigned char>(buf[7]), 0x01);
}

TEST(Serial, U32RoundTripAndEndianness)
{
    const std::uint32_t cases[] = {
        0, 1, 0xff, 0x01020304u,
        std::numeric_limits<std::uint32_t>::max()};
    for (std::uint32_t v : cases) {
        std::string buf;
        putU32(buf, v);
        ASSERT_EQ(buf.size(), 4u);
        EXPECT_EQ(getU32(buf.data()), v);
    }
    std::string buf;
    putU32(buf, 0x01020304u);
    EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
    EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(Serial, StringRoundTrip)
{
    for (const std::string &s :
         {std::string(""), std::string("gzip"),
          std::string("with\0byte", 9), std::string(300, 'x')}) {
        std::string buf;
        putString(buf, s);
        ASSERT_EQ(buf.size(), 4 + s.size());
        std::size_t off = 0;
        std::string back;
        ASSERT_TRUE(getString(buf, off, back));
        EXPECT_EQ(back, s);
        EXPECT_EQ(off, buf.size());
    }
}

TEST(Serial, GetStringRejectsTruncation)
{
    std::string buf;
    putString(buf, "evaluation");
    std::string out;
    // Every truncation fails cleanly: a cut length prefix or a
    // length that runs past the remaining bytes.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        std::size_t off = 0;
        EXPECT_FALSE(
            getString(std::string_view(buf.data(), n), off, out))
            << n;
    }
    // A hostile length prefix must not be trusted either.
    std::string evil;
    putU32(evil, 0xffffffffu);
    evil += "short";
    std::size_t off = 0;
    EXPECT_FALSE(getString(evil, off, out));
}

TEST(Serial, DoubleRoundTripIsBitExact)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        6.911025e-06,
        1.8933624929e+26,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
    };
    for (double v : cases) {
        std::string buf;
        putDouble(buf, v);
        const double back = getDouble(buf.data());
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
                  std::bit_cast<std::uint64_t>(v));
    }
}

TEST_F(SerialFileTest, AtomicWriteCreatesFileWithoutTmpResidue)
{
    const std::string path = dir_ + "/a.bin";
    ASSERT_TRUE(atomicWriteFile(path, "hello"));
    EXPECT_EQ(readFile(path), "hello");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(SerialFileTest, AtomicWriteReplacesWhole)
{
    const std::string path = dir_ + "/a.bin";
    ASSERT_TRUE(atomicWriteFile(path, "a longer first version"));
    ASSERT_TRUE(atomicWriteFile(path, "v2"));
    EXPECT_EQ(readFile(path), "v2");
}

TEST_F(SerialFileTest, AppendExtends)
{
    const std::string path = dir_ + "/a.log";
    ASSERT_TRUE(appendFileSync(path, "one"));
    ASSERT_TRUE(appendFileSync(path, "two"));
    EXPECT_EQ(readFile(path), "onetwo");
}

TEST_F(SerialFileTest, ReadMissingFileIsEmpty)
{
    EXPECT_EQ(readFile(dir_ + "/nope"), "");
}

TEST_F(SerialFileTest, WriteToMissingDirectoryFails)
{
    EXPECT_FALSE(atomicWriteFile(dir_ + "/no/such/dir/f", "x"));
    EXPECT_FALSE(appendFileSync(dir_ + "/no/such/dir/f", "x"));
}
