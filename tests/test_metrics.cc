/**
 * @file
 * Tests of the ips³/W efficiency metric computation.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "power/metrics.hh"

using namespace adaptsim;
using namespace adaptsim::power;

TEST(Metrics, EfficiencyFormula)
{
    EXPECT_DOUBLE_EQ(efficiencyOf(2.0, 4.0), 2.0);
    EXPECT_DOUBLE_EQ(efficiencyOf(10.0, 1.0), 1000.0);
    EXPECT_EQ(efficiencyOf(5.0, 0.0), 0.0);
}

TEST(Metrics, ComputeFromEvents)
{
    const auto cc = uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    uarch::EventCounts ev;
    ev.cycles = 20000;
    ev.committedOps = 10000;
    ev.aluOps = 8000;
    ev.dcAccesses = 2500;

    const auto m = computeMetrics(cc, ev);
    EXPECT_NEAR(m.ipc, 0.5, 1e-12);
    EXPECT_NEAR(m.seconds, 20000.0 * cc.clockPeriodSec, 1e-18);
    EXPECT_NEAR(m.ips, m.instructions / m.seconds, 1e-3);
    EXPECT_NEAR(m.watts, m.joules / m.seconds, 1e-9);
    EXPECT_NEAR(m.efficiency,
                m.ips * m.ips * m.ips / m.watts,
                m.efficiency * 1e-9);
}

TEST(Metrics, EmptyRunIsZero)
{
    const auto cc = uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    const auto m = computeMetrics(cc, uarch::EventCounts{});
    EXPECT_EQ(m.ipc, 0.0);
    EXPECT_EQ(m.ips, 0.0);
    EXPECT_EQ(m.efficiency, 0.0);
}

TEST(Metrics, FasterSameEnergyIsBetter)
{
    const auto cc = uarch::CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
    uarch::EventCounts slow;
    slow.cycles = 20000;
    slow.committedOps = 10000;
    uarch::EventCounts fast = slow;
    fast.cycles = 10000;
    const auto ms = computeMetrics(cc, slow);
    const auto mf = computeMetrics(cc, fast);
    EXPECT_GT(mf.efficiency, ms.efficiency);
}
