/**
 * @file
 * Tests of the workload (kernel schedule) abstraction.
 */

#include <gtest/gtest.h>

#include "workload/workload.hh"

using namespace adaptsim;
using namespace adaptsim::workload;

namespace
{

KernelParams
kernelNamed(const std::string &name, double frac_load)
{
    KernelParams k;
    k.name = name;
    k.fracLoad = frac_load;
    k.numBlocks = 16;
    k.blockSize = 6;
    return k;
}

Workload
makeWorkload()
{
    return Workload("testwl",
                    {{kernelNamed("A", 0.1), 10000},
                     {kernelNamed("B", 0.4), 20000},
                     {kernelNamed("A", 0.1), 10000}},
                    99);
}

} // namespace

TEST(Workload, TotalLength)
{
    EXPECT_EQ(makeWorkload().totalInstructions(), 40000u);
}

TEST(Workload, GenerateWindowsAreConsistent)
{
    const auto wl = makeWorkload();
    const auto full = wl.generate(0, 1000);
    const auto tail = wl.generate(500, 500);
    for (std::size_t i = 0; i < 500; ++i) {
        EXPECT_EQ(full[500 + i].pc, tail[i].pc);
        EXPECT_EQ(full[500 + i].opClass, tail[i].opClass);
    }
}

TEST(Workload, CrossSegmentGeneration)
{
    const auto wl = makeWorkload();
    const auto window = wl.generate(9500, 1000);   // spans A → B
    EXPECT_EQ(window.size(), 1000u);
    // Segment A's kernel id is 0, B's is 1.
    EXPECT_EQ(window.front().bbId >> 16, 0u);
    EXPECT_EQ(window.back().bbId >> 16, 1u);
}

TEST(Workload, RepeatedKernelReplaysSameCode)
{
    const auto wl = makeWorkload();
    // Segment 0 (A) and segment 2 (A again) replay identical µops.
    const auto first = wl.generate(0, 200);
    const auto repeat = wl.generate(30000, 200);
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(first[i].pc, repeat[i].pc);
        EXPECT_EQ(first[i].opClass, repeat[i].opClass);
    }
}

TEST(Workload, WrapsAroundEnd)
{
    const auto wl = makeWorkload();
    const auto wrapped = wl.generate(39990, 20);
    const auto head = wl.generate(0, 10);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(wrapped[10 + i].pc, head[i].pc);
}

TEST(Workload, AverageParamsIsLengthWeighted)
{
    const auto wl = makeWorkload();
    const auto avg = wl.averageParams();
    // 20k ops at 0.1 + 20k at 0.4 → 0.25.
    EXPECT_NEAR(avg.fracLoad, 0.25, 1e-12);
}

TEST(Workload, RejectsEmptySchedules)
{
    EXPECT_EXIT((Workload{"bad", {}, 1}),
                ::testing::ExitedWithCode(1), "");
}

TEST(Workload, RejectsZeroLengthSegments)
{
    EXPECT_EXIT((Workload{"bad",
                          {{kernelNamed("A", 0.1), 0}},
                          1}),
                ::testing::ExitedWithCode(1), "");
}
