/**
 * @file
 * Tests of the obs subsystem: registry merge-on-read semantics,
 * histogram bucket edges, concurrent increments (exercised under
 * TSan by scripts/tier1.sh), and a golden-structure check that the
 * Chrome trace output is valid JSON made of complete events.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/serial.hh"
#include "harness/gather.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "uarch/chip.hh"
#include "workload/spec_suite.hh"

using adaptsim::obs::Histogram;
using adaptsim::obs::Registry;
using adaptsim::obs::TraceWriter;

TEST(Registry, CounterMergesAcrossThreads)
{
    Registry reg;
    auto &c = reg.counter("test/hits");
    c.add(5);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i)
                c.add(1);
        });
    }
    for (auto &t : threads)
        t.join();

    // Writer threads have exited; their shards retired into the
    // registry so nothing was lost.
    EXPECT_EQ(c.value(), 4005u);
}

TEST(Registry, ConcurrentIncrementsWithConcurrentReads)
{
    Registry reg;
    auto &c = reg.counter("test/contended");

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        std::uint64_t last = 0;
        while (!stop.load()) {
            const std::uint64_t now = c.value();
            EXPECT_GE(now, last);   // monotone despite merging
            last = now;
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
        writers.emplace_back([&] {
            for (int i = 0; i < 10000; ++i)
                c.add(1);
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(c.value(), 80000u);
}

TEST(Registry, HistogramBucketEdges)
{
    Registry reg;
    auto &h = reg.histogram("test/lat", {1.0, 2.0, 4.0});

    h.record(0.5);     // bucket 0 (v <= 1)
    h.record(1.0);     // bucket 0 (bounds are inclusive upper)
    h.record(1.0001);  // bucket 1
    h.record(2.0);     // bucket 1
    h.record(4.0);     // bucket 2
    h.record(5.0);     // overflow

    const auto st = h.stats();
    ASSERT_EQ(st.counts.size(), 4u);   // 3 bounds + overflow
    EXPECT_EQ(st.counts[0], 2u);
    EXPECT_EQ(st.counts[1], 2u);
    EXPECT_EQ(st.counts[2], 1u);
    EXPECT_EQ(st.counts[3], 1u);
    EXPECT_EQ(st.count, 6u);
    EXPECT_DOUBLE_EQ(st.min, 0.5);
    EXPECT_DOUBLE_EQ(st.max, 5.0);
    EXPECT_NEAR(st.sum, 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 5.0, 1e-9);
    EXPECT_GT(st.quantile(0.5), 0.0);
    EXPECT_LE(st.quantile(0.5), st.quantile(0.95));
}

TEST(Registry, HistogramMergesAcrossThreads)
{
    Registry reg;
    auto &h = reg.histogram(
        "test/merge", Registry::exponentialBounds(1.0, 2.0, 8));

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 250; ++i)
                h.record(double(t + 1));
        });
    }
    for (auto &t : threads)
        t.join();

    const auto st = h.stats();
    EXPECT_EQ(st.count, 1000u);
    EXPECT_DOUBLE_EQ(st.min, 1.0);
    EXPECT_DOUBLE_EQ(st.max, 4.0);
    EXPECT_NEAR(st.sum, 250.0 * (1 + 2 + 3 + 4), 1e-9);
    EXPECT_NEAR(st.mean(), 2.5, 1e-9);
}

TEST(Registry, GaugeLastWriteWins)
{
    Registry reg;
    auto &g = reg.gauge("test/load");
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(0.25);
    g.set(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(Registry, SameNameReturnsSameHandle)
{
    Registry reg;
    EXPECT_EQ(&reg.counter("dup"), &reg.counter("dup"));
    EXPECT_EQ(&reg.histogram("duph", {1.0}),
              &reg.histogram("duph", {1.0}));
    EXPECT_EQ(reg.findCounter("dup"), &reg.counter("dup"));
    EXPECT_EQ(reg.findCounter("absent"), nullptr);
    EXPECT_EQ(reg.findHistogram("absent"), nullptr);
}

TEST(Registry, ResetZeroesButKeepsHandles)
{
    Registry reg;
    auto &c = reg.counter("r/c");
    auto &h = reg.histogram("r/h", {1.0, 2.0});
    c.add(7);
    h.record(1.5);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.stats().count, 0u);
    c.add(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(Registry, SnapshotSortedByName)
{
    Registry reg;
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.gauge("g").set(3.5);
    reg.histogram("h", {1.0}).record(0.5);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a");
    EXPECT_EQ(snap.counters[0].second, 1u);
    EXPECT_EQ(snap.counters[1].first, "b");
    EXPECT_EQ(snap.counters[1].second, 2u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(Registry, ExponentialBounds)
{
    const auto b = Registry::exponentialBounds(1e-6, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 1e-6);
    EXPECT_DOUBLE_EQ(b[1], 2e-6);
    EXPECT_DOUBLE_EQ(b[2], 4e-6);
    EXPECT_DOUBLE_EQ(b[3], 8e-6);
}

namespace
{

/**
 * Minimal recursive-descent JSON validator (no external deps).
 * Returns true iff the whole input is one valid JSON value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : s_(text) {}

    bool valid() { return value() && (ws(), pos_ == s_.size()); }

  private:
    void ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool lit(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool value()
    {
        ws();
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return lit("true");
          case 'f': return lit("false");
          case 'n': return lit("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_;   // '{'
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}')
            return ++pos_, true;
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (pos_ >= s_.size() || s_[pos_++] != ':')
                return false;
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') { ++pos_; continue; }
            return s_[pos_++] == '}';
        }
    }

    bool array()
    {
        ++pos_;   // '['
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']')
            return ++pos_, true;
        for (;;) {
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') { ++pos_; continue; }
            return s_[pos_++] == ']';
        }
    }

    bool string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false;   // raw control char: bad escape
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_++])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
        }
        return false;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

/** All `"ph":"?"` phase letters appearing in a trace JSON. */
std::vector<char>
phases(const std::string &json)
{
    std::vector<char> out;
    std::size_t pos = 0;
    while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
        pos += 6;
        if (pos < json.size())
            out.push_back(json[pos]);
    }
    return out;
}

} // namespace

TEST(Trace, JsonEscape)
{
    EXPECT_EQ(adaptsim::obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(adaptsim::obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(adaptsim::obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(adaptsim::obs::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(adaptsim::obs::jsonEscape(std::string(1, '\x01')),
              "\\u0001");
}

TEST(Trace, ChromeTraceIsValidJsonOfCompleteEvents)
{
    const std::string dir = "/tmp/adaptsim_obs_test";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/trace.json";
    std::filesystem::remove(path);

    {
        TraceWriter writer(path);
        writer.nameCurrentThread("main");

        const auto t0 = TraceWriter::Clock::now();
        writer.completeEvent(
            "outer", t0, t0 + std::chrono::microseconds(300));
        writer.completeEvent(
            "inner \"quoted\"", t0 + std::chrono::microseconds(10),
            t0 + std::chrono::microseconds(20));

        std::thread other([&] {
            writer.nameCurrentThread("worker");
            const auto s = TraceWriter::Clock::now();
            writer.completeEvent(
                "job", s, s + std::chrono::microseconds(50));
        });
        other.join();

        EXPECT_EQ(writer.eventCount(), 5u);   // 3 X + 2 M
        EXPECT_TRUE(writer.finish());
    }

    const std::string json = adaptsim::readFile(path);
    ASSERT_FALSE(json.empty());

    // Structurally valid JSON with the Chrome trace envelope.
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Every event is either complete ('X') or metadata ('M') —
    // nothing needs B/E matching — and both threads appear.
    const auto ph = phases(json);
    ASSERT_EQ(ph.size(), 5u);
    int x = 0, m = 0;
    for (const char p : ph) {
        EXPECT_TRUE(p == 'X' || p == 'M') << p;
        (p == 'X' ? x : m)++;
    }
    EXPECT_EQ(x, 3);
    EXPECT_EQ(m, 2);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("worker"), std::string::npos);
}

TEST(Trace, FinishFirstCallWins)
{
    const std::string dir = "/tmp/adaptsim_obs_test";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/trace_twice.json";

    TraceWriter writer(path);
    const auto t0 = TraceWriter::Clock::now();
    writer.completeEvent("only", t0,
                         t0 + std::chrono::microseconds(5));
    EXPECT_TRUE(writer.finish());
    const auto first = adaptsim::readFile(path);

    // Later events and finishes are ignored.
    writer.completeEvent("late", t0,
                         t0 + std::chrono::microseconds(5));
    writer.finish();
    EXPECT_EQ(adaptsim::readFile(path), first);
}

#if ADAPTSIM_OBS_ENABLED

TEST(Span, RecordsIntoGlobalRegistryAndTrace)
{
    const std::string dir = "/tmp/adaptsim_obs_test";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/span_trace.json";

    TraceWriter writer(path);
    TraceWriter::setActive(&writer);
    {
        OBS_SPAN("test/span");
        OBS_COUNTER("test/span.visits").add(1);
    }
    TraceWriter::setActive(nullptr);

    auto *hist = Registry::global().findHistogram("test/span.seconds");
    ASSERT_NE(hist, nullptr);
    EXPECT_GE(hist->stats().count, 1u);
    EXPECT_GE(
        Registry::global().counter("test/span.visits").value(), 1u);

    ASSERT_TRUE(writer.finish());
    const std::string json = adaptsim::readFile(path);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("test/span"), std::string::npos);
}

#endif // ADAPTSIM_OBS_ENABLED

TEST(Registry, PerCoreLabelledCountersMergeAcrossThreads)
{
    // One `chip/core/<i>/...` label per worker thread, the way the
    // chip loop emits them: the merge must keep the labels distinct
    // and lose nothing when the writer threads retire.
    Registry reg;
    constexpr int kCores = 4;
    std::vector<std::thread> threads;
    for (int c = 0; c < kCores; ++c) {
        threads.emplace_back([&reg, c] {
            auto &ctr = reg.counter("chip/core/" +
                                    std::to_string(c) + "/quanta");
            for (int i = 0; i < 250 * (c + 1); ++i)
                ctr.add(1);
        });
    }
    for (auto &t : threads)
        t.join();

    for (int c = 0; c < kCores; ++c) {
        EXPECT_EQ(reg.counter("chip/core/" + std::to_string(c) +
                              "/quanta")
                      .value(),
                  std::uint64_t(250 * (c + 1)))
            << c;
    }
    EXPECT_EQ(reg.snapshot().counters.size(), std::size_t(kCores));
}

namespace
{

/** Timed 2-core co-run; returns the per-core committed-op counts. */
std::vector<std::uint64_t>
runTwoCoreChip()
{
    using namespace adaptsim;
    const auto a = workload::specBenchmark("gzip", 100000);
    const auto b = workload::specBenchmark("gap", 100000);
    workload::WrongPathGenerator wa(a.averageParams(),
                                    a.seed() ^ 0x57a71cULL);
    workload::WrongPathGenerator wb(b.averageParams(),
                                    b.seed() ^ 0x57a71cULL);
    uarch::Chip chip(uarch::ChipConfig::homogeneous(
                         harness::paperBaselineConfig(), 2),
                     {&wa, &wb});
    const auto ta = a.generate(0, 5000);
    const auto tb = b.generate(0, 5000);
    const auto res = chip.run({ta, tb});
    return {res.cores[0].events.committedOps,
            res.cores[1].events.committedOps};
}

} // namespace

#if ADAPTSIM_OBS_ENABLED

TEST(ChipObs, ChipRunEmitsPerCoreLabelledCounters)
{
    auto &reg = Registry::global();
    std::vector<std::uint64_t> ops_before, quanta_before;
    for (int c = 0; c < 2; ++c) {
        const std::string base = "chip/core/" + std::to_string(c);
        ops_before.push_back(
            reg.counter(base + "/committed_ops").value());
        quanta_before.push_back(
            reg.counter(base + "/quanta").value());
    }

    const auto committed = runTwoCoreChip();

    for (int c = 0; c < 2; ++c) {
        const std::string base = "chip/core/" + std::to_string(c);
        EXPECT_EQ(reg.counter(base + "/committed_ops").value() -
                      ops_before[c],
                  committed[c])
            << c;
        // 5000 µops at the default 2000-µop quantum: 3 slices.
        EXPECT_EQ(reg.counter(base + "/quanta").value() -
                      quanta_before[c],
                  3u)
            << c;
    }
}

#else // !ADAPTSIM_OBS_ENABLED

TEST(ChipObs, CompiledOutChipRunRegistersNothing)
{
    // -DADAPTSIM_OBS=OFF: the chip loop's OBS_ONLY blocks vanish, so
    // a co-run must not create any per-core counters at all.
    runTwoCoreChip();
    EXPECT_EQ(
        Registry::global().findCounter("chip/core/0/committed_ops"),
        nullptr);
    EXPECT_EQ(Registry::global().findCounter("chip/core/0/quanta"),
              nullptr);
}

#endif // ADAPTSIM_OBS_ENABLED
