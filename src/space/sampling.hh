/**
 * @file
 * Design-space sampling strategies used to gather training data
 * (Sec. V-C): uniform random sampling, local neighbourhoods of a good
 * configuration, and one-at-a-time parameter sweeps.
 */

#ifndef ADAPTSIM_SPACE_SAMPLING_HH
#define ADAPTSIM_SPACE_SAMPLING_HH

#include <vector>

#include "common/rng.hh"
#include "space/configuration.hh"

namespace adaptsim::space
{

/** Draw one configuration uniformly at random from the full space. */
Configuration uniformRandom(Rng &rng);

/** Draw @p count distinct uniform-random configurations. */
std::vector<Configuration> uniformRandomSet(Rng &rng, std::size_t count);

/**
 * Draw @p count local neighbours of @p centre: each neighbour moves a
 * random subset of parameters by at most @p radius value-index steps.
 * The centre itself is never returned.
 */
std::vector<Configuration> localNeighbours(Rng &rng,
                                           const Configuration &centre,
                                           std::size_t count,
                                           int radius = 2);

/**
 * One-at-a-time sweep: for each parameter, every legal value with all
 * other parameters pinned to @p centre.  The centre itself is excluded.
 * Mirrors the paper's final refinement step (93 configs for Table I).
 */
std::vector<Configuration> oneAtATimeSweep(const Configuration &centre);

/**
 * Sweep of a single parameter @p p over all its legal values with the
 * rest pinned to @p centre (the centre's own value is included).
 */
std::vector<Configuration> parameterSweep(const Configuration &centre,
                                          Param p);

/** Remove duplicate configurations, preserving first-seen order. */
std::vector<Configuration> dedupe(std::vector<Configuration> configs);

} // namespace adaptsim::space

#endif // ADAPTSIM_SPACE_SAMPLING_HH
