file(REMOVE_RECURSE
  "CMakeFiles/test_design_space.dir/test_design_space.cc.o"
  "CMakeFiles/test_design_space.dir/test_design_space.cc.o.d"
  "test_design_space"
  "test_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
