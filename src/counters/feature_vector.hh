/**
 * @file
 * Assembly of model input features from a CounterBank.
 *
 * Two feature sets mirror Sec. VI-B:
 *  - basic: the standard performance counters of current processors
 *    (average occupancies, access and miss rates, IPC);
 *  - advanced: the full Table II set with temporal histograms and
 *    reuse/stack-distance histograms.
 *
 * All features are normalised to O(1) magnitudes so the soft-max
 * weights are well conditioned; a trailing bias term is appended.
 */

#ifndef ADAPTSIM_COUNTERS_FEATURE_VECTOR_HH
#define ADAPTSIM_COUNTERS_FEATURE_VECTOR_HH

#include <string>
#include <vector>

#include "counters/counter_bank.hh"

namespace adaptsim::counters
{

/** A named contiguous slice of the feature vector (for ablation). */
struct FeatureGroup
{
    std::string name;
    std::size_t begin;
    std::size_t end;   ///< one past the last index
};

/** Which counter set to assemble. */
enum class FeatureSet
{
    Basic,
    Advanced
};

/** Assemble the feature vector of the requested set. */
std::vector<double> assembleFeatures(const CounterBank &bank,
                                     FeatureSet set);

/** Dimension of the requested feature set. */
std::size_t featureDimension(FeatureSet set);

/** Group layout of the requested feature set. */
const std::vector<FeatureGroup> &featureGroups(FeatureSet set);

/** Human-readable set name ("basic"/"advanced"). */
const char *featureSetName(FeatureSet set);

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_FEATURE_VECTOR_HH
