file(REMOVE_RECURSE
  "CMakeFiles/test_wrong_path.dir/test_wrong_path.cc.o"
  "CMakeFiles/test_wrong_path.dir/test_wrong_path.cc.o.d"
  "test_wrong_path"
  "test_wrong_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrong_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
