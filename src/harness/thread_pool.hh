/**
 * @file
 * Minimal fixed-size thread pool with a blocking parallel-for, used
 * to spread independent simulations over cores.
 */

#ifndef ADAPTSIM_HARNESS_THREAD_POOL_HH
#define ADAPTSIM_HARNESS_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adaptsim::harness
{

/** Fixed pool executing parallelFor batches. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0/1 runs inline (no threads). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(0) … fn(n-1) across the pool; blocks until all done.
     * fn must be safe to call concurrently for distinct indices.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    unsigned numThreads() const { return threads_; }

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t jobSize_ = 0;
    std::atomic<std::size_t> nextIndex_{0};
    std::size_t remaining_ = 0;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
};

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_THREAD_POOL_HH
