#include "lint_engine.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adaptsim::lint
{

namespace
{

/** One physical source line after literal/comment separation. */
struct ScanLine
{
    std::string code;    ///< code with literal contents blanked
    std::string comment; ///< concatenated comment text on this line
};

bool
isIdent(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Split @p text into lines, routing comment text into .comment and
 * everything else into .code with string/char/raw-string literal
 * *contents* blanked out (the delimiting quotes stay, so token
 * boundaries are preserved).  Tokens inside literals or comments can
 * therefore never trip a rule.
 */
std::vector<ScanLine>
scan(const std::string &text)
{
    enum class St { Code, LineComment, BlockComment, Str, Chr, Raw };
    std::vector<ScanLine> lines(1);
    St st = St::Code;
    std::string rawDelim; // for Raw: the ")delim" closer
    bool escaped = false;

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n') {
            if (st == St::LineComment)
                st = St::Code;
            // Plain string/char literals cannot span lines; recover
            // rather than corrupt the rest of the file.
            if (st == St::Str || st == St::Chr)
                st = St::Code;
            escaped = false;
            lines.emplace_back();
            continue;
        }
        ScanLine &ln = lines.back();
        switch (st) {
          case St::Code:
            if (c == '/' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && i + 1 < text.size() &&
                       text[i + 1] == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
                // Raw string: R"delim( ... )delim"
                std::string delim;
                std::size_t j = i + 1;
                while (j < text.size() && text[j] != '(')
                    delim += text[j++];
                rawDelim = ")" + delim + "\"";
                st = St::Raw;
                ln.code += '"';
                i = j; // consume up to and including '('
            } else if (c == '"') {
                st = St::Str;
                ln.code += '"';
            } else if (c == '\'' && i > 0 &&
                       std::isalnum(
                           static_cast<unsigned char>(text[i - 1]))) {
                // C++14 digit separator (0x1000'0000), not a char
                // literal: an opening quote never directly follows
                // an alphanumeric character.
                ln.code += c;
            } else if (c == '\'') {
                st = St::Chr;
                ln.code += '\'';
            } else {
                ln.code += c;
            }
            break;
          case St::LineComment:
            ln.comment += c;
            break;
          case St::BlockComment:
            if (c == '*' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                st = St::Code;
                ++i;
            } else {
                ln.comment += c;
            }
            break;
          case St::Str:
          case St::Chr:
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if ((st == St::Str && c == '"') ||
                       (st == St::Chr && c == '\'')) {
                ln.code += c;
                st = St::Code;
            }
            break;
          case St::Raw:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                ln.code += '"';
                i += rawDelim.size() - 1;
                st = St::Code;
            }
            break;
        }
    }
    return lines;
}

/** True when @p tok occurs in @p s as a whole identifier. */
bool
hasToken(const std::string &s, const std::string &tok)
{
    std::size_t pos = 0;
    while ((pos = s.find(tok, pos)) != std::string::npos) {
        const bool pre = pos == 0 || !isIdent(s[pos - 1]);
        const std::size_t end = pos + tok.size();
        const bool post = end >= s.size() || !isIdent(s[end]);
        if (pre && post)
            return true;
        pos = end;
    }
    return false;
}

/** True when @p tok occurs as an identifier called like `tok(`. */
bool
hasCallToken(const std::string &s, const std::string &tok)
{
    std::size_t pos = 0;
    while ((pos = s.find(tok, pos)) != std::string::npos) {
        const bool pre = pos == 0 || !isIdent(s[pos - 1]);
        std::size_t end = pos + tok.size();
        if (pre && (end >= s.size() || !isIdent(s[end]))) {
            while (end < s.size() && s[end] == ' ')
                ++end;
            if (end < s.size() && s[end] == '(')
                return true;
        }
        pos = pos + tok.size();
    }
    return false;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Rules suppressed on this line via `lint:allow(a, b)`. */
std::vector<std::string>
allowedRules(const std::string &comment)
{
    std::vector<std::string> out;
    std::size_t pos = comment.find("lint:allow(");
    if (pos == std::string::npos)
        return out;
    pos += std::string("lint:allow(").size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos)
        return out;
    std::string inside = comment.substr(pos, close - pos);
    std::istringstream ss(inside);
    std::string rule;
    while (std::getline(ss, rule, ','))
        if (!trim(rule).empty())
            out.push_back(trim(rule));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** Path-derived rule applicability. */
struct FileClass
{
    bool header = false;             ///< .hh / .hpp
    bool deterministicScope = false; ///< simulation core dirs
    bool envExempt = false;          ///< the one sanctioned getenv site
    bool loggingExempt = false;      ///< the logging layer + this tool
    bool syncScope = false;          ///< src/** (annotated wrappers)
};

FileClass
classify(const std::string &path)
{
    FileClass fc;
    fc.header = path.ends_with(".hh") || path.ends_with(".hpp");
    fc.syncScope = startsWith(path, "src/");
    fc.deterministicScope = startsWith(path, "src/uarch/") ||
                            startsWith(path, "src/ml/") ||
                            startsWith(path, "src/workload/") ||
                            startsWith(path, "src/phase/") ||
                            startsWith(path, "src/sim/") ||
                            startsWith(path, "src/harness/") ||
                            startsWith(path, "src/control/") ||
                            startsWith(path, "src/svc/");
    fc.envExempt = path == "src/common/env.cc";
    fc.loggingExempt = path == "src/common/logging.hh" ||
                       startsWith(path, "tools/lint/");
    return fc;
}

/** Determinism: banned source-of-entropy tokens in the core. */
const struct { const char *token; bool call; const char *what; }
kDeterminismBans[] = {
    {"rand", true, "rand()"},
    {"srand", true, "srand()"},
    {"random_device", false, "std::random_device"},
    {"time", true, "wall-clock time()"},
    {"system_clock", false, "std::chrono::system_clock"},
    {"mt19937", false, "std::mt19937"},
    {"mt19937_64", false, "std::mt19937_64"},
};

/** True when ADAPTSIM_ appears at an identifier boundary — i.e. the
 *  line carries some thread-safety annotation macro. */
bool
hasAnnotationToken(const std::string &code)
{
    std::size_t pos = 0;
    while ((pos = code.find("ADAPTSIM_", pos)) != std::string::npos) {
        if (pos == 0 || !isIdent(code[pos - 1]))
            return true;
        pos += 1;
    }
    return false;
}

/** Raw synchronisation types that must come from common/sync.hh. */
const char *kRawSyncTypes[] = {
    "mutex",
    "shared_mutex",
    "condition_variable",
    "condition_variable_any",
};

/**
 * True when @p code declares a variable/member of a raw std:: sync
 * type: `std::<type>` at an identifier boundary with a declarator
 * (identifier start) as the next non-space character.  Template
 * arguments (`std::unique_lock<std::mutex>`) and references are
 * therefore never matched — only actual storage declarations.
 */
bool
declaresRawSync(const std::string &code, std::string &type)
{
    for (const char *t : kRawSyncTypes) {
        const std::string needle = std::string("std::") + t;
        std::size_t pos = 0;
        while ((pos = code.find(needle, pos)) != std::string::npos) {
            const bool pre =
                pos == 0 ||
                (!isIdent(code[pos - 1]) && code[pos - 1] != ':');
            std::size_t end = pos + needle.size();
            const bool post = end >= code.size() || !isIdent(code[end]);
            if (pre && post) {
                std::size_t j = end;
                while (j < code.size() &&
                       (code[j] == ' ' || code[j] == '\t'))
                    ++j;
                if (j < code.size() &&
                    (std::isalpha(
                         static_cast<unsigned char>(code[j])) ||
                     code[j] == '_')) {
                    type = needle;
                    return true;
                }
            }
            pos = end;
        }
    }
    return false;
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/**
 * condvar-predicate: flag member calls `recv.wait(single-arg)` /
 * `recv->wait(single-arg)` that look like condition-variable waits —
 * the receiver name smells like a condvar ("cv"/"cond") or the lone
 * argument smells like a lock ("lock"/"guard"/`lk`).  The predicate
 * overload takes two arguments and so never matches; unrelated
 * waits (`server.wait()`, `client.wait(id)`) don't either.
 * Argument lists may span lines.
 */
void
checkCondvarPredicate(const std::string &path,
                      const std::vector<ScanLine> &lines,
                      std::vector<Diagnostic> &out)
{
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &code = lines[li].code;
        std::size_t pos = 0;
        while ((pos = code.find("wait", pos)) != std::string::npos) {
            const std::size_t end = pos + 4;
            if ((end < code.size() && isIdent(code[end])) ||
                (pos > 0 && isIdent(code[pos - 1]))) {
                pos = end;
                continue;
            }
            // Must be a member call: receiver then `.` or `->`.
            std::size_t recvEnd; // one past the receiver's last char
            if (pos >= 1 && code[pos - 1] == '.')
                recvEnd = pos - 1;
            else if (pos >= 2 && code[pos - 2] == '-' &&
                     code[pos - 1] == '>')
                recvEnd = pos - 2;
            else {
                pos = end;
                continue;
            }
            std::size_t j = end;
            while (j < code.size() && code[j] == ' ')
                ++j;
            if (j >= code.size() || code[j] != '(') {
                pos = end;
                continue;
            }
            std::size_t recvBegin = recvEnd;
            while (recvBegin > 0 && isIdent(code[recvBegin - 1]))
                --recvBegin;
            const std::string recv =
                code.substr(recvBegin, recvEnd - recvBegin);

            // Collect the argument list, possibly across lines,
            // counting top-level commas.
            std::string args;
            int depth = 1;
            std::size_t commas = 0;
            bool closed = false;
            std::size_t ci = j + 1;
            for (std::size_t cli = li;
                 cli < lines.size() && !closed; ++cli, ci = 0) {
                const std::string &c2 = lines[cli].code;
                for (; ci < c2.size() && !closed; ++ci) {
                    const char ch = c2[ci];
                    if (ch == '(' || ch == '[' || ch == '{') {
                        ++depth;
                    } else if (ch == ')' || ch == ']' || ch == '}') {
                        if (--depth == 0) {
                            closed = true;
                            break;
                        }
                    } else if (ch == ',' && depth == 1) {
                        ++commas;
                    }
                    args += ch;
                }
                args += ' '; // line break separates tokens
            }

            const std::string argText = trim(args);
            if (closed && commas == 0 && !argText.empty()) {
                const std::string recvL = toLower(recv);
                const std::string argL = toLower(argText);
                const bool cvish =
                    recvL.find("cv") != std::string::npos ||
                    recvL.find("cond") != std::string::npos;
                const bool lockish =
                    argL.find("lock") != std::string::npos ||
                    argL.find("guard") != std::string::npos ||
                    hasToken(argText, "lk");
                if (cvish || lockish)
                    out.push_back(
                        {path, li + 1, "condvar-predicate",
                         "condition-variable wait without a "
                         "predicate is prone to lost and spurious "
                         "wakeups; use the predicate overload "
                         "(CondVar::wait(lock, pred))"});
            }
            pos = end;
        }
    }
}

void
checkHeaderGuard(const std::string &path,
                 const std::vector<ScanLine> &lines,
                 std::vector<Diagnostic> &out)
{
    // Find the first two non-blank *code* lines.
    std::size_t firstLn = 0;
    std::string first, second;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string t = trim(lines[i].code);
        if (t.empty())
            continue;
        if (first.empty()) {
            first = t;
            firstLn = i + 1;
        } else {
            second = t;
            break;
        }
    }
    if (first.empty())
        return; // nothing to protect in an empty header
    if (startsWith(first, "#pragma once"))
        return;
    if (startsWith(first, "#ifndef ")) {
        const std::string name = trim(first.substr(8));
        if (startsWith(second, "#define ") &&
            trim(second.substr(8)) == name)
            return;
        out.push_back({path, firstLn, "header-guard",
                       "#ifndef " + name +
                           " is not followed by #define " + name});
        return;
    }
    out.push_back({path, firstLn, "header-guard",
                   "header must start with #pragma once or an "
                   "#ifndef/#define include guard"});
}

void
checkUsingNamespace(const std::string &path,
                    const std::vector<ScanLine> &lines,
                    std::vector<Diagnostic> &out)
{
    // Brace stack: 'n' = namespace-like (namespace / extern block,
    // transparent scopes), 'o' = anything else (function, class,
    // initializer).  `using namespace` is flagged only when every
    // open brace is namespace-like, i.e. at namespace/global scope.
    std::vector<char> braces;
    std::string stmt; // statement text since the last ; { or }
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &code = lines[li].code;
        for (std::size_t i = 0; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '{') {
                const bool ns = hasToken(stmt, "namespace") ||
                                hasToken(stmt, "extern");
                braces.push_back(ns ? 'n' : 'o');
                stmt.clear();
            } else if (c == '}') {
                if (!braces.empty())
                    braces.pop_back();
                stmt.clear();
            } else if (c == ';') {
                stmt.clear();
            } else {
                stmt += c;
            }
            static const std::string kUsingNs = "using namespace";
            if (c == 'u' &&
                code.compare(i, kUsingNs.size(), kUsingNs) == 0 &&
                (i == 0 || !isIdent(code[i - 1])) &&
                (i + kUsingNs.size() >= code.size() ||
                 !isIdent(code[i + kUsingNs.size()]))) {
                const bool nsScope =
                    std::all_of(braces.begin(), braces.end(),
                                [](char b) { return b == 'n'; });
                if (nsScope)
                    out.push_back(
                        {path, li + 1, "header-using-namespace",
                         "`using namespace` at namespace scope in a "
                         "header leaks into every includer"});
            }
        }
        stmt += ' '; // line break separates tokens
    }
}

} // namespace

std::string
render(const Diagnostic &d)
{
    return d.file + ":" + std::to_string(d.line) + ": [" + d.rule +
           "] " + d.message;
}

namespace
{

/** Escape a workflow-command message (data part after ::). */
std::string
githubEscapeData(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '%')
            out += "%25";
        else if (c == '\r')
            out += "%0D";
        else if (c == '\n')
            out += "%0A";
        else
            out += c;
    }
    return out;
}

/** Escape a workflow-command property value (file=, title=). */
std::string
githubEscapeProp(const std::string &s)
{
    std::string out;
    for (const char c : githubEscapeData(s)) {
        if (c == ':')
            out += "%3A";
        else if (c == ',')
            out += "%2C";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
renderGithub(const Diagnostic &d)
{
    return "::error file=" + githubEscapeProp(d.file) +
           ",line=" + std::to_string(d.line) +
           ",title=" + githubEscapeProp(d.rule) +
           "::" + githubEscapeData("[" + d.rule + "] " + d.message);
}

const std::vector<RuleInfo> &
ruleCatalogue()
{
    static const std::vector<RuleInfo> rules = {
        {"determinism",
         "no rand()/srand()/std::random_device/time()/system_clock/"
         "std::mt19937 in the simulation core; randomness flows "
         "through common/rng"},
        {"env",
         "std::getenv only inside src/common/env.cc; everything else "
         "reads the environment through the common/env helpers"},
        {"logging",
         "no raw stderr writes outside common/logging.hh; use "
         "panic/fatal/warn/inform or lockedWrite"},
        {"header-guard",
         "every header starts with #pragma once or a matching "
         "#ifndef/#define pair"},
        {"header-using-namespace",
         "no `using namespace` at namespace scope in a header"},
        {"mutex-annotated",
         "no raw std::mutex/std::shared_mutex/std::condition_variable "
         "declarations under src/; use the annotated wrappers in "
         "common/sync.hh"},
        {"condvar-predicate",
         "condition-variable wait() must use the predicate overload"},
    };
    return rules;
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &text)
{
    const FileClass fc = classify(path);
    const std::vector<ScanLine> lines = scan(text);
    std::vector<Diagnostic> diags;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        const std::size_t ln = i + 1;
        if (fc.deterministicScope) {
            for (const auto &ban : kDeterminismBans) {
                const bool hit = ban.call
                                     ? hasCallToken(code, ban.token)
                                     : hasToken(code, ban.token);
                if (hit)
                    diags.push_back(
                        {path, ln, "determinism",
                         std::string(ban.what) +
                             " breaks bit-reproducible simulation; "
                             "all randomness/time must flow through "
                             "common/rng"});
            }
        }
        if (!fc.envExempt && hasToken(code, "getenv")) {
            diags.push_back(
                {path, ln, "env",
                 "raw getenv; read the environment through the "
                 "common/env helpers (src/common/env.cc is the only "
                 "sanctioned getenv site)"});
        }
        if (!fc.loggingExempt) {
            const bool cerrHit = hasToken(code, "cerr");
            const bool stderrWrite =
                hasToken(code, "stderr") &&
                (hasToken(code, "fprintf") ||
                 hasToken(code, "fputs") || hasToken(code, "fputc"));
            if (cerrHit || stderrWrite)
                diags.push_back(
                    {path, ln, "logging",
                     "raw stderr write; use panic/fatal/warn/inform "
                     "or lockedWrite from common/logging.hh"});
        }
        if (fc.syncScope) {
            std::string type;
            if (declaresRawSync(code, type) &&
                !hasAnnotationToken(code))
                diags.push_back(
                    {path, ln, "mutex-annotated",
                     "raw " + type +
                         " declaration; use the annotated wrappers "
                         "from common/sync.hh (Mutex / SharedMutex / "
                         "CondVar) so the clang thread-safety build "
                         "can see the lock"});
        }
    }

    checkCondvarPredicate(path, lines, diags);

    if (fc.header) {
        checkHeaderGuard(path, lines, diags);
        checkUsingNamespace(path, lines, diags);
    }

    // Apply same-line `lint:allow(rule)` suppressions.
    std::vector<Diagnostic> kept;
    for (auto &d : diags) {
        const auto allowed =
            d.line <= lines.size()
                ? allowedRules(lines[d.line - 1].comment)
                : std::vector<std::string>{};
        if (std::find(allowed.begin(), allowed.end(), d.rule) ==
            allowed.end())
            kept.push_back(std::move(d));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.line < b.line;
                     });
    return kept;
}

void
lintFileInto(const std::string &root, const std::string &rel,
             TreeResult &res)
{
    namespace fs = std::filesystem;
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
        res.errors.push_back("cannot read " + rel);
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ++res.filesScanned;
    auto diags = lintSource(rel, ss.str());
    res.diagnostics.insert(res.diagnostics.end(),
                           std::make_move_iterator(diags.begin()),
                           std::make_move_iterator(diags.end()));
}

TreeResult
lintTree(const std::string &root,
         const std::vector<std::string> &subdirs)
{
    namespace fs = std::filesystem;
    TreeResult res;
    std::vector<std::string> files;
    for (const std::string &sub : subdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::is_directory(dir))
            throw std::runtime_error("lint: no such directory: " +
                                     dir.string());
        for (const auto &ent :
             fs::recursive_directory_iterator(dir)) {
            if (!ent.is_regular_file())
                continue;
            const std::string ext = ent.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp" &&
                ext != ".hpp")
                continue;
            files.push_back(
                fs::relative(ent.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    for (const std::string &rel : files)
        lintFileInto(root, rel, res);
    return res;
}

} // namespace adaptsim::lint
