/**
 * @file
 * Microbenchmark: timing-simulator throughput (µops simulated per
 * second) for representative configurations and workloads.
 */

#include <benchmark/benchmark.h>

#include "harness/gather.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

void
simulatorThroughput(benchmark::State &state,
                    const std::string &program,
                    const space::Configuration &config)
{
    const auto wl = workload::specBenchmark(program, 400000);
    const auto warm = wl.generate(92000, 8000);
    const auto trace = wl.generate(100000, 6000);
    const auto cc = uarch::CoreConfig::fromConfiguration(config);

    for (auto _ : state) {
        workload::WrongPathGenerator wp(wl.averageParams(),
                                        wl.seed() ^ 0x57a71cULL);
        uarch::Core core(cc, wp);
        core.warm(warm);
        auto result = core.run(trace);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations()) *
        std::int64_t(warm.size() + trace.size()));
}

void
BM_Sim_EonBaseline(benchmark::State &state)
{
    simulatorThroughput(state, "eon",
                        harness::paperBaselineConfig());
}

void
BM_Sim_McfBaseline(benchmark::State &state)
{
    simulatorThroughput(state, "mcf",
                        harness::paperBaselineConfig());
}

void
BM_Sim_EonProfiling(benchmark::State &state)
{
    simulatorThroughput(state, "eon",
                        space::Configuration::profiling());
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto wl = workload::specBenchmark("gcc", 400000);
    for (auto _ : state) {
        auto trace = wl.generate(100000, 6000);
        benchmark::DoNotOptimize(trace.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 6000);
}

} // namespace

BENCHMARK(BM_Sim_EonBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sim_McfBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sim_EonProfiling)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);
