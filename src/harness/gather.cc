#include "harness/gather.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "common/env.hh"
#include "common/logging.hh"
#include "harness/gather_scheduler.hh"
#include "obs/obs.hh"
#include "sim/perf_model.hh"
#include "space/sampling.hh"
#include "svc/client.hh"

namespace adaptsim::harness
{

namespace
{

/**
 * Evaluate a batch through the ADAPTSIM_EVAL_SOCKET daemon when the
 * env opts in, falling back to the in-process repository otherwise
 * (connection failure warns once and falls back for the process).
 * Requests are pipelined so the daemon coalesces the whole batch.
 */
std::vector<EvalRecord>
evaluateBatchVia(EvalRepository &repo, const PhaseSpec &spec,
                 const std::vector<space::Configuration> &configs,
                 const sim::PerfModel *backend,
                 std::size_t refine_budget = ~std::size_t(0))
{
    const std::string socket_path = adaptsim::evalSocketPath();
    if (socket_path.empty())
        return repo.evaluateBatch(spec, configs, backend,
                                  refine_budget);

    // One connection per process; gather is single-threaded at this
    // level (the parallelism lives server-side).
    static std::unique_ptr<svc::EvalClient> client =
        svc::EvalClient::connect(socket_path);
    static bool warned = false;
    if (!client || client->broken()) {
        if (!warned) {
            warned = true;
            warn("gather: evaluation service at ", socket_path,
                 " unavailable; using the in-process repository");
        }
        return repo.evaluateBatch(spec, configs, backend,
                                  refine_budget);
    }

    const std::string backend_name = backend ? backend->name() : "";

    // Sliding window: never more than the per-client in-flight cap
    // unresolved at once, so the daemon's admission control is not
    // tripped by our own pipelining.  Both sides read the same
    // ADAPTSIM_SVC_CLIENT_CAP knob, so the defaults compose; a
    // daemon running a smaller cap sheds the excess with typed
    // errors and the fallback below still completes the gather.
    const std::size_t window =
        std::max<std::size_t>(1, adaptsim::svcClientCap());
    std::vector<std::uint64_t> ids(configs.size(), 0);
    std::vector<EvalRecord> out(configs.size());
    std::size_t submitted = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        while (submitted < configs.size() &&
               submitted < i + window) {
            ids[submitted] = client->submit(spec, configs[submitted],
                                            backend_name);
            ++submitted;
        }
        svc::EvalResult r;
        if (ids[i] != 0)
            r = client->wait(ids[i]);
        if (r.ok) {
            out[i] = r.record;
            continue;
        }
        // A shed or failed request falls back to local evaluation;
        // the gather must always complete.  Warn once, not once per
        // shed request (a big gather pipelines thousands).
        static bool warned_failure = false;
        if (!warned_failure) {
            warned_failure = true;
            warn("gather: service request failed (",
                 svc::errorCodeName(r.error), "): ", r.errorMessage,
                 "; evaluating locally (further fallbacks are "
                 "silent)");
        }
        out[i] = repo.evaluate(spec, configs[i], backend);
    }
    return out;
}

/** Compact wall-time rendering for progress lines. */
std::string
prettySeconds(double s)
{
    char buf[32];
    if (s < 90.0)
        std::snprintf(buf, sizeof(buf), "%.1fs", s);
    else
        std::snprintf(buf, sizeof(buf), "%lum%02lus",
                      static_cast<unsigned long>(s / 60.0),
                      static_cast<unsigned long>(std::fmod(s, 60.0)));
    return buf;
}

/** Gather evals + profiling features for one phase (Sec. V-C). */
GatheredPhase
gatherOnePhase(EvalRepository &repo,
               const std::vector<space::Configuration> &shared,
               const phase::Phase &ph,
               std::uint64_t program_length,
               std::uint64_t warm_length,
               const GatherOptions &options)
{
    GatheredPhase g;
    g.phase = ph;
    g.spec = PhaseSpec{ph.workload, program_length,
                       ph.startInst, warm_length,
                       ph.lengthInsts};

    // 1. Shared uniform sample.
    auto evals =
        evaluateBatchVia(repo, g.spec, shared, options.backend);
    auto record = [&](const space::Configuration &cfg,
                      const EvalRecord &r) {
        g.evals.push_back(ml::ConfigEval{cfg, r.efficiency});
    };
    for (std::size_t i = 0; i < shared.size(); ++i)
        record(shared[i], evals[i]);

    auto best_of = [&]() {
        const ml::ConfigEval *best = &g.evals.front();
        for (const auto &e : g.evals) {
            if (e.efficiency > best->efficiency)
                best = &e;
        }
        return best->config;
    };

    // 2. Local neighbourhood of the best point found so far.
    if (options.localNeighbours > 0) {
        Rng rng(options.seed ^
                (std::hash<std::string>{}(ph.workload) +
                 ph.index * 0x9e37ULL));
        const auto neighbours = space::localNeighbours(
            rng, best_of(), options.localNeighbours);
        const auto n_evals = evaluateBatchVia(
            repo, g.spec, neighbours, options.backend);
        for (std::size_t i = 0; i < neighbours.size(); ++i)
            record(neighbours[i], n_evals[i]);
    }

    // 3. One-at-a-time sweep around the refined best.
    if (options.oneAtATimeSweep) {
        const auto sweep = space::oneAtATimeSweep(best_of());
        const auto s_evals =
            evaluateBatchVia(repo, g.spec, sweep, options.backend);
        for (std::size_t i = 0; i < sweep.size(); ++i)
            record(sweep[i], s_evals[i]);
    }

    // 4. Profiling-configuration counters.
    if (options.profileFeatures)
        g.features = repo.profile(g.spec, options.backend);
    return g;
}

bool
memoActive(const GatherOptions &options)
{
    switch (options.memo) {
    case GatherOptions::MemoMode::On:
        return true;
    case GatherOptions::MemoMode::Off:
        return false;
    case GatherOptions::MemoMode::Env:
        break;
    }
    return adaptsim::gatherMemoEnabled();
}

/** The phase's classification signature when already computed by
 *  SimPoint extraction; nullptr for hand-made phases (which then
 *  classify as novel and take the full path). */
const phase::Bbv *
readySignature(const phase::Phase &ph)
{
    return ph.signature.opCount() > 0 ? &ph.signature : nullptr;
}

/** Replace-or-append @p eff for @p cfg in @p evals: reused memo
 *  samples and fresh probe/sweep measurements never duplicate a
 *  configuration, and re-probing an exact-spec recurrence leaves
 *  the eval list identical to the original characterisation. */
void
upsertEval(std::vector<ml::ConfigEval> &evals,
           const space::Configuration &cfg, double eff)
{
    const std::uint64_t code = cfg.encode();
    for (auto &e : evals) {
        if (e.config.encode() == code) {
            e.efficiency = eff;
            return;
        }
    }
    evals.push_back(ml::ConfigEval{cfg, eff});
}

/**
 * Satisfy a recognised phase from its memo entry: reuse the recorded
 * neighbourhood, re-measure the entry's top configuration(s) on this
 * interval, and spend fresh simulation only on the one-at-a-time
 * sweep around the incumbent best.  Returns nullopt when the probe
 * says the memo cannot be trusted here — uncertainty above the
 * escalation bound or efficiency drift beyond the tolerance — and
 * the caller re-characterises in full.
 */
std::optional<GatheredPhase>
gatherFromMemo(EvalRepository &repo, GatherScheduler &sched,
               const GatherScheduler::Lookup &hit,
               const phase::Phase &ph, const PhaseSpec &spec,
               const GatherOptions &options)
{
    const GatherScheduler::Memo &memo = hit.memo;
    if (memo.evals.empty())
        return std::nullopt;

    // Probe the entry's best configurations on THIS interval.
    std::vector<std::pair<std::uint64_t, double>> ranked =
        memo.evals;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    const std::size_t n_probe =
        std::min(sched.options().probes, ranked.size());
    std::vector<ml::ConfigEval> probed;
    double worst_drift = 0.0;
    double worst_uncertainty = 0.0;
    for (std::size_t i = 0; i < n_probe; ++i) {
        const auto cfg = space::Configuration::decode(ranked[i].first);
        const auto probe =
            repo.evaluateProbe(spec, cfg, options.backend);
        worst_uncertainty =
            std::max(worst_uncertainty, probe.uncertainty);
        const double expect = ranked[i].second;
        const double drift =
            std::abs(probe.record.efficiency - expect) /
            std::max(std::abs(expect), 1e-12);
        worst_drift = std::max(worst_drift, drift);
        probed.push_back(
            ml::ConfigEval{cfg, probe.record.efficiency});
    }

    const double tol = sched.options().tolerance;
    const double ubound = sched.options().uncertaintyThreshold;
    if (tol < 0.0 || worst_drift > tol || ubound < 0.0 ||
        worst_uncertainty > ubound)
        return std::nullopt;

    GatheredPhase g;
    g.phase = ph;
    g.spec = spec;
    g.evals.reserve(memo.evals.size() + probed.size());
    for (const auto &[code, eff] : memo.evals) {
        g.evals.push_back(ml::ConfigEval{
            space::Configuration::decode(code), eff});
    }
    for (const auto &p : probed)
        upsertEval(g.evals, p.config, p.efficiency);

    // One-at-a-time sweep around the incumbent best — the only
    // batch simulation a recognised phase pays for.  The memo is
    // already trusted here, so ground-truth refinement is capped at
    // a single point.
    if (options.oneAtATimeSweep) {
        const ml::ConfigEval *best = &g.evals.front();
        for (const auto &e : g.evals) {
            if (e.efficiency > best->efficiency)
                best = &e;
        }
        const auto sweep = space::oneAtATimeSweep(best->config);
        const auto s_evals = evaluateBatchVia(
            repo, spec, sweep, options.backend, 1);
        for (std::size_t i = 0; i < sweep.size(); ++i)
            upsertEval(g.evals, sweep[i], s_evals[i].efficiency);
    }

    // The profiling counters transfer with the phase signature; a
    // recognised phase skips the counter run entirely.
    g.features = memo.features;
    return g;
}

} // namespace

ml::PhaseData
GatheredPhase::toPhaseData(counters::FeatureSet set) const
{
    ml::PhaseData data;
    data.workload = phase.workload;
    data.phaseIndex = phase.index;
    data.weight = phase.weight;
    data.features = set == counters::FeatureSet::Advanced ?
        features.advanced : features.basic;
    data.evals = evals;
    return data;
}

space::Configuration
paperBaselineConfig()
{
    // Table III.
    return space::Configuration::fromValues(
        {4, 144, 48, 32, 160, 4, 1, 16384, 1024, 24,
         64 * 1024, 32 * 1024, 1024 * 1024, 12});
}

std::vector<space::Configuration>
sharedConfigPool(const GatherOptions &options)
{
    Rng rng(options.seed);
    auto pool =
        space::uniformRandomSet(rng, options.sharedRandomConfigs);
    // The paper's Table III baseline is always part of the pool so
    // the best-static search has the classic candidate available.
    pool.push_back(paperBaselineConfig());
    return space::dedupe(std::move(pool));
}

std::vector<GatheredPhase>
gatherTrainingData(EvalRepository &repo,
                   const std::vector<phase::Phase> &phases,
                   std::uint64_t program_length,
                   std::uint64_t warm_length,
                   const GatherOptions &options)
{
    const auto shared = sharedConfigPool(options);
    const bool memo_on = memoActive(options);

    // Per-call scheduler over the repository's index unless the
    // caller shares one across gathers.  With memoisation off no
    // scheduler exists at all: the gather below is the pre-memo
    // code path, bit for bit, and the index file is never touched.
    std::unique_ptr<GatherScheduler> own_scheduler;
    GatherScheduler *sched = nullptr;
    if (memo_on) {
        sched = options.scheduler;
        if (!sched) {
            own_scheduler = std::make_unique<GatherScheduler>(
                GatherScheduler::indexPathFor(repo));
            sched = own_scheduler.get();
        }
    }

    std::vector<GatheredPhase> out;
    out.reserve(phases.size());

    // Per-run per-class timing for the ETA: recognised phases cost
    // orders of magnitude less than novel ones, so one uniform
    // per-phase mean (the old estimator — worse, a process-wide
    // histogram mean polluted by earlier gathers) over-predicts a
    // warm gather by the miss/hit cost ratio.
    double hit_seconds = 0.0, miss_seconds = 0.0;
    std::size_t hit_count = 0, miss_count = 0;

    const auto gather_t0 = std::chrono::steady_clock::now();
    for (const auto &ph : phases) {
        const auto phase_t0 = std::chrono::steady_clock::now();
        bool was_hit = false;
        {
            OBS_SPAN("gather/phase");
            const PhaseSpec spec{ph.workload, program_length,
                                 ph.startInst, warm_length,
                                 ph.lengthInsts};
            const phase::Bbv *sig =
                sched ? readySignature(ph) : nullptr;
            std::optional<GatheredPhase> g;
            bool recognised = false;
            if (sig) {
                if (const auto hit = sched->lookup(spec, *sig)) {
                    recognised = true;
                    g = gatherFromMemo(repo, *sched, *hit, ph, spec,
                                       options);
                    if (g) {
                        was_hit = true;
                        sched->noteHit(hit->memo.evals.size());
                    } else {
                        sched->noteEscalation();
                    }
                }
            }
            if (!g) {
                if (sig && !recognised)
                    sched->noteMiss();
                g = gatherOnePhase(repo, shared, ph, program_length,
                                   warm_length, options);
                if (sig)
                    sched->record(spec, *sig, *g);
            }
            out.push_back(std::move(*g));
            // Phase boundaries are durable checkpoints: everything
            // buffered by the incremental flusher is committed here.
            repo.flush();
        }

        const double phase_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - phase_t0)
                .count();
        if (was_hit) {
            hit_seconds += phase_seconds;
            ++hit_count;
        } else {
            miss_seconds += phase_seconds;
            ++miss_count;
        }

        if (options.progress) {
            const std::size_t done = out.size();
            const std::size_t step =
                std::max<std::size_t>(1, phases.size() / 20);
            if (done % step == 0 || done == phases.size()) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        gather_t0)
                        .count();
                // Two-class ETA: pre-classify the remaining phases
                // against the memo index and cost each class at this
                // run's own observed mean.
                std::size_t rem_hits = 0;
                if (sched) {
                    for (std::size_t j = done; j < phases.size();
                         ++j) {
                        const auto &rem = phases[j];
                        const phase::Bbv *rsig = readySignature(rem);
                        if (!rsig)
                            continue;
                        const PhaseSpec rspec{
                            rem.workload, program_length,
                            rem.startInst, warm_length,
                            rem.lengthInsts};
                        if (sched->wouldHit(rspec, *rsig))
                            ++rem_hits;
                    }
                }
                const std::size_t rem_misses =
                    phases.size() - done - rem_hits;
                const double mean_miss =
                    miss_count > 0 ? miss_seconds / double(miss_count)
                                   : elapsed / double(done);
                const double mean_hit =
                    hit_count > 0 ? hit_seconds / double(hit_count)
                                  : 0.0;
                const double eta = double(rem_misses) * mean_miss +
                                   double(rem_hits) * mean_hit;
                if (sched) {
                    const auto ms = sched->stats();
                    inform("gather: ", done, "/", phases.size(),
                           " phases (", repo.statsSummary(),
                           "), memo ", ms.hits, " hit/", ms.misses,
                           " miss/", ms.escalations,
                           " escalated, elapsed ",
                           prettySeconds(elapsed), ", eta ",
                           prettySeconds(eta));
                } else {
                    inform("gather: ", done, "/", phases.size(),
                           " phases (", repo.statsSummary(),
                           "), elapsed ", prettySeconds(elapsed),
                           ", eta ", prettySeconds(eta));
                }
            }
        }
    }
    if (sched)
        sched->save();
    return out;
}

} // namespace adaptsim::harness
