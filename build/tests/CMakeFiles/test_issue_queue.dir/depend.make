# Empty dependencies file for test_issue_queue.
# This may be replaced when dependencies are built.
