# Empty compiler generated dependencies file for test_trace_cache.
# This may be replaced when dependencies are built.
