#include "space/sampling.hh"

#include <algorithm>
#include <unordered_set>

namespace adaptsim::space
{

Configuration
uniformRandom(Rng &rng)
{
    const auto &ds = DesignSpace::the();
    Configuration cfg;
    for (auto p : allParams()) {
        cfg.setIndex(p, static_cast<std::uint8_t>(
            rng.nextBounded(ds.numValues(p))));
    }
    return cfg;
}

std::vector<Configuration>
uniformRandomSet(Rng &rng, std::size_t count)
{
    std::vector<Configuration> out;
    std::unordered_set<std::uint64_t> seen;
    out.reserve(count);
    // The space has 627bn points; duplicates are vanishingly rare, but
    // we guard anyway so callers get exactly `count` distinct configs.
    while (out.size() < count) {
        Configuration cfg = uniformRandom(rng);
        if (seen.insert(cfg.encode()).second)
            out.push_back(cfg);
    }
    return out;
}

std::vector<Configuration>
localNeighbours(Rng &rng, const Configuration &centre, std::size_t count,
                int radius)
{
    const auto &ds = DesignSpace::the();
    std::vector<Configuration> out;
    std::unordered_set<std::uint64_t> seen{centre.encode()};
    out.reserve(count);

    std::size_t attempts = 0;
    const std::size_t max_attempts = count * 64 + 256;
    while (out.size() < count && attempts++ < max_attempts) {
        Configuration cfg = centre;
        // Perturb between 1 and 3 parameters.
        const std::size_t moves = 1 + rng.nextBounded(3);
        for (std::size_t m = 0; m < moves; ++m) {
            const auto p = static_cast<Param>(
                rng.nextBounded(numParams));
            const int num_vals =
                static_cast<int>(ds.numValues(p));
            int idx = static_cast<int>(cfg.index(p));
            int delta = 0;
            while (delta == 0)
                delta = static_cast<int>(
                    rng.nextRange(-radius, radius));
            idx = std::clamp(idx + delta, 0, num_vals - 1);
            cfg.setIndex(p, static_cast<std::uint8_t>(idx));
        }
        if (seen.insert(cfg.encode()).second)
            out.push_back(cfg);
    }
    return out;
}

std::vector<Configuration>
oneAtATimeSweep(const Configuration &centre)
{
    const auto &ds = DesignSpace::the();
    std::vector<Configuration> out;
    for (auto p : allParams()) {
        for (std::size_t i = 0; i < ds.numValues(p); ++i) {
            if (i == centre.index(p))
                continue;
            Configuration cfg = centre;
            cfg.setIndex(p, static_cast<std::uint8_t>(i));
            out.push_back(cfg);
        }
    }
    return out;
}

std::vector<Configuration>
parameterSweep(const Configuration &centre, Param p)
{
    const auto &ds = DesignSpace::the();
    std::vector<Configuration> out;
    out.reserve(ds.numValues(p));
    for (std::size_t i = 0; i < ds.numValues(p); ++i) {
        Configuration cfg = centre;
        cfg.setIndex(p, static_cast<std::uint8_t>(i));
        out.push_back(cfg);
    }
    return out;
}

std::vector<Configuration>
dedupe(std::vector<Configuration> configs)
{
    std::unordered_set<std::uint64_t> seen;
    std::vector<Configuration> out;
    out.reserve(configs.size());
    for (const auto &cfg : configs) {
        if (seen.insert(cfg.encode()).second)
            out.push_back(cfg);
    }
    return out;
}

} // namespace adaptsim::space
