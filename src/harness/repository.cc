#include "harness/repository.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "power/metrics.hh"
#include "uarch/core.hh"

namespace adaptsim::harness
{

namespace fs = std::filesystem;

std::string
PhaseSpec::key() const
{
    std::ostringstream os;
    os << workload << "_L" << programLength << "_s" << startInst
       << "_w" << warmLength << "_d" << detailLength;
    return os.str();
}

EvalRepository::EvalRepository(std::vector<workload::Workload> suite,
                               std::string data_dir, unsigned threads)
    : suite_(std::move(suite)), dataDir_(std::move(data_dir)),
      pool_(threads)
{
    std::error_code ec;
    fs::create_directories(dataDir_, ec);
    if (ec)
        fatal("cannot create data directory ", dataDir_, ": ",
              ec.message());
}

EvalRepository::~EvalRepository()
{
    flush();
}

const workload::Workload &
EvalRepository::workload(const std::string &name) const
{
    for (const auto &wl : suite_) {
        if (wl.name() == name)
            return wl;
    }
    fatal("unknown workload in repository: ", name);
}

std::string
EvalRepository::cachePath(const PhaseSpec &spec) const
{
    return dataDir_ + "/" + spec.key() + ".csv";
}

std::string
EvalRepository::profilePath(const PhaseSpec &spec) const
{
    return dataDir_ + "/" + spec.key() + ".features";
}

void
EvalRepository::loadCache(const PhaseSpec &spec, PhaseCache &cache)
{
    cache.loaded = true;
    std::ifstream in(cachePath(spec));
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::uint64_t code;
        EvalRecord r;
        char comma;
        if (ls >> code >> comma >> r.cycles >> comma >>
            r.instructions >> comma >> r.seconds >> comma >>
            r.joules >> comma >> r.ipc >> comma >> r.watts >>
            comma >> r.efficiency) {
            cache.records[code] = r;
        }
    }
}

EvalRepository::PhaseCache &
EvalRepository::cacheFor(const PhaseSpec &spec)
{
    auto &cache = caches_[spec.key()];
    if (!cache.loaded)
        loadCache(spec, cache);
    return cache;
}

EvalRecord
EvalRepository::simulate(const PhaseSpec &spec,
                         const space::Configuration &config)
{
    const auto &wl = workload(spec.workload);
    // Each simulation gets its own wrong-path stream (the generator
    // is stateful); seeding is canonical so results are reproducible.
    workload::WrongPathGenerator wrong_path(wl.averageParams(),
                                            wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(config);
    uarch::Core core(cc, wrong_path);

    const std::uint64_t warm_start =
        spec.startInst >= spec.warmLength ?
            spec.startInst - spec.warmLength :
            0;
    if (spec.warmLength > 0) {
        const auto warm = wl.generate(warm_start, spec.warmLength);
        core.warm(warm);
    }
    const auto trace =
        wl.generate(spec.startInst, spec.detailLength);
    const auto result = core.run(trace);
    const auto m = power::computeMetrics(cc, result.events);

    EvalRecord r;
    r.cycles = m.cycles;
    r.instructions = m.instructions;
    r.seconds = m.seconds;
    r.joules = m.joules;
    r.ipc = m.ipc;
    r.watts = m.watts;
    r.efficiency = m.efficiency;
    return r;
}

EvalRecord
EvalRepository::evaluate(const PhaseSpec &spec,
                         const space::Configuration &config)
{
    const std::uint64_t code = config.encode();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &cache = cacheFor(spec);
        const auto it = cache.records.find(code);
        if (it != cache.records.end()) {
            ++hits_;
            return it->second;
        }
    }

    const EvalRecord r = simulate(spec, config);

    std::lock_guard<std::mutex> lock(mutex_);
    auto &cache = cacheFor(spec);
    cache.records[code] = r;
    cache.unsaved.emplace_back(code, r);
    ++simulated_;
    return r;
}

std::vector<EvalRecord>
EvalRepository::evaluateBatch(
    const PhaseSpec &spec,
    const std::vector<space::Configuration> &configs)
{
    std::vector<EvalRecord> out(configs.size());
    pool_.parallelFor(configs.size(), [&](std::size_t i) {
        out[i] = evaluate(spec, configs[i]);
    });
    return out;
}

ProfileRecord
EvalRepository::profile(const PhaseSpec &spec)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = profiles_.find(spec.key());
        if (it != profiles_.end())
            return it->second;
    }

    // Try the disk cache.
    {
        std::ifstream in(profilePath(spec));
        if (in) {
            ProfileRecord rec;
            auto read_line = [&](std::vector<double> &v) {
                std::string line;
                if (!std::getline(in, line))
                    return false;
                std::istringstream ls(line);
                double x;
                while (ls >> x)
                    v.push_back(x);
                return !v.empty();
            };
            if (read_line(rec.basic) && read_line(rec.advanced)) {
                std::lock_guard<std::mutex> lock(mutex_);
                profiles_[spec.key()] = rec;
                return rec;
            }
        }
    }

    // Run the profiling configuration with the counter bank.
    const auto &wl = workload(spec.workload);
    workload::WrongPathGenerator wrong_path(wl.averageParams(),
                                            wl.seed() ^ 0x57a71cULL);
    const auto profiling = space::Configuration::profiling();
    const auto cc = uarch::CoreConfig::fromConfiguration(profiling);
    uarch::Core core(cc, wrong_path);

    const std::uint64_t warm_start =
        spec.startInst >= spec.warmLength ?
            spec.startInst - spec.warmLength :
            0;
    if (spec.warmLength > 0)
        core.warm(wl.generate(warm_start, spec.warmLength));

    counters::CounterBank bank(cc);
    const auto trace =
        wl.generate(spec.startInst, spec.detailLength);
    const auto result = core.run(trace, &bank);
    bank.finalise(result.events);

    ProfileRecord rec;
    rec.basic = counters::assembleFeatures(
        bank, counters::FeatureSet::Basic);
    rec.advanced = counters::assembleFeatures(
        bank, counters::FeatureSet::Advanced);

    // Persist.
    {
        std::ofstream out(profilePath(spec));
        if (out) {
            out.precision(10);
            for (double v : rec.basic)
                out << v << ' ';
            out << '\n';
            for (double v : rec.advanced)
                out << v << ' ';
            out << '\n';
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    profiles_[spec.key()] = rec;
    ++simulated_;
    return rec;
}

void
EvalRepository::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, cache] : caches_) {
        if (cache.unsaved.empty())
            continue;
        std::ofstream out(dataDir_ + "/" + key + ".csv",
                          std::ios::app);
        if (!out) {
            warn("cannot persist cache for ", key);
            continue;
        }
        out.precision(12);
        for (const auto &[code, r] : cache.unsaved) {
            out << code << ',' << r.cycles << ',' << r.instructions
                << ',' << r.seconds << ',' << r.joules << ','
                << r.ipc << ',' << r.watts << ',' << r.efficiency
                << '\n';
        }
        cache.unsaved.clear();
    }
}

} // namespace adaptsim::harness
