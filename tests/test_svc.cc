/**
 * @file
 * Evaluation-service tests: protocol round trips and malformed-input
 * fuzzing (truncations, bit flips, bad version/type bytes, oversized
 * length prefixes — always a typed error, never a crash), the
 * end-to-end daemon path over a real Unix socket (hit/miss tagging,
 * bit-identical records, typed validation errors, admission
 * control), and a multi-threaded client storm exercising the
 * batching and locking under TSan.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.hh"
#include "common/serial.hh"
#include "harness/repository.hh"
#include "sim/perf_model.hh"
#include "space/sampling.hh"
#include "svc/client.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::svc;

namespace
{

constexpr std::uint64_t kProgramLength = 200000;

harness::PhaseSpec
testSpec()
{
    return harness::PhaseSpec{"gzip", kProgramLength, 60000, 2000,
                              1500};
}

EvalRequestMsg
testRequest(std::uint64_t id = 7)
{
    EvalRequestMsg req;
    req.id = id;
    req.spec = testSpec();
    req.configCode = space::Configuration().encode();
    req.backend = "cycle";
    return req;
}

/** Payload bytes of a frame (strip the u32 length prefix). */
std::string
payloadOf(const std::string &frame)
{
    return frame.substr(4);
}

class SvcProtocolTest : public ::testing::Test
{
};

TEST_F(SvcProtocolTest, RequestRoundTrip)
{
    const EvalRequestMsg req = testRequest(42);
    Message out;
    ASSERT_EQ(decodePayload(payloadOf(encodeFrame(req)), out),
              ErrorCode::None);
    ASSERT_EQ(out.type, MsgType::EvalRequest);
    EXPECT_EQ(out.request.id, 42u);
    EXPECT_EQ(out.request.spec.workload, "gzip");
    EXPECT_EQ(out.request.spec.programLength, kProgramLength);
    EXPECT_EQ(out.request.spec.startInst, 60000u);
    EXPECT_EQ(out.request.spec.warmLength, 2000u);
    EXPECT_EQ(out.request.spec.detailLength, 1500u);
    EXPECT_EQ(out.request.configCode, req.configCode);
    EXPECT_EQ(out.request.backend, "cycle");
}

TEST_F(SvcProtocolTest, ReplyRoundTripBitExact)
{
    EvalReplyMsg reply;
    reply.id = 9;
    reply.record.cycles = 12345.5;
    reply.record.instructions = 6789.0;
    reply.record.seconds = 1.25e-3;
    reply.record.joules = 0.062;
    reply.record.ipc = 0.55;
    reply.record.watts = 49.6;
    reply.record.efficiency = 1.7e27;
    reply.producer = "interval";
    reply.cacheHit = true;

    Message out;
    ASSERT_EQ(decodePayload(payloadOf(encodeFrame(reply)), out),
              ErrorCode::None);
    ASSERT_EQ(out.type, MsgType::EvalReply);
    EXPECT_EQ(out.reply.id, 9u);
    EXPECT_EQ(std::memcmp(&out.reply.record, &reply.record,
                          sizeof(reply.record)),
              0);
    EXPECT_EQ(out.reply.producer, "interval");
    EXPECT_TRUE(out.reply.cacheHit);
}

TEST_F(SvcProtocolTest, ErrorRoundTrip)
{
    ErrorMsg err;
    err.id = 3;
    err.code = ErrorCode::Overloaded;
    err.message = "request queue full";
    Message out;
    ASSERT_EQ(decodePayload(payloadOf(encodeFrame(err)), out),
              ErrorCode::None);
    ASSERT_EQ(out.type, MsgType::Error);
    EXPECT_EQ(out.error.id, 3u);
    EXPECT_EQ(out.error.code, ErrorCode::Overloaded);
    EXPECT_EQ(out.error.message, "request queue full");
}

TEST_F(SvcProtocolTest, EveryTruncationIsTypedNotACrash)
{
    const std::string payload = payloadOf(encodeFrame(testRequest()));
    for (std::size_t len = 0; len < payload.size(); ++len) {
        Message out;
        EXPECT_EQ(decodePayload(payload.substr(0, len), out),
                  ErrorCode::BadFrame)
            << "truncation at " << len;
    }
}

TEST_F(SvcProtocolTest, EveryBitFlipIsTypedNotACrash)
{
    const std::string payload = payloadOf(encodeFrame(testRequest()));
    for (std::size_t i = 0; i < payload.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = payload;
            bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
            Message out;
            // The checksum catches every flip; the only question is
            // which typed reason comes back.  Never a crash.
            EXPECT_NE(decodePayload(bad, out), ErrorCode::None)
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST_F(SvcProtocolTest, WrongVersionByte)
{
    // Rebuild a payload with a bad version but a valid checksum.
    std::string p;
    p.push_back(char(99));
    p.push_back(char(MsgType::EvalRequest));
    putU64(p, fnv1a64(p.data(), p.size()));
    Message out;
    EXPECT_EQ(decodePayload(p, out), ErrorCode::BadVersion);
}

TEST_F(SvcProtocolTest, UnknownTypeByte)
{
    std::string p;
    p.push_back(char(kProtocolVersion));
    p.push_back(char(77));
    putU64(p, fnv1a64(p.data(), p.size()));
    Message out;
    EXPECT_EQ(decodePayload(p, out), ErrorCode::BadType);
}

TEST_F(SvcProtocolTest, GarbageBodyWithValidChecksumIsBadFrame)
{
    // A "request" whose string length prefix points past the body.
    std::string p;
    p.push_back(char(kProtocolVersion));
    p.push_back(char(MsgType::EvalRequest));
    putU64(p, 1);                  // id
    putU32(p, 0xffffffffu);        // workload length: way out
    putU64(p, fnv1a64(p.data(), p.size()));
    Message out;
    EXPECT_EQ(decodePayload(p, out), ErrorCode::BadFrame);
}

TEST_F(SvcProtocolTest, FrameBufferReassemblesByteByByte)
{
    const std::string f1 = encodeFrame(testRequest(1));
    const std::string f2 = encodeFrame(testRequest(2));
    const std::string stream = f1 + f2;

    FrameBuffer buf;
    std::vector<std::string> payloads;
    for (char c : stream) {
        buf.append(&c, 1);
        std::string out;
        while (buf.next(out) == FrameBuffer::Result::Frame)
            payloads.push_back(out);
    }
    ASSERT_EQ(payloads.size(), 2u);
    Message m1, m2;
    ASSERT_EQ(decodePayload(payloads[0], m1), ErrorCode::None);
    ASSERT_EQ(decodePayload(payloads[1], m2), ErrorCode::None);
    EXPECT_EQ(m1.request.id, 1u);
    EXPECT_EQ(m2.request.id, 2u);
    EXPECT_EQ(buf.pending(), 0u);
}

TEST_F(SvcProtocolTest, OversizedLengthPoisonsTheBuffer)
{
    std::string bytes;
    putU32(bytes, kMaxFrameBytes + 1);
    bytes += "whatever";
    FrameBuffer buf;
    buf.append(bytes.data(), bytes.size());
    std::string out;
    EXPECT_EQ(buf.next(out), FrameBuffer::Result::Oversized);
    // Poisoned for good: even appending a valid frame cannot recover
    // the stream's byte boundary.
    const std::string good = encodeFrame(testRequest());
    buf.append(good.data(), good.size());
    EXPECT_EQ(buf.next(out), FrameBuffer::Result::Oversized);
}

/** Server fixture: one daemon on a temp socket, fresh store. */
class SvcServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/adaptsim_svc_test";
        std::filesystem::remove_all(dir_);
        socket_ = dir_ + "/daemon.sock";
        repo_ = std::make_unique<harness::EvalRepository>(
            workload::specSuite(kProgramLength), dir_, 2);
    }

    void
    TearDown() override
    {
        server_.reset();
        repo_.reset();
        std::filesystem::remove_all(dir_);
    }

    bool
    startServer(std::size_t max_queue = 0,
                std::size_t client_cap = 64)
    {
        ServerOptions opts;
        opts.socketPath = socket_;
        opts.maxQueue = max_queue;
        opts.clientCap = client_cap;
        server_ =
            std::make_unique<EvalServer>(*repo_, std::move(opts));
        return server_->start();
    }

    /** Raw connected socket fd for byte-level protocol abuse. */
    int
    rawConnect()
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socket_.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    /** Read frames from @p fd until @p n messages arrived. */
    std::vector<Message>
    readMessages(int fd, std::size_t n)
    {
        std::vector<Message> out;
        FrameBuffer buf;
        char bytes[4096];
        while (out.size() < n) {
            std::string payload;
            while (out.size() < n &&
                   buf.next(payload) == FrameBuffer::Result::Frame) {
                Message msg;
                EXPECT_EQ(decodePayload(payload, msg),
                          ErrorCode::None);
                out.push_back(std::move(msg));
            }
            if (out.size() >= n)
                break;
            const ssize_t got =
                ::recv(fd, bytes, sizeof(bytes), 0);
            if (got <= 0)
                break;
            buf.append(bytes, std::size_t(got));
        }
        return out;
    }

    std::string dir_;
    std::string socket_;
    std::unique_ptr<harness::EvalRepository> repo_;
    std::unique_ptr<EvalServer> server_;
};

TEST_F(SvcServerTest, EvaluateMissThenHitBitExact)
{
    ASSERT_TRUE(startServer());
    auto client = EvalClient::connect(socket_);
    ASSERT_NE(client, nullptr);

    const auto spec = testSpec();
    const space::Configuration cfg;
    const EvalResult first = client->evaluate(spec, cfg, "cycle");
    ASSERT_TRUE(first.ok) << first.errorMessage;
    EXPECT_FALSE(first.cacheHit);
    EXPECT_EQ(first.producer, "cycle");

    const EvalResult again = client->evaluate(spec, cfg, "cycle");
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.cacheHit);
    EXPECT_EQ(std::memcmp(&again.record, &first.record,
                          sizeof(first.record)),
              0);

    // The service answer is the repository answer, bit for bit.
    const auto local =
        repo_->evaluate(spec, cfg, &sim::perfModel("cycle"));
    EXPECT_EQ(std::memcmp(&local, &first.record, sizeof(local)), 0);
}

TEST_F(SvcServerTest, UnknownWorkloadAndBackendAreTypedErrors)
{
    ASSERT_TRUE(startServer());
    auto client = EvalClient::connect(socket_);
    ASSERT_NE(client, nullptr);

    auto spec = testSpec();
    spec.workload = "no-such-program";
    const EvalResult bad_wl = client->evaluate(
        spec, space::Configuration(), "cycle");
    EXPECT_FALSE(bad_wl.ok);
    EXPECT_EQ(bad_wl.error, ErrorCode::UnknownWorkload);

    const EvalResult bad_be = client->evaluate(
        testSpec(), space::Configuration(), "no-such-backend");
    EXPECT_FALSE(bad_be.ok);
    EXPECT_EQ(bad_be.error, ErrorCode::UnknownBackend);

    // The connection survived both errors.
    const EvalResult ok = client->evaluate(
        testSpec(), space::Configuration(), "cycle");
    EXPECT_TRUE(ok.ok);
}

TEST_F(SvcServerTest, GarbageFramesGetErrorsConnectionSurvives)
{
    ASSERT_TRUE(startServer());
    const int fd = rawConnect();

    // A correctly framed payload full of garbage bytes.
    std::string garbage(32, '\xa5');
    std::string frame;
    putU32(frame, std::uint32_t(garbage.size()));
    frame += garbage;
    ASSERT_TRUE(::send(fd, frame.data(), frame.size(),
                       MSG_NOSIGNAL) > 0);
    auto msgs = readMessages(fd, 1);
    ASSERT_EQ(msgs.size(), 1u);
    ASSERT_EQ(msgs[0].type, MsgType::Error);
    EXPECT_EQ(msgs[0].error.code, ErrorCode::BadFrame);

    // Same connection still serves real requests.
    const std::string good = encodeFrame(testRequest(5));
    ASSERT_TRUE(::send(fd, good.data(), good.size(),
                       MSG_NOSIGNAL) > 0);
    msgs = readMessages(fd, 1);
    ASSERT_EQ(msgs.size(), 1u);
    ASSERT_EQ(msgs[0].type, MsgType::EvalReply);
    EXPECT_EQ(msgs[0].reply.id, 5u);
    ::close(fd);
}

TEST_F(SvcServerTest, OversizedFrameGetsErrorAndDisconnect)
{
    ASSERT_TRUE(startServer());
    const int fd = rawConnect();
    std::string bytes;
    putU32(bytes, kMaxFrameBytes + 1);
    ASSERT_TRUE(::send(fd, bytes.data(), bytes.size(),
                       MSG_NOSIGNAL) > 0);
    const auto msgs = readMessages(fd, 1);
    ASSERT_EQ(msgs.size(), 1u);
    ASSERT_EQ(msgs[0].type, MsgType::Error);
    EXPECT_EQ(msgs[0].error.code, ErrorCode::Oversized);
    // The server closes the poisoned stream: the next read is EOF.
    char c;
    EXPECT_EQ(::recv(fd, &c, 1, 0), 0);
    ::close(fd);
}

TEST_F(SvcServerTest, PerClientInFlightCapSheds)
{
    ASSERT_TRUE(startServer(/*max_queue=*/0, /*client_cap=*/1));
    const int fd = rawConnect();

    // Two pipelined requests in ONE send: the server admits them
    // under one lock hold, so the second deterministically exceeds
    // the in-flight cap of 1 while the first is pending.
    EvalRequestMsg r1 = testRequest(1);
    EvalRequestMsg r2 = testRequest(2);
    Rng rng(7);
    r2.configCode = space::uniformRandomSet(rng, 1).front().encode();
    const std::string burst = encodeFrame(r1) + encodeFrame(r2);
    ASSERT_TRUE(::send(fd, burst.data(), burst.size(),
                       MSG_NOSIGNAL) > 0);

    const auto msgs = readMessages(fd, 2);
    ASSERT_EQ(msgs.size(), 2u);
    std::size_t replies = 0, shed = 0;
    for (const auto &m : msgs) {
        if (m.type == MsgType::EvalReply) {
            ++replies;
            EXPECT_EQ(m.reply.id, 1u);
        } else {
            ++shed;
            EXPECT_EQ(m.error.code, ErrorCode::TooManyInFlight);
            EXPECT_EQ(m.error.id, 2u);
        }
    }
    EXPECT_EQ(replies, 1u);
    EXPECT_EQ(shed, 1u);
    ::close(fd);
}

TEST_F(SvcServerTest, QueueBoundShedsWithOverloaded)
{
    ASSERT_TRUE(startServer(/*max_queue=*/1, /*client_cap=*/64));
    const int fd = rawConnect();

    Rng rng(11);
    const auto configs = space::uniformRandomSet(rng, 3);
    std::string burst;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        EvalRequestMsg r = testRequest(id);
        r.configCode = configs[id - 1].encode();
        burst += encodeFrame(r);
    }
    ASSERT_TRUE(::send(fd, burst.data(), burst.size(),
                       MSG_NOSIGNAL) > 0);

    const auto msgs = readMessages(fd, 3);
    ASSERT_EQ(msgs.size(), 3u);
    std::size_t replies = 0, shed = 0;
    for (const auto &m : msgs) {
        if (m.type == MsgType::EvalReply)
            ++replies;
        else {
            ++shed;
            EXPECT_EQ(m.error.code, ErrorCode::Overloaded);
        }
    }
    EXPECT_EQ(replies, 1u);
    EXPECT_EQ(shed, 2u);
    ::close(fd);
}

TEST_F(SvcServerTest, DispatchRunsWhileAThreadBlocksInWait)
{
    // Regression: the daemon's main thread parks in wait() until a
    // signal arrives.  The dispatch wakeup must not be able to land
    // on that thread instead of the dispatch thread (a shared
    // condition variable with notify_one() lost the wakeup when the
    // whole pipelined burst arrived as one drain — one notify — and
    // the first batch was never evaluated: a hung daemon).  The
    // waiter parks BEFORE start() so it is first in the wake queue,
    // and the burst goes out in one send so the server admits it
    // under one lock hold with a single notification.
    ServerOptions opts;
    opts.socketPath = socket_;
    opts.maxQueue = 0;
    opts.clientCap = 4;
    opts.quiet = true;
    server_ = std::make_unique<EvalServer>(*repo_, std::move(opts));
    std::thread waiter([&] { server_->wait(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(server_->start());

    const int fd = rawConnect();
    Rng rng(13);
    const auto pool = space::uniformRandomSet(rng, 12);
    std::string burst;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        EvalRequestMsg r = testRequest(std::uint64_t(i + 1));
        r.configCode = pool[i].encode();
        burst += encodeFrame(r);
    }
    ASSERT_TRUE(::send(fd, burst.data(), burst.size(),
                       MSG_NOSIGNAL) > 0);

    // Three times the in-flight cap: every id must resolve as a
    // reply or a typed shed — never silence.
    const auto msgs = readMessages(fd, pool.size());
    ASSERT_EQ(msgs.size(), pool.size());
    std::size_t ok = 0, shed = 0;
    for (const auto &m : msgs) {
        if (m.type == MsgType::EvalReply)
            ++ok;
        else {
            EXPECT_EQ(m.error.code, ErrorCode::TooManyInFlight);
            ++shed;
        }
    }
    EXPECT_EQ(ok, 4u);
    EXPECT_EQ(shed, pool.size() - 4u);
    ::close(fd);

    server_->requestStop();
    waiter.join();
}

TEST_F(SvcServerTest, ClientStormFourConcurrentClients)
{
    ASSERT_TRUE(startServer());
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPipelined = 6;

    // A small shared pool: clients overlap heavily, so the server's
    // coalescing, caching and per-client accounting all get hit
    // from four directions at once.
    Rng rng(2010);
    const auto pool = space::uniformRandomSet(rng, 8);

    std::vector<std::size_t> ok_count(kClients, 0);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            auto client = EvalClient::connect(socket_);
            if (!client)
                return;
            const auto spec = testSpec();
            for (int round = 0; round < 3; ++round) {
                std::vector<std::uint64_t> ids;
                for (std::size_t i = 0; i < kPipelined; ++i) {
                    const auto &cfg =
                        pool[(t + i + std::size_t(round)) %
                             pool.size()];
                    ids.push_back(
                        client->submit(spec, cfg, "cycle"));
                }
                for (const auto id : ids) {
                    if (id != 0 && client->wait(id).ok)
                        ++ok_count[t];
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (std::size_t t = 0; t < kClients; ++t)
        EXPECT_EQ(ok_count[t], kPipelined * 3) << "client " << t;

    // 72 requests over 8 configurations: nearly all served from the
    // shared cache.  The bound is 2× the pool, not 1×, because two
    // pool workers may benignly race to simulate the same config
    // within one batch (both results are identical).
    EXPECT_LE(repo_->simulationsRun(), pool.size() * 2);
    EXPECT_GT(repo_->cacheHits(), 0u);
}

} // namespace
