# Empty dependencies file for test_reconfig_cost.
# This may be replaced when dependencies are built.
