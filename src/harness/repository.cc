#include "harness/repository.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "obs/obs.hh"
#include "power/metrics.hh"
#include "sim/cycle_level_model.hh"
#include "sim/perf_model.hh"

namespace adaptsim::harness
{

namespace fs = std::filesystem;

namespace
{

// On-disk cache format: 24-byte header + fixed 88-byte records
// (config code, backend tag, chip-mix key, seven doubles, checksum),
// everything little-endian and checksummed (see repository.hh).
// Version 2 lacked the chip-mix word (all its records were solo
// runs, migrated with chip key 0); version 1 also lacked the
// backend-tag word (72-byte records, migrated as solo cycle-level).
constexpr char kMagic[8] = {'A', 'D', 'S', 'I', 'M', 'E', 'V', 'C'};
constexpr std::uint64_t kVersion = 3;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kRecordSize = 88;
constexpr std::size_t kRecordPayload = kRecordSize - 8;
constexpr std::size_t kRecordSizeV2 = 80;
constexpr std::size_t kRecordPayloadV2 = kRecordSizeV2 - 8;
constexpr std::size_t kRecordSizeV1 = 72;
constexpr std::size_t kRecordPayloadV1 = kRecordSizeV1 - 8;

/** Upper bound on shard files probed on load (matches the env
 *  clamp), so a store written under any legal shard count is found
 *  regardless of the current one. */
constexpr std::size_t kMaxShards = 64;

std::string
encodeHeader()
{
    std::string bytes(kMagic, sizeof(kMagic));
    putU64(bytes, kVersion);
    putU64(bytes, fnv1a64(bytes.data(), 16));
    return bytes;
}

void
encodeRecord(std::string &out, const EvalKey &key,
             const EvalRecord &r)
{
    const std::size_t start = out.size();
    putU64(out, key.code);
    putU64(out, key.backendTag);
    putU64(out, key.chipKey);
    putDouble(out, r.cycles);
    putDouble(out, r.instructions);
    putDouble(out, r.seconds);
    putDouble(out, r.joules);
    putDouble(out, r.ipc);
    putDouble(out, r.watts);
    putDouble(out, r.efficiency);
    putU64(out, fnv1a64(out.data() + start, kRecordPayload));
}

EvalRecord
decodeDoubles(const char *p)
{
    EvalRecord r;
    r.cycles = getDouble(p);
    r.instructions = getDouble(p + 8);
    r.seconds = getDouble(p + 16);
    r.joules = getDouble(p + 24);
    r.ipc = getDouble(p + 32);
    r.watts = getDouble(p + 40);
    r.efficiency = getDouble(p + 48);
    return r;
}

bool
hasMagic(const std::string &bytes)
{
    return bytes.size() >= sizeof(kMagic) &&
           std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

/** Header version of a cache image, or 0 when the header is absent,
 *  unrecognised or corrupt (version 0 is never written). */
std::uint64_t
headerVersion(const std::string &bytes)
{
    if (!hasMagic(bytes) || bytes.size() < kHeaderSize)
        return 0;
    if (getU64(bytes.data() + 16) != fnv1a64(bytes.data(), 16))
        return 0;
    return getU64(bytes.data() + 8);
}

#if ADAPTSIM_OBS_ENABLED

/** Process-wide mirror of the per-instance CacheStats counters, so
 *  the obs exit report and gather progress can source repository
 *  activity from the registry. */
struct RepoMetrics
{
    obs::Counter &hit = obs::Registry::global().counter("repo/hit");
    obs::Counter &miss =
        obs::Registry::global().counter("repo/miss");
    obs::Counter &loaded =
        obs::Registry::global().counter("repo/loaded");
    obs::Counter &flushed =
        obs::Registry::global().counter("repo/flushed");
    obs::Counter &migrated =
        obs::Registry::global().counter("repo/migrated");
    obs::Counter &dropped =
        obs::Registry::global().counter("repo/dropped");
};

RepoMetrics &
repoMetrics()
{
    static RepoMetrics metrics;
    return metrics;
}

#endif // ADAPTSIM_OBS_ENABLED

} // namespace

std::string
PhaseSpec::key() const
{
    std::ostringstream os;
    os << workload << "_L" << programLength << "_s" << startInst
       << "_w" << warmLength << "_d" << detailLength;
    // Chip co-runs get their own stem; solo specs (chipMix 0) keep
    // the historical name, so pre-chip stores stay addressable.
    if (chipMix != 0)
        os << "_m" << std::hex << chipMix << std::dec;
    return os.str();
}

EvalRepository::EvalRepository(std::vector<workload::Workload> suite,
                               std::string data_dir, unsigned threads,
                               std::size_t shards)
    : suite_(std::move(suite)), dataDir_(std::move(data_dir)),
      shards_(shards > 0 ? std::min(shards, kMaxShards)
                         : adaptsim::evalShards()),
      pool_(threads), flushEvery_(adaptsim::flushEvery())
{
    std::error_code ec;
    fs::create_directories(dataDir_, ec);
    if (ec)
        fatal("cannot create data directory ", dataDir_, ": ",
              ec.message());
}

EvalRepository::~EvalRepository()
{
    flush();
}

const workload::Workload &
EvalRepository::workload(const std::string &name) const
{
    if (const auto *wl = findWorkload(name))
        return *wl;
    fatal("unknown workload in repository: ", name);
}

const workload::Workload *
EvalRepository::findWorkload(const std::string &name) const
{
    for (const auto &wl : suite_) {
        if (wl.name() == name)
            return &wl;
    }
    return nullptr;
}

std::size_t
EvalRepository::shardOf(const EvalKey &key) const
{
    return EvalKeyHash{}(key) % shards_;
}

std::string
EvalRepository::shardPath(const std::string &spec_key,
                          std::size_t i) const
{
    if (i == 0)
        return dataDir_ + "/" + spec_key + ".evc";
    return dataDir_ + "/" + spec_key + ".s" + std::to_string(i) +
           ".evc";
}

std::string
EvalRepository::legacyCachePath(const PhaseSpec &spec) const
{
    return dataDir_ + "/" + spec.key() + ".csv";
}

std::string
EvalRepository::profilePath(const PhaseSpec &spec) const
{
    return dataDir_ + "/" + spec.key() + ".features";
}

bool
EvalRepository::loadBinaryCache(const std::string &path,
                                const std::string &bytes,
                                PhaseCache &cache,
                                std::size_t shard_index,
                                bool &misplaced)
{
    misplaced = false;
    if (bytes.empty())
        return false;
    if (!hasMagic(bytes) || bytes.size() < kHeaderSize) {
        warn("cache ", path,
             ": unrecognised header; ignoring file (records will "
             "be re-simulated)");
        return false;
    }
    if (getU64(bytes.data() + 16) != fnv1a64(bytes.data(), 16)) {
        warn("cache ", path,
             ": corrupt header checksum; regenerating");
        return false;
    }
    const std::uint64_t version = getU64(bytes.data() + 8);
    if (version != kVersion) {
        // Versions 1 and 2 are handled by loadV1Cache/loadV2Cache
        // (migration), so this is an unknown — likely future —
        // format.
        warn("cache ", path, ": format version ", version,
             " (expected ", kVersion, "); regenerating");
        return false;
    }

    std::size_t off = kHeaderSize;
    std::size_t bad = 0;
    std::size_t count = 0;
    while (off + kRecordSize <= bytes.size()) {
        const char *p = bytes.data() + off;
        off += kRecordSize;
        if (getU64(p + kRecordPayload) !=
            fnv1a64(p, kRecordPayload)) {
            ++bad;
            continue;
        }
        const EvalKey key{getU64(p + 8), getU64(p), getU64(p + 16)};
        if (shardOf(key) != shard_index)
            misplaced = true;
        if (cache.records.emplace(key, decodeDoubles(p + 24)).second)
            ++count;
    }
    const std::size_t tail = bytes.size() - off;
    if (bad > 0 || tail > 0) {
        warn("cache ", path, ": dropped ", bad,
             " corrupt record(s) and ", tail,
             " torn tail byte(s); they will be re-simulated");
        dropped_ += bad + (tail > 0 ? 1 : 0);
        OBS_ONLY(repoMetrics().dropped.add(bad + (tail > 0 ? 1 : 0));)
    }
    loaded_ += count;
    OBS_ONLY(repoMetrics().loaded.add(count);)
    return true;
}

bool
EvalRepository::loadV1Cache(const std::string &path,
                            const std::string &bytes,
                            PhaseCache &cache)
{
    // Version-1 records predate the backend seam: everything in them
    // was produced by the cycle-level pipeline, so they migrate with
    // the cycle-level tag and stay bit-exact.
    std::size_t off = kHeaderSize;
    std::size_t bad = 0;
    std::size_t count = 0;
    while (off + kRecordSizeV1 <= bytes.size()) {
        const char *p = bytes.data() + off;
        off += kRecordSizeV1;
        if (getU64(p + kRecordPayloadV1) !=
            fnv1a64(p, kRecordPayloadV1)) {
            ++bad;
            continue;
        }
        const EvalKey key{sim::CycleLevelModel::kCacheTag,
                          getU64(p)};
        if (cache.records.emplace(key, decodeDoubles(p + 8)).second)
            ++count;
    }
    const std::size_t tail = bytes.size() - off;
    if (bad > 0 || tail > 0) {
        warn("cache ", path, ": dropped ", bad,
             " corrupt record(s) and ", tail,
             " torn tail byte(s); they will be re-simulated");
        dropped_ += bad + (tail > 0 ? 1 : 0);
        OBS_ONLY(repoMetrics().dropped.add(bad + (tail > 0 ? 1 : 0));)
    }
    if (count > 0)
        inform("cache ", path, ": migrating ", count,
               " format-1 record(s) to format ", kVersion);
    return count > 0;
}

bool
EvalRepository::loadV2Cache(const std::string &path,
                            const std::string &bytes,
                            PhaseCache &cache)
{
    // Version-2 records predate the chip model: everything in them
    // was a solo single-core run, so they migrate with chip key 0
    // and stay bit-exact.
    std::size_t off = kHeaderSize;
    std::size_t bad = 0;
    std::size_t count = 0;
    while (off + kRecordSizeV2 <= bytes.size()) {
        const char *p = bytes.data() + off;
        off += kRecordSizeV2;
        if (getU64(p + kRecordPayloadV2) !=
            fnv1a64(p, kRecordPayloadV2)) {
            ++bad;
            continue;
        }
        const EvalKey key{getU64(p + 8), getU64(p), 0};
        if (cache.records.emplace(key, decodeDoubles(p + 16)).second)
            ++count;
    }
    const std::size_t tail = bytes.size() - off;
    if (bad > 0 || tail > 0) {
        warn("cache ", path, ": dropped ", bad,
             " corrupt record(s) and ", tail,
             " torn tail byte(s); they will be re-simulated");
        dropped_ += bad + (tail > 0 ? 1 : 0);
        OBS_ONLY(repoMetrics().dropped.add(bad + (tail > 0 ? 1 : 0));)
    }
    if (count > 0)
        inform("cache ", path, ": migrating ", count,
               " format-2 record(s) to format ", kVersion);
    return count > 0;
}

void
EvalRepository::adoptRecords(const PhaseCache &from,
                             PhaseCache &cache)
{
    for (const auto &[key, r] : from.records) {
        if (cache.records.emplace(key, r).second) {
            ++migrated_;
            OBS_ONLY(repoMetrics().migrated.add(1);)
        }
    }
    // Adopted records come from another layout/format; the next
    // flush rewrites the whole store in the current one.
    cache.needRewrite = true;
}

void
EvalRepository::loadLegacyCsv(const std::string &path,
                              const std::string &bytes,
                              PhaseCache &cache)
{
    std::istringstream in(bytes);
    std::string line;
    std::size_t adopted = 0;
    std::size_t bad = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::uint64_t code;
        EvalRecord r;
        char comma;
        if (ls >> code >> comma >> r.cycles >> comma >>
            r.instructions >> comma >> r.seconds >> comma >>
            r.joules >> comma >> r.ipc >> comma >> r.watts >>
            comma >> r.efficiency) {
            // The exact-format file wins when both know a config.
            // CSV predates the backend seam: cycle-level records.
            const EvalKey key{sim::CycleLevelModel::kCacheTag,
                              code};
            if (cache.records.emplace(key, r).second)
                ++adopted;
        } else {
            ++bad;
        }
    }
    if (bad > 0) {
        warn("cache ", path, ": dropped ", bad,
             " malformed line(s); those records will be "
             "re-simulated");
        dropped_ += bad;
        OBS_ONLY(repoMetrics().dropped.add(bad);)
    }
    migrated_ += adopted;
    OBS_ONLY(repoMetrics().migrated.add(adopted);)
    cache.needRewrite = true;
    cache.legacyPending = true;
}

void
EvalRepository::loadCache(const PhaseSpec &spec, PhaseCache &cache)
{
    cache.loaded = true;
    cache.shardState.resize(shards_);
    cache.shardFileMutex.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i)
        cache.shardFileMutex.push_back(std::make_unique<Mutex>());

    // Probe every possible shard file so a store written under a
    // different shard count is still found whole.  Files beyond the
    // current count — or whose records hash elsewhere under it —
    // mark the store for an atomic rewrite in the current layout.
    const std::string key = spec.key();
    for (std::size_t i = 0; i < kMaxShards; ++i) {
        const std::string path = shardPath(key, i);
        const std::string bytes = readFile(path);
        if (bytes.empty())
            continue;
        const std::uint64_t version = headerVersion(bytes);
        if (version == 1 || version == 2) {
            // Pre-chip file: adopt its records (v1 as cycle-level,
            // both as solo chip key 0); the next flush rewrites the
            // store in the current format.
            PhaseCache tmp;
            const bool got = version == 1
                                 ? loadV1Cache(path, bytes, tmp)
                                 : loadV2Cache(path, bytes, tmp);
            if (got)
                adoptRecords(tmp, cache);
            cache.needRewrite = true;
            continue;
        }
        bool misplaced = false;
        const bool valid = loadBinaryCache(path, bytes, cache,
                                           i % shards_, misplaced);
        if (i >= shards_) {
            // Stray shard from a larger previous count: its records
            // are adopted; the rewrite removes the file.
            cache.needRewrite = true;
        } else if (valid && !misplaced) {
            cache.shardState[i].haveBinaryFile = true;
        } else if (misplaced) {
            cache.needRewrite = true;
        }
    }
    if (cache.needRewrite) {
        for (auto &shard : cache.shardState)
            shard.haveBinaryFile = false;
    }

    // Legacy (pre-format) cache: sniff the header, adopt whatever
    // records the shard files do not already have, and queue a
    // rewrite so they land in the current format.
    const std::string legacy = legacyCachePath(spec);
    const std::string legacy_bytes = readFile(legacy);
    if (legacy_bytes.empty())
        return;
    if (hasMagic(legacy_bytes)) {
        PhaseCache tmp;
        bool ignored = false;
        const std::uint64_t legacy_version =
            headerVersion(legacy_bytes);
        const bool got =
            legacy_version == 1
                ? loadV1Cache(legacy, legacy_bytes, tmp)
            : legacy_version == 2
                ? loadV2Cache(legacy, legacy_bytes, tmp)
                : loadBinaryCache(legacy, legacy_bytes, tmp, 0,
                                  ignored);
        if (got) {
            adoptRecords(tmp, cache);
            cache.legacyPending = true;
        }
    } else {
        loadLegacyCsv(legacy, legacy_bytes, cache);
    }
    if (cache.needRewrite) {
        for (auto &shard : cache.shardState)
            shard.haveBinaryFile = false;
    }
}

EvalRepository::PhaseCache &
EvalRepository::cacheFor(const PhaseSpec &spec)
{
    auto &cache = caches_[spec.key()];
    if (!cache.loaded)
        loadCache(spec, cache);
    return cache;
}

EvalRecord
EvalRepository::simulate(const PhaseSpec &spec,
                         const space::Configuration &config,
                         const sim::PerfModel &backend,
                         const sim::PerfModel *&producer,
                         double *uncertainty)
{
    const auto &wl = workload(spec.workload);
    // Each simulation gets its own wrong-path stream (the generator
    // is stateful); seeding is canonical so results are reproducible.
    workload::WrongPathGenerator wrong_path(wl.averageParams(),
                                            wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(config);
    const auto session = backend.makeSession(cc, wrong_path);

    const std::uint64_t warm_start =
        spec.startInst >= spec.warmLength ?
            spec.startInst - spec.warmLength :
            0;
    if (spec.warmLength > 0) {
        const auto warm =
            traceCache_.get(wl, warm_start, spec.warmLength);
        session->warm(*warm);
    }
    const auto trace =
        traceCache_.get(wl, spec.startInst, spec.detailLength);
    const auto result = backend.run(*session, *trace);
    const auto m = session->metricsFor(result);
    producer = session->lastProducer() ? session->lastProducer()
                                       : &backend;
    if (uncertainty)
        *uncertainty = session->lastUncertainty();

    EvalRecord r;
    r.cycles = m.cycles;
    r.instructions = m.instructions;
    r.seconds = m.seconds;
    r.joules = m.joules;
    r.ipc = m.ipc;
    r.watts = m.watts;
    r.efficiency = m.efficiency;
    return r;
}

EvalRecord
EvalRepository::evaluate(const PhaseSpec &spec,
                         const space::Configuration &config,
                         const sim::PerfModel *backend)
{
    const sim::PerfModel &model =
        backend ? *backend : sim::defaultPerfModel();
    return evaluateImpl(spec, config, model, nullptr, nullptr);
}

EvalRepository::ProbeResult
EvalRepository::evaluateProbe(const PhaseSpec &spec,
                              const space::Configuration &config,
                              const sim::PerfModel *backend)
{
    const sim::PerfModel &model =
        backend ? *backend : sim::defaultPerfModel();
    ProbeResult probe;
    bool cached = false;
    probe.record = evaluateImpl(spec, config, model,
                                &probe.uncertainty, &cached);
    probe.cached = cached;
    return probe;
}

EvalRecord
EvalRepository::evaluateImpl(const PhaseSpec &spec,
                             const space::Configuration &config,
                             const sim::PerfModel &model,
                             double *uncertainty, bool *cached)
{
    const std::uint64_t code = config.encode();
    // Probe every tag the backend accepts, best fidelity first (a
    // cached cycle-level record satisfies a cascade query outright).
    const auto tags = model.cacheLookupTags();
    {
        MutexLock lock(mutex_);
        auto &cache = cacheFor(spec);
        for (const std::uint64_t tag : tags) {
            const auto it = cache.records.find(
                EvalKey{tag, code, spec.chipMix});
            if (it != cache.records.end()) {
                ++hits_;
                OBS_ONLY(repoMetrics().hit.add(1);)
                if (cached)
                    *cached = true;
                return it->second;
            }
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    EvalRecord r;
    const sim::PerfModel *producer = &model;
    {
        OBS_SPAN("repo/simulate");
        r = simulate(spec, config, model, producer, uncertainty);
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    OBS_ONLY(repoMetrics().miss.add(1);)

    // The record is stored — and accounted — under the model that
    // actually produced it, so a cascade escalation yields a real
    // cycle-level record other backends can reuse.
    const EvalKey key{producer->cacheTag(), code, spec.chipMix};
    MutexLock lock(mutex_);
    simSeconds_ += secs;
    ++simulated_;
    ++simulatedByBackend_[producer->name()];
    auto &cache = cacheFor(spec);
    // Two threads may race to simulate the same config (simulation
    // is deterministic, so both results are identical); only the
    // first insert is queued for persistence.
    const auto [it, inserted] = cache.records.emplace(key, r);
    const EvalRecord stored = it->second;
    if (!inserted)
        return stored;

    const std::size_t s = shardOf(key);
    auto &shard = cache.shardState[s];
    shard.unsaved.emplace_back(key, r);
    if (shard.unsaved.size() < flushEvery_)
        return stored;

    if (cache.needRewrite || cache.legacyPending ||
        !shard.haveBinaryFile) {
        // The store needs structural work (layout rewrite, format
        // migration, first write): take the slow path.
        flushLocked();
        return stored;
    }

    // Fast path: this shard has a valid file, so its batch can be
    // appended without the global lock.  Swap the batch out under
    // mutex_, do the I/O under the shard's file mutex only, then
    // relock to update counters.  Other shards — and other phase
    // caches — keep evaluating meanwhile.  A concurrent atomic
    // rewrite renaming the file away is benign: the batch records
    // are already in cache.records, so the rewrite includes them.
    std::vector<std::pair<EvalKey, EvalRecord>> batch;
    batch.swap(shard.unsaved);
    Mutex &file_mutex = *cache.shardFileMutex[s];
    const std::string path = shardPath(spec.key(), s);
    lock.unlock();

    std::string bytes;
    for (const auto &[ek, rec] : batch)
        encodeRecord(bytes, ek, rec);
    bool ok;
    {
        MutexLock file_lock(file_mutex);
        ok = appendFileSync(path, bytes);
    }

    lock.lock();
    if (ok) {
        flushed_ += batch.size();
        OBS_ONLY(repoMetrics().flushed.add(batch.size());)
    } else {
        warn("cannot persist cache shard ", path);
        // Re-queue so a later flush (or the destructor) retries.
        auto &again = cache.shardState[s].unsaved;
        again.insert(again.end(), batch.begin(), batch.end());
    }
    return stored;
}

bool
EvalRepository::peekCached(const PhaseSpec &spec,
                           const space::Configuration &config,
                           const sim::PerfModel *backend)
{
    const sim::PerfModel &model =
        backend ? *backend : sim::defaultPerfModel();
    const std::uint64_t code = config.encode();
    const auto tags = model.cacheLookupTags();
    MutexLock lock(mutex_);
    auto &cache = cacheFor(spec);
    for (const std::uint64_t tag : tags) {
        if (cache.records.count(EvalKey{tag, code, spec.chipMix}) > 0)
            return true;
    }
    return false;
}

std::vector<EvalRecord>
EvalRepository::evaluateBatch(
    const PhaseSpec &spec,
    const std::vector<space::Configuration> &configs,
    const sim::PerfModel *backend, std::size_t refine_budget)
{
    // Concurrent gathers may share one repository; the pool runs one
    // batch at a time, so callers queue here rather than racing into
    // parallelFor.  The backend is resolved once so every evaluation
    // of the batch uses the same model even if the env changes.
    const sim::PerfModel &model =
        backend ? *backend : sim::defaultPerfModel();
    MutexLock batch(batchMutex_);
    std::vector<EvalRecord> out(configs.size());
    pool_.parallelFor(configs.size(), [&](std::size_t i) {
        out[i] = evaluate(spec, configs[i], &model);
    });

    // Near-frontier refinement: a policy backend (the cascade) can
    // name a ground-truth model and pick the batch points worth a
    // full-fidelity re-evaluation — the ones an adaptivity search
    // would act on.  Ground-truth records land in the cache under
    // the cycle tag, so cacheLookupTags() serves them ever after.
    const sim::PerfModel *truth =
        refine_budget > 0 ? model.groundTruthModel() : nullptr;
    if (truth) {
        std::vector<double> eff(out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            eff[i] = out[i].efficiency;
        std::vector<std::size_t> refine;
        model.selectForRefinement(eff, refine_budget, refine);
        if (!refine.empty()) {
            pool_.parallelFor(refine.size(), [&](std::size_t i) {
                out[refine[i]] =
                    evaluate(spec, configs[refine[i]], truth);
            });
        }
    }
    return out;
}

ProfileRecord
EvalRepository::profile(const PhaseSpec &spec,
                        const sim::PerfModel *backend)
{
    // The counter bank is fed by per-cycle observer callbacks, so an
    // analytical backend cannot drive it; profiling falls back to
    // the cycle-level reference model in that case.  Profile caches
    // are therefore always observer-fidelity and carry no tag.
    const sim::PerfModel &requested =
        backend ? *backend : sim::defaultPerfModel();
    const sim::PerfModel &model = requested.supportsObservers()
                                      ? requested
                                      : sim::perfModel("cycle");
    if (&model != &requested) {
        MutexLock lock(mutex_);
        if (profileWarned_.insert(requested.name()).second)
            warn("backend \"", requested.name(),
                 "\" cannot drive profiling counters; using \"",
                 model.name(),
                 "\" for its profiling runs (warned once)");
    }
    {
        MutexLock lock(mutex_);
        const auto it = profiles_.find(spec.key());
        if (it != profiles_.end()) {
            ++hits_;
            OBS_ONLY(repoMetrics().hit.add(1);)
            return it->second;
        }
    }

    // Try the disk cache.  A truncated or stale file (torn write,
    // feature-set change) must not be accepted just because *some*
    // doubles parsed: both vectors have to match the expected
    // dimensions exactly, or we fall back to re-simulation.
    {
        std::ifstream in(profilePath(spec));
        if (in) {
            ProfileRecord rec;
            auto read_line = [&](std::vector<double> &v) {
                std::string line;
                if (!std::getline(in, line))
                    return false;
                std::istringstream ls(line);
                double x;
                while (ls >> x)
                    v.push_back(x);
                return !v.empty();
            };
            const bool parsed =
                read_line(rec.basic) && read_line(rec.advanced);
            const std::size_t want_basic = counters::featureDimension(
                counters::FeatureSet::Basic);
            const std::size_t want_advanced =
                counters::featureDimension(
                    counters::FeatureSet::Advanced);
            if (parsed && rec.basic.size() == want_basic &&
                rec.advanced.size() == want_advanced) {
                MutexLock lock(mutex_);
                ++hits_;
                OBS_ONLY(repoMetrics().hit.add(1);)
                profiles_[spec.key()] = rec;
                return rec;
            }
            if (parsed) {
                warn("profile cache ", profilePath(spec),
                     ": feature dimensions ", rec.basic.size(), "/",
                     rec.advanced.size(), " (expected ", want_basic,
                     "/", want_advanced,
                     "); re-simulating the profile");
            }
        }
    }

    // Run the profiling configuration with the counter bank.
    OBS_SPAN("repo/profile");
    OBS_ONLY(repoMetrics().miss.add(1);)
    const auto t0 = std::chrono::steady_clock::now();
    const auto &wl = workload(spec.workload);
    workload::WrongPathGenerator wrong_path(wl.averageParams(),
                                            wl.seed() ^ 0x57a71cULL);
    const auto profiling = space::Configuration::profiling();
    const auto cc = uarch::CoreConfig::fromConfiguration(profiling);
    const auto session = model.makeSession(cc, wrong_path);

    const std::uint64_t warm_start =
        spec.startInst >= spec.warmLength ?
            spec.startInst - spec.warmLength :
            0;
    if (spec.warmLength > 0)
        session->warm(*traceCache_.get(wl, warm_start,
                                       spec.warmLength));

    counters::CounterBank bank(cc);
    const auto trace =
        traceCache_.get(wl, spec.startInst, spec.detailLength);
    const auto result = model.run(*session, *trace, &bank);
    bank.finalise(result.events);

    ProfileRecord rec;
    rec.basic = counters::assembleFeatures(
        bank, counters::FeatureSet::Basic);
    rec.advanced = counters::assembleFeatures(
        bank, counters::FeatureSet::Advanced);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // Persist atomically; 17 significant digits round-trip doubles
    // exactly through the decimal text format.
    {
        std::ostringstream os;
        os.precision(17);
        for (double v : rec.basic)
            os << v << ' ';
        os << '\n';
        for (double v : rec.advanced)
            os << v << ' ';
        os << '\n';
        if (!atomicWriteFile(profilePath(spec), os.str()))
            warn("cannot persist profile for ", spec.key());
    }

    MutexLock lock(mutex_);
    profiles_[spec.key()] = rec;
    ++simulated_;
    ++simulatedByBackend_[model.name()];
    simSeconds_ += secs;
    return rec;
}

std::vector<std::pair<std::uint64_t, EvalRecord>>
EvalRepository::records(const PhaseSpec &spec,
                        std::uint64_t backendTag)
{
    MutexLock lock(mutex_);
    auto &cache = cacheFor(spec);
    std::vector<std::pair<std::uint64_t, EvalRecord>> out;
    for (const auto &[key, r] : cache.records) {
        if (key.backendTag == backendTag &&
            key.chipKey == spec.chipMix)
            out.emplace_back(key.code, r);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

void
EvalRepository::flush()
{
    MutexLock lock(mutex_);
    flushLocked();
}

void
EvalRepository::flushLocked()
{
    for (auto &[key, cache] : caches_) {
        const bool have_unsaved = std::any_of(
            cache.shardState.begin(), cache.shardState.end(),
            [](const ShardState &s) { return !s.unsaved.empty(); });
        if (!have_unsaved && !cache.needRewrite &&
            !cache.legacyPending)
            continue;

        bool all_ok = true;
        if (cache.needRewrite) {
            // Structural rewrite: every shard is rebuilt atomically
            // from the in-memory records so the store ends up in the
            // current layout whatever it looked like on disk.
            for (std::size_t s = 0; s < shards_; ++s) {
                std::string bytes = encodeHeader();
                std::size_t count = 0;
                for (const auto &[ek, r] : cache.records) {
                    if (shardOf(ek) == s) {
                        encodeRecord(bytes, ek, r);
                        ++count;
                    }
                }
                const std::string path = shardPath(key, s);
                MutexLock file_lock(*cache.shardFileMutex[s]);
                if (count == 0 && s > 0) {
                    // Secondary shard with no records: leave no
                    // header-only stub behind.
                    std::error_code ec;
                    fs::remove(path, ec);
                    cache.shardState[s].haveBinaryFile = false;
                    cache.shardState[s].unsaved.clear();
                    continue;
                }
                if (atomicWriteFile(path, bytes)) {
                    cache.shardState[s].haveBinaryFile = true;
                    flushed_ += count;
                    OBS_ONLY(repoMetrics().flushed.add(count);)
                    cache.shardState[s].unsaved.clear();
                } else {
                    warn("cannot persist cache shard ", path);
                    all_ok = false;
                }
            }
            if (all_ok) {
                cache.needRewrite = false;
                // Drop stray shard files from a previous, larger
                // shard count; their records were adopted on load.
                for (std::size_t s = shards_; s < kMaxShards; ++s) {
                    std::error_code ec;
                    fs::remove(shardPath(key, s), ec);
                }
            }
        } else {
            // Per-shard incremental flush: shards with a valid file
            // get a checksummed append; shards without one are
            // created atomically with everything they own.
            for (std::size_t s = 0; s < shards_; ++s) {
                auto &shard = cache.shardState[s];
                if (shard.unsaved.empty() && shard.haveBinaryFile)
                    continue;
                const std::string path = shardPath(key, s);
                bool ok;
                std::size_t written;
                MutexLock file_lock(*cache.shardFileMutex[s]);
                if (!shard.haveBinaryFile) {
                    if (shard.unsaved.empty())
                        continue;
                    std::string bytes = encodeHeader();
                    written = 0;
                    for (const auto &[ek, r] : cache.records) {
                        if (shardOf(ek) == s) {
                            encodeRecord(bytes, ek, r);
                            ++written;
                        }
                    }
                    ok = atomicWriteFile(path, bytes);
                    if (ok)
                        shard.haveBinaryFile = true;
                } else {
                    std::string bytes;
                    for (const auto &[ek, r] : shard.unsaved)
                        encodeRecord(bytes, ek, r);
                    written = shard.unsaved.size();
                    ok = appendFileSync(path, bytes);
                }
                if (!ok) {
                    warn("cannot persist cache shard ", path);
                    all_ok = false;
                    continue;
                }
                flushed_ += written;
                OBS_ONLY(repoMetrics().flushed.add(written);)
                shard.unsaved.clear();
            }
        }
        if (all_ok && cache.legacyPending) {
            std::error_code ec;
            fs::remove(dataDir_ + "/" + key + ".csv", ec);
            cache.legacyPending = false;
        }
    }
}

CacheStats
EvalRepository::stats() const
{
    MutexLock lock(mutex_);
    CacheStats s;
    s.hits = hits_;
    s.misses = simulated_;
    s.loaded = loaded_;
    s.flushed = flushed_;
    s.migrated = migrated_;
    s.dropped = dropped_;
    s.simSeconds = simSeconds_;
    const auto tc = traceCache_.stats();
    s.traceHits = tc.hits;
    s.traceMisses = tc.misses;
    s.traceEvictions = tc.evictions;
    s.backendEvals.assign(simulatedByBackend_.begin(),
                          simulatedByBackend_.end());
    return s;
}

std::string
EvalRepository::statsSummary() const
{
    const CacheStats s = stats();
    std::ostringstream os;
    os << s.hits << " hits, " << s.misses << " simulated ("
       << std::fixed << std::setprecision(1) << s.simSeconds
       << "s), " << s.loaded << " loaded, " << s.flushed
       << " flushed";
    if (s.migrated > 0)
        os << ", " << s.migrated << " migrated";
    if (s.dropped > 0)
        os << ", " << s.dropped << " dropped";
    if (s.traceHits + s.traceMisses > 0) {
        os << "; traces " << s.traceHits << " replayed / "
           << s.traceMisses << " generated";
        if (s.traceEvictions > 0)
            os << " (" << s.traceEvictions << " evicted)";
    }
    // Per-backend split, shown once more than one fidelity (or a
    // non-default backend) produced results this process.
    if (!s.backendEvals.empty() &&
        (s.backendEvals.size() > 1 ||
         s.backendEvals.front().first != "cycle")) {
        os << "; backends";
        for (const auto &[name, n] : s.backendEvals)
            os << ' ' << name << '=' << n;
    }
    return os.str();
}

void
EvalRepository::setFlushEvery(std::size_t n)
{
    MutexLock lock(mutex_);
    flushEvery_ = std::max<std::size_t>(1, n);
}

} // namespace adaptsim::harness
