/**
 * @file
 * LRU stack-distance monitor (Mattson et al.; Beyls & D'Hollander).
 *
 * The stack distance of an access is the number of *distinct* blocks
 * touched since the previous access to the same block.  Its histogram
 * directly yields the miss ratio of any fully-associative LRU cache:
 * capacity C misses exactly the accesses with distance > C.  The paper
 * uses it to characterise cache capacity requirements (Table II).
 *
 * Implemented with the classic Fenwick-tree formulation: each block's
 * most recent access time is marked in a bit-indexed tree, and the
 * distance is the count of marked times younger than the block's
 * previous access — O(log n) per access instead of an O(distance)
 * stack walk.
 */

#ifndef ADAPTSIM_COUNTERS_STACK_DISTANCE_HH
#define ADAPTSIM_COUNTERS_STACK_DISTANCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"

namespace adaptsim::counters
{

/** Exact LRU stack-distance histogram over block addresses. */
class StackDistanceMonitor
{
  public:
    /**
     * @param line_bytes block granularity of the monitored stream.
     */
    explicit StackDistanceMonitor(int line_bytes);

    /** Record an access to @p addr. */
    void access(Addr addr);

    /** Log2-binned histogram of stack distances (re-references). */
    const Histogram &histogram() const { return hist_; }

    /** Accesses to never-before-seen blocks (infinite distance). */
    std::uint64_t coldAccesses() const { return cold_; }

    std::uint64_t accesses() const { return accesses_; }

    /**
     * Estimated miss ratio of a fully-associative LRU cache with
     * @p capacity_blocks blocks (cold misses included).
     */
    double missRatioFor(std::uint64_t capacity_blocks) const;

    void clear();

  private:
    /** Add @p delta at Fenwick position @p i (1-based). */
    void fenwickAdd(std::size_t i, int delta);

    /** Prefix sum of Fenwick positions [1, i]. */
    std::int64_t fenwickSum(std::size_t i) const;

    int lineBytes_;
    Histogram hist_;
    std::unordered_map<Addr, std::uint64_t> lastTime_;
    std::vector<std::int32_t> tree_;   ///< Fenwick tree over times
    std::uint64_t cold_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_STACK_DISTANCE_HH
