#include "sim/cascade_model.hh"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/env.hh"
#include "obs/obs.hh"
#include "sim/cycle_level_model.hh"
#include "sim/learned_model.hh"

namespace adaptsim::sim
{

namespace
{

std::atomic<std::uint64_t> escalations{0};

void
noteEscalation()
{
    escalations.fetch_add(1, std::memory_order_relaxed);
    OBS_ONLY(OBS_COUNTER("backend/cascade/escalations").add(1);)
}

class CascadeSession final : public CoreSession
{
  public:
    CascadeSession(const uarch::CoreConfig &cfg,
                   workload::WrongPathGenerator &wrong_path,
                   const PerfModel &cheap, const PerfModel &cycle,
                   double threshold)
        : cfg_(cfg), wrongPath_(wrong_path), cheapModel_(cheap),
          cycleModel_(cycle), threshold_(threshold),
          cheap_(cheap.makeSession(cfg, wrong_path))
    {
    }

    void
    warm(std::span<const isa::MicroOp> trace) override
    {
        cheap_->warm(trace);
        // Retained so a lazily created cycle session starts from the
        // same warm state an eager one would have.
        warmTraces_.emplace_back(trace.begin(), trace.end());
        if (cycle_)
            cycle_->warm(trace);
    }

    uarch::SimResult
    run(std::span<const isa::MicroOp> trace,
        uarch::SimObserver *observer) override
    {
        auto result = cheapModel_.run(*cheap_, trace, observer);
        lastUncertainty_ = cheap_->lastUncertainty();
        if (lastUncertainty_ <= threshold_) {
            producerModel_ = &cheapModel_;
            producerSession_ = cheap_.get();
            return result;
        }

        // Low confidence: escalate to ground truth.  The cheap paths
        // never consume wrong-path state, so this session behaves
        // exactly like a direct cycle-level one from here on.
        noteEscalation();
        if (!cycle_) {
            cycle_ = cycleModel_.makeSession(cfg_, wrongPath_);
            for (const auto &w : warmTraces_)
                cycle_->warm(w);
        }
        producerModel_ = &cycleModel_;
        producerSession_ = cycle_.get();
        return cycleModel_.run(*cycle_, trace, observer);
    }

    const uarch::CoreConfig &config() const override
    {
        return cfg_;
    }

    power::Metrics
    metricsFor(const uarch::SimResult &result) override
    {
        if (producerSession_)
            return producerSession_->metricsFor(result);
        return CoreSession::metricsFor(result);
    }

    const PerfModel *lastProducer() const override
    {
        return producerModel_;
    }

    /** 0 after an escalation: the returned result is exact. */
    double lastUncertainty() const override
    {
        return producerModel_ == &cycleModel_ ? 0.0
                                              : lastUncertainty_;
    }

  private:
    uarch::CoreConfig cfg_;
    workload::WrongPathGenerator &wrongPath_;
    const PerfModel &cheapModel_;
    const PerfModel &cycleModel_;
    double threshold_;
    std::unique_ptr<CoreSession> cheap_;
    std::unique_ptr<CoreSession> cycle_;   ///< created on escalation
    std::vector<std::vector<isa::MicroOp>> warmTraces_;
    const PerfModel *producerModel_ = nullptr;
    CoreSession *producerSession_ = nullptr;
    double lastUncertainty_ = 0.0;
};

} // namespace

std::uint64_t
cascadeEscalations()
{
    return escalations.load(std::memory_order_relaxed);
}

const PerfModel &
CascadeModel::cheapModel()
{
    return learnedSurrogateTrained() ? perfModel("learned")
                                     : perfModel("interval");
}

std::uint64_t
CascadeModel::cacheTag() const
{
    return cheapModel().cacheTag();
}

std::vector<std::uint64_t>
CascadeModel::cacheLookupTags() const
{
    return {CycleLevelModel::kCacheTag, cheapModel().cacheTag()};
}

const PerfModel *
CascadeModel::groundTruthModel() const
{
    return &perfModel("cycle");
}

void
CascadeModel::selectForRefinement(
    const std::vector<double> &efficiency, std::size_t budget,
    std::vector<std::size_t> &out) const
{
    out.clear();
    if (efficiency.empty() || budget == 0)
        return;
    const std::size_t want = std::min(
        budget, std::max<std::size_t>(
                    1, efficiency.size() / kRefineDivisor));
    std::vector<std::size_t> order(efficiency.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + want,
                      order.end(),
                      [&efficiency](std::size_t a, std::size_t b) {
                          return efficiency[a] > efficiency[b];
                      });
    out.assign(order.begin(), order.begin() + want);
}

std::unique_ptr<CoreSession>
CascadeModel::makeSession(const uarch::CoreConfig &cfg,
                          workload::WrongPathGenerator &wrong_path)
    const
{
    return std::make_unique<CascadeSession>(
        cfg, wrong_path, cheapModel(), perfModel("cycle"),
        cascadeThreshold());
}

} // namespace adaptsim::sim
