# Empty dependencies file for ablation_counters.
# This may be replaced when dependencies are built.
