# Empty compiler generated dependencies file for test_branch_predictor.
# This may be replaced when dependencies are built.
