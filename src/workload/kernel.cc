#include "workload/kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::workload
{

using isa::MicroOp;
using isa::OpClass;

namespace
{

/// Depth of the "recent destinations" window used for dependencies.
constexpr std::size_t recentWindow = 8;

} // namespace

Kernel::Kernel(const KernelParams &params, std::uint32_t kernel_id,
               std::uint64_t seed)
    : params_(params), kernelId_(kernel_id),
      rng_(seed ^ (std::uint64_t(kernel_id) << 32))
{
    if (params_.numBlocks < 1)
        fatal("kernel needs at least one basic block");
    if (params_.blockSize < 2)
        fatal("kernel blocks need at least 2 µops (body + branch)");

    branchKind_.resize(params_.numBlocks);
    biasTaken_.resize(params_.numBlocks);
    hardTakenP_.resize(params_.numBlocks);
    tripCount_.resize(params_.numBlocks);
    tripRemaining_.resize(params_.numBlocks);
    takenTarget_.resize(params_.numBlocks);

    // Deterministic per-block branch structure mirroring real branch
    // demographics: most branches are strongly biased, a share are
    // loop back-edges with fixed trip counts (periodic → learnable),
    // and a minority are inherently data-dependent.
    Rng layout_rng = rng_.split(0x1a70);
    for (int b = 0; b < params_.numBlocks; ++b) {
        const double roll = layout_rng.nextDouble();
        if (roll < params_.hardBranchFrac) {
            branchKind_[b] = BranchKind::Hard;
            // Data-dependent: taken probability 0.35..0.8.
            hardTakenP_[b] = 0.35 + 0.45 * layout_rng.nextDouble();
        } else if (roll <
                   params_.hardBranchFrac + params_.loopBranchFrac) {
            branchKind_[b] = BranchKind::Loop;
        } else {
            branchKind_[b] = BranchKind::Biased;
            biasTaken_[b] = layout_rng.nextBool(0.55);
        }
        // Trips drawn from [T/2, T]: kernels with a large
        // loopTripCount get genuinely long, predictable streaks
        // (loop exits are then rare), while small-T kernels keep
        // short, harder loops.
        const int half = std::max(1, params_.loopTripCount / 2);
        tripCount_[b] = half + static_cast<int>(
            layout_rng.nextBounded(
                std::max(1, params_.loopTripCount - half + 1)));
        tripRemaining_[b] = tripCount_[b];

        if (branchKind_[b] == BranchKind::Loop) {
            // Self-loop: the block is an inner-loop body executing
            // tripCount times (TTT...N), the cleanest and most
            // predictable pattern — mispredicting only the exit.
            takenTarget_[b] = b;
        } else {
            // Forward jump up to 16 blocks.
            const int fwd = 2 + static_cast<int>(
                layout_rng.nextBounded(16));
            takenTarget_[b] = (b + fwd) % params_.numBlocks;
        }
    }

    // Distinct kernels live in distinct code/data regions so that
    // cache interference across phase boundaries is realistic but
    // kernels do not alias perfectly.
    codeBase_ = 0x0040'0000ULL +
                (Addr(kernel_id) << 21); // 2MB code region/kernel
    dataBase_ = 0x1000'0000ULL +
                (Addr(kernel_id) << 24); // 16MB data region/kernel

    recentIntDests_.assign(recentWindow, 1);
    recentFpDests_.assign(recentWindow, 1);
}

Addr
Kernel::pcOf(int block, int offset) const
{
    return codeBase_ +
           (Addr(block) * params_.blockSize + Addr(offset)) * 4;
}

std::int16_t
Kernel::allocIntDest()
{
    // Registers 1..31 cycle; register 0 stays "always ready".
    intDestCursor_ = intDestCursor_ % (isa::numArchRegs - 1) + 1;
    const auto reg = static_cast<std::int16_t>(intDestCursor_);
    recentIntDests_[rng_.nextBounded(recentWindow)] = reg;
    return reg;
}

std::int16_t
Kernel::allocFpDest()
{
    fpDestCursor_ = fpDestCursor_ % (isa::numArchRegs - 1) + 1;
    const auto reg = static_cast<std::int16_t>(fpDestCursor_);
    recentFpDests_[rng_.nextBounded(recentWindow)] = reg;
    return reg;
}

std::int16_t
Kernel::pickIntSrc()
{
    // shortDepFrac controls serialisation end to end: very recent
    // producers (tight chains) with probability shortDepFrac, the
    // recent window with min(shortDepFrac, 0.3), and otherwise a
    // long-committed value (loop invariants, induction bases) that
    // is always ready at dispatch — the source of real numeric
    // code's instruction-level parallelism.
    if (rng_.nextBool(params_.shortDepFrac))
        return recentIntDests_[rng_.nextBounded(2)];
    if (rng_.nextBool(std::min(params_.shortDepFrac, 0.3)))
        return recentIntDests_[rng_.nextBounded(recentWindow)];
    return 0;
}

std::int16_t
Kernel::pickFpSrc()
{
    if (rng_.nextBool(params_.shortDepFrac))
        return recentFpDests_[rng_.nextBounded(2)];
    if (rng_.nextBool(std::min(params_.shortDepFrac, 0.3)))
        return recentFpDests_[rng_.nextBounded(recentWindow)];
    return 0;
}

Addr
Kernel::nextDataAddr()
{
    const std::uint64_t ws = std::max<std::uint64_t>(
        params_.dataWorkingSet, 64);
    if (rng_.nextBool(params_.randomAccessFrac)) {
        // 8-byte-aligned random access within the working set.
        return dataBase_ + (rng_.nextBounded(ws) & ~Addr(7));
    }
    streamPos_ = (streamPos_ +
                  static_cast<std::uint64_t>(params_.strideBytes)) % ws;
    return dataBase_ + (streamPos_ & ~Addr(7));
}

MicroOp
Kernel::makeBodyOp(OpClass cls)
{
    MicroOp op;
    op.pc = pcOf(block_, offset_);
    op.bbId = (kernelId_ << 16) | std::uint32_t(block_);
    op.opClass = cls;

    switch (cls) {
      case OpClass::Load:
        op.fpData = rng_.nextBool(
            params_.fracFpAlu + params_.fracFpMul > 0.05 ? 0.5 : 0.0);
        if (rng_.nextBool(params_.pointerChaseFrac)) {
            // Address depends on the previous load's result.
            op.srcReg0 = lastLoadDest_;
            op.effAddr = dataBase_ +
                (rng_.nextBounded(std::max<std::uint64_t>(
                     params_.dataWorkingSet, 64)) & ~Addr(7));
        } else {
            op.srcReg0 = pickIntSrc();
            op.effAddr = nextDataAddr();
        }
        op.destReg = op.fpData ? allocFpDest() : allocIntDest();
        if (!op.fpData)
            lastLoadDest_ = op.destReg;
        break;

      case OpClass::Store:
        op.fpData = false;
        op.srcReg0 = pickIntSrc();  // data
        op.srcReg1 = pickIntSrc();  // address base
        op.effAddr = nextDataAddr();
        break;

      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        op.srcReg0 = pickFpSrc();
        op.srcReg1 = pickFpSrc();
        op.destReg = allocFpDest();
        break;

      case OpClass::Nop:
        break;

      default: // integer ALU/mul/div
        op.srcReg0 = pickIntSrc();
        if (rng_.nextBool(0.7))
            op.srcReg1 = pickIntSrc();
        op.destReg = allocIntDest();
        break;
    }
    return op;
}

MicroOp
Kernel::makeBranch()
{
    MicroOp op;
    op.pc = pcOf(block_, params_.blockSize - 1);
    op.bbId = (kernelId_ << 16) | std::uint32_t(block_);
    op.opClass = OpClass::Branch;
    op.isCond = true;
    op.srcReg0 = pickIntSrc();

    // Outcome per the block's archetype.  Biased and loop branches
    // additionally flip with branchNoise, modelling occasional
    // data-dependent irregularity.
    bool taken;
    switch (branchKind_[block_]) {
      case BranchKind::Hard:
        taken = rng_.nextBool(hardTakenP_[block_]);
        break;
      case BranchKind::Loop:
        if (tripRemaining_[block_] > 0) {
            taken = true;
            --tripRemaining_[block_];
        } else {
            taken = false;
            tripRemaining_[block_] = tripCount_[block_];
        }
        if (rng_.nextBool(params_.branchNoise))
            taken = !taken;
        break;
      default:
        taken = biasTaken_[block_];
        if (rng_.nextBool(params_.branchNoise))
            taken = !taken;
        break;
    }

    const int fallthrough = (block_ + 1) % params_.numBlocks;
    const int next = taken ? takenTarget_[block_] : fallthrough;
    op.taken = taken;
    op.target = pcOf(next, 0);

    block_ = next;
    offset_ = 0;
    return op;
}

MicroOp
Kernel::next()
{
    if (offset_ == params_.blockSize - 1)
        return makeBranch();

    // Choose the op class from the mix.
    const double roll = rng_.nextDouble();
    double acc = 0.0;
    OpClass cls = OpClass::IntAlu;
    const KernelParams &p = params_;
    struct Slot { double frac; OpClass cls; };
    const Slot slots[] = {
        {p.fracLoad, OpClass::Load},
        {p.fracStore, OpClass::Store},
        {p.fracFpAlu, OpClass::FpAlu},
        {p.fracFpMul, OpClass::FpMul},
        {p.fracFpDiv, OpClass::FpDiv},
        {p.fracIntMul, OpClass::IntMul},
        {p.fracIntDiv, OpClass::IntDiv},
    };
    for (const auto &slot : slots) {
        acc += slot.frac;
        if (roll < acc) {
            cls = slot.cls;
            break;
        }
    }

    MicroOp op = makeBodyOp(cls);
    ++offset_;
    return op;
}

void
Kernel::skip(std::uint64_t count)
{
    // State transitions depend on the generated values, so skipping
    // must actually generate.  Kept as a named operation so callers
    // express intent and future checkpointing has a single seam.
    for (std::uint64_t i = 0; i < count; ++i)
        (void)next();
}

} // namespace adaptsim::workload
