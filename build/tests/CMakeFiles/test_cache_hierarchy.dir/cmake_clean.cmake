file(REMOVE_RECURSE
  "CMakeFiles/test_cache_hierarchy.dir/test_cache_hierarchy.cc.o"
  "CMakeFiles/test_cache_hierarchy.dir/test_cache_hierarchy.cc.o.d"
  "test_cache_hierarchy"
  "test_cache_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
