/**
 * @file
 * Shared last-level cache with bank and MSHR contention.
 *
 * One SharedLlc sits below every core's private L2 on a chip
 * (DESIGN.md §15).  Tags are set-associative with true LRU, like the
 * private uarch::Cache, but each line additionally records the core
 * that filled it so per-core occupancy can be read back as a model
 * feature.  Timing adds three contention terms on top of the hit
 * latency:
 *
 *   bus        fixed request/response transfer latency
 *   bank queue a bank serves one request per `bankService` cycles;
 *              requests arriving while it is busy wait
 *   MSHRs      each bank tracks `mshrsPerBank` outstanding misses; a
 *              miss arriving with all MSHRs busy waits for the
 *              earliest one to complete
 *
 * Thread-safe by construction: every public entry point takes the one
 * internal Mutex (annotated, common/sync.hh), so concurrent cores —
 * or a future threaded chip loop — can share an instance.  The chip's
 * round-robin loop is single-threaded and deterministic; the lock is
 * for safety, not ordering.
 */

#ifndef ADAPTSIM_UARCH_SHARED_LLC_HH
#define ADAPTSIM_UARCH_SHARED_LLC_HH

#include <cstdint>
#include <vector>

#include "common/sync.hh"
#include "common/types.hh"

namespace adaptsim::uarch
{

/**
 * Geometry and timing of one shared LLC instance.
 *
 * All latencies are cycles of the chip's fixed *reference clock* —
 * the mid-range 12 FO4/stage design point — not of any particular
 * core's clock.  Cores whose pipeline depth (and therefore clock)
 * differs convert at the boundary: the shared fabric and DRAM take
 * the same wall-time regardless of how any one core is clocked.
 */
struct LlcConfig
{
    /** Pipeline depth whose clock defines the LLC's cycle unit. */
    static constexpr int referenceDepthFo4 = 12;

    std::uint64_t bytes = 8 * 1024 * 1024;
    int assoc = 16;
    int lineBytes = 64;
    int banks = 8;            ///< power of two
    int mshrsPerBank = 8;     ///< outstanding misses per bank
    int hitLatency = 30;      ///< tag+data access (reference cycles)
    int busLatency = 8;       ///< core→LLC→core transfer (ref cycles)
    int bankService = 4;      ///< bank busy time per request
    int memLatency = 200;     ///< DRAM latency below the LLC
};

/** Banked, multi-core-aware shared L3 model. */
class SharedLlc
{
  public:
    SharedLlc(const LlcConfig &cfg, unsigned num_cores);

    /** Timing and outcome of one access. */
    struct Outcome
    {
        bool hit = false;
        int latency = 0;        ///< total, incl. queueing
        int queueCycles = 0;    ///< bank-queue + MSHR wait share
    };

    /**
     * Timed access by @p core at absolute core-clock time @p now.
     * Misses fill the line (evicting LRU) and mark @p core as owner.
     */
    Outcome access(Addr addr, bool write, unsigned core, Cycles now);

    /** Functional warm access: fills tags/ownership, no timing. */
    void warmAccess(Addr addr, bool write, unsigned core);

    /** Per-core accounting since construction (or reset). */
    struct CoreStats
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t queueCycles = 0;
        std::uint64_t linesOwned = 0;
    };

    CoreStats coreStats(unsigned core) const;

    /** Fraction of valid LLC lines currently owned by @p core. */
    double occupancyShare(unsigned core) const;

    /** @p core's miss ratio at the shared level (misses/accesses). */
    double sharedMissRatio(unsigned core) const;

    /** Zero every per-core counter (occupancy/tags are kept). */
    void resetStats();

    /** Invalidate all lines and ownership (stats are kept). */
    void flush();

    unsigned numCores() const { return numCores_; }
    const LlcConfig &config() const { return cfg_; }
    std::uint64_t numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = invalidAddr;
        std::uint32_t lruStamp = 0;
        std::uint16_t owner = 0;
        bool dirty = false;
    };

    struct Bank
    {
        Cycles nextFree = 0;
        std::vector<Cycles> mshrs;   ///< outstanding completion times
    };

    /** Tag lookup + fill under mu_; returns hit and updates owner
     *  accounting.  @p now stamps LRU recency deterministically. */
    bool lookupFill(Addr addr, bool write, unsigned core)
        ADAPTSIM_REQUIRES(mu_);

    std::uint64_t setIndex(Addr addr) const
    {
        return (addr / std::uint64_t(cfg_.lineBytes)) & (numSets_ - 1);
    }

    std::uint64_t bankIndex(Addr addr) const
    {
        return (addr / std::uint64_t(cfg_.lineBytes)) &
               (std::uint64_t(cfg_.banks) - 1);
    }

    LlcConfig cfg_;
    unsigned numCores_;
    std::uint64_t numSets_;

    mutable Mutex mu_;
    std::vector<Line> lines_ ADAPTSIM_GUARDED_BY(mu_);
    std::vector<Bank> banks_ ADAPTSIM_GUARDED_BY(mu_);
    std::vector<CoreStats> stats_ ADAPTSIM_GUARDED_BY(mu_);
    std::uint64_t validLines_ ADAPTSIM_GUARDED_BY(mu_) = 0;
    std::uint32_t lruClock_ ADAPTSIM_GUARDED_BY(mu_) = 0;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_SHARED_LLC_HH
