/**
 * @file
 * Tests of the streaming statistics helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace adaptsim;

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesDirect)
{
    Rng rng(99);
    RunningStat direct, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextGaussian() * 3.0 + 1.0;
        direct.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), direct.count());
    EXPECT_NEAR(a.mean(), direct.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), direct.variance(), 1e-9);
    EXPECT_EQ(a.min(), direct.min());
    EXPECT_EQ(a.max(), direct.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 3.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({5.0}), 5.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
    EXPECT_EQ(geomean({1.0, 0.0}), 0.0);   // non-positive guard
}

TEST(Stats, Mean)
{
    EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, Median)
{
    EXPECT_EQ(median({5.0, 1.0, 3.0}), 3.0);
    EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.0);   // lower middle
    EXPECT_EQ(median({}), 0.0);
}

TEST(Stats, Percentile)
{
    const std::vector<double> v = {10, 20, 30, 40, 50};
    EXPECT_NEAR(percentile(v, 0), 10.0, 1e-12);
    EXPECT_NEAR(percentile(v, 50), 30.0, 1e-12);
    EXPECT_NEAR(percentile(v, 100), 50.0, 1e-12);
    EXPECT_NEAR(percentile(v, 25), 20.0, 1e-12);
    EXPECT_NEAR(percentile(v, 10), 14.0, 1e-12);   // interpolated
}

TEST(Stats, EcdfFromRight)
{
    const std::vector<double> v = {0.5, 1.0, 1.5, 2.0};
    EXPECT_NEAR(ecdfFromRight(v, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(ecdfFromRight(v, 1.0), 0.75, 1e-12);
    EXPECT_NEAR(ecdfFromRight(v, 2.1), 0.0, 1e-12);
    EXPECT_EQ(ecdfFromRight({}, 1.0), 0.0);
}
