# Empty dependencies file for fig6_vs_ideal.
# This may be replaced when dependencies are built.
