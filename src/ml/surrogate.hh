/**
 * @file
 * Learned performance surrogate: a deterministic ridge-regression
 * ensemble that maps (configuration, trace-feature) vectors to a
 * primary performance target plus energy-per-instruction, with a
 * per-prediction confidence score.  The learned backend (src/sim)
 * trains the primary head on IPC; the heavy lifting of shaping the
 * nonlinear response lives in its feature map (learnedFeatures),
 * which includes analytically-motivated stall and throughput terms
 * the ridge solve only has to calibrate.
 *
 * This is the model behind the "learned" backend (src/sim).  Two
 * design constraints shape it:
 *
 *   - Training data is whatever cycle-level evaluations the `.evc`
 *     cache already holds (harvested by harness/learned_trainer), so
 *     sample counts are small (tens to hundreds) and the model must
 *     not overfit: standardized features, L2 regularisation, closed-
 *     form normal-equation solves.
 *   - The cascade policy needs to know when NOT to trust a
 *     prediction.  Confidence combines two signals: the spread of a
 *     K-fold ensemble (epistemic disagreement) and the distance of
 *     the query from the training distribution (novelty).  Both are
 *     reported in IPC units so ADAPTSIM_CASCADE_THRESHOLD has a
 *     physical meaning.
 *
 * Everything is bit-deterministic: fold assignment is round-robin by
 * sample index, solves are exact Cholesky factorisations, and fitted
 * weights serialize to hex-float text that round-trips exactly.
 */

#ifndef ADAPTSIM_ML_SURROGATE_HH
#define ADAPTSIM_ML_SURROGATE_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hh"

namespace adaptsim::ml
{

/** Fitting knobs. */
struct SurrogateOptions
{
    /** L2 strength on standardized (unit-variance) features; the
     *  bias weight is never regularised. */
    double lambda = 3e-3;

    /** Ensemble members for the confidence estimate; member k is
     *  fit with every k-th sample held out. */
    std::size_t ensembleSize = 4;

    /** Weight of the novelty (distance-to-training-set) term in the
     *  reported uncertainty, in primary-target units per unit of
     *  z-distance beyond the in-distribution radius. */
    double noveltyWeight = 0.08;
};

/** One prediction with its confidence. */
struct SurrogatePrediction
{
    double primary = 0.0;         ///< primary-target head
    double energyPerInst = 0.0;   ///< joules per committed op
    /** Estimated primary-target error: ensemble spread + novelty
     *  penalty.  Larger means less trustworthy; the cascade
     *  escalates when this exceeds ADAPTSIM_CASCADE_THRESHOLD. */
    double uncertainty = 0.0;
};

/** Ridge-regression surrogate with a K-fold confidence ensemble. */
class Surrogate
{
  public:
    /** Untrained surrogate: trained() is false, predict() fatals. */
    Surrogate() = default;

    /**
     * Fit on @p x (one row per sample) against per-sample @p primary
     * and @p energy_per_inst targets.  Deterministic; fatal on empty
     * or mismatched inputs.
     */
    static Surrogate fit(const Matrix &x,
                         const std::vector<double> &primary,
                         const std::vector<double> &energy_per_inst,
                         const SurrogateOptions &options = {});

    bool trained() const { return dim_ > 0; }
    std::size_t featureDim() const { return dim_; }
    std::size_t sampleCount() const { return samples_; }

    /** Predict IPC/energy for one feature vector (size featureDim). */
    SurrogatePrediction predict(std::span<const double> x) const;

    /**
     * Versioned text serialization of the fitted state.  Weights are
     * written as C99 hex-floats, so deserialize() reproduces
     * bit-identical predictions.
     */
    std::string serialize() const;

    /** Inverse of serialize(); false on malformed/unknown input. */
    static bool deserialize(const std::string &text, Surrogate &out);

  private:
    /** z = (x - mean) * invStd, with a trailing 1 bias term. */
    void standardise(std::span<const double> x,
                     std::vector<double> &z) const;

    std::size_t dim_ = 0;        ///< raw feature dimension
    std::size_t samples_ = 0;    ///< training set size
    double noveltyWeight_ = 0.0;
    std::vector<double> mean_;    ///< per-dim feature mean
    std::vector<double> invStd_;  ///< 1/std (0 for constant dims)
    std::vector<double> primaryW_; ///< dim_+1 weights (bias last)
    std::vector<double> energyW_;  ///< dim_+1 weights (bias last)
    /** Ensemble heads for the primary target. */
    std::vector<std::vector<double>> foldW_;
};

} // namespace adaptsim::ml

#endif // ADAPTSIM_ML_SURROGATE_HH
