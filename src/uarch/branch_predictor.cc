#include "uarch/branch_predictor.hh"
#include <algorithm>

#include <bit>

#include "common/logging.hh"

namespace adaptsim::uarch
{

BranchPredictor::BranchPredictor(int gshare_entries, int btb_entries,
                                 int btb_assoc)
    : gshareEntries_(gshare_entries),
      // History is capped below the full index width: with short
      // simulated intervals, very long histories fragment the PHT
      // into more contexts than can be trained (the PC bits then
      // carry the per-branch bias).
      historyBits_(std::min(10, static_cast<int>(std::bit_width(
          static_cast<unsigned>(gshare_entries))) - 1)),
      pht_(gshare_entries, 1),  // weakly not-taken
      btbSets_(btb_entries / btb_assoc),
      btbAssoc_(btb_assoc),
      btb_(btb_entries)
{
    if (std::popcount(static_cast<unsigned>(gshare_entries)) != 1)
        fatal("gshare entries must be a power of two");
    if (btbSets_ <= 0 ||
        std::popcount(static_cast<unsigned>(btbSets_)) != 1) {
        fatal("BTB sets must be a positive power of two");
    }
}

std::size_t
BranchPredictor::phtIndex(Addr pc, std::uint32_t history) const
{
    const std::uint32_t mask =
        static_cast<std::uint32_t>(gshareEntries_ - 1);
    return ((pc >> 2) ^ history) & mask;
}

BranchPredictor::Prediction
BranchPredictor::predict(Addr pc)
{
    Prediction pred;
    pred.history = history_;
    pred.taken = pht_[phtIndex(pc, history_)] >= 2;

    // BTB lookup.
    const std::size_t set = (pc >> 2) & (btbSets_ - 1);
    pred.btbHit = false;
    for (int w = 0; w < btbAssoc_; ++w) {
        if (btb_[set * btbAssoc_ + w].tag == pc) {
            pred.btbHit = true;
            btb_[set * btbAssoc_ + w].lruStamp = ++btbClock_;
            break;
        }
    }

    // Speculative history update with the predicted direction.
    history_ = ((history_ << 1) | (pred.taken ? 1u : 0u)) &
               ((1u << historyBits_) - 1u);
    return pred;
}

void
BranchPredictor::update(Addr pc, bool taken,
                        std::uint32_t fetch_history)
{
    // Train under the same history the prediction was made with.
    std::uint8_t &ctr = pht_[phtIndex(pc, fetch_history)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    if (taken) {
        const std::size_t set = (pc >> 2) & (btbSets_ - 1);
        // Hit? refresh; miss? replace LRU way.
        int victim = 0;
        std::uint32_t oldest = ~0u;
        for (int w = 0; w < btbAssoc_; ++w) {
            BtbEntry &e = btb_[set * btbAssoc_ + w];
            if (e.tag == pc) {
                e.lruStamp = ++btbClock_;
                return;
            }
            if (e.lruStamp < oldest) {
                oldest = e.lruStamp;
                victim = w;
            }
        }
        btb_[set * btbAssoc_ + victim] = {pc, ++btbClock_};
    }
}

void
BranchPredictor::recover(std::uint32_t history, bool taken)
{
    history_ = ((history << 1) | (taken ? 1u : 0u)) &
               ((1u << historyBits_) - 1u);
}

void
BranchPredictor::warmAccess(Addr pc, bool taken)
{
    std::uint8_t &ctr = pht_[phtIndex(pc, history_)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    if (taken) {
        const std::size_t set = (pc >> 2) & (btbSets_ - 1);
        int victim = 0;
        std::uint32_t oldest = ~0u;
        bool hit = false;
        for (int w = 0; w < btbAssoc_; ++w) {
            BtbEntry &e = btb_[set * btbAssoc_ + w];
            if (e.tag == pc) {
                e.lruStamp = ++btbClock_;
                hit = true;
                break;
            }
            if (e.lruStamp < oldest) {
                oldest = e.lruStamp;
                victim = w;
            }
        }
        if (!hit)
            btb_[set * btbAssoc_ + victim] = {pc, ++btbClock_};
    }
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
               ((1u << historyBits_) - 1u);
}

} // namespace adaptsim::uarch
