/**
 * @file
 * Tests of the int8 quantised inference path (Sec. VIII).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/quantised.hh"

using namespace adaptsim;
using namespace adaptsim::ml;

namespace
{

AdaptivityModel
randomModel(std::size_t dim, std::uint64_t seed)
{
    AdaptivityModel model(dim);
    Rng rng(seed);
    for (auto p : space::allParams()) {
        for (auto &w : model.classifier(p).weights().data())
            w = rng.nextGaussian();
    }
    return model;
}

std::vector<std::vector<double>>
randomFeatures(std::size_t dim, std::size_t count,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> out;
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<double> x(dim);
        for (auto &v : x)
            v = rng.nextDouble();
        x.back() = 1.0;
        out.push_back(std::move(x));
    }
    return out;
}

} // namespace

TEST(QuantiseFeatures, MapsUnitIntervalToBytes)
{
    const std::vector<double> x = {0.0, 0.5, 1.0, 2.0, -1.0};
    const auto q = quantiseFeatures(x);
    EXPECT_EQ(q[0], 0);
    EXPECT_EQ(q[1], 128);
    EXPECT_EQ(q[2], 255);
    EXPECT_EQ(q[3], 255);   // clamped
    EXPECT_EQ(q[4], 0);     // clamped
}

TEST(Quantised, StorageIsInt8PerWeight)
{
    const auto model = randomModel(24, 1);
    const QuantisedModel q(model);
    EXPECT_EQ(q.storageBytes(), model.totalWeights());
    // At the paper's scale this is KB-class storage.
    EXPECT_LT(q.storageBytes(), 64u * 1024);
}

TEST(Quantised, HighAgreementWithFullPrecision)
{
    const auto model = randomModel(32, 7);
    const QuantisedModel q(model);
    const auto features = randomFeatures(32, 50, 9);
    EXPECT_GT(q.agreement(model, features), 0.9);
}

TEST(Quantised, AgreementOnEmptyFeatureSetIsOne)
{
    const auto model = randomModel(8, 3);
    const QuantisedModel q(model);
    EXPECT_DOUBLE_EQ(q.agreement(model, {}), 1.0);
}

TEST(Quantised, PredictionsAreValidConfigurations)
{
    const auto model = randomModel(16, 5);
    const QuantisedModel q(model);
    const auto &ds = space::DesignSpace::the();
    for (const auto &x : randomFeatures(16, 20, 11)) {
        const auto cfg = q.predict(x);
        for (auto p : space::allParams())
            EXPECT_LT(cfg.index(p), ds.numValues(p));
    }
}

TEST(Quantised, ScaleInvarianceOfArgmax)
{
    // Scaling all weights of one classifier must not change the
    // quantised prediction (symmetric quantisation).
    auto model = randomModel(12, 13);
    const QuantisedModel q1(model);
    for (auto p : space::allParams()) {
        for (auto &w : model.classifier(p).weights().data())
            w *= 3.7;
    }
    const QuantisedModel q2(model);
    const auto features = randomFeatures(12, 25, 17);
    std::size_t matches = 0, total = 0;
    for (const auto &x : features) {
        for (auto p : space::allParams()) {
            ++total;
            matches += q1.predict(x).index(p) ==
                       q2.predict(x).index(p);
        }
    }
    EXPECT_GT(double(matches) / double(total), 0.97);
}
