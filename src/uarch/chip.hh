/**
 * @file
 * Multi-core chip model: N cores with private L1/L2 hierarchies over
 * one shared, banked LLC, driven by a round-robin interleaved cycle
 * loop (DESIGN.md §15).
 *
 * Interleaving is quantum-based in the Graphite/Pac-Sim lax-
 * synchronisation style: each core advances `quantum` µops per turn
 * on its own private clock, and cross-core timing only meets at the
 * shared LLC, where accesses are stamped with the owning core's
 * absolute elapsed time.  A one-core chip attaches no LLC and runs
 * the trace in a single slice, making it bit-identical to the
 * original single-core uarch::Core path (the frozen golden matrix
 * holds on both).
 */

#ifndef ADAPTSIM_UARCH_CHIP_HH
#define ADAPTSIM_UARCH_CHIP_HH

#include <memory>
#include <span>
#include <vector>

#include "uarch/core.hh"
#include "uarch/core_config.hh"
#include "uarch/shared_llc.hh"

namespace adaptsim::uarch
{

/** Result of one multi-core timing run. */
struct ChipResult
{
    /** Per-core timing and events (cycles are per-core clocks). */
    std::vector<SimResult> cores;

    /** Per-core fraction of LLC lines owned at the end of the run
     *  (all zero on a single-core chip). */
    std::vector<double> occupancyShare;

    /** Per-core LLC miss ratio over this run's accesses (zero on a
     *  single-core chip). */
    std::vector<double> sharedMissRatio;
};

/** N cores + shared LLC, round-robin interleaved. */
class Chip
{
  public:
    /**
     * @param cfg chip geometry; one core config per core.
     * @param wrong_paths one wrong-path µop source per core (their
     *        lifetime must cover the chip's).
     */
    Chip(const ChipConfig &cfg,
         const std::vector<workload::WrongPathGenerator *>
             &wrong_paths);

    /** Functionally warm one core's private hierarchy (and the
     *  shared LLC) with @p trace. */
    void warm(std::size_t core, std::span<const isa::MicroOp> trace);

    /**
     * Timed co-run: one trace per core (empty spans are allowed and
     * leave that core idle).  @p observers is either empty or one
     * (possibly null) observer per core.
     */
    ChipResult
    run(const std::vector<std::span<const isa::MicroOp>> &traces,
        const std::vector<SimObserver *> &observers = {});

    /**
     * Rebuild one core at a new design point, modelling the
     * reconfiguration flush (private caches and predictor restart
     * cold; the shared LLC keeps its contents).  The core's elapsed
     * clock is preserved.
     */
    void reconfigureCore(std::size_t core,
                         const space::Configuration &c);

    const ChipConfig &config() const { return cfg_; }
    std::size_t numCores() const { return cores_.size(); }
    Core &core(std::size_t i) { return *cores_[i]; }
    const Core &core(std::size_t i) const { return *cores_[i]; }

    /** The shared LLC, or nullptr on a single-core chip. */
    const SharedLlc *llc() const { return llc_.get(); }

    /** Core @p i's accumulated clock across run() calls. */
    Cycles elapsed(std::size_t i) const { return elapsed_[i]; }

  private:
    ChipConfig cfg_;
    std::vector<workload::WrongPathGenerator *> wrongPaths_;
    std::unique_ptr<SharedLlc> llc_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Cycles> elapsed_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_CHIP_HH
