/**
 * @file
 * Tests of the interval trace LRU cache.
 */

#include <gtest/gtest.h>

#include "workload/spec_suite.hh"
#include "workload/trace_cache.hh"

using namespace adaptsim::workload;

TEST(TraceCache, MissThenHit)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(4);
    const auto a = cache.get(wl, 1000, 500);
    EXPECT_EQ(cache.misses(), 1u);
    const auto b = cache.get(wl, 1000, 500);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a.get(), b.get());   // shared, not regenerated
    EXPECT_EQ(a->size(), 500u);
}

TEST(TraceCache, DistinctKeysAreDistinctEntries)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(4);
    (void)cache.get(wl, 0, 100);
    (void)cache.get(wl, 100, 100);
    (void)cache.get(wl, 0, 200);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(TraceCache, EvictsLeastRecentlyUsed)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(2);
    (void)cache.get(wl, 0, 64);      // A
    (void)cache.get(wl, 64, 64);     // B
    (void)cache.get(wl, 0, 64);      // A again (hit, refresh)
    (void)cache.get(wl, 128, 64);    // C — evicts B
    EXPECT_EQ(cache.size(), 2u);
    (void)cache.get(wl, 0, 64);      // A still cached
    EXPECT_EQ(cache.hits(), 2u);
    (void)cache.get(wl, 64, 64);     // B was evicted
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(TraceCache, DifferentWorkloadsDoNotCollide)
{
    const auto a = specBenchmark("gzip", 50000);
    const auto b = specBenchmark("mcf", 50000);
    TraceCache cache(4);
    const auto ta = cache.get(a, 0, 50);
    const auto tb = cache.get(b, 0, 50);
    EXPECT_EQ(cache.misses(), 2u);
    // Same nominal code region, but the op streams must differ.
    int same = 0;
    for (std::size_t i = 0; i < 50; ++i)
        same += (*ta)[i].opClass == (*tb)[i].opClass &&
                (*ta)[i].pc == (*tb)[i].pc;
    EXPECT_LT(same, 40);
}

TEST(TraceCache, ContentMatchesDirectGeneration)
{
    const auto wl = specBenchmark("swim", 50000);
    TraceCache cache(4);
    const auto cached = cache.get(wl, 2000, 300);
    const auto direct = wl.generate(2000, 300);
    ASSERT_EQ(cached->size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ((*cached)[i].pc, direct[i].pc);
}
