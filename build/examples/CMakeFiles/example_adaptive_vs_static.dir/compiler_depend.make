# Empty compiler generated dependencies file for example_adaptive_vs_static.
# This may be replaced when dependencies are built.
