#include "common/histogram.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace adaptsim
{

Histogram::Histogram(Binning binning, std::size_t num_bins,
                     std::uint64_t lo, std::uint64_t step)
    : binning_(binning), lo_(lo), step_(step), counts_(num_bins, 0)
{
    if (num_bins == 0)
        panic("Histogram needs at least one bin");
    if (binning == Binning::Linear && step == 0)
        panic("Histogram with zero step");
}

std::size_t
Histogram::binIndex(std::uint64_t value) const
{
    if (binning_ == Binning::Linear) {
        if (value < lo_)
            return 0;
        const std::uint64_t idx = (value - lo_) / step_;
        return std::min<std::uint64_t>(idx, counts_.size() - 1);
    }
    // Log2: bin 0 holds value 0, bin i>0 holds [2^(i-1), 2^i).
    if (value == 0)
        return 0;
    std::size_t idx = 1;
    std::uint64_t edge = 1;
    while (value >= edge * 2 && idx + 1 < counts_.size()) {
        edge *= 2;
        ++idx;
    }
    if (value >= edge * 2)
        return counts_.size() - 1;
    return idx;
}

std::uint64_t
Histogram::binLowerEdge(std::size_t i) const
{
    if (binning_ == Binning::Linear)
        return lo_ + i * step_;
    if (i == 0)
        return 0;
    return std::uint64_t(1) << (i - 1);
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    if (counts_.empty())
        panic("add() on default-constructed Histogram");
    counts_[binIndex(value)] += weight;
    totalWeight_ += weight;
    numSamples_ += 1;
    weightedValueSum_ += static_cast<double>(value) *
                         static_cast<double>(weight);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() != counts_.size() ||
        other.binning_ != binning_ || other.lo_ != lo_ ||
        other.step_ != step_) {
        panic("Histogram::merge with mismatched geometry");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    totalWeight_ += other.totalWeight_;
    numSamples_ += other.numSamples_;
    weightedValueSum_ += other.weightedValueSum_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    totalWeight_ = 0;
    numSamples_ = 0;
    weightedValueSum_ = 0.0;
}

std::vector<double>
Histogram::normalised() const
{
    std::vector<double> out(counts_.size(), 0.0);
    if (totalWeight_ == 0)
        return out;
    const double inv = 1.0 / static_cast<double>(totalWeight_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = static_cast<double>(counts_[i]) * inv;
    return out;
}

double
Histogram::mean() const
{
    if (totalWeight_ == 0)
        return 0.0;
    return weightedValueSum_ / static_cast<double>(totalWeight_);
}

std::uint64_t
Histogram::quantile(double fraction) const
{
    if (totalWeight_ == 0)
        return binLowerEdge(0);
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(totalWeight_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += static_cast<double>(counts_[i]);
        if (cumulative >= target)
            return binLowerEdge(i);
    }
    return binLowerEdge(counts_.size() - 1);
}

std::size_t
Histogram::modeBin() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts_.size(); ++i) {
        if (counts_[i] > counts_[best])
            best = i;
    }
    return best;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << binLowerEdge(i) << ':' << counts_[i];
    }
    return os.str();
}

} // namespace adaptsim
