#include "harness/thread_pool.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.hh"

namespace adaptsim::harness
{

namespace
{

#if ADAPTSIM_OBS_ENABLED

/** Pool metrics, registered once per process.  Worker utilisation
 *  is busy.micros / capacity.micros (capacity = batch wall time ×
 *  participating workers), derived by the obs exit report. */
struct PoolMetrics
{
    obs::Counter &batches =
        obs::Registry::global().counter("pool/batches");
    obs::Counter &jobs = obs::Registry::global().counter("pool/jobs");
    obs::Counter &busyMicros =
        obs::Registry::global().counter("pool/busy.micros");
    obs::Counter &capacityMicros =
        obs::Registry::global().counter("pool/capacity.micros");
    obs::Histogram &batchSeconds = obs::spanHistogram("pool/batch");
    obs::Histogram &jobSeconds = obs::spanHistogram("pool/job");
    obs::Histogram &queueWaitSeconds =
        obs::spanHistogram("pool/queue_wait");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics;
    return metrics;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

#endif // ADAPTSIM_OBS_ENABLED

/** Pool whose job the current thread is executing, if any. */
thread_local const ThreadPool *tls_running_pool = nullptr;

/** RAII marker for "this thread is running jobs of pool p".
 *  Restores the previous marker so nested use of *distinct* pools
 *  (inline or pooled) keeps reentrancy detection correct. */
struct RunningScope
{
    explicit RunningScope(const ThreadPool *p)
        : prev(tls_running_pool)
    {
        tls_running_pool = p;
    }
    ~RunningScope() { tls_running_pool = prev; }
    const ThreadPool *prev;
};

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads)
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::runJobs(const std::function<void(std::size_t)> &fn,
                    std::size_t n)
{
    std::size_t claimed = 0;
    for (;;) {
        const std::size_t i =
            nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        ++claimed;
        // After a failure, drain the remaining claims without
        // running them so remaining_ still reaches zero.
        if (abort_.load(std::memory_order_relaxed))
            continue;
#if ADAPTSIM_OBS_ENABLED
        const auto t0 = std::chrono::steady_clock::now();
#endif
        try {
            fn(i);
        } catch (...) {
            abort_.store(true, std::memory_order_relaxed);
            MutexLock lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
#if ADAPTSIM_OBS_ENABLED
        auto &m = poolMetrics();
        const double secs = secondsSince(t0);
        m.jobSeconds.record(secs);
        m.busyMicros.add(
            static_cast<std::uint64_t>(secs * 1e6));
#endif
    }
    return claimed;
}

void
ThreadPool::workerLoop(unsigned worker_index)
{
#if ADAPTSIM_OBS_ENABLED
    if (auto *writer = obs::TraceWriter::active())
        writer->nameCurrentThread(
            "pool-worker-" + std::to_string(worker_index));
#else
    (void)worker_index;
#endif
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t n = 0;
        std::chrono::steady_clock::time_point submitted;
        {
            MutexLock lock(mutex_);
            wake_.wait(lock, [&] {
                mutex_.assertHeld();
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_)
                return;
            seen_generation = generation_;
            job = job_;
            n = jobSize_;
            submitted = batchSubmit_;
        }
        // A spurious/late wake-up can observe a batch that already
        // completed and was cleared; there is nothing left to claim.
        if (!job)
            continue;

#if ADAPTSIM_OBS_ENABLED
        poolMetrics().queueWaitSeconds.record(
            std::max(0.0, secondsSince(submitted)));
#endif

        std::size_t claimed = 0;
        {
            RunningScope scope(this);
            claimed = runJobs(*job, n);
        }

        {
            MutexLock lock(mutex_);
            remaining_ -= claimed;
            if (remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (tls_running_pool == this)
        throw std::logic_error(
            "ThreadPool::parallelFor called from inside one of its "
            "own jobs (reentrant use is not supported)");
    if (n == 0)
        return;

    const bool inline_run = threads_ <= 1 || n == 1;
#if ADAPTSIM_OBS_ENABLED
    // Record the batch on every exit path (including rethrow).
    struct BatchGuard
    {
        std::chrono::steady_clock::time_point t0;
        std::uint64_t workers;
        std::size_t jobs;

        ~BatchGuard()
        {
            auto &m = poolMetrics();
            const double secs = secondsSince(t0);
            m.batches.add(1);
            m.jobs.add(jobs);
            m.batchSeconds.record(secs);
            m.capacityMicros.add(
                static_cast<std::uint64_t>(secs * 1e6) * workers);
        }
    } batch_guard{std::chrono::steady_clock::now(),
                  inline_run ? 1u : threads_, n};
#endif

    if (inline_run) {
        RunningScope scope(this);
        for (std::size_t i = 0; i < n; ++i) {
#if ADAPTSIM_OBS_ENABLED
            const auto t0 = std::chrono::steady_clock::now();
#endif
            fn(i);
#if ADAPTSIM_OBS_ENABLED
            auto &m = poolMetrics();
            const double secs = secondsSince(t0);
            m.jobSeconds.record(secs);
            m.busyMicros.add(
                static_cast<std::uint64_t>(secs * 1e6));
#endif
        }
        return;
    }

    // One batch at a time; concurrent external callers queue here.
    MutexLock submit(submitMutex_);
    {
        MutexLock lock(mutex_);
        job_ = &fn;
        jobSize_ = n;
        batchSubmit_ = std::chrono::steady_clock::now();
        nextIndex_.store(0, std::memory_order_relaxed);
        abort_.store(false, std::memory_order_relaxed);
        firstError_ = nullptr;
        remaining_ = n;
        ++generation_;
    }
    wake_.notify_all();

    std::exception_ptr error;
    {
        MutexLock lock(mutex_);
        done_.wait(lock, [&] {
            mutex_.assertHeld();
            return remaining_ == 0;
        });
        job_ = nullptr;
        jobSize_ = 0;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace adaptsim::harness
