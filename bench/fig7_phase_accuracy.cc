/**
 * @file
 * Fig. 7: phase-level accuracy of the predictive model.
 * (a) distribution + right-accumulated ECDF of per-phase efficiency
 *     relative to the baseline (paper: better than baseline on 80%
 *     of phases; ≥2x on ~33%);
 * (b) the same relative to each phase's best sampled configuration
 *     (paper: ≥74% of the best on half the phases; ~9% of phases
 *     beat the sampled best).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/ascii_plot.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

namespace
{

void
printDistribution(const char *title,
                  const std::vector<double> &ratios,
                  const std::vector<double> &bin_edges)
{
    TextTable table;
    table.setHeader({"Bin (>=)", "Phases %", "ECDF % (>= bin)"});
    for (std::size_t i = 0; i < bin_edges.size(); ++i) {
        const double lo = bin_edges[i];
        const double hi = i + 1 < bin_edges.size() ?
            bin_edges[i + 1] : 1e300;
        std::size_t in_bin = 0;
        for (double r : ratios) {
            if (r >= lo && r < hi)
                ++in_bin;
        }
        table.addRow(
            {TextTable::num(lo),
             TextTable::num(100.0 * double(in_bin) /
                            double(ratios.size()), 1),
             TextTable::num(100.0 * ecdfFromRight(ratios, lo), 1)});
    }
    std::printf("%s\n%s\n", title, table.render().c_str());
}

} // namespace

int
main()
{
    harness::Experiment exp;
    const auto &advanced =
        exp.modelResults(counters::FeatureSet::Advanced);

    std::vector<double> vs_baseline;
    std::vector<double> vs_best;
    for (std::size_t i = 0; i < exp.phases().size(); ++i) {
        const double base = exp.baselineEfficiency(i);
        const double best =
            harness::bestDynamic(exp.phases()[i]).efficiency;
        const double eff = advanced[i].efficiency;
        if (base > 0.0)
            vs_baseline.push_back(eff / base);
        if (best > 0.0)
            vs_best.push_back(eff / best);
    }

    std::printf("Fig. 7: per-phase accuracy over %zu phases\n\n",
                vs_baseline.size());

    printDistribution(
        "(a) efficiency relative to the baseline",
        vs_baseline,
        {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0});
    std::printf(
        "better than baseline: %.0f%% of phases (paper ~80%%)\n"
        "at least 2x baseline: %.0f%% of phases (paper ~33%%)\n"
        "max improvement: %.1fx (paper up to 32x)\n\n",
        100.0 * ecdfFromRight(vs_baseline, 1.0),
        100.0 * ecdfFromRight(vs_baseline, 2.0),
        *std::max_element(vs_baseline.begin(), vs_baseline.end()));

    printDistribution(
        "(b) efficiency relative to the best sampled configuration",
        vs_best, {0.0, 0.25, 0.5, 0.74, 0.9, 1.0, 1.1});
    std::printf(
        "phases at >= 74%% of the best: %.0f%% (paper ~50%%)\n"
        "phases beating the sampled best: %.0f%% (paper ~9%%)\n"
        "median fraction of best achieved: %.2f\n",
        100.0 * ecdfFromRight(vs_best, 0.74),
        100.0 * ecdfFromRight(vs_best, 1.0 + 1e-12),
        median(vs_best));
    return 0;
}
