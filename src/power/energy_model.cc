#include "power/energy_model.hh"

#include "power/cacti.hh"
#include "power/frequency.hh"

namespace adaptsim::power
{

namespace
{

// Functional unit per-operation energies (nJ).
constexpr double aluOpNj = 0.040;
constexpr double mulOpNj = 0.120;
constexpr double divOpNj = 0.300;
constexpr double fpOpNj = 0.150;
constexpr double fpMulOpNj = 0.200;
constexpr double fpDivOpNj = 0.500;
constexpr double aguOpNj = 0.030;

// Clock tree / latch energy per latch-column per cycle (nJ).
constexpr double clockPerLatchColNj = 0.018;

// Baseline core leakage not attributed to a sized structure (W).
constexpr double coreBaseLeakW = 0.5;

// Bytes of payload per entry of the window structures.
constexpr int robEntryBytes = 16;
constexpr int iqEntryBytes = 12;
constexpr int lsqEntryBytes = 16;
constexpr int btbEntryBytes = 8;

} // namespace

const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::ICache: return "icache";
      case Structure::DCache: return "dcache";
      case Structure::L2Cache: return "l2";
      case Structure::RegFile: return "regfile";
      case Structure::Rob: return "rob";
      case Structure::IssueQueue: return "iq";
      case Structure::Lsq: return "lsq";
      case Structure::Bpred: return "bpred";
      case Structure::FuncUnits: return "fu";
      case Structure::ClockTree: return "clock";
      case Structure::Dram: return "dram";
      default: return "invalid";
    }
}

double
EnergyBreakdown::totalDynamicJ() const
{
    double total = 0.0;
    for (double j : dynamicJ)
        total += j;
    return total;
}

EnergyModel::EnergyModel(const uarch::CoreConfig &cfg)
    : cfg_(cfg)
{
    icAccessNj_ = sramAccessEnergyNj(cfg.icacheBytes,
                                     uarch::CoreConfig::l1Assoc);
    dcAccessNj_ = sramAccessEnergyNj(cfg.dcacheBytes,
                                     uarch::CoreConfig::l1Assoc);
    l2AccessNj_ = sramAccessEnergyNj(cfg.l2Bytes,
                                     uarch::CoreConfig::l2Assoc);
    rfAccessNj_ = rfAccessEnergyNj(cfg.rfSize, cfg.rfRdPorts,
                                   cfg.rfWrPorts);
    robAccessNj_ = arrayAccessEnergyNj(cfg.robSize, robEntryBytes);
    iqAccessNj_ = arrayAccessEnergyNj(cfg.iqSize, iqEntryBytes);
    iqWakeupPerEntryNj_ = camSearchEnergyNj(1);
    lsqAccessNj_ = arrayAccessEnergyNj(cfg.lsqSize, lsqEntryBytes);
    lsqSearchPerEntryNj_ = camSearchEnergyNj(1);
    gshareAccessNj_ = arrayAccessEnergyNj(cfg.gshareEntries, 1);
    btbAccessNj_ = arrayAccessEnergyNj(cfg.btbEntries,
                                       btbEntryBytes);
    // One latch column per pipeline stage, scaled by machine width.
    clockPerCycleNj_ = clockPerLatchColNj *
                       static_cast<double>(cfg.width) *
                       static_cast<double>(cfg.numStages);

    leakageW_ = coreBaseLeakW +
        sramLeakageW(cfg.icacheBytes) +
        sramLeakageW(cfg.dcacheBytes) +
        sramLeakageW(cfg.l2Bytes) +
        2.0 * rfLeakageW(cfg.rfSize, cfg.rfRdPorts, cfg.rfWrPorts) +
        arrayLeakageW(cfg.robSize, robEntryBytes) +
        arrayLeakageW(cfg.iqSize, iqEntryBytes) +
        arrayLeakageW(cfg.lsqSize, lsqEntryBytes) +
        arrayLeakageW(cfg.gshareEntries, 1) +
        arrayLeakageW(cfg.btbEntries, btbEntryBytes) +
        // Wider, deeper cores leak more through datapath logic.
        0.05 * static_cast<double>(cfg.width) +
        0.01 * static_cast<double>(cfg.numStages);
}

double
EnergyModel::clockTreeWattsAtFullSpeed() const
{
    return clockPerCycleNj_ * 1e-9 * cfg_.clockHz;
}

EnergyBreakdown
EnergyModel::evaluate(const uarch::EventCounts &ev) const
{
    EnergyBreakdown out;
    auto &dj = out.dynamicJ;
    auto at = [&](Structure s) -> double & {
        return dj[static_cast<std::size_t>(s)];
    };
    const double nj = 1e-9;

    at(Structure::ICache) = nj * icAccessNj_ *
        static_cast<double>(ev.icAccesses);
    at(Structure::DCache) = nj * dcAccessNj_ *
        static_cast<double>(ev.dcAccesses + ev.dcWritebacks);
    at(Structure::L2Cache) = nj * l2AccessNj_ *
        static_cast<double>(ev.l2Accesses + ev.l2Misses);
    at(Structure::RegFile) = nj * rfAccessNj_ *
        static_cast<double>(ev.rfReads + ev.rfWrites);
    at(Structure::Rob) = nj * robAccessNj_ *
        static_cast<double>(ev.robWrites + ev.robReads +
                            ev.squashedOps);
    at(Structure::IssueQueue) = nj *
        (iqAccessNj_ * static_cast<double>(ev.iqWrites +
                                           ev.iqIssues) +
         iqWakeupPerEntryNj_ * static_cast<double>(ev.iqWakeups));
    at(Structure::Lsq) = nj *
        (lsqAccessNj_ * static_cast<double>(ev.lsqInserts) +
         lsqSearchPerEntryNj_ *
             static_cast<double>(ev.lsqSearches));
    at(Structure::Bpred) = nj *
        (gshareAccessNj_ * static_cast<double>(ev.bpredLookups +
                                               ev.bpredUpdates) +
         btbAccessNj_ * static_cast<double>(ev.btbLookups));
    at(Structure::FuncUnits) = nj *
        (aluOpNj * static_cast<double>(ev.aluOps) +
         mulOpNj * static_cast<double>(ev.mulOps) +
         divOpNj * static_cast<double>(ev.divOps) +
         fpOpNj * static_cast<double>(ev.fpOps) +
         fpMulOpNj * static_cast<double>(ev.fpMulOps) +
         fpDivOpNj * static_cast<double>(ev.fpDivOps) +
         aguOpNj * static_cast<double>(ev.memPortOps));
    at(Structure::ClockTree) = nj * clockPerCycleNj_ *
        static_cast<double>(ev.cycles);
    at(Structure::Dram) = nj * dramAccessEnergyNj *
        static_cast<double>(ev.memAccesses);

    const double seconds = static_cast<double>(ev.cycles) *
                           cfg_.clockPeriodSec;
    out.leakageJ = leakageW_ * seconds;
    return out;
}

} // namespace adaptsim::power
