file(REMOVE_RECURSE
  "CMakeFiles/test_quantised.dir/test_quantised.cc.o"
  "CMakeFiles/test_quantised.dir/test_quantised.cc.o.d"
  "test_quantised"
  "test_quantised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
