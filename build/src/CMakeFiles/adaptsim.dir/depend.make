# Empty dependencies file for adaptsim.
# This may be replaced when dependencies are built.
