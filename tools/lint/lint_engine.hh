/**
 * @file
 * adaptsim-lint rule engine.
 *
 * A self-contained (no dependency on the adaptsim library) C++20
 * source scanner enforcing the project invariants that keep
 * simulation bit-reproducible and the logs clean:
 *
 *   determinism             no rand()/srand()/std::random_device/
 *                           time()/system_clock/std::mt19937 inside
 *                           the simulation and experiment core
 *                           (src/uarch, src/ml, src/workload,
 *                           src/phase, src/sim, src/harness,
 *                           src/control) — all randomness must flow
 *                           through common/rng
 *   env                     std::getenv only inside src/common/env.cc;
 *                           everything else goes through the helpers
 *   logging                 no raw stderr writes (std::cerr,
 *                           fprintf/fputs/fputc to stderr) outside
 *                           common/logging.hh — use panic/fatal/warn/
 *                           inform or lockedWrite
 *   header-guard            every header starts with #pragma once or
 *                           a matching #ifndef/#define pair
 *   header-using-namespace  no `using namespace` at namespace scope
 *                           in a header
 *
 * Scanning is comment- and string-literal-aware: banned tokens inside
 * comments, string literals, char literals, and raw strings are never
 * flagged.  A violation is suppressed by putting
 *
 *     // lint:allow(<rule>[, <rule>...])
 *
 * in a comment on the offending line (for header-guard: on the line
 * the diagnostic points at, i.e. the first non-comment line).
 */

#ifndef ADAPTSIM_TOOLS_LINT_ENGINE_HH
#define ADAPTSIM_TOOLS_LINT_ENGINE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace adaptsim::lint
{

/** One rule violation at a source location. */
struct Diagnostic
{
    std::string file;    ///< path as handed to lintSource()
    std::size_t line;    ///< 1-based line number
    std::string rule;    ///< rule identifier (e.g. "determinism")
    std::string message; ///< human-readable explanation
};

/** Render as the canonical "file:line: [rule] message" form. */
std::string render(const Diagnostic &d);

/**
 * Lint one translation unit.  @p path must be repo-relative with
 * forward slashes (it selects which rules apply and which exemptions
 * hold); @p text is the file's full contents.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &text);

/** Result of walking a source tree. */
struct TreeResult
{
    std::vector<Diagnostic> diagnostics;
    std::size_t filesScanned = 0;
};

/**
 * Walk @p subdirs (relative to @p root) recursively and lint every
 * .cc/.hh/.cpp/.hpp file, in sorted path order for deterministic
 * output.  Missing subdirs are an error (throws std::runtime_error),
 * as a misspelt directory would otherwise pass vacuously.
 */
TreeResult lintTree(const std::string &root,
                    const std::vector<std::string> &subdirs);

} // namespace adaptsim::lint

#endif // ADAPTSIM_TOOLS_LINT_ENGINE_HH
