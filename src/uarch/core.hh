/**
 * @file
 * Core facade: one configured processor with its caches and branch
 * predictor, supporting functional warm-up followed by a detailed
 * timing run (the paper warms structures before every measurement).
 */

#ifndef ADAPTSIM_UARCH_CORE_HH
#define ADAPTSIM_UARCH_CORE_HH

#include <span>

#include "uarch/branch_predictor.hh"
#include "uarch/cache_hierarchy.hh"
#include "uarch/core_config.hh"
#include "uarch/pipeline.hh"
#include "workload/wrong_path.hh"

namespace adaptsim::uarch
{

/** One simulated core instance. */
class Core
{
  public:
    /**
     * @param cfg derived configuration.
     * @param wrong_path wrong-path µop source for this workload.
     * @param llc shared LLC this core's L2 misses drain into, or
     *        nullptr for the single-core flat-DRAM model.
     * @param core_id index of this core at the shared level.
     */
    Core(const CoreConfig &cfg,
         workload::WrongPathGenerator &wrong_path,
         SharedLlc *llc = nullptr, unsigned core_id = 0);

    /**
     * Functionally warm caches and branch predictor with @p trace
     * (no timing, no statistics) — the "warm for 10M instructions"
     * step of Sec. V-A, scaled.
     */
    void warm(std::span<const isa::MicroOp> trace);

    /**
     * Detailed timing simulation of @p trace on this core.
     * @param observer optional profiling counter sink.
     */
    SimResult run(std::span<const isa::MicroOp> trace,
                  SimObserver *observer = nullptr);

    const CoreConfig &config() const { return cfg_; }
    const CacheHierarchy &caches() const { return caches_; }

    /** Absolute-time base for shared-LLC contention timing; the chip
     *  loop sets this to the core's elapsed cycles each quantum. */
    void setTimeBase(Cycles base) { caches_.setTimeBase(base); }

  private:
    CoreConfig cfg_;
    CacheHierarchy caches_;
    BranchPredictor bpred_;
    workload::WrongPathGenerator &wrongPath_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_CORE_HH
