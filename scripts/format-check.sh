#!/usr/bin/env bash
# Check-only clang-format drift report against the repo .clang-format.
# Advisory for now: not wired into tier1.sh, so it reports drift
# without blocking; CI runs it as a non-fatal step.  Skips gracefully
# when clang-format is not installed.
#
#   scripts/format-check.sh          report drifted files, exit 1 if any
#   CLANG_FORMAT=clang-format-18 scripts/format-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fmt=${CLANG_FORMAT:-clang-format}
if ! command -v "$fmt" >/dev/null 2>&1; then
    echo "format-check: $fmt not found; skipping" \
         "(install clang-format to enable)"
    exit 0
fi

fail=0
count=0
while IFS= read -r -d '' f; do
    count=$((count + 1))
    if ! "$fmt" --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "format-check: $f needs formatting"
        fail=1
    fi
done < <(find src tools tests bench examples \
    \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \
       -o -name '*.hpp' \) -print0)

if [ "$fail" = 0 ]; then
    echo "format-check: $count file(s) clean"
fi
exit "$fail"
