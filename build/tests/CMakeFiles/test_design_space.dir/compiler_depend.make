# Empty compiler generated dependencies file for test_design_space.
# This may be replaced when dependencies are built.
