/**
 * @file
 * Clang thread-safety-analysis attribute macros.
 *
 * Under clang these expand to the capability attributes consumed by
 * `-Wthread-safety` (the tier-1 `-DADAPTSIM_THREAD_SAFETY=ON` build
 * turns them into hard errors); under every other compiler they
 * expand to nothing, so GCC-only checkouts build identically.
 *
 * The tree never uses the raw attributes directly — code annotates
 * with these macros, and locked state lives behind the annotated
 * wrapper types in common/sync.hh (libstdc++'s std::mutex and
 * std::lock_guard carry no capability attributes, so annotating raw
 * standard-library members would only produce false positives).
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef ADAPTSIM_COMMON_THREAD_ANNOTATIONS_HH
#define ADAPTSIM_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define ADAPTSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ADAPTSIM_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability ("mutex", "role", ...). */
#define ADAPTSIM_CAPABILITY(x) ADAPTSIM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define ADAPTSIM_SCOPED_CAPABILITY \
    ADAPTSIM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define ADAPTSIM_GUARDED_BY(x) ADAPTSIM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define ADAPTSIM_PT_GUARDED_BY(x) \
    ADAPTSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Documents (and checks) a required lock acquisition order. */
#define ADAPTSIM_ACQUIRED_BEFORE(...) \
    ADAPTSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ADAPTSIM_ACQUIRED_AFTER(...) \
    ADAPTSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function may only be called with the capabilities already held. */
#define ADAPTSIM_REQUIRES(...) \
    ADAPTSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ADAPTSIM_REQUIRES_SHARED(...) \
    ADAPTSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define ADAPTSIM_ACQUIRE(...) \
    ADAPTSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ADAPTSIM_ACQUIRE_SHARED(...) \
    ADAPTSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases a capability held on entry. */
#define ADAPTSIM_RELEASE(...) \
    ADAPTSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ADAPTSIM_RELEASE_SHARED(...) \
    ADAPTSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function attempts the acquisition; first argument is the return
 *  value meaning success. */
#define ADAPTSIM_TRY_ACQUIRE(...) \
    ADAPTSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the capabilities held (deadlock
 *  documentation — e.g. long-running work outside the fast path). */
#define ADAPTSIM_EXCLUDES(...) \
    ADAPTSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held; teaches the
 *  analysis about contexts it cannot follow (lambda bodies). */
#define ADAPTSIM_ASSERT_CAPABILITY(x) \
    ADAPTSIM_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define ADAPTSIM_RETURN_CAPABILITY(x) \
    ADAPTSIM_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: function body is not analysed.  Every use must
 *  carry a comment stating the invariant that makes it safe. */
#define ADAPTSIM_NO_THREAD_SAFETY_ANALYSIS \
    ADAPTSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // ADAPTSIM_COMMON_THREAD_ANNOTATIONS_HH
