# Empty dependencies file for test_bbv.
# This may be replaced when dependencies are built.
