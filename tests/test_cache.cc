/**
 * @file
 * Tests of the set-associative LRU cache tag model.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

using adaptsim::Addr;
using adaptsim::uarch::Cache;

TEST(Cache, Geometry)
{
    Cache c(32 * 1024, 2, 64);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.assoc(), 2);
    EXPECT_EQ(c.lineBytes(), 64);
}

TEST(Cache, MissThenHit)
{
    Cache c(8 * 1024, 2, 64);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
}

TEST(Cache, LruEviction)
{
    // 2-way: three conflicting lines in one set evict the LRU.
    Cache c(8 * 1024, 2, 64);
    const Addr set_stride = c.numSets() * 64;
    const Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // a is now MRU
    c.access(d, false);        // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionSignalsWriteback)
{
    Cache c(8 * 1024, 2, 64);
    const Addr set_stride = c.numSets() * 64;
    c.access(0x0, true);                     // dirty
    c.access(set_stride, false);
    const auto r = c.access(2 * set_stride, false); // evicts dirty
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(8 * 1024, 2, 64);
    const Addr set_stride = c.numSets() * 64;
    c.access(0x0, false);
    c.access(set_stride, false);
    EXPECT_FALSE(c.access(2 * set_stride, false).writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(8 * 1024, 2, 64);
    const Addr set_stride = c.numSets() * 64;
    c.access(0x0, false);      // clean fill
    c.access(0x0, true);       // write hit → dirty
    c.access(set_stride, false);
    EXPECT_TRUE(c.access(2 * set_stride, false).writeback);
}

TEST(Cache, ProbeDoesNotDisturbLru)
{
    Cache c(8 * 1024, 2, 64);
    const Addr set_stride = c.numSets() * 64;
    c.access(0x0, false);
    c.access(set_stride, false);
    (void)c.probe(0x0);        // must NOT refresh 0x0
    c.access(2 * set_stride, false);   // evicts true LRU (0x0)
    EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache c(8 * 1024, 2, 64);
    for (Addr a = 0; a < 4096; a += 64)
        c.access(a, true);
    c.flush();
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_FALSE(c.probe(a));
    // And no stale dirty bits: filling after flush evicts cleanly.
    EXPECT_FALSE(c.access(0x0, false).writeback);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_EXIT((Cache{1000, 2, 64}),
                ::testing::ExitedWithCode(1), "");
}

/** Property: every Table I cache size works at both associativities,
 *  and a linear sweep larger than the cache always misses on
 *  revisit. */
class CacheSizeSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheSizeSweep, ThrashingSweepMisses)
{
    const std::uint64_t bytes = GetParam();
    Cache c(bytes, 2, 64);
    // Touch 2x the capacity, twice; the second pass of a true-LRU
    // cache with a sweep of 2x capacity misses everywhere.
    const Addr span = 2 * bytes;
    for (Addr a = 0; a < span; a += 64)
        c.access(a, false);
    int hits = 0;
    for (Addr a = 0; a < span; a += 64)
        hits += c.access(a, false).hit;
    EXPECT_EQ(hits, 0);
}

INSTANTIATE_TEST_SUITE_P(TableOneSizes, CacheSizeSweep,
                         ::testing::Values(8192, 16384, 32768, 65536,
                                           131072, 262144));
