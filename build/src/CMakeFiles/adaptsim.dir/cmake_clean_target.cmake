file(REMOVE_RECURSE
  "libadaptsim.a"
)
