/**
 * @file
 * The pluggable performance-model seam.
 *
 * Every layer that needs "simulate this trace on this configuration"
 * — the evaluation repository, the runtime controller, the benches —
 * goes through the abstract PerfModel interface instead of
 * constructing the cycle-level uarch::Core directly.  Backends are
 * looked up by name in a process-wide registry; ADAPTSIM_BACKEND
 * selects the default (see common/env), and every entry point takes
 * a per-call override.
 *
 * Two backends ship built in:
 *
 *   "cycle"     CycleLevelModel — the detailed out-of-order pipeline
 *               (uarch::Core), bit-identical to calling it directly.
 *   "interval"  IntervalModel — a Karkhanis/Eeckhout-style interval
 *               analysis that replays the trace through the *real*
 *               cache and branch-predictor models in one linear pass
 *               and prices the penalty events analytically.  No
 *               per-cycle loop, ≥10× faster, bounded IPC error.
 *
 * Results of different fidelities must never mix: each backend
 * carries a cacheTag() that the repository folds into its in-memory
 * keys and persists in every on-disk record (DESIGN.md §11).
 */

#ifndef ADAPTSIM_SIM_PERF_MODEL_HH
#define ADAPTSIM_SIM_PERF_MODEL_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "power/metrics.hh"
#include "space/configuration.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"
#include "uarch/pipeline.hh"
#include "workload/wrong_path.hh"

namespace adaptsim::sim
{

/** How faithful a backend's timing is. */
enum class Fidelity
{
    CycleLevel,   ///< detailed cycle-by-cycle pipeline simulation
    Analytical,   ///< event-driven analytical estimate
    Learned       ///< statistical surrogate fit to cycle-level data
};

/** Human-readable fidelity name. */
const char *fidelityName(Fidelity f);

class PerfModel;
class ChipSession;

/**
 * One configured simulated core owned by a backend: caches and
 * branch predictor persist across warm() and run() calls exactly as
 * uarch::Core's do, so multi-interval executions (the controller)
 * keep state warm between intervals.
 */
class CoreSession
{
  public:
    virtual ~CoreSession() = default;

    /** Functional warm-up of caches/predictor (no timing). */
    virtual void warm(std::span<const isa::MicroOp> trace) = 0;

    /**
     * Timing simulation of @p trace.  @p observer is the profiling
     * counter sink; backends whose PerfModel::supportsObservers() is
     * false ignore it.
     */
    virtual uarch::SimResult
    run(std::span<const isa::MicroOp> trace,
        uarch::SimObserver *observer = nullptr) = 0;

    /** The derived configuration this session was built from. */
    virtual const uarch::CoreConfig &config() const = 0;

    /**
     * Turn a run() result into full power/performance metrics.  The
     * default derives everything from the synthesised event counts;
     * backends that predict time/energy directly (the learned
     * surrogate) override this so their energy estimate is not
     * laundered through per-event energy accounting of events they
     * never modelled.
     */
    virtual power::Metrics metricsFor(const uarch::SimResult &result)
    {
        return power::computeMetrics(config(), result.events);
    }

    /**
     * The backend that actually produced the most recent run()
     * result, for policy backends that delegate (the cascade
     * escalating to cycle-level).  nullptr means "the owning
     * backend itself" — the common case.
     */
    virtual const PerfModel *lastProducer() const { return nullptr; }

    /**
     * Confidence of the most recent run() result, in IPC units
     * (estimated absolute IPC error).  Exact backends report 0.
     */
    virtual double lastUncertainty() const { return 0.0; }
};

/** Abstract performance-model backend (stateless; sessions carry
 *  all mutable state, so one registered instance serves all
 *  threads concurrently). */
class PerfModel
{
  public:
    virtual ~PerfModel() = default;

    /** Registry key, e.g. "cycle" or "interval". */
    virtual const char *name() const = 0;

    virtual Fidelity fidelity() const = 0;

    /**
     * Stable tag mixed into eval-cache keys and persisted in .evc
     * records so results of different fidelities never collide.
     * Tag 0 is reserved for the cycle-level reference model: records
     * migrated from pre-seam cache files keep their validity.
     */
    virtual std::uint64_t cacheTag() const = 0;

    /** Whether run() drives SimObserver callbacks (per-cycle
     *  samples, cache/branch probes) — required for profiling. */
    virtual bool supportsObservers() const = 0;

    /**
     * Cache tags whose records may answer a query to this backend,
     * probed in order.  The default is just cacheTag(); a policy
     * backend widens this (the cascade accepts cycle-level ground
     * truth — strictly better — before its own cheap records).
     */
    virtual std::vector<std::uint64_t> cacheLookupTags() const
    {
        return {cacheTag()};
    }

    /**
     * The exact backend this one escalates to, or nullptr when
     * results are final.  Non-null enables the repository's batch
     * near-frontier refinement (see selectForRefinement).
     */
    virtual const PerfModel *groundTruthModel() const
    {
        return nullptr;
    }

    /**
     * Pick indices of a finished batch (per-point efficiency in
     * @p efficiency) worth re-evaluating at ground truth — the
     * near-frontier points an adaptivity search will act on.
     * @p budget caps how many ground-truth runs the caller is
     * willing to pay for (kUnlimitedRefinement when it has no
     * opinion; 0 when the batch is already trusted, e.g. a memoised
     * gather or an all-cache-hit daemon batch).  Only consulted when
     * groundTruthModel() is non-null; default none.
     */
    static constexpr std::size_t kUnlimitedRefinement =
        ~std::size_t(0);

    virtual void
    selectForRefinement(const std::vector<double> &efficiency,
                        std::size_t budget,
                        std::vector<std::size_t> &out) const
    {
        (void)efficiency;
        (void)budget;
        (void)out;
    }

    /** Create a fresh core session for @p cfg. */
    virtual std::unique_ptr<CoreSession>
    makeSession(const uarch::CoreConfig &cfg,
                workload::WrongPathGenerator &wrong_path) const = 0;

    /**
     * Create a fresh multi-core session for @p cfg (one wrong-path
     * source per core).  The default is the backend-agnostic proxy
     * session (sim/chip_session.hh), which measures interference
     * functionally and folds it into per-core effective memory
     * latency; the cycle backend overrides this with the detailed
     * uarch::Chip.  A one-core chip delegates to makeSession() and
     * stays bit-identical to the single-core seam.
     */
    virtual std::unique_ptr<ChipSession>
    makeChipSession(const uarch::ChipConfig &cfg,
                    const std::vector<workload::WrongPathGenerator *>
                        &wrong_paths) const;

    /**
     * Instrumented timing run: bumps the "backend/<name>/evals"
     * counter and records the wall time into the
     * "sim/run/<name>.seconds" span histogram, then delegates to
     * @p session.  All seam call sites use this rather than calling
     * the session directly so per-backend telemetry is complete.
     */
    uarch::SimResult run(CoreSession &session,
                         std::span<const isa::MicroOp> trace,
                         uarch::SimObserver *observer = nullptr) const;

    /**
     * One-shot convenience: session + optional warm + instrumented
     * run + power metrics (the `run(trace, config) -> EvalMetrics`
     * shape of the seam).  @p warm_trace may be empty.
     */
    power::Metrics
    evaluate(const space::Configuration &config,
             workload::WrongPathGenerator &wrong_path,
             std::span<const isa::MicroOp> warm_trace,
             std::span<const isa::MicroOp> detail_trace) const;
};

/**
 * Register a backend under model->name().  Registering a name twice
 * is fatal (built-ins "cycle" and "interval" are pre-registered).
 * Thread-safe; handles returned by perfModel() stay valid for the
 * process lifetime.
 */
void registerPerfModel(std::unique_ptr<PerfModel> model);

/** Backend by name; fatal on unknown names (message lists the
 *  registered ones). */
const PerfModel &perfModel(const std::string &name);

/** Backend by name, or nullptr when unknown (never creates). */
const PerfModel *findPerfModel(const std::string &name);

/** The ADAPTSIM_BACKEND-selected default backend. */
const PerfModel &defaultPerfModel();

/** Sorted names of all registered backends. */
std::vector<std::string> perfModelNames();

} // namespace adaptsim::sim

#endif // ADAPTSIM_SIM_PERF_MODEL_HH
