#include "counters/counter_bank.hh"

#include <algorithm>

namespace adaptsim::counters
{

namespace
{

/** Bins used for all occupancy temporal histograms. */
constexpr std::size_t occBins = 16;

std::uint64_t
setsOf(std::uint64_t bytes, int assoc, int line)
{
    return bytes / (std::uint64_t(assoc) * line);
}

} // namespace

CounterBank::CounterBank(const uarch::CoreConfig &cfg,
                         const SamplingSpec &sampling)
    : cfg_(cfg),
      alu_(cfg.numAlu, static_cast<std::size_t>(cfg.numAlu) + 1),
      memPort_(cfg.numMemPorts,
               static_cast<std::size_t>(cfg.numMemPorts) + 1),
      rob_(cfg.robSize, occBins),
      iq_(cfg.iqSize, occBins),
      lsq_(cfg.lsqSize, occBins),
      intRf_(cfg.rfSize, occBins),
      fpRf_(cfg.rfSize, occBins),
      rdPorts_(cfg.rfRdPorts,
               static_cast<std::size_t>(cfg.rfRdPorts) + 1),
      wrPorts_(cfg.rfWrPorts,
               static_cast<std::size_t>(cfg.rfWrPorts) + 1),
      icStack_(uarch::CoreConfig::cacheLineBytes),
      dcStack_(uarch::CoreConfig::cacheLineBytes),
      l2Stack_(uarch::CoreConfig::cacheLineBytes),
      icSet_(setsOf(cfg.icacheBytes, uarch::CoreConfig::l1Assoc,
                    uarch::CoreConfig::cacheLineBytes),
             uarch::CoreConfig::cacheLineBytes),
      dcSet_(setsOf(cfg.dcacheBytes, uarch::CoreConfig::l1Assoc,
                    uarch::CoreConfig::cacheLineBytes),
             uarch::CoreConfig::cacheLineBytes),
      l2Set_(setsOf(cfg.l2Bytes, uarch::CoreConfig::l2Assoc,
                    uarch::CoreConfig::cacheLineBytes),
             uarch::CoreConfig::cacheLineBytes),
      // Reduced geometry: the smallest configurable cache of each
      // level (8KB L1s, 256KB L2 — Table I lower bounds).
      icRedSet_(setsOf(8 * 1024, uarch::CoreConfig::l1Assoc,
                       uarch::CoreConfig::cacheLineBytes),
                uarch::CoreConfig::cacheLineBytes),
      dcRedSet_(setsOf(8 * 1024, uarch::CoreConfig::l1Assoc,
                       uarch::CoreConfig::cacheLineBytes),
                uarch::CoreConfig::cacheLineBytes),
      l2RedSet_(setsOf(256 * 1024, uarch::CoreConfig::l2Assoc,
                       uarch::CoreConfig::cacheLineBytes),
                uarch::CoreConfig::cacheLineBytes),
      icSetSampler_(icSet_.numSets(), sampling.icSetReuse),
      dcSetSampler_(dcSet_.numSets(), sampling.dcSetReuse),
      l2SetSampler_(l2Set_.numSets(), sampling.l2SetReuse),
      icBlockSampler_(icSet_.numSets(), sampling.icBlockReuse),
      dcBlockSampler_(dcSet_.numSets(), sampling.dcBlockReuse),
      l2BlockSampler_(l2Set_.numSets(), sampling.l2BlockReuse)
{
}

void
CounterBank::onCycle(const uarch::CycleSample &s, std::uint64_t repeat)
{
    alu_.record(s.aluUsed, repeat);
    memPort_.record(s.memPortsUsed, repeat);
    rob_.record(s.robOcc, repeat);
    iq_.record(s.iqOcc, repeat);
    lsq_.record(s.lsqOcc, repeat);
    intRf_.record(s.intRegsUsed, repeat);
    fpRf_.record(s.fpRegsUsed, repeat);
    rdPorts_.record(s.rdPortsUsed, repeat);
    wrPorts_.record(s.wrPortsUsed, repeat);

    cycles_ += repeat;
    iqSpecSum_ += std::uint64_t(s.iqSpecOps) * repeat;
    lsqSpecSum_ += std::uint64_t(s.lsqSpecOps) * repeat;
    iqOccSum_ += std::uint64_t(s.iqOcc) * repeat;
    lsqOccSum_ += std::uint64_t(s.lsqOcc) * repeat;
}

void
CounterBank::onDCacheAccess(Addr addr, bool)
{
    constexpr int line = uarch::CoreConfig::cacheLineBytes;
    ++dcPos_;
    dcStack_.access(addr);
    if (dcBlockSampler_.sampledAddr(addr, line))
        dcBlock_.accessAt(addr / line, dcPos_);
    if (dcSetSampler_.sampledAddr(addr, line))
        dcSet_.accessAt(addr, dcPos_);
    dcRedSet_.accessAt(addr, dcPos_);
}

void
CounterBank::onICacheAccess(Addr addr)
{
    constexpr int line = uarch::CoreConfig::cacheLineBytes;
    ++icPos_;
    icStack_.access(addr);
    if (icBlockSampler_.sampledAddr(addr, line))
        icBlock_.accessAt(addr / line, icPos_);
    if (icSetSampler_.sampledAddr(addr, line))
        icSet_.accessAt(addr, icPos_);
    icRedSet_.accessAt(addr, icPos_);
}

void
CounterBank::onL2Access(Addr addr)
{
    constexpr int line = uarch::CoreConfig::cacheLineBytes;
    ++l2Pos_;
    l2Stack_.access(addr);
    if (l2BlockSampler_.sampledAddr(addr, line))
        l2Block_.accessAt(addr / line, l2Pos_);
    if (l2SetSampler_.sampledAddr(addr, line))
        l2Set_.accessAt(addr, l2Pos_);
    l2RedSet_.accessAt(addr, l2Pos_);
}

void
CounterBank::onBranchFetch(Addr pc, bool)
{
    btbReuse_.access(pc);
}

void
CounterBank::finalise(const uarch::EventCounts &ev)
{
    events_ = ev;
    cpi_ = ev.committedOps ?
        double(ev.cycles) / double(ev.committedOps) : 0.0;
    mispredRate_ = ev.condBranches ?
        double(ev.mispredicts) / double(ev.condBranches) : 0.0;
    btbHitRate_ = ev.btbLookups ?
        double(ev.btbHits) / double(ev.btbLookups) : 0.0;
    // Ratios are clamped defensively: they are features of a model
    // and must stay O(1) even if an accounting edge case slips in.
    iqSpecFrac_ = iqOccSum_ ?
        std::min(1.0, double(iqSpecSum_) / double(iqOccSum_)) : 0.0;
    lsqSpecFrac_ = lsqOccSum_ ?
        std::min(1.0, double(lsqSpecSum_) / double(lsqOccSum_)) :
        0.0;
    iqMisSpecFrac_ = ev.iqWrites ?
        std::min(1.0, double(ev.iqSquashed) / double(ev.iqWrites)) :
        0.0;
    lsqMisSpecFrac_ = ev.lsqInserts ?
        std::min(1.0,
                 double(ev.lsqSquashed) / double(ev.lsqInserts)) :
        0.0;
}

} // namespace adaptsim::counters
