/**
 * @file
 * Nonlinear conjugate-gradient minimiser (Polak-Ribière+ with an
 * Armijo backtracking line search) used to fit the soft-max weights
 * (Sec. IV-D cites conjugate gradient optimisation per Bishop).
 */

#ifndef ADAPTSIM_ML_CONJUGATE_GRADIENT_HH
#define ADAPTSIM_ML_CONJUGATE_GRADIENT_HH

#include <functional>
#include <vector>

namespace adaptsim::ml
{

/** Objective: fills @p grad and returns f(w). */
using Objective = std::function<double(const std::vector<double> &w,
                                       std::vector<double> &grad)>;

/** Optimiser knobs. */
struct CgOptions
{
    std::size_t maxIterations = 150;
    double gradTolerance = 1e-5;     ///< stop when ‖g‖∞ < tol
    double initialStep = 1.0;
    double armijoC = 1e-4;
    double backtrackFactor = 0.5;
    std::size_t maxBacktracks = 40;
};

/** Result diagnostics. */
struct CgResult
{
    double objective = 0.0;
    std::size_t iterations = 0;
    bool converged = false;
};

/**
 * Minimise @p f starting from @p w (updated in place).
 */
CgResult minimiseCg(const Objective &f, std::vector<double> &w,
                    const CgOptions &options = {});

} // namespace adaptsim::ml

#endif // ADAPTSIM_ML_CONJUGATE_GRADIENT_HH
