/**
 * @file
 * Raw simulator throughput: µops per second through one detailed
 * pipeline run (fresh core per repetition, fixed trace).
 */

#include "perf_harness.hh"

#include "harness/gather.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);
    const std::uint64_t detail = opt.smoke ? 20000 : 120000;
    const std::uint64_t warm = opt.smoke ? 8000 : 24000;

    const auto wl = workload::specBenchmark("gcc", 400000);
    const auto cfg = harness::paperBaselineConfig();
    const auto cc = uarch::CoreConfig::fromConfiguration(cfg);
    const auto warm_trace = wl.generate(40000 - warm, warm);
    const auto trace = wl.generate(40000, detail);

    double items = 0.0;
    const auto secs = perf::runTimed(opt, items, [&]() {
        workload::WrongPathGenerator wp(wl.averageParams(),
                                        wl.seed() ^ 0x57a71cULL);
        uarch::Core core(cc, wp);
        core.warm(warm_trace);
        const auto r = core.run(trace);
        return static_cast<double>(r.events.committedOps);
    });
    perf::emitJson("perf_pipeline", opt, secs, items, "uops");
    return 0;
}
