#include "sim/chip_session.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "power/frequency.hh"
#include "uarch/cache_hierarchy.hh"

namespace adaptsim::sim
{

namespace
{

uarch::LlcConfig
llcConfigOf(const uarch::ChipConfig &cfg)
{
    uarch::LlcConfig llc;
    llc.bytes = cfg.llcBytes;
    llc.assoc = cfg.llcAssoc;
    llc.lineBytes = uarch::CoreConfig::cacheLineBytes;
    llc.banks = cfg.llcBanks;
    llc.mshrsPerBank = cfg.llcMshrsPerBank;
    llc.hitLatency = cfg.llcLatency;
    llc.busLatency = cfg.busLatency;
    llc.bankService = cfg.llcBankService;
    return llc;
}

/**
 * Backend-agnostic chip session: functional interference probe +
 * per-core backend CoreSessions at an effective memory latency.
 */
class ProxyChipSession final : public ChipSession
{
  public:
    ProxyChipSession(
        const PerfModel &model, const uarch::ChipConfig &cfg,
        const std::vector<workload::WrongPathGenerator *>
            &wrong_paths)
        : model_(model), cfg_(cfg), wrongPaths_(wrong_paths)
    {
        const std::size_t n = cfg_.numCores();
        if (n == 0)
            panic("ProxyChipSession: need at least one core");
        if (wrongPaths_.size() != n)
            panic("ProxyChipSession: ", wrongPaths_.size(),
                  " wrong-path sources for ", n, " cores");

        derived_.reserve(n);
        for (const auto &c : cfg_.coreConfigs)
            derived_.push_back(
                uarch::CoreConfig::fromConfiguration(c));

        if (!cfg_.singleCore()) {
            llc_ = std::make_unique<uarch::SharedLlc>(
                llcConfigOf(cfg_), static_cast<unsigned>(n));
            for (std::size_t i = 0; i < n; ++i)
                probes_.push_back(
                    std::make_unique<uarch::CacheHierarchy>(
                        derived_[i], llc_.get(),
                        static_cast<unsigned>(i)));
        }

        effMem_.assign(n, 0);
        interference_.assign(n, CoreInterference{});
        sessions_.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            sessions_.push_back(
                model_.makeSession(derived_[i], *wrongPaths_[i]));
    }

    void
    warm(std::size_t core,
         std::span<const isa::MicroOp> trace) override
    {
        checkCore(core);
        if (!cfg_.singleCore()) {
            // Warm the interference probe the way uarch::Core warms
            // its real hierarchy (line-deduplicated fetch stream).
            uarch::CacheHierarchy &probe = *probes_[core];
            Addr last_line = invalidAddr;
            for (const auto &op : trace) {
                const Addr line =
                    op.pc / uarch::CoreConfig::cacheLineBytes;
                if (line != last_line) {
                    probe.warmFetch(op.pc);
                    last_line = line;
                }
                if (op.isMem())
                    probe.warmData(op.effAddr, op.isStore());
            }
        }
        sessions_[core]->warm(trace);
    }

    uarch::ChipResult
    run(const std::vector<std::span<const isa::MicroOp>> &traces,
        const std::vector<uarch::SimObserver *> &observers) override
    {
        const std::size_t n = sessions_.size();
        if (traces.size() != n)
            panic("ProxyChipSession: ", traces.size(),
                  " traces for ", n, " cores");
        if (!observers.empty() && observers.size() != n)
            panic("ProxyChipSession: ", observers.size(),
                  " observers for ", n, " cores");

        auto observer = [&](std::size_t i) -> uarch::SimObserver * {
            return observers.empty() ? nullptr : observers[i];
        };

        uarch::ChipResult res;
        res.cores.resize(n);
        res.occupancyShare.assign(n, 0.0);
        res.sharedMissRatio.assign(n, 0.0);

        if (cfg_.singleCore()) {
            res.cores[0] =
                model_.run(*sessions_[0], traces[0], observer(0));
            return res;
        }

        const std::vector<uarch::EventCounts> probe_ev =
            probeInterference(traces);

        for (std::size_t i = 0; i < n; ++i) {
            applyInterference(i, probe_ev[i]);
            res.cores[i] =
                model_.run(*sessions_[i], traces[i], observer(i));
            // Surface the probe's shared-level events so feature
            // assembly downstream sees the LLC traffic the backend
            // itself never modelled.
            res.cores[i].events.llcAccesses =
                probe_ev[i].llcAccesses;
            res.cores[i].events.llcMisses = probe_ev[i].llcMisses;
            res.cores[i].events.llcQueueCycles =
                probe_ev[i].llcQueueCycles;
            res.occupancyShare[i] = interference_[i].occupancyShare;
            res.sharedMissRatio[i] =
                interference_[i].sharedMissRatio;
        }
        return res;
    }

    void
    reconfigureCore(std::size_t core,
                    const space::Configuration &c) override
    {
        checkCore(core);
        cfg_.coreConfigs[core] = c;
        derived_[core] = uarch::CoreConfig::fromConfiguration(c);
        if (!cfg_.singleCore())
            probes_[core] = std::make_unique<uarch::CacheHierarchy>(
                derived_[core], llc_.get(),
                static_cast<unsigned>(core));
        effMem_[core] = 0;   // force a rebuild at the measured point
        sessions_[core] =
            model_.makeSession(derived_[core], *wrongPaths_[core]);
    }

    const uarch::ChipConfig &config() const override { return cfg_; }

    CoreInterference
    interference(std::size_t core) const override
    {
        checkCore(core);
        return interference_[core];
    }

    power::Metrics
    metricsFor(std::size_t core,
               const uarch::SimResult &result) override
    {
        checkCore(core);
        return sessions_[core]->metricsFor(result);
    }

  private:
    void
    checkCore(std::size_t core) const
    {
        if (core >= sessions_.size())
            panic("ProxyChipSession: core ", core, " on a ",
                  sessions_.size(), "-core chip");
    }

    /**
     * Quantum-interleaved functional replay through the private tag
     * probes and the shared LLC.  The per-core µop index stands in
     * for the clock (≈ IPC 1), which is enough to expose bank-queue
     * and MSHR pressure ordering without a timing model.
     */
    std::vector<uarch::EventCounts>
    probeInterference(
        const std::vector<std::span<const isa::MicroOp>> &traces)
    {
        const std::size_t n = sessions_.size();
        std::vector<uarch::EventCounts> ev(n);
        // Scratch members, not locals: reused across runs, and
        // GCC 12's -Wfree-nonheap-object false-fires on the local
        // form at -O3 under -Werror.
        pos_.assign(n, 0);
        lastLine_.assign(n, invalidAddr);
        auto &pos = pos_;
        auto &last_line = lastLine_;
        const std::uint64_t quantum =
            std::max<std::uint64_t>(1, cfg_.quantum);

        for (;;) {
            bool any = false;
            for (std::size_t i = 0; i < n; ++i) {
                const auto &trace = traces[i];
                if (pos[i] >= trace.size())
                    continue;
                any = true;
                const std::size_t end = static_cast<std::size_t>(
                    std::min<std::uint64_t>(pos[i] + quantum,
                                            trace.size()));
                uarch::CacheHierarchy &probe = *probes_[i];
                for (std::size_t k = pos[i]; k < end; ++k) {
                    const auto &op = trace[k];
                    const Cycles now = Cycles(k);
                    const Addr line =
                        op.pc / uarch::CoreConfig::cacheLineBytes;
                    if (line != last_line[i]) {
                        probe.fetchAccess(op.pc, ev[i], nullptr,
                                          now);
                        last_line[i] = line;
                    }
                    if (op.isMem())
                        probe.dataAccess(op.effAddr, op.isStore(),
                                         ev[i], nullptr, now);
                }
                pos[i] = end;
            }
            if (!any)
                break;
        }

        for (std::size_t i = 0; i < n; ++i) {
            CoreInterference &itf = interference_[i];
            const auto &e = ev[i];
            itf.sharedMissRatio =
                e.llcAccesses
                    ? double(e.llcMisses) / double(e.llcAccesses)
                    : 0.0;
            itf.avgQueueCycles =
                e.llcAccesses ? double(e.llcQueueCycles) /
                                    double(e.llcAccesses)
                              : 0.0;
            itf.occupancyShare =
                llc_->occupancyShare(static_cast<unsigned>(i));
        }
        return ev;
    }

    /**
     * Fold core @p i's measured interference into an effective
     * memory latency and rebuild its backend session when the
     * (quantised) value moves.  An L2 miss that used to cost
     * memLatency now costs the LLC round trip plus queueing plus
     * the miss-ratio-weighted DRAM trip.
     */
    void
    applyInterference(std::size_t i, const uarch::EventCounts &ev)
    {
        if (!ev.llcAccesses)
            return;   // no shared traffic: keep the solo session
        const CoreInterference &itf = interference_[i];
        // llcLatency/busLatency are reference-clock cycles
        // (LlcConfig::referenceDepthFo4); scale them to this core's
        // clock.  avgQueueCycles comes from the probe hierarchy,
        // which already converts, and memLatency is already derived
        // per-config from the fixed DRAM wall-time.
        const double ref_to_core =
            double(uarch::LlcConfig::referenceDepthFo4 +
                   int(power::latchOverheadFo4)) /
            double(derived_[i].depthFo4 +
                   int(power::latchOverheadFo4));
        const double eff =
            (double(cfg_.llcLatency) + double(cfg_.busLatency)) *
                ref_to_core +
            itf.avgQueueCycles +
            itf.sharedMissRatio * double(derived_[i].memLatency);
        // Quantise to 8-cycle steps so warm backend state is not
        // thrown away on measurement noise.
        const int quantised = std::max(
            derived_[i].l2Latency,
            static_cast<int>(std::lround(eff / 8.0)) * 8);
        if (quantised == effMem_[i])
            return;
        effMem_[i] = quantised;
        uarch::CoreConfig cfg = derived_[i];
        cfg.memLatency = quantised;
        sessions_[i] = model_.makeSession(cfg, *wrongPaths_[i]);
    }

    const PerfModel &model_;
    uarch::ChipConfig cfg_;
    std::vector<workload::WrongPathGenerator *> wrongPaths_;
    std::vector<uarch::CoreConfig> derived_;

    std::unique_ptr<uarch::SharedLlc> llc_;
    std::vector<std::unique_ptr<uarch::CacheHierarchy>> probes_;
    std::vector<std::size_t> pos_;
    std::vector<Addr> lastLine_;
    std::vector<std::unique_ptr<CoreSession>> sessions_;
    std::vector<int> effMem_;   ///< 0 = solo latency in effect
    std::vector<CoreInterference> interference_;
};

} // namespace

std::unique_ptr<ChipSession>
makeProxyChipSession(
    const PerfModel &model, const uarch::ChipConfig &cfg,
    const std::vector<workload::WrongPathGenerator *> &wrong_paths)
{
    return std::make_unique<ProxyChipSession>(model, cfg,
                                              wrong_paths);
}

std::unique_ptr<ChipSession>
PerfModel::makeChipSession(
    const uarch::ChipConfig &cfg,
    const std::vector<workload::WrongPathGenerator *> &wrong_paths)
    const
{
    return makeProxyChipSession(*this, cfg, wrong_paths);
}

} // namespace adaptsim::sim
