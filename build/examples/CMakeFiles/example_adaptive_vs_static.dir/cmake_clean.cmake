file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_vs_static.dir/adaptive_vs_static.cpp.o"
  "CMakeFiles/example_adaptive_vs_static.dir/adaptive_vs_static.cpp.o.d"
  "example_adaptive_vs_static"
  "example_adaptive_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
