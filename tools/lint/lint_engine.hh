/**
 * @file
 * adaptsim-lint rule engine.
 *
 * A self-contained (no dependency on the adaptsim library) C++20
 * source scanner enforcing the project invariants that keep
 * simulation bit-reproducible and the logs clean:
 *
 *   determinism             no rand()/srand()/std::random_device/
 *                           time()/system_clock/std::mt19937 inside
 *                           the simulation and experiment core
 *                           (src/uarch, src/ml, src/workload,
 *                           src/phase, src/sim, src/harness,
 *                           src/control) — all randomness must flow
 *                           through common/rng
 *   env                     std::getenv only inside src/common/env.cc;
 *                           everything else goes through the helpers
 *   logging                 no raw stderr writes (std::cerr,
 *                           fprintf/fputs/fputc to stderr) outside
 *                           common/logging.hh — use panic/fatal/warn/
 *                           inform or lockedWrite
 *   header-guard            every header starts with #pragma once or
 *                           a matching #ifndef/#define pair
 *   header-using-namespace  no `using namespace` at namespace scope
 *                           in a header
 *   mutex-annotated         no raw std::mutex / std::shared_mutex /
 *                           std::condition_variable declarations
 *                           under src/ — use the annotated wrappers
 *                           in common/sync.hh so the clang
 *                           thread-safety build can see the lock
 *   condvar-predicate       condition-variable wait() must use the
 *                           predicate overload; a bare wait(lock)
 *                           invites lost/spurious-wakeup bugs
 *
 * Scanning is comment- and string-literal-aware: banned tokens inside
 * comments, string literals, char literals, and raw strings are never
 * flagged.  A violation is suppressed by putting
 *
 *     // lint:allow(<rule>[, <rule>...])
 *
 * in a comment on the offending line (for header-guard: on the line
 * the diagnostic points at, i.e. the first non-comment line).
 */

#ifndef ADAPTSIM_TOOLS_LINT_ENGINE_HH
#define ADAPTSIM_TOOLS_LINT_ENGINE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace adaptsim::lint
{

/** One rule violation at a source location. */
struct Diagnostic
{
    std::string file;    ///< path as handed to lintSource()
    std::size_t line;    ///< 1-based line number
    std::string rule;    ///< rule identifier (e.g. "determinism")
    std::string message; ///< human-readable explanation
};

/** Render as the canonical "file:line: [rule] message" form. */
std::string render(const Diagnostic &d);

/** Render as a GitHub Actions workflow command
 *  (::error file=...,line=...::message) so violations annotate the
 *  offending lines in pull-request diffs. */
std::string renderGithub(const Diagnostic &d);

/** One entry of the rule catalogue (--list-rules). */
struct RuleInfo
{
    std::string name;        ///< rule identifier
    std::string description; ///< one-line summary
};

/** Every rule the engine enforces, in stable display order. */
const std::vector<RuleInfo> &ruleCatalogue();

/**
 * Lint one translation unit.  @p path must be repo-relative with
 * forward slashes (it selects which rules apply and which exemptions
 * hold); @p text is the file's full contents.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &text);

/** Result of walking a source tree. */
struct TreeResult
{
    std::vector<Diagnostic> diagnostics;
    std::size_t filesScanned = 0;
    /** I/O failures ("cannot read <path>"); scanning continued past
     *  them but the run as a whole must fail. */
    std::vector<std::string> errors;
};

/**
 * Lint the single file @p rel (relative to @p root), appending its
 * diagnostics to @p res.  An unreadable file is recorded in
 * res.errors rather than thrown, so one bad file cannot mask
 * violations in the rest of the tree.
 */
void lintFileInto(const std::string &root, const std::string &rel,
                  TreeResult &res);

/**
 * Walk @p subdirs (relative to @p root) recursively and lint every
 * .cc/.hh/.cpp/.hpp file, in sorted path order for deterministic
 * output.  Missing subdirs are an error (throws std::runtime_error),
 * as a misspelt directory would otherwise pass vacuously; an
 * unreadable *file* is reported in TreeResult::errors and scanning
 * continues.
 */
TreeResult lintTree(const std::string &root,
                    const std::vector<std::string> &subdirs);

} // namespace adaptsim::lint

#endif // ADAPTSIM_TOOLS_LINT_ENGINE_HH
