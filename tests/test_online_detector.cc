/**
 * @file
 * Tests of the online phase-change detector.
 */

#include <gtest/gtest.h>

#include "phase/online_detector.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::phase;

namespace
{

Bbv
bbvAt(const workload::Workload &wl, std::uint64_t start)
{
    return Bbv::ofTrace(wl.generate(start, 3000));
}

} // namespace

TEST(OnlineDetector, FirstIntervalIsNewPhase)
{
    const auto wl = workload::specBenchmark("gzip", 100000);
    OnlinePhaseDetector det;
    const auto obs = det.observe(bbvAt(wl, 0));
    EXPECT_TRUE(obs.newPhase);
    EXPECT_TRUE(obs.phaseChanged);
    EXPECT_EQ(obs.phaseId, 0u);
}

TEST(OnlineDetector, StableBehaviourIsStablePhase)
{
    const auto wl = workload::specBenchmark("swim", 400000);
    OnlinePhaseDetector det;
    det.observe(bbvAt(wl, 0));
    // Consecutive windows inside the same long segment.
    for (int i = 1; i < 8; ++i) {
        const auto obs = det.observe(bbvAt(wl, i * 3000));
        EXPECT_FALSE(obs.newPhase) << i;
    }
    EXPECT_EQ(det.numPhases(), 1u);
}

TEST(OnlineDetector, DetectsKernelSwitch)
{
    // gap: compute kernel early, pointer-chase kernel later.
    const auto wl = workload::specBenchmark("gap", 400000);
    OnlinePhaseDetector det;
    det.observe(bbvAt(wl, 10000));
    const auto obs = det.observe(bbvAt(wl, 250000));
    EXPECT_TRUE(obs.newPhase);
    EXPECT_TRUE(obs.phaseChanged);
}

TEST(OnlineDetector, RecurringPhaseRecognised)
{
    const auto wl = workload::specBenchmark("gap", 400000);
    OnlinePhaseDetector det;
    const auto first = det.observe(bbvAt(wl, 10000));
    det.observe(bbvAt(wl, 250000));            // different phase
    const auto back = det.observe(bbvAt(wl, 14000));   // same as first
    EXPECT_FALSE(back.newPhase);
    EXPECT_EQ(back.phaseId, first.phaseId);
    EXPECT_TRUE(back.phaseChanged);   // changed relative to previous
}

TEST(OnlineDetector, TableCapacityFallsBackToNearest)
{
    OnlinePhaseDetector det(0.0001, 2);   // tiny threshold, 2 slots
    const auto wl = workload::specBenchmark("gcc", 400000);
    det.observe(bbvAt(wl, 0));
    det.observe(bbvAt(wl, 150000));
    // A third distinct behaviour cannot allocate: must reuse.
    const auto obs = det.observe(bbvAt(wl, 300000));
    EXPECT_FALSE(obs.newPhase);
    EXPECT_LT(obs.phaseId, 2u);
    EXPECT_EQ(det.numPhases(), 2u);
}

TEST(OnlineDetector, PhaseChangeRateIsModerate)
{
    // Over a whole program the controller should not thrash: the
    // paper reconfigures about once every 10 intervals.
    const auto wl = workload::specBenchmark("bzip2", 400000);
    OnlinePhaseDetector det;
    std::size_t changes = 0;
    const std::uint64_t interval = 5000;
    const std::uint64_t n = wl.totalInstructions() / interval;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto obs = det.observe(
            Bbv::ofTrace(wl.generate(i * interval, interval)));
        changes += obs.phaseChanged;
    }
    EXPECT_LT(double(changes) / double(n), 0.5);
    EXPECT_GE(changes, 2u);
}
