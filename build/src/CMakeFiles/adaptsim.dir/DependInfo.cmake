
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/ascii_plot.cc" "src/CMakeFiles/adaptsim.dir/common/ascii_plot.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/ascii_plot.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/adaptsim.dir/common/env.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/env.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/adaptsim.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/adaptsim.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/adaptsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/adaptsim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/common/table.cc.o.d"
  "/root/repo/src/control/controller.cc" "src/CMakeFiles/adaptsim.dir/control/controller.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/control/controller.cc.o.d"
  "/root/repo/src/control/reconfig_cost.cc" "src/CMakeFiles/adaptsim.dir/control/reconfig_cost.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/control/reconfig_cost.cc.o.d"
  "/root/repo/src/counters/counter_bank.cc" "src/CMakeFiles/adaptsim.dir/counters/counter_bank.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/counter_bank.cc.o.d"
  "/root/repo/src/counters/feature_vector.cc" "src/CMakeFiles/adaptsim.dir/counters/feature_vector.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/feature_vector.cc.o.d"
  "/root/repo/src/counters/overhead_model.cc" "src/CMakeFiles/adaptsim.dir/counters/overhead_model.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/overhead_model.cc.o.d"
  "/root/repo/src/counters/reuse_distance.cc" "src/CMakeFiles/adaptsim.dir/counters/reuse_distance.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/reuse_distance.cc.o.d"
  "/root/repo/src/counters/set_sampling.cc" "src/CMakeFiles/adaptsim.dir/counters/set_sampling.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/set_sampling.cc.o.d"
  "/root/repo/src/counters/stack_distance.cc" "src/CMakeFiles/adaptsim.dir/counters/stack_distance.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/stack_distance.cc.o.d"
  "/root/repo/src/counters/temporal_histogram.cc" "src/CMakeFiles/adaptsim.dir/counters/temporal_histogram.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/counters/temporal_histogram.cc.o.d"
  "/root/repo/src/harness/baselines.cc" "src/CMakeFiles/adaptsim.dir/harness/baselines.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/harness/baselines.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/adaptsim.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/gather.cc" "src/CMakeFiles/adaptsim.dir/harness/gather.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/harness/gather.cc.o.d"
  "/root/repo/src/harness/repository.cc" "src/CMakeFiles/adaptsim.dir/harness/repository.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/harness/repository.cc.o.d"
  "/root/repo/src/harness/thread_pool.cc" "src/CMakeFiles/adaptsim.dir/harness/thread_pool.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/harness/thread_pool.cc.o.d"
  "/root/repo/src/isa/micro_op.cc" "src/CMakeFiles/adaptsim.dir/isa/micro_op.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/isa/micro_op.cc.o.d"
  "/root/repo/src/ml/conjugate_gradient.cc" "src/CMakeFiles/adaptsim.dir/ml/conjugate_gradient.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/conjugate_gradient.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/CMakeFiles/adaptsim.dir/ml/cross_validation.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/cross_validation.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/adaptsim.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/quantised.cc" "src/CMakeFiles/adaptsim.dir/ml/quantised.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/quantised.cc.o.d"
  "/root/repo/src/ml/softmax.cc" "src/CMakeFiles/adaptsim.dir/ml/softmax.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/softmax.cc.o.d"
  "/root/repo/src/ml/trainer.cc" "src/CMakeFiles/adaptsim.dir/ml/trainer.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/ml/trainer.cc.o.d"
  "/root/repo/src/phase/bbv.cc" "src/CMakeFiles/adaptsim.dir/phase/bbv.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/phase/bbv.cc.o.d"
  "/root/repo/src/phase/kmeans.cc" "src/CMakeFiles/adaptsim.dir/phase/kmeans.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/phase/kmeans.cc.o.d"
  "/root/repo/src/phase/online_detector.cc" "src/CMakeFiles/adaptsim.dir/phase/online_detector.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/phase/online_detector.cc.o.d"
  "/root/repo/src/phase/simpoint.cc" "src/CMakeFiles/adaptsim.dir/phase/simpoint.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/phase/simpoint.cc.o.d"
  "/root/repo/src/power/cacti.cc" "src/CMakeFiles/adaptsim.dir/power/cacti.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/power/cacti.cc.o.d"
  "/root/repo/src/power/energy_model.cc" "src/CMakeFiles/adaptsim.dir/power/energy_model.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/power/energy_model.cc.o.d"
  "/root/repo/src/power/frequency.cc" "src/CMakeFiles/adaptsim.dir/power/frequency.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/power/frequency.cc.o.d"
  "/root/repo/src/power/metrics.cc" "src/CMakeFiles/adaptsim.dir/power/metrics.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/power/metrics.cc.o.d"
  "/root/repo/src/space/configuration.cc" "src/CMakeFiles/adaptsim.dir/space/configuration.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/space/configuration.cc.o.d"
  "/root/repo/src/space/design_space.cc" "src/CMakeFiles/adaptsim.dir/space/design_space.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/space/design_space.cc.o.d"
  "/root/repo/src/space/sampling.cc" "src/CMakeFiles/adaptsim.dir/space/sampling.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/space/sampling.cc.o.d"
  "/root/repo/src/uarch/branch_predictor.cc" "src/CMakeFiles/adaptsim.dir/uarch/branch_predictor.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/CMakeFiles/adaptsim.dir/uarch/cache.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/cache.cc.o.d"
  "/root/repo/src/uarch/cache_hierarchy.cc" "src/CMakeFiles/adaptsim.dir/uarch/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/cache_hierarchy.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/CMakeFiles/adaptsim.dir/uarch/core.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/core.cc.o.d"
  "/root/repo/src/uarch/core_config.cc" "src/CMakeFiles/adaptsim.dir/uarch/core_config.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/core_config.cc.o.d"
  "/root/repo/src/uarch/functional_units.cc" "src/CMakeFiles/adaptsim.dir/uarch/functional_units.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/functional_units.cc.o.d"
  "/root/repo/src/uarch/issue_queue.cc" "src/CMakeFiles/adaptsim.dir/uarch/issue_queue.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/issue_queue.cc.o.d"
  "/root/repo/src/uarch/load_store_queue.cc" "src/CMakeFiles/adaptsim.dir/uarch/load_store_queue.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/load_store_queue.cc.o.d"
  "/root/repo/src/uarch/pipeline.cc" "src/CMakeFiles/adaptsim.dir/uarch/pipeline.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/pipeline.cc.o.d"
  "/root/repo/src/uarch/register_file.cc" "src/CMakeFiles/adaptsim.dir/uarch/register_file.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/register_file.cc.o.d"
  "/root/repo/src/uarch/rob.cc" "src/CMakeFiles/adaptsim.dir/uarch/rob.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/uarch/rob.cc.o.d"
  "/root/repo/src/workload/kernel.cc" "src/CMakeFiles/adaptsim.dir/workload/kernel.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/workload/kernel.cc.o.d"
  "/root/repo/src/workload/spec_suite.cc" "src/CMakeFiles/adaptsim.dir/workload/spec_suite.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/workload/spec_suite.cc.o.d"
  "/root/repo/src/workload/trace_cache.cc" "src/CMakeFiles/adaptsim.dir/workload/trace_cache.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/workload/trace_cache.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/adaptsim.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/workload/workload.cc.o.d"
  "/root/repo/src/workload/wrong_path.cc" "src/CMakeFiles/adaptsim.dir/workload/wrong_path.cc.o" "gcc" "src/CMakeFiles/adaptsim.dir/workload/wrong_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
