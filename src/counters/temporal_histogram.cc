#include "counters/temporal_histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adaptsim::counters
{

TemporalHistogram::TemporalHistogram(std::uint64_t max_value,
                                     std::size_t num_bins)
    : hist_(Histogram::Binning::Linear, num_bins, 0,
            std::max<std::uint64_t>(1,
                (max_value + num_bins - 1) / num_bins))
{
    if (num_bins < 2)
        fatal("temporal histogram needs at least 2 bins");
}

void
TemporalHistogram::record(std::uint64_t value, std::uint64_t cycles)
{
    hist_.add(value, cycles);
}

} // namespace adaptsim::counters
