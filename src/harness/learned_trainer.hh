/**
 * @file
 * Trainer for the learned-surrogate backend: harvests cycle-level
 * EvalRecords already sitting in the repository's `.evc` caches,
 * pairs each with the trace summary of its phase, fits the ridge
 * ensemble (ml/surrogate) and installs it process-wide so the
 * "learned" and "cascade" backends can serve predictions.
 *
 * No new simulations are run: training data is strictly what earlier
 * cycle-level work already paid for.  Phases with no cached
 * cycle-level records contribute nothing (and are not simulated).
 */

#ifndef ADAPTSIM_HARNESS_LEARNED_TRAINER_HH
#define ADAPTSIM_HARNESS_LEARNED_TRAINER_HH

#include "harness/repository.hh"
#include "ml/surrogate.hh"

namespace adaptsim::harness
{

/** Training knobs. */
struct TrainOptions
{
    ml::SurrogateOptions surrogate;

    /** Below this many harvested samples the fit is refused
     *  (report.trained stays false, nothing is installed). */
    std::size_t minSamples = 24;
};

/** What trainLearnedBackend() harvested and achieved. */
struct TrainReport
{
    std::size_t samples = 0;      ///< (config, phase) pairs used
    std::size_t phases = 0;       ///< phases that contributed data
    double maeIpc = 0.0;          ///< in-sample mean |IPC error|
    bool trained = false;         ///< surrogate fitted and installed
};

/**
 * Fit the learned backend's surrogate on the cycle-level records
 * cached for @p specs and install it via sim::setLearnedSurrogate().
 */
TrainReport trainLearnedBackend(EvalRepository &repo,
                                const std::vector<PhaseSpec> &specs,
                                const TrainOptions &options = {});

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_LEARNED_TRAINER_HH
