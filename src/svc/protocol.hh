/**
 * @file
 * Wire protocol of the adaptsimd evaluation service.
 *
 * Clients and server exchange length-prefixed frames over a Unix
 * domain socket:
 *
 *     frame   := u32 payload-length (little-endian) | payload
 *     payload := u8 version (=2) | u8 type | body | u64 checksum
 *
 * The checksum is the FNV-1a hash of everything before it (version,
 * type and body), so a flipped bit anywhere in the payload is caught
 * before the body is interpreted.  Integers are little-endian;
 * strings carry a u32 length prefix (common/serial).  Frames above
 * kMaxFrameBytes are rejected without buffering, so a hostile or
 * corrupt length prefix cannot make the server allocate gigabytes.
 *
 * Message bodies:
 *
 *   EvalRequest  u64 id | str workload | u64 programLength |
 *                u64 startInst | u64 warmLength | u64 detailLength |
 *                u64 chipMix | u64 configCode |
 *                str backend ("" = server default)
 *   EvalReply    u64 id | 7 doubles (EvalRecord, bit-exact) |
 *                str producer | u8 cacheHit
 *   Error        u64 id (0 = not attributable) | u8 code | str text
 *
 * Request ids are chosen by the client and echoed verbatim, so a
 * pipelined client can match out-of-order replies.  Version-1 frames
 * (no chipMix word in EvalRequest — every pre-chip request was a
 * solo evaluation) are still decoded, with chipMix 0; encoders
 * always emit the current version.  Everything here is pure byte
 * manipulation — no sockets — so the protocol tests can fuzz it
 * directly.
 */

#ifndef ADAPTSIM_SVC_PROTOCOL_HH
#define ADAPTSIM_SVC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/repository.hh"

namespace adaptsim::svc
{

/** Protocol revision carried in every payload's first byte.
 *  Version 2 added the chip-mix word to EvalRequest; version-1
 *  payloads are still accepted on decode (chipMix 0). */
inline constexpr std::uint8_t kProtocolVersion = 2;

/** Hard ceiling on one frame's payload size (1 MiB). */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Payload type byte. */
enum class MsgType : std::uint8_t
{
    EvalRequest = 1,
    EvalReply = 2,
    Error = 3,
};

/** Typed failure reasons carried in Error replies (and returned by
 *  the decoder for malformed inputs). */
enum class ErrorCode : std::uint8_t
{
    None = 0,
    BadFrame = 1,        ///< checksum/body malformed or truncated
    BadVersion = 2,      ///< unknown protocol version byte
    BadType = 3,         ///< unknown payload type byte
    UnknownBackend = 4,  ///< backend name not registered
    UnknownWorkload = 5, ///< workload not in the server's suite
    Overloaded = 6,      ///< admission control: queue full
    TooManyInFlight = 7, ///< admission control: per-client cap hit
    Oversized = 8,       ///< frame length above kMaxFrameBytes
};

/** Human-readable ErrorCode name (stable, for logs and JSON). */
const char *errorCodeName(ErrorCode code);

/** One evaluation query. */
struct EvalRequestMsg
{
    std::uint64_t id = 0;         ///< echoed in the reply
    harness::PhaseSpec spec;      ///< workload + phase window
    std::uint64_t configCode = 0; ///< space::Configuration::encode()
    std::string backend;          ///< registry name; "" = default
};

/** One evaluation answer. */
struct EvalReplyMsg
{
    std::uint64_t id = 0;
    harness::EvalRecord record;
    std::string producer;  ///< backend that produced the record
    bool cacheHit = false; ///< served from the store, no simulation
};

/** One typed failure. */
struct ErrorMsg
{
    std::uint64_t id = 0; ///< 0 when no request is attributable
    ErrorCode code = ErrorCode::None;
    std::string message;
};

/** Any decoded payload; `type` selects the live member. */
struct Message
{
    MsgType type = MsgType::Error;
    EvalRequestMsg request;
    EvalReplyMsg reply;
    ErrorMsg error;
};

/** Encode a complete frame (length prefix included). */
std::string encodeFrame(const EvalRequestMsg &msg);
std::string encodeFrame(const EvalReplyMsg &msg);
std::string encodeFrame(const ErrorMsg &msg);

/**
 * Decode one frame payload (the bytes after the length prefix).
 * Returns ErrorCode::None and fills @p out on success; otherwise a
 * typed reason (BadFrame, BadVersion, BadType).  Never throws and
 * never reads out of bounds, whatever the input.
 */
ErrorCode decodePayload(std::string_view payload, Message &out);

/**
 * Incremental frame assembler for one stream.  Feed raw bytes with
 * append(); next() then yields complete payloads one at a time.  A
 * length prefix above kMaxFrameBytes poisons the stream (the byte
 * boundary is unrecoverable), reported once as Oversized.
 */
class FrameBuffer
{
  public:
    enum class Result
    {
        Frame,     ///< @p out holds one complete payload
        NeedMore,  ///< no complete frame buffered yet
        Oversized, ///< poisoned by an over-limit length prefix
    };

    void append(const char *data, std::size_t size);
    Result next(std::string &out);

    /** Bytes buffered but not yet consumed (tests/telemetry). */
    std::size_t pending() const { return buf_.size() - off_; }

  private:
    std::string buf_;
    std::size_t off_ = 0;
    bool poisoned_ = false;
};

} // namespace adaptsim::svc

#endif // ADAPTSIM_SVC_PROTOCOL_HH
