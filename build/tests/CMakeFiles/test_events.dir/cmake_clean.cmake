file(REMOVE_RECURSE
  "CMakeFiles/test_events.dir/test_events.cc.o"
  "CMakeFiles/test_events.dir/test_events.cc.o.d"
  "test_events"
  "test_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
