/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits cleanly.
 * warn()   - something is approximated but usable.
 * inform() - plain status output.
 *
 * Every message is emitted as a single locked write of one
 * pre-formatted line (lockedWrite()), so concurrent callers — and
 * the obs sinks, which share the same writer — never interleave.
 */

#ifndef ADAPTSIM_COMMON_LOGGING_HH
#define ADAPTSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/sync.hh"

namespace adaptsim
{

namespace detail
{

/** One mutex for every line-oriented writer in the process. */
inline Mutex &
logMutex()
{
    static Mutex mutex;
    return mutex;
}

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &... rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &... args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Write @p text to @p stream as one locked, flushed write, so
 * concurrent loggers (and the obs sinks, which emit whole tables
 * through here) never interleave at the stream level.
 */
inline void
lockedWrite(std::FILE *stream, const std::string &text)
{
    MutexLock lock(detail::logMutex());
    std::fputs(text.c_str(), stream);
    std::fflush(stream);
}

/** Abort: an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args &... args)
{
    lockedWrite(stderr, "panic: " + detail::concat(args...) + "\n");
    std::abort();
}

/** Exit with an error: the user requested something impossible. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &... args)
{
    lockedWrite(stderr, "fatal: " + detail::concat(args...) + "\n");
    std::exit(1);
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(const Args &... args)
{
    lockedWrite(stderr, "warn: " + detail::concat(args...) + "\n");
}

/** Plain status message. */
template <typename... Args>
void
inform(const Args &... args)
{
    lockedWrite(stdout, "info: " + detail::concat(args...) + "\n");
}

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_LOGGING_HH
