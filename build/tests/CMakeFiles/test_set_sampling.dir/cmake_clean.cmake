file(REMOVE_RECURSE
  "CMakeFiles/test_set_sampling.dir/test_set_sampling.cc.o"
  "CMakeFiles/test_set_sampling.dir/test_set_sampling.cc.o.d"
  "test_set_sampling"
  "test_set_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
