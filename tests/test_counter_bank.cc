/**
 * @file
 * Integration tests of the full counter bank attached to a profiling
 * run.
 */

#include <gtest/gtest.h>

#include "counters/counter_bank.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::counters;

namespace
{

CounterBank
profileBench(const std::string &bench,
             const SamplingSpec &sampling = {})
{
    const auto wl = workload::specBenchmark(bench, 100000);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(
        space::Configuration::profiling());
    uarch::Core core(cc, wp);
    core.warm(wl.generate(32000, 8000));
    CounterBank bank(cc, sampling);
    const auto result = core.run(wl.generate(40000, 4000), &bank);
    bank.finalise(result.events);
    return bank;
}

} // namespace

TEST(CounterBank, OccupancyHistogramsCoverEveryCycle)
{
    const auto bank = profileBench("gzip");
    const auto cycles = bank.events().cycles;
    EXPECT_EQ(bank.robUsage().totalCycles(), cycles);
    EXPECT_EQ(bank.iqUsage().totalCycles(), cycles);
    EXPECT_EQ(bank.lsqUsage().totalCycles(), cycles);
    EXPECT_EQ(bank.aluUsage().totalCycles(), cycles);
    EXPECT_EQ(bank.intRegUsage().totalCycles(), cycles);
}

TEST(CounterBank, ScalarsInRange)
{
    const auto bank = profileBench("parser");
    EXPECT_GT(bank.cpi(), 0.0);
    EXPECT_GE(bank.branchMispredRate(), 0.0);
    EXPECT_LE(bank.branchMispredRate(), 1.0);
    EXPECT_GE(bank.btbHitRate(), 0.0);
    EXPECT_LE(bank.btbHitRate(), 1.0);
    EXPECT_GE(bank.iqSpecFrac(), 0.0);
    EXPECT_LE(bank.iqSpecFrac(), 1.0);
    EXPECT_GE(bank.lsqSpecFrac(), 0.0);
    EXPECT_LE(bank.lsqSpecFrac(), 1.0);
    EXPECT_GE(bank.lsqMisSpecFrac(), 0.0);
    EXPECT_LE(bank.lsqMisSpecFrac(), 1.0);
}

TEST(CounterBank, BranchyCodeShowsMoreMisSpeculation)
{
    const auto parser = profileBench("parser");
    const auto swim = profileBench("swim");
    EXPECT_GT(parser.branchMispredRate(),
              swim.branchMispredRate());
    EXPECT_GT(parser.lsqMisSpecFrac(), swim.lsqMisSpecFrac());
}

TEST(CounterBank, MemoryBoundCodeHasLongL2Distances)
{
    const auto mcf = profileBench("mcf");
    const auto eon = profileBench("eon");
    // mcf's working set dwarfs eon's: mean dcache stack distance
    // must be much larger.
    EXPECT_GT(mcf.dcStack().histogram().mean(),
              4.0 * eon.dcStack().histogram().mean());
}

TEST(CounterBank, CacheMonitorsSeeAccesses)
{
    const auto bank = profileBench("gcc");
    EXPECT_GT(bank.icStack().accesses(), 0u);
    EXPECT_GT(bank.dcStack().accesses(), 0u);
    EXPECT_GT(bank.btbReuse().accesses(), 0u);
    // Reduced geometry sees the same stream as native set monitor.
    EXPECT_EQ(bank.dcReducedSetReuse().histogram().totalWeight() > 0,
              true);
}

TEST(CounterBank, SamplingReducesMonitoredAccesses)
{
    SamplingSpec sampling;
    sampling.dcBlockReuse = 4;   // of 1024 native sets
    const auto full = profileBench("swim");
    const auto sampled = profileBench("swim", sampling);
    EXPECT_LT(sampled.dcBlockReuse().accesses(),
              full.dcBlockReuse().accesses() / 32);
    // Other monitors unaffected.
    EXPECT_EQ(sampled.dcStack().accesses(),
              full.dcStack().accesses());
}

TEST(CounterBank, FpCodeUsesFpRegisters)
{
    const auto swim = profileBench("swim");
    const auto crafty = profileBench("crafty");
    EXPECT_GT(swim.fpRegUsage().meanUsage(),
              crafty.fpRegUsage().meanUsage());
}
