/**
 * @file
 * Minimal fixed-size thread pool with a blocking parallel-for, used
 * to spread independent simulations over cores.
 *
 * Failure semantics: if a job throws, no further unstarted indices
 * are run, the first exception is captured and rethrown on the
 * calling thread once every in-flight job has drained, and the pool
 * remains usable for subsequent batches.  Calling parallelFor from
 * inside one of the pool's own jobs (reentrant use) throws
 * std::logic_error; concurrent calls from distinct external threads
 * are safe and simply serialize.
 */

#ifndef ADAPTSIM_HARNESS_THREAD_POOL_HH
#define ADAPTSIM_HARNESS_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace adaptsim::harness
{

/** Fixed pool executing parallelFor batches. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0/1 runs inline (no threads). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(0) … fn(n-1) across the pool; blocks until all done.
     * fn must be safe to call concurrently for distinct indices.
     *
     * @throws std::logic_error on reentrant use (fn calling back
     *         into parallelFor on the same pool).
     * @throws the first exception any job threw, after all running
     *         jobs have drained; remaining unstarted indices are
     *         skipped.  The pool stays usable afterwards.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
        ADAPTSIM_EXCLUDES(submitMutex_, mutex_);

    unsigned numThreads() const { return threads_; }

  private:
    void workerLoop(unsigned worker_index);

    /** Claim-and-run indices until exhausted; returns claim count. */
    std::size_t runJobs(const std::function<void(std::size_t)> &fn,
                        std::size_t n);

    unsigned threads_;
    std::vector<std::thread> workers_;

    /** Serializes concurrent external parallelFor callers. */
    Mutex submitMutex_ ADAPTSIM_ACQUIRED_BEFORE(mutex_);

    /** Guards the batch state below; wake_ signals workers about a
     *  new batch (or shutdown), done_ signals the submitter that the
     *  batch drained. */
    Mutex mutex_;
    CondVar wake_;
    CondVar done_;
    const std::function<void(std::size_t)> *job_
        ADAPTSIM_GUARDED_BY(mutex_) = nullptr;
    std::size_t jobSize_ ADAPTSIM_GUARDED_BY(mutex_) = 0;
    /** Batch publish time, for the queue-wait metric. */
    std::chrono::steady_clock::time_point batchSubmit_
        ADAPTSIM_GUARDED_BY(mutex_);
    std::atomic<std::size_t> nextIndex_{0};
    std::atomic<bool> abort_{false};
    std::size_t remaining_ ADAPTSIM_GUARDED_BY(mutex_) = 0;
    std::exception_ptr firstError_ ADAPTSIM_GUARDED_BY(mutex_);
    std::uint64_t generation_ ADAPTSIM_GUARDED_BY(mutex_) = 0;
    bool stopping_ ADAPTSIM_GUARDED_BY(mutex_) = false;
};

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_THREAD_POOL_HH
