#include "obs/trace.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "common/serial.hh"

namespace adaptsim::obs
{

namespace
{

std::atomic<TraceWriter *> active_writer{nullptr};

double
microsBetween(TraceWriter::Clock::time_point a,
              TraceWriter::Clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)), epoch_(Clock::now())
{
}

TraceWriter::~TraceWriter()
{
    finish();
}

TraceWriter *
TraceWriter::active()
{
    return active_writer.load(std::memory_order_acquire);
}

void
TraceWriter::setActive(TraceWriter *writer)
{
    active_writer.store(writer, std::memory_order_release);
}

int
TraceWriter::tidLocked()
{
    const auto id = std::this_thread::get_id();
    const auto it = tids_.find(id);
    if (it != tids_.end())
        return it->second;
    const int tid = static_cast<int>(tids_.size()) + 1;
    tids_.emplace(id, tid);
    return tid;
}

void
TraceWriter::completeEvent(std::string_view name,
                           Clock::time_point start,
                           Clock::time_point end)
{
    MutexLock lock(mutex_);
    if (finished_)
        return;
    Event e;
    e.name.assign(name.data(), name.size());
    e.ph = 'X';
    e.tsMicros = microsBetween(epoch_, start);
    e.durMicros = microsBetween(start, end);
    e.tid = tidLocked();
    events_.push_back(std::move(e));
}

void
TraceWriter::nameCurrentThread(const std::string &name)
{
    MutexLock lock(mutex_);
    if (finished_)
        return;
    Event e;
    e.name = name;
    e.ph = 'M';
    e.tsMicros = 0.0;
    e.durMicros = 0.0;
    e.tid = tidLocked();
    events_.push_back(std::move(e));
}

std::size_t
TraceWriter::eventCount() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

bool
TraceWriter::finish()
{
    std::vector<Event> events;
    {
        MutexLock lock(mutex_);
        if (finished_)
            return true;
        finished_ = true;
        events.swap(events_);
    }

    std::string json;
    json.reserve(events.size() * 128 + 64);
    json += "{\"traceEvents\":[";
    char buf[160];
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            json += ',';
        first = false;
        if (e.ph == 'M') {
            std::snprintf(buf, sizeof(buf),
                          "{\"name\":\"thread_name\",\"ph\":\"M\","
                          "\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"",
                          e.tid);
            json += buf;
            json += jsonEscape(e.name);
            json += "\"}}";
        } else {
            json += "{\"name\":\"";
            json += jsonEscape(e.name);
            std::snprintf(buf, sizeof(buf),
                          "\",\"cat\":\"adaptsim\",\"ph\":\"X\","
                          "\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":1,\"tid\":%d}",
                          e.tsMicros, e.durMicros, e.tid);
            json += buf;
        }
    }
    json += "],\"displayTimeUnit\":\"ms\"}\n";

    return atomicWriteFile(path_, json);
}

} // namespace adaptsim::obs
