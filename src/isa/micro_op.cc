#include "isa/micro_op.hh"

#include <sstream>

namespace adaptsim::isa
{

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
      case OpClass::Nop: return "Nop";
      default: return "Invalid";
    }
}

bool
isMemOp(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

bool
isFpOp(OpClass c)
{
    return c == OpClass::FpAlu || c == OpClass::FpMul ||
           c == OpClass::FpDiv;
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ' '
       << opClassName(opClass);
    if (destReg != noReg)
        os << " d" << destReg;
    if (srcReg0 != noReg)
        os << " s" << srcReg0;
    if (srcReg1 != noReg)
        os << " s" << srcReg1;
    if (isMem())
        os << " @0x" << std::hex << effAddr << std::dec;
    if (isBranch()) {
        os << (isCond ? " cond" : " uncond")
           << (taken ? " taken->0x" : " not-taken->0x") << std::hex
           << target << std::dec;
    }
    return os.str();
}

} // namespace adaptsim::isa
