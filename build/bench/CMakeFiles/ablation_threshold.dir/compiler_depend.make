# Empty compiler generated dependencies file for ablation_threshold.
# This may be replaced when dependencies are built.
