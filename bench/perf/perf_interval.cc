/**
 * @file
 * Backend seam throughput: the same gcc trace through the interval
 * analysis backend and the cycle-level reference (fresh session per
 * repetition, fixed trace).  Emits one JSON object per backend, so
 * BENCH_perf.json carries the cycle-vs-interval speedup every run.
 */

#include "perf_harness.hh"

#include "harness/gather.hh"
#include "sim/perf_model.hh"
#include "uarch/core_config.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

std::vector<double>
timeBackend(const perf::PerfOptions &opt, const sim::PerfModel &model,
            const workload::Workload &wl, const uarch::CoreConfig &cc,
            std::span<const isa::MicroOp> warm_trace,
            std::span<const isa::MicroOp> trace, double &items)
{
    return perf::runTimed(opt, items, [&]() {
        workload::WrongPathGenerator wp(wl.averageParams(),
                                        wl.seed() ^ 0x57a71cULL);
        const auto session = model.makeSession(cc, wp);
        session->warm(warm_trace);
        const auto r = model.run(*session, trace);
        return static_cast<double>(r.events.committedOps);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = perf::PerfOptions::parse(argc, argv);
    const std::uint64_t detail = opt.smoke ? 20000 : 120000;
    const std::uint64_t warm = opt.smoke ? 8000 : 24000;

    const auto wl = workload::specBenchmark("gcc", 400000);
    const auto cfg = harness::paperBaselineConfig();
    const auto cc = uarch::CoreConfig::fromConfiguration(cfg);
    const auto warm_trace = wl.generate(40000 - warm, warm);
    const auto trace = wl.generate(40000, detail);

    double items = 0.0;
    const auto interval_secs =
        timeBackend(opt, sim::perfModel("interval"), wl, cc,
                    warm_trace, trace, items);
    perf::emitJson("perf_interval", opt, interval_secs, items,
                   "uops");

    const auto cycle_secs =
        timeBackend(opt, sim::perfModel("cycle"), wl, cc, warm_trace,
                    trace, items);
    perf::emitJson("perf_interval_cycle_ref", opt, cycle_secs, items,
                   "uops");
    return 0;
}
