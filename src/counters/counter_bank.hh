/**
 * @file
 * The full hardware-counter bank of Table II, gathered while running a
 * phase on the profiling configuration.
 *
 * Attach a CounterBank as the SimObserver of a profiling run, then
 * call finalise() with the run's EventCounts; the feature-vector
 * assembly (feature_vector.hh) turns the bank into model inputs.
 */

#ifndef ADAPTSIM_COUNTERS_COUNTER_BANK_HH
#define ADAPTSIM_COUNTERS_COUNTER_BANK_HH

#include "counters/reuse_distance.hh"
#include "counters/set_sampling.hh"
#include "counters/stack_distance.hh"
#include "counters/temporal_histogram.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"

namespace adaptsim::counters
{

/** Per-cache per-feature sampled set counts (0 = monitor all sets). */
struct SamplingSpec
{
    std::uint64_t icSetReuse = 0;
    std::uint64_t dcSetReuse = 0;
    std::uint64_t l2SetReuse = 0;
    std::uint64_t icBlockReuse = 0;
    std::uint64_t dcBlockReuse = 0;
    std::uint64_t l2BlockReuse = 0;
};

/** All Table II counters for one profiled phase. */
class CounterBank : public uarch::SimObserver
{
  public:
    /**
     * @param profiling_cfg the profiling configuration (largest
     *        structures) whose geometry sets histogram ranges.
     * @param sampling optional dynamic set sampling of the cache
     *        monitors (Sec. VIII).
     */
    explicit CounterBank(const uarch::CoreConfig &profiling_cfg,
                         const SamplingSpec &sampling = {});

    // SimObserver interface -------------------------------------------
    void onCycle(const uarch::CycleSample &s,
                 std::uint64_t repeat) override;
    void onDCacheAccess(Addr addr, bool write) override;
    void onICacheAccess(Addr addr) override;
    void onL2Access(Addr addr) override;
    void onBranchFetch(Addr pc, bool btb_hit) override;

    /** Derive the scalar counters once the run has finished. */
    void finalise(const uarch::EventCounts &ev);

    // Width counters.
    const TemporalHistogram &aluUsage() const { return alu_; }
    const TemporalHistogram &memPortUsage() const { return memPort_; }

    // Queue counters.
    const TemporalHistogram &robUsage() const { return rob_; }
    const TemporalHistogram &iqUsage() const { return iq_; }
    const TemporalHistogram &lsqUsage() const { return lsq_; }
    double iqSpecFrac() const { return iqSpecFrac_; }
    double lsqSpecFrac() const { return lsqSpecFrac_; }
    double iqMisSpecFrac() const { return iqMisSpecFrac_; }
    double lsqMisSpecFrac() const { return lsqMisSpecFrac_; }

    // Register file counters.
    const TemporalHistogram &intRegUsage() const { return intRf_; }
    const TemporalHistogram &fpRegUsage() const { return fpRf_; }
    const TemporalHistogram &rdPortUsage() const { return rdPorts_; }
    const TemporalHistogram &wrPortUsage() const { return wrPorts_; }

    // Cache counters.
    const StackDistanceMonitor &icStack() const { return icStack_; }
    const StackDistanceMonitor &dcStack() const { return dcStack_; }
    const StackDistanceMonitor &l2Stack() const { return l2Stack_; }
    const ReuseDistanceMonitor &icBlockReuse() const
    {
        return icBlock_;
    }
    const ReuseDistanceMonitor &dcBlockReuse() const
    {
        return dcBlock_;
    }
    const ReuseDistanceMonitor &l2BlockReuse() const
    {
        return l2Block_;
    }
    const SetReuseMonitor &icSetReuse() const { return icSet_; }
    const SetReuseMonitor &dcSetReuse() const { return dcSet_; }
    const SetReuseMonitor &l2SetReuse() const { return l2Set_; }
    const SetReuseMonitor &icReducedSetReuse() const
    {
        return icRedSet_;
    }
    const SetReuseMonitor &dcReducedSetReuse() const
    {
        return dcRedSet_;
    }
    const SetReuseMonitor &l2ReducedSetReuse() const
    {
        return l2RedSet_;
    }

    // Branch predictor counters.
    const ReuseDistanceMonitor &btbReuse() const { return btbReuse_; }
    double branchMispredRate() const { return mispredRate_; }
    double btbHitRate() const { return btbHitRate_; }

    // Pipeline depth counter.
    double cpi() const { return cpi_; }
    double ipc() const { return cpi_ > 0.0 ? 1.0 / cpi_ : 0.0; }

    /** Event counts of the profiling run (set by finalise). */
    const uarch::EventCounts &events() const { return events_; }

    const uarch::CoreConfig &profilingConfig() const { return cfg_; }

  private:
    uarch::CoreConfig cfg_;

    TemporalHistogram alu_;
    TemporalHistogram memPort_;
    TemporalHistogram rob_;
    TemporalHistogram iq_;
    TemporalHistogram lsq_;
    TemporalHistogram intRf_;
    TemporalHistogram fpRf_;
    TemporalHistogram rdPorts_;
    TemporalHistogram wrPorts_;

    std::uint64_t cycles_ = 0;
    std::uint64_t iqSpecSum_ = 0;
    std::uint64_t lsqSpecSum_ = 0;
    std::uint64_t iqOccSum_ = 0;
    std::uint64_t lsqOccSum_ = 0;

    StackDistanceMonitor icStack_;
    StackDistanceMonitor dcStack_;
    StackDistanceMonitor l2Stack_;
    ReuseDistanceMonitor icBlock_;
    ReuseDistanceMonitor dcBlock_;
    ReuseDistanceMonitor l2Block_;
    SetReuseMonitor icSet_;
    SetReuseMonitor dcSet_;
    SetReuseMonitor l2Set_;
    SetReuseMonitor icRedSet_;
    SetReuseMonitor dcRedSet_;
    SetReuseMonitor l2RedSet_;
    SetSampler icSetSampler_;
    SetSampler dcSetSampler_;
    SetSampler l2SetSampler_;
    SetSampler icBlockSampler_;
    SetSampler dcBlockSampler_;
    SetSampler l2BlockSampler_;

    ReuseDistanceMonitor btbReuse_;

    // Global access positions per monitored stream, so sampled
    // monitors measure distances in real accesses.
    std::uint64_t icPos_ = 0;
    std::uint64_t dcPos_ = 0;
    std::uint64_t l2Pos_ = 0;

    double iqSpecFrac_ = 0.0;
    double lsqSpecFrac_ = 0.0;
    double iqMisSpecFrac_ = 0.0;
    double lsqMisSpecFrac_ = 0.0;
    double mispredRate_ = 0.0;
    double btbHitRate_ = 0.0;
    double cpi_ = 0.0;
    uarch::EventCounts events_;
};

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_COUNTER_BANK_HH
