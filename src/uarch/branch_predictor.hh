/**
 * @file
 * Gshare direction predictor plus a set-associative BTB.
 *
 * The Table I space varies the gshare PHT size (1K-32K entries) and
 * the BTB size (1K-4K entries).  Speculation depth is separately
 * limited by the pipeline's in-flight-branch cap.
 */

#ifndef ADAPTSIM_UARCH_BRANCH_PREDICTOR_HH
#define ADAPTSIM_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace adaptsim::uarch
{

/** Gshare + BTB branch predictor with speculative global history. */
class BranchPredictor
{
  public:
    /**
     * @param gshare_entries PHT entries (power of two).
     * @param btb_entries BTB entries (power of two).
     * @param btb_assoc BTB associativity.
     */
    BranchPredictor(int gshare_entries, int btb_entries, int btb_assoc);

    /** Direction prediction result with bookkeeping for recovery. */
    struct Prediction
    {
        bool taken;               ///< predicted direction
        bool btbHit;              ///< target found in the BTB
        std::uint32_t history;    ///< history *before* this branch
    };

    /**
     * Predict the branch at @p pc; speculatively updates the global
     * history with the prediction.
     */
    Prediction predict(Addr pc);

    /**
     * Commit-time update with the true outcome: trains the PHT under
     * the history the branch was fetched with (@p fetch_history) and
     * (on taken branches) allocates/updates the BTB entry.
     */
    void update(Addr pc, bool taken, std::uint32_t fetch_history);

    /**
     * Restore speculative history after squashing: @p history is the
     * pre-branch history from the mispredicted branch's Prediction,
     * @p taken its resolved direction.
     */
    void recover(std::uint32_t history, bool taken);

    /** Warm-mode combined predict+update without statistics. */
    void warmAccess(Addr pc, bool taken);

    std::uint32_t history() const { return history_; }

  private:
    std::size_t phtIndex(Addr pc, std::uint32_t history) const;

    int gshareEntries_;
    int historyBits_;
    std::vector<std::uint8_t> pht_;   ///< 2-bit counters

    int btbSets_;
    int btbAssoc_;
    struct BtbEntry
    {
        Addr tag = invalidAddr;
        std::uint32_t lruStamp = 0;
    };
    std::vector<BtbEntry> btb_;
    std::uint32_t btbClock_ = 0;

    std::uint32_t history_ = 0;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_BRANCH_PREDICTOR_HH
