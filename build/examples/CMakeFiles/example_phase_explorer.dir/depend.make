# Empty dependencies file for example_phase_explorer.
# This may be replaced when dependencies are built.
