/**
 * @file
 * In-memory LRU cache of generated interval traces.
 *
 * During training-data gathering each phase's trace is replayed under
 * O(100) configurations; caching the generated µops makes replay the
 * only per-configuration cost.
 */

#ifndef ADAPTSIM_WORKLOAD_TRACE_CACHE_HH
#define ADAPTSIM_WORKLOAD_TRACE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/micro_op.hh"
#include "workload/workload.hh"

namespace adaptsim::workload
{

/** A generated interval trace shared between simulations. */
using TracePtr = std::shared_ptr<const std::vector<isa::MicroOp>>;

/** LRU cache of interval traces keyed by (workload, start, count). */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t capacity = 48);

    /**
     * Fetch (generating if needed) the trace of @p count µops of
     * @p wl starting at absolute position @p start.
     */
    TracePtr get(const Workload &wl, std::uint64_t start,
                 std::uint64_t count);

    std::size_t size() const { return map_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        std::string key;
        TracePtr trace;
    };

    std::size_t capacity_;
    std::list<Entry> lru_;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace adaptsim::workload

#endif // ADAPTSIM_WORKLOAD_TRACE_CACHE_HH
