#include "harness/thread_pool.hh"

namespace adaptsim::harness
{

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads)
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_)
                return;
            seen_generation = generation_;
            job = job_;
        }

        std::size_t local_done = 0;
        for (;;) {
            const std::size_t i =
                nextIndex_.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobSize_)
                break;
            (*job)(i);
            ++local_done;
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            remaining_ -= local_done;
            if (remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobSize_ = n;
        nextIndex_.store(0, std::memory_order_relaxed);
        remaining_ = n;
        ++generation_;
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
}

} // namespace adaptsim::harness
