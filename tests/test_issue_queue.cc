/**
 * @file
 * Tests of the age-ordered issue queue.
 */

#include <gtest/gtest.h>

#include "uarch/issue_queue.hh"

using adaptsim::uarch::IssueQueue;

TEST(IssueQueue, InsertKeepsAgeOrder)
{
    IssueQueue iq(8);
    iq.insert(5);
    iq.insert(2);
    iq.insert(9);
    ASSERT_EQ(iq.occupancy(), 3);
    EXPECT_EQ(iq.slots()[0], 5);
    EXPECT_EQ(iq.slots()[1], 2);
    EXPECT_EQ(iq.slots()[2], 9);
}

TEST(IssueQueue, FullDetection)
{
    IssueQueue iq(2);
    iq.insert(1);
    EXPECT_FALSE(iq.full());
    iq.insert(2);
    EXPECT_TRUE(iq.full());
}

TEST(IssueQueue, RemoveAtPreservesRemainder)
{
    IssueQueue iq(8);
    for (int i = 0; i < 6; ++i)
        iq.insert(i * 10);
    iq.removeAt({1, 3, 4});
    ASSERT_EQ(iq.occupancy(), 3);
    EXPECT_EQ(iq.slots()[0], 0);
    EXPECT_EQ(iq.slots()[1], 20);
    EXPECT_EQ(iq.slots()[2], 50);
}

TEST(IssueQueue, RemoveAtEmptyListIsNoop)
{
    IssueQueue iq(4);
    iq.insert(7);
    iq.removeAt({});
    EXPECT_EQ(iq.occupancy(), 1);
}

TEST(IssueQueue, RemoveIfFilters)
{
    IssueQueue iq(8);
    for (int i = 0; i < 6; ++i)
        iq.insert(i);
    iq.removeIf([](std::int32_t idx) { return idx % 2 == 0; });
    ASSERT_EQ(iq.occupancy(), 3);
    EXPECT_EQ(iq.slots()[0], 1);
    EXPECT_EQ(iq.slots()[2], 5);
}

TEST(IssueQueue, RejectsTinyCapacity)
{
    EXPECT_EXIT((IssueQueue{1}), ::testing::ExitedWithCode(1), "");
}
