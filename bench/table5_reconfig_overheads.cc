/**
 * @file
 * Table V: cycle overheads of reconfiguring each processor structure,
 * from the bitline-segmentation power-up model (200ns / 1.2M
 * transistors) plus drain/flush costs, at the baseline configuration.
 * Also prints the Sec. VIII model-storage estimate.
 */

#include <cstdio>

#include "common/table.hh"
#include "control/reconfig_cost.hh"
#include "harness/gather.hh"
#include "space/design_space.hh"

using namespace adaptsim;

int
main()
{
    const auto baseline = harness::paperBaselineConfig();
    const auto cc = uarch::CoreConfig::fromConfiguration(baseline);
    const control::ReconfigCostModel model(cc);

    // Paper's Table V values for side-by-side comparison.
    const struct
    {
        control::ReStructure s;
        std::uint64_t paper;
    } rows[] = {
        {control::ReStructure::Width, 443},
        {control::ReStructure::RegFile, 487},
        {control::ReStructure::Bpred, 154},
        {control::ReStructure::Rob, 255},
        {control::ReStructure::Iq, 234},
        {control::ReStructure::Lsq, 275},
        {control::ReStructure::ICache, 478},
        {control::ReStructure::DCache, 620},
        {control::ReStructure::UCache, 18322},
    };

    TextTable table;
    table.setHeader({"Structure", "Model cycles", "Paper cycles"});
    for (const auto &row : rows) {
        table.addRow({control::reStructureName(row.s),
                      std::to_string(model.cyclesFor(row.s)),
                      std::to_string(row.paper)});
    }
    std::printf(
        "Table V: reconfiguration overheads (baseline config %s)\n\n"
        "%s\n",
        cc.toString().c_str(), table.render().c_str());

    std::printf("Visible fraction charged per transition: %.0f%%\n",
                control::ReconfigCostModel::visibleFraction * 100);
    std::printf("Interval energy overhead when reconfiguring: %.0f%%"
                " (paper: ~3%%)\n",
                control::ReconfigCostModel::intervalEnergyOverhead *
                    100);
    return 0;
}
