/**
 * @file
 * Tests of the design-space sampling strategies (Sec. V-C building
 * blocks).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "space/sampling.hh"

using namespace adaptsim;
using namespace adaptsim::space;

TEST(Sampling, UniformIsDeterministic)
{
    Rng a(1), b(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(uniformRandom(a), uniformRandom(b));
}

TEST(Sampling, UniformSetIsDistinct)
{
    Rng rng(5);
    const auto set = uniformRandomSet(rng, 200);
    EXPECT_EQ(set.size(), 200u);
    std::unordered_set<std::uint64_t> codes;
    for (const auto &cfg : set)
        codes.insert(cfg.encode());
    EXPECT_EQ(codes.size(), 200u);
}

TEST(Sampling, UniformCoversValueSpace)
{
    // With 300 draws every width value should appear.
    Rng rng(9);
    const auto set = uniformRandomSet(rng, 300);
    std::set<std::uint64_t> widths;
    for (const auto &cfg : set)
        widths.insert(cfg.value(Param::Width));
    EXPECT_EQ(widths.size(), 4u);
}

TEST(Sampling, NeighboursExcludeCentreAndAreDistinct)
{
    Rng rng(11);
    const Configuration centre = uniformRandom(rng);
    const auto neighbours = localNeighbours(rng, centre, 40);
    EXPECT_EQ(neighbours.size(), 40u);
    std::unordered_set<std::uint64_t> codes;
    for (const auto &n : neighbours) {
        EXPECT_NE(n, centre);
        codes.insert(n.encode());
    }
    EXPECT_EQ(codes.size(), neighbours.size());
}

TEST(Sampling, NeighboursStayLocal)
{
    Rng rng(13);
    const Configuration centre = uniformRandom(rng);
    for (const auto &n : localNeighbours(rng, centre, 30, 2)) {
        int changed = 0;
        int max_step = 0;
        for (auto p : allParams()) {
            const int d = std::abs(int(n.index(p)) -
                                   int(centre.index(p)));
            changed += d != 0;
            max_step = std::max(max_step, d);
        }
        EXPECT_GE(changed, 1);
        EXPECT_LE(changed, 3);
        // Up to 3 moves may hit the same parameter: cumulative
        // steps stay within moves x radius.
        EXPECT_LE(max_step, 6);
    }
}

TEST(Sampling, OneAtATimeSweepSize)
{
    const Configuration centre;   // all minimums
    const auto sweep = oneAtATimeSweep(centre);
    // Σ (numValues - 1) over the 14 parameters = 111 - 14 = 97.
    EXPECT_EQ(sweep.size(),
              DesignSpace::the().totalValueCount() - numParams);
    for (const auto &cfg : sweep) {
        int diffs = 0;
        for (auto p : allParams())
            diffs += cfg.index(p) != centre.index(p);
        EXPECT_EQ(diffs, 1);
    }
}

TEST(Sampling, ParameterSweepCoversAllValues)
{
    const Configuration centre;
    const auto sweep = parameterSweep(centre, Param::IqSize);
    EXPECT_EQ(sweep.size(),
              DesignSpace::the().numValues(Param::IqSize));
    std::set<std::uint64_t> vals;
    for (const auto &cfg : sweep) {
        vals.insert(cfg.value(Param::IqSize));
        // Other parameters pinned to the centre.
        EXPECT_EQ(cfg.value(Param::Width),
                  centre.value(Param::Width));
    }
    EXPECT_EQ(vals.size(), sweep.size());
}

TEST(Sampling, DedupePreservesOrder)
{
    Configuration a, b;
    b.setValue(Param::Width, 8);
    const auto out = dedupe({a, b, a, b, b});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], a);
    EXPECT_EQ(out[1], b);
}
