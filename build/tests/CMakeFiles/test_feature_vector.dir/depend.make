# Empty dependencies file for test_feature_vector.
# This may be replaced when dependencies are built.
