/**
 * @file
 * Quickstart: simulate one synthetic SPEC-2000-style workload on two
 * microarchitectural configurations and compare the paper's
 * energy-efficiency metric (ips³/W).
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/example_quickstart
 */

#include <cstdio>

#include "harness/gather.hh"
#include "power/metrics.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main()
{
    // 1. Build a workload (a synthetic stand-in for SPEC's gzip).
    const auto wl = workload::specBenchmark("gzip", 400000);
    std::printf("workload: %s (%llu µops, %zu phases of behaviour)\n",
                wl.name().c_str(),
                static_cast<unsigned long long>(
                    wl.totalInstructions()),
                wl.numSegments());

    // 2. Pick two design points: the paper's Table III baseline and
    //    a small low-power point.
    const auto baseline = harness::paperBaselineConfig();
    auto small = space::Configuration::fromValues(
        {2, 48, 16, 16, 48, 2, 1, 2048, 1024, 8,
         16 * 1024, 16 * 1024, 256 * 1024, 24});

    // 3. Simulate an interval of the program on each.
    const auto warm = wl.generate(92000, 8000);
    const auto trace = wl.generate(100000, 10000);

    for (const auto &[name, cfg] :
         {std::pair{"baseline", baseline},
          std::pair{"small", small}}) {
        workload::WrongPathGenerator wp(wl.averageParams(),
                                        wl.seed() ^ 0x57a71cULL);
        const auto cc = uarch::CoreConfig::fromConfiguration(cfg);
        uarch::Core core(cc, wp);
        core.warm(warm);              // Sec. V-A structure warm-up
        const auto result = core.run(trace);
        const auto m = power::computeMetrics(cc, result.events);

        std::printf("\n[%s] %s\n", name, cc.toString().c_str());
        std::printf("  clock %.2f GHz | IPC %.3f | %.2f W | "
                    "mispredict %.1f%% | L1D miss %.1f%%\n",
                    cc.clockHz / 1e9, m.ipc, m.watts,
                    result.events.condBranches ?
                        100.0 * double(result.events.mispredicts) /
                            double(result.events.condBranches) :
                        0.0,
                    result.events.dcAccesses ?
                        100.0 * double(result.events.dcMisses) /
                            double(result.events.dcAccesses) :
                        0.0);
        std::printf("  energy efficiency (ips^3/W): %.3e\n",
                    m.efficiency);
    }

    std::printf("\nNext steps: see examples/phase_explorer.cpp for "
                "phase analysis,\nexamples/train_custom_model.cpp "
                "for model training, and\n"
                "examples/adaptive_vs_static.cpp for the full "
                "runtime controller.\n");
    return 0;
}
