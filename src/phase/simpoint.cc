#include "phase/simpoint.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "phase/kmeans.hh"

namespace adaptsim::phase
{

std::vector<Bbv>
intervalBbvs(const workload::Workload &wl,
             std::uint64_t interval_length)
{
    const std::uint64_t total = wl.totalInstructions();
    const std::uint64_t num_intervals = total / interval_length;
    if (num_intervals == 0)
        fatal("workload ", wl.name(), " shorter than one interval");

    std::vector<Bbv> bbvs;
    bbvs.reserve(num_intervals);
    // Generate the whole program once, interval by interval.
    for (std::uint64_t i = 0; i < num_intervals; ++i) {
        const auto trace =
            wl.generate(i * interval_length, interval_length);
        bbvs.push_back(Bbv::ofTrace(trace));
    }
    return bbvs;
}

std::vector<Phase>
extractPhases(const workload::Workload &wl,
              const SimPointOptions &options)
{
    const auto bbvs = intervalBbvs(wl, options.intervalLength);

    std::vector<std::vector<double>> points;
    points.reserve(bbvs.size());
    for (const auto &bbv : bbvs)
        points.push_back(bbv.values());

    Rng rng(options.seed ^
            std::hash<std::string>{}(wl.name()));
    const auto clusters =
        kmeans(points, options.maxPhases, rng);

    const std::size_t k = clusters.centroids.size();
    // Representative = interval closest to its cluster centroid.
    std::vector<std::size_t> rep(k, ~std::size_t(0));
    std::vector<double> rep_d(
        k, std::numeric_limits<double>::max());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::size_t c = clusters.assignment[i];
        double d = 0.0;
        for (std::size_t j = 0; j < points[i].size(); ++j) {
            const double diff =
                points[i][j] - clusters.centroids[c][j];
            d += diff * diff;
        }
        if (d < rep_d[c]) {
            rep_d[c] = d;
            rep[c] = i;
        }
    }

    std::vector<Phase> phases;
    for (std::size_t c = 0; c < k; ++c) {
        if (rep[c] == ~std::size_t(0))
            continue;   // empty cluster
        Phase p;
        p.workload = wl.name();
        p.startInst = rep[c] * options.intervalLength;
        p.lengthInsts = options.intervalLength;
        p.weight = double(clusters.clusterSizes[c]) /
                   double(points.size());
        p.signature = bbvs[rep[c]];
        phases.push_back(std::move(p));
    }
    // Order by position and index them.
    std::sort(phases.begin(), phases.end(),
              [](const Phase &a, const Phase &b) {
                  return a.startInst < b.startInst;
              });
    for (std::size_t i = 0; i < phases.size(); ++i)
        phases[i].index = i;
    return phases;
}

} // namespace adaptsim::phase
