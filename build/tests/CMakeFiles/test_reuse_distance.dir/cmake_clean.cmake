file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_distance.dir/test_reuse_distance.cc.o"
  "CMakeFiles/test_reuse_distance.dir/test_reuse_distance.cc.o.d"
  "test_reuse_distance"
  "test_reuse_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
