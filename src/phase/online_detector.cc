#include "phase/online_detector.hh"

#include <algorithm>
#include <limits>

#include "common/serial.hh"

namespace adaptsim::phase
{

namespace
{

// Serialized signature-table layout: magic, version, then the
// detector parameters and one (ops, dimension doubles, observation
// count) tuple per signature.  A trailing FNV-1a checksum over
// everything before it rejects truncated or bit-rotted input.
constexpr std::uint64_t kDetectorMagic = 0x414453494d504844ULL;
constexpr std::uint64_t kDetectorVersion = 1;

} // namespace

OnlinePhaseDetector::OnlinePhaseDetector(double threshold,
                                         std::size_t max_phases)
    : threshold_(threshold), maxPhases_(std::max<std::size_t>(
                                 max_phases, 1))
{
}

std::optional<OnlinePhaseDetector::Match>
OnlinePhaseDetector::bestMatch(const Bbv &bbv) const
{
    if (signatures_.empty())
        return std::nullopt;
    Match best{0, std::numeric_limits<double>::max()};
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        const double d = signatures_[i].manhattan(bbv);
        if (d < best.distance) {
            best.distance = d;
            best.phaseId = i;
        }
    }
    return best;
}

OnlinePhaseDetector::Observation
OnlinePhaseDetector::observe(const Bbv &bbv)
{
    const auto best = bestMatch(bbv);

    Observation obs;
    if (best && best->distance <= threshold_) {
        obs.newPhase = false;
        obs.phaseId = best->phaseId;
        ++observations_[best->phaseId];
    } else if (signatures_.size() < maxPhases_) {
        obs.newPhase = true;
        obs.phaseId = signatures_.size();
        signatures_.push_back(bbv);
        observations_.push_back(1);
    } else {
        // Table full: fall back to the nearest signature.  maxPhases_
        // is clamped to >= 1 so the table is guaranteed non-empty
        // here and `best` is engaged.
        obs.newPhase = false;
        obs.phaseId = best->phaseId;
        ++observations_[best->phaseId];
    }
    obs.phaseChanged = obs.phaseId != current_;
    current_ = obs.phaseId;
    return obs;
}

std::string
OnlinePhaseDetector::serialize() const
{
    std::string out;
    putU64(out, kDetectorMagic);
    putU64(out, kDetectorVersion);
    putDouble(out, threshold_);
    putU64(out, maxPhases_);
    putU64(out, current_);
    putU64(out, signatures_.size());
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        putU64(out, signatures_[i].opCount());
        for (double v : signatures_[i].values())
            putDouble(out, v);
        putU64(out, observations_[i]);
    }
    putU64(out, fnv1a64(out.data(), out.size()));
    return out;
}

std::optional<OnlinePhaseDetector>
OnlinePhaseDetector::deserialize(std::string_view bytes)
{
    // Fixed header + checksum must fit before any entry is read.
    constexpr std::size_t header = 6 * 8;
    if (bytes.size() < header + 8)
        return std::nullopt;
    const std::size_t body = bytes.size() - 8;
    if (getU64(bytes.data() + body) !=
        fnv1a64(bytes.data(), body))
        return std::nullopt;
    if (getU64(bytes.data()) != kDetectorMagic ||
        getU64(bytes.data() + 8) != kDetectorVersion)
        return std::nullopt;

    const double threshold = getDouble(bytes.data() + 16);
    const std::uint64_t max_phases = getU64(bytes.data() + 24);
    const std::uint64_t current = getU64(bytes.data() + 32);
    const std::uint64_t count = getU64(bytes.data() + 40);

    constexpr std::size_t entry = 8 + Bbv::dimension * 8 + 8;
    if (count > (body - header) / entry ||
        header + count * entry != body)
        return std::nullopt;

    OnlinePhaseDetector det(threshold,
                            static_cast<std::size_t>(max_phases));
    if (count > det.maxPhases_)
        return std::nullopt;
    det.current_ = static_cast<std::size_t>(current);
    std::size_t off = header;
    std::vector<double> values(Bbv::dimension, 0.0);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t ops = getU64(bytes.data() + off);
        off += 8;
        for (std::size_t d = 0; d < Bbv::dimension; ++d, off += 8)
            values[d] = getDouble(bytes.data() + off);
        det.signatures_.push_back(Bbv::fromValues(values, ops));
        det.observations_.push_back(getU64(bytes.data() + off));
        off += 8;
    }
    return det;
}

} // namespace adaptsim::phase
