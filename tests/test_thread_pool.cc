/**
 * @file
 * Tests of the thread pool's parallel-for.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "harness/thread_pool.hh"

using adaptsim::harness::ThreadPool;

TEST(ThreadPool, InlineWhenSingleThreaded)
{
    ThreadPool pool(1);
    std::vector<int> out(100, 0);
    pool.parallelFor(100, [&](std::size_t i) { out[i] = int(i); });
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, EveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(500, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SumsMatch)
{
    ThreadPool pool(3);
    std::atomic<long> total{0};
    pool.parallelFor(1000, [&](std::size_t i) {
        total += long(i);
    });
    EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers)
{
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.parallelFor(50, [&](std::size_t) { ++count; });
        EXPECT_EQ(count.load(), 50);
    }
}

TEST(ThreadPool, ZeroTasksIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleTaskRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 1);
}
