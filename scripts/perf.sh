#!/usr/bin/env bash
# Reproducible perf-benchmark driver.
#
# Builds the bench/perf micro-benchmarks in Release mode and runs
# each one (its own warmup + repetition + median/min logic lives in
# bench/perf/perf_harness.hh), assembling the per-benchmark JSON
# lines into a machine-readable BENCH_perf.json in the repo root.
#
#   scripts/perf.sh               full run (7 reps, 2 warmup each)
#   scripts/perf.sh --smoke       quick advisory run for CI
#   scripts/perf.sh --reps 15     more repetitions for quieter medians
#
# Extra arguments are forwarded verbatim to every benchmark binary.
# The output file is overwritten on each run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${BENCH_OUT:-BENCH_perf.json}"
BENCHES=(perf_pipeline perf_chip perf_interval perf_tracegen perf_gather
         perf_gather_warm perf_train perf_learned perf_service)

echo "perf: will run ${#BENCHES[@]} benchmarks: ${BENCHES[*]}" >&2

command -v python3 > /dev/null 2>&1 || {
    echo "perf: python3 is required to assemble $OUT" >&2
    exit 1
}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}"

# A bench that configured but did not produce a binary (e.g. a
# CMakeLists edit that dropped it from the target list) must fail
# here, by name — not as a cryptic exec error mid-assembly.
missing=0
for bench in "${BENCHES[@]}"; do
    if [ ! -x "$BUILD_DIR/bench/perf/$bench" ]; then
        echo "perf: benchmark binary missing after build:" \
             "$BUILD_DIR/bench/perf/$bench" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || exit 1

# Each binary emits one JSON object per measurement per line (a
# binary may emit several — perf_interval reports the interval
# backend and its cycle-level reference).  Every line is validated
# as it arrives so a malformed measurement fails loudly, naming the
# benchmark and the offending line, instead of shipping a bad
# artifact.  The assembled file is written to a temp path and moved
# into place only once it validated end to end.
TMP_OUT="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP_OUT"' EXIT

{
    echo '{'
    echo '  "benchmarks": ['
    first=1
    for bench in "${BENCHES[@]}"; do
        out="$("$BUILD_DIR/bench/perf/$bench" "$@")"
        [ -n "$out" ] || { echo "perf: $bench emitted nothing" >&2;
                           exit 1; }
        while IFS= read -r line; do
            [ -n "$line" ] || continue
            if ! printf '%s' "$line" |
                python3 -c 'import json,sys; json.load(sys.stdin)' \
                    2> /dev/null; then
                echo "perf: $bench emitted malformed JSON: $line" >&2
                exit 1
            fi
            if [ "$first" -eq 1 ]; then first=0; else echo ','; fi
            printf '    %s' "$line"
        done <<< "$out"
    done
    echo
    echo '  ]'
    echo '}'
} > "$TMP_OUT"

# Whole-document validation, then the atomic move into place.
python3 -m json.tool "$TMP_OUT" > /dev/null
mv "$TMP_OUT" "$OUT"
trap - EXIT

echo "perf: wrote $OUT"
