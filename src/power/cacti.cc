#include "power/cacti.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::power
{

namespace
{

// Fitted-constant block.  Names follow the term they scale.
constexpr double sramTimeBaseNs = 0.28;     ///< decoder + sense floor
constexpr double sramTimeWireNs = 0.032;    ///< wire term coefficient
constexpr double sramTimeWireExp = 0.58;    ///< wire growth vs KB
constexpr double sramTimeAssocNs = 0.012;   ///< per-way mux penalty

constexpr double sramEnergyBaseNj = 0.006;
constexpr double sramEnergyKbNj = 0.0016;   ///< per (KB)^0.72
constexpr double sramEnergyKbExp = 0.72;
constexpr double sramEnergyAssocNj = 0.0015;

constexpr double sramLeakWPerKb = 0.0009;   ///< 0.9 mW per KB

constexpr double rfEnergyCellNj = 0.00010;  ///< per entry^0.5
constexpr double rfEnergyPortFactor = 0.22; ///< per extra port
constexpr double rfLeakWPerEntryPort = 2.2e-5;

constexpr double camEnergyPerEntryNj = 0.00065;

} // namespace

double
sramAccessTimeNs(std::uint64_t bytes, int assoc)
{
    const double kb = static_cast<double>(bytes) / 1024.0;
    return sramTimeBaseNs +
           sramTimeWireNs * std::pow(kb, sramTimeWireExp) +
           sramTimeAssocNs * static_cast<double>(assoc);
}

double
sramAccessEnergyNj(std::uint64_t bytes, int assoc)
{
    const double kb = static_cast<double>(bytes) / 1024.0;
    return sramEnergyBaseNj +
           sramEnergyKbNj * std::pow(kb, sramEnergyKbExp) +
           sramEnergyAssocNj * static_cast<double>(assoc);
}

double
sramLeakageW(std::uint64_t bytes)
{
    return sramLeakWPerKb * static_cast<double>(bytes) / 1024.0;
}

double
rfAccessEnergyNj(int entries, int read_ports, int write_ports)
{
    const double ports =
        static_cast<double>(read_ports + write_ports);
    // Bit-lines lengthen with entries; word-lines with ports.  Both
    // capacitances multiply, giving the well-known ports^~1.2 growth.
    return rfEnergyCellNj *
           std::sqrt(static_cast<double>(std::max(entries, 1))) *
           (1.0 + rfEnergyPortFactor * ports) *
           std::pow(ports, 0.2);
}

double
rfLeakageW(int entries, int read_ports, int write_ports)
{
    return rfLeakWPerEntryPort * static_cast<double>(entries) *
           (1.0 + 0.12 * static_cast<double>(read_ports +
                                             write_ports));
}

double
arrayAccessEnergyNj(int entries, int entry_bytes)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(std::max(entries, 1)) *
        static_cast<std::uint64_t>(std::max(entry_bytes, 1));
    // Payload RAMs are single-ported direct arrays: cheaper than a
    // same-size cache (no tag match), modelled as 60% of its energy.
    return 0.6 * sramAccessEnergyNj(bytes, 1);
}

double
arrayLeakageW(int entries, int entry_bytes)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(std::max(entries, 1)) *
        static_cast<std::uint64_t>(std::max(entry_bytes, 1));
    return sramLeakageW(bytes);
}

double
camSearchEnergyNj(int entries)
{
    return camEnergyPerEntryNj * static_cast<double>(entries);
}

} // namespace adaptsim::power
