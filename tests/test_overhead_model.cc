/**
 * @file
 * Tests of the counter-monitoring energy overhead model (Fig. 9).
 */

#include <gtest/gtest.h>

#include "counters/overhead_model.hh"

using namespace adaptsim::counters;

namespace
{

constexpr std::uint64_t l1Bytes = 128 * 1024;
constexpr std::uint64_t l2Bytes = 4 * 1024 * 1024;
constexpr int line = 64;

} // namespace

TEST(OverheadModel, SamplingReducesDynamicOverhead)
{
    const auto full = blockReuseOverhead(l1Bytes, 2, line, 0);
    const auto sampled = blockReuseOverhead(l1Bytes, 2, line, 16);
    EXPECT_LT(sampled.dynamicPct, full.dynamicPct);
    EXPECT_LT(sampled.leakagePct, full.leakagePct);
}

TEST(OverheadModel, SampledOverheadsAreSmall)
{
    // With Table IV sampling the paper reports ≤1.6% dynamic and
    // ≤1.4% leakage.  Our model must land in single digits.
    const auto dc_blk = blockReuseOverhead(l1Bytes, 2, line, 128);
    EXPECT_LT(dc_blk.dynamicPct, 8.0);
    EXPECT_LT(dc_blk.leakagePct, 8.0);
    EXPECT_GT(dc_blk.dynamicPct, 0.0);

    const auto l2_set = setReuseOverhead(l2Bytes, 8, line, 16);
    EXPECT_LT(l2_set.dynamicPct, 2.0);
    EXPECT_LT(l2_set.leakagePct, 1.0);
}

TEST(OverheadModel, BlockMonitoringCostsMoreThanSetMonitoring)
{
    // Block reuse stores per-way timestamps; set reuse one counter
    // per set.
    const auto blk = blockReuseOverhead(l1Bytes, 2, line, 64);
    const auto set = setReuseOverhead(l1Bytes, 2, line, 64);
    EXPECT_GT(blk.leakagePct, set.leakagePct);
}

TEST(OverheadModel, OversizedSampleCountClamps)
{
    // Requesting more sets than exist behaves like full monitoring.
    const auto a = setReuseOverhead(l1Bytes, 2, line, 0);
    const auto b = setReuseOverhead(l1Bytes, 2, line, 1u << 20);
    EXPECT_DOUBLE_EQ(a.dynamicPct, b.dynamicPct);
}

TEST(OverheadModel, LargerCachesAmortiseLeakageBetter)
{
    // The same 16 sampled sets are relatively cheaper against a
    // bigger cache's leakage.
    const auto small = blockReuseOverhead(8 * 1024, 2, line, 16);
    const auto big = blockReuseOverhead(l1Bytes, 2, line, 16);
    EXPECT_LT(big.leakagePct, small.leakagePct);
}
