file(REMOVE_RECURSE
  "CMakeFiles/table1_design_space.dir/table1_design_space.cc.o"
  "CMakeFiles/table1_design_space.dir/table1_design_space.cc.o.d"
  "table1_design_space"
  "table1_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
