file(REMOVE_RECURSE
  "CMakeFiles/example_explore_design_space.dir/explore_design_space.cpp.o"
  "CMakeFiles/example_explore_design_space.dir/explore_design_space.cpp.o.d"
  "example_explore_design_space"
  "example_explore_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_explore_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
