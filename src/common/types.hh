/**
 * @file
 * Fundamental scalar types shared across adaptsim.
 */

#ifndef ADAPTSIM_COMMON_TYPES_HH
#define ADAPTSIM_COMMON_TYPES_HH

#include <cstdint>

namespace adaptsim
{

/** A byte address in the simulated (synthetic) address space. */
using Addr = std::uint64_t;

/** A cycle count or timestamp in core clock cycles. */
using Cycles = std::uint64_t;

/** A monotonically increasing dynamic-instruction sequence number. */
using SeqNum = std::uint64_t;

/** Tick granularity used for time stamps inside counters. */
using Tick = std::uint64_t;

/** Invalid/unset sentinel for sequence numbers. */
inline constexpr SeqNum invalidSeqNum = ~SeqNum(0);

/** Invalid/unset sentinel for addresses. */
inline constexpr Addr invalidAddr = ~Addr(0);

} // namespace adaptsim

#endif // ADAPTSIM_COMMON_TYPES_HH
