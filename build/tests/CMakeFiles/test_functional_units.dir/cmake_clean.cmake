file(REMOVE_RECURSE
  "CMakeFiles/test_functional_units.dir/test_functional_units.cc.o"
  "CMakeFiles/test_functional_units.dir/test_functional_units.cc.o.d"
  "test_functional_units"
  "test_functional_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
