/**
 * @file
 * Set-associative cache tag model with true-LRU replacement.
 *
 * Only tags are modelled (trace-driven timing simulation never needs
 * data).  Timing is produced by the hierarchy, which composes L1I/L1D
 * with the unified L2.
 */

#ifndef ADAPTSIM_UARCH_CACHE_HH
#define ADAPTSIM_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace adaptsim::uarch
{

/** One level of set-associative cache (tags + LRU only). */
class Cache
{
  public:
    /**
     * @param bytes total capacity.
     * @param assoc ways per set.
     * @param line_bytes line size (power of two).
     */
    Cache(std::uint64_t bytes, int assoc, int line_bytes);

    /** Result of an access. */
    struct AccessResult
    {
        bool hit;
        bool writeback;   ///< a dirty victim was evicted
    };

    /**
     * Access @p addr; on a miss the line is filled (evicting LRU).
     * @p write marks the line dirty.
     */
    AccessResult access(Addr addr, bool write);

    /** Probe without fill or LRU update (used by monitors). */
    bool probe(Addr addr) const;

    /** Invalidate everything (reconfiguration flush). */
    void flush();

    std::uint64_t numSets() const { return numSets_; }
    int assoc() const { return assoc_; }
    int lineBytes() const { return lineBytes_; }
    std::uint64_t sizeBytes() const { return bytes_; }

    /** Set index of @p addr in this geometry. */
    std::uint64_t setIndex(Addr addr) const
    {
        return (addr / lineBytes_) & (numSets_ - 1);
    }

    /** Line-granular block address of @p addr. */
    Addr blockAddr(Addr addr) const
    {
        return addr / lineBytes_;
    }

  private:
    struct Line
    {
        Addr tag = invalidAddr;
        std::uint32_t lruStamp = 0;
        bool dirty = false;
    };

    std::uint64_t bytes_;
    int assoc_;
    int lineBytes_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint32_t clock_ = 0;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_CACHE_HH
