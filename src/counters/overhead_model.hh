/**
 * @file
 * Energy-overhead model for gathering the cache reuse-distance
 * counters (Sec. VIII, Fig. 9).
 *
 * Block-reuse monitoring stores two timestamps plus a hit counter per
 * monitored block; set-reuse monitoring stores one counter per
 * monitored set.  Dynamic overhead is the monitor-update energy on
 * every access to a sampled set relative to the cache's own access
 * energy; static (leakage) overhead is the monitor storage's leakage
 * relative to the cache's.
 */

#ifndef ADAPTSIM_COUNTERS_OVERHEAD_MODEL_HH
#define ADAPTSIM_COUNTERS_OVERHEAD_MODEL_HH

#include <cstdint>

namespace adaptsim::counters
{

/** Relative monitoring overheads in percent. */
struct MonitorOverhead
{
    double dynamicPct = 0.0;   ///< vs cache dynamic energy
    double leakagePct = 0.0;   ///< vs cache leakage power
};

/** Storage cost of block-reuse monitoring per block, bytes
 *  (two 16-bit timestamps + one 8-bit hit counter). */
inline constexpr int blockMonitorBytes = 5;

/** Storage cost of set-reuse monitoring per set, bytes. */
inline constexpr int setMonitorBytes = 4;

/**
 * Overhead of gathering the *block* reuse-distance histogram of a
 * cache with @p cache_bytes capacity and @p assoc ways when
 * @p sampled_sets of its sets are monitored (0 = all).
 */
MonitorOverhead blockReuseOverhead(std::uint64_t cache_bytes,
                                   int assoc, int line_bytes,
                                   std::uint64_t sampled_sets);

/** Overhead of gathering the *set* reuse-distance histogram. */
MonitorOverhead setReuseOverhead(std::uint64_t cache_bytes, int assoc,
                                 int line_bytes,
                                 std::uint64_t sampled_sets);

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_OVERHEAD_MODEL_HH
