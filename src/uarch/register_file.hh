/**
 * @file
 * Physical register file occupancy model.
 *
 * Renaming needs one free physical register per dispatched dest; the
 * architectural state permanently holds 32.  We track the in-flight
 * count (allocation/commit/squash) rather than explicit free lists —
 * trace-driven timing only needs occupancy and availability.
 */

#ifndef ADAPTSIM_UARCH_REGISTER_FILE_HH
#define ADAPTSIM_UARCH_REGISTER_FILE_HH

#include "isa/micro_op.hh"

namespace adaptsim::uarch
{

/** One physical register file (integer or FP). */
class RegisterFile
{
  public:
    explicit RegisterFile(int phys_regs);

    /** True when a destination can be renamed this cycle. */
    bool canAllocate() const { return inFlight_ < renameRegs_; }

    /** Claim one physical register for an in-flight destination. */
    void allocate();

    /** Release at commit (the previous mapping is freed). */
    void release();

    /** Release @p count registers of squashed in-flight producers. */
    void squash(int count);

    /** Registers currently holding live state (arch + in-flight). */
    int used() const { return isa::numArchRegs + inFlight_; }

    int inFlight() const { return inFlight_; }
    int physRegs() const { return physRegs_; }

  private:
    int physRegs_;
    int renameRegs_;   ///< physRegs - architectural
    int inFlight_ = 0;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_REGISTER_FILE_HH
