# Empty dependencies file for table5_reconfig_overheads.
# This may be replaced when dependencies are built.
