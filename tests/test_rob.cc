/**
 * @file
 * Tests of the reorder-buffer ring.
 */

#include <gtest/gtest.h>

#include "uarch/rob.hh"

using namespace adaptsim::uarch;

TEST(Rob, PushPopOrder)
{
    Rob rob(8);
    EXPECT_TRUE(rob.empty());
    const auto a = rob.push();
    const auto b = rob.push();
    EXPECT_EQ(rob.occupancy(), 2);
    EXPECT_EQ(rob.headIndex(), a);
    rob.popHead();
    EXPECT_EQ(rob.headIndex(), b);
    rob.popHead();
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, FullDetection)
{
    Rob rob(4);
    for (int i = 0; i < 4; ++i)
        rob.push();
    EXPECT_TRUE(rob.full());
    rob.popHead();
    EXPECT_FALSE(rob.full());
}

TEST(Rob, WrapsAround)
{
    Rob rob(4);
    for (int round = 0; round < 10; ++round) {
        const auto idx = rob.push();
        rob.entry(idx).doneCycle = round;
        rob.popHead();
    }
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, SeqGuardsAgainstRecycledSlots)
{
    Rob rob(4);
    const auto idx = rob.push();
    const auto seq = rob.entry(idx).seq;
    EXPECT_TRUE(rob.valid(idx, seq));
    rob.popHead();
    EXPECT_FALSE(rob.valid(idx, seq));
    const auto idx2 = rob.push();   // recycles the slot eventually
    (void)idx2;
    EXPECT_FALSE(rob.valid(idx, seq));
}

TEST(Rob, SquashYoungestInvokesCallbackNewestFirst)
{
    Rob rob(8);
    const auto a = rob.push();
    const auto b = rob.push();
    const auto c = rob.push();
    rob.entry(a).doneCycle = 1;
    rob.entry(b).doneCycle = 2;
    rob.entry(c).doneCycle = 3;

    std::vector<adaptsim::Cycles> seen;
    rob.squashYoungest(2, [&](RobEntry &e) {
        seen.push_back(e.doneCycle);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 3u);   // youngest first
    EXPECT_EQ(seen[1], 2u);
    EXPECT_EQ(rob.occupancy(), 1);
    EXPECT_EQ(rob.headIndex(), a);
}

TEST(Rob, DistanceFromHead)
{
    Rob rob(4);
    // Advance the ring so head isn't at slot 0.
    rob.push();
    rob.push();
    rob.popHead();
    rob.popHead();
    const auto x = rob.push();
    const auto y = rob.push();
    const auto z = rob.push();
    EXPECT_EQ(rob.distanceFromHead(x), 0);
    EXPECT_EQ(rob.distanceFromHead(y), 1);
    EXPECT_EQ(rob.distanceFromHead(z), 2);
    EXPECT_EQ(rob.indexFromHead(1), y);
    EXPECT_EQ(rob.tailIndex(), z);
}

TEST(Rob, PushResetsEntryState)
{
    Rob rob(4);
    const auto a = rob.push();
    rob.entry(a).wrongPath = true;
    rob.entry(a).inIq = true;
    rob.popHead();
    rob.push();
    rob.push();
    rob.push();
    const auto c = rob.push();   // ring wraps back onto slot a
    EXPECT_EQ(c, a);
    EXPECT_FALSE(rob.entry(c).wrongPath);
    EXPECT_FALSE(rob.entry(c).inIq);
    EXPECT_EQ(rob.entry(c).state, OpState::Dispatched);
}
