#include "obs/obs.hh"

#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/table.hh"

namespace adaptsim::obs
{

namespace
{

void
atExitReport()
{
    if (metricsEnabled()) {
        report(stderr);
        const std::string json_path = metricsJsonPath();
        if (!json_path.empty() &&
            !atomicWriteFile(json_path, metricsJson()))
            warn("obs: cannot write metrics JSON to ", json_path);
    }
    flushTrace();
}

std::string
secs(double v)
{
    std::ostringstream os;
    if (v >= 100.0)
        os << std::fixed << std::setprecision(0) << v << "s";
    else if (v >= 0.1)
        os << std::fixed << std::setprecision(2) << v << "s";
    else
        os << std::fixed << std::setprecision(2) << v * 1e3 << "ms";
    return os.str();
}

} // namespace

std::vector<double>
latencyBounds()
{
    // 1µs .. ~137s in 28 power-of-two buckets.
    return Registry::exponentialBounds(1e-6, 2.0, 28);
}

Histogram &
spanHistogram(const char *name)
{
    return Registry::global().histogram(
        std::string(name) + ".seconds", latencyBounds());
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Touch the registry first so it outlives the atexit hook.
        Registry::global();
        if (traceEnabled()) {
            // Deliberately leaked: spans may still fire during
            // static destruction; flushTrace() persists the events.
            auto *writer = new TraceWriter(traceFile());
            writer->nameCurrentThread("main");
            TraceWriter::setActive(writer);
        }
        std::atexit(&atExitReport);
    });
}

void
report(std::FILE *out)
{
    const Snapshot snap = Registry::global().snapshot();
    if (snap.counters.empty() && snap.gauges.empty() &&
        snap.histograms.empty())
        return;

    std::ostringstream os;
    os << "\n=== adaptsim metrics ===\n";

    // Derived headline: worker utilisation across all pools.
    std::uint64_t busy = 0, capacity = 0;
    for (const auto &[name, value] : snap.counters) {
        if (name == "pool/busy.micros")
            busy = value;
        else if (name == "pool/capacity.micros")
            capacity = value;
    }
    if (capacity > 0) {
        os << "thread-pool utilisation: " << std::fixed
           << std::setprecision(1)
           << 100.0 * double(busy) / double(capacity) << "% ("
           << secs(double(busy) * 1e-6) << " busy of "
           << secs(double(capacity) * 1e-6) << " capacity)\n";
    }

    if (!snap.counters.empty()) {
        TextTable table;
        table.setHeader({"counter", "value"});
        for (const auto &[name, value] : snap.counters)
            table.addRow({name, TextTable::num(value)});
        os << "\n" << table.render();
    }

    if (!snap.gauges.empty()) {
        TextTable table;
        table.setHeader({"gauge", "value"});
        for (const auto &[name, value] : snap.gauges)
            table.addRow({name, TextTable::num(value, 4)});
        os << "\n" << table.render();
    }

    if (!snap.histograms.empty()) {
        TextTable table;
        table.setHeader({"timer", "count", "total", "mean", "p50",
                         "p95", "max"});
        for (const auto &[name, st] : snap.histograms) {
            table.addRow({name, TextTable::num(st.count),
                          secs(st.sum), secs(st.mean()),
                          secs(st.quantile(0.5)),
                          secs(st.quantile(0.95)), secs(st.max)});
        }
        os << "\n" << table.render();
    }

    // One locked write: the table never interleaves with warn() or
    // inform() lines from other threads.
    lockedWrite(out, os.str());
}

std::string
metricsJson()
{
    const Snapshot snap = Registry::global().snapshot();
    std::ostringstream os;
    os.precision(17);

    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, st] : snap.histograms) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"count\":" << st.count << ",\"sum\":" << st.sum
           << ",\"min\":" << (st.count ? st.min : 0.0)
           << ",\"max\":" << (st.count ? st.max : 0.0)
           << ",\"bounds\":[";
        for (std::size_t i = 0; i < st.bounds.size(); ++i)
            os << (i ? "," : "") << st.bounds[i];
        os << "],\"counts\":[";
        for (std::size_t i = 0; i < st.counts.size(); ++i)
            os << (i ? "," : "") << st.counts[i];
        os << "]}";
        first = false;
    }
    os << "}}\n";
    return os.str();
}

void
flushTrace()
{
    auto *writer = TraceWriter::active();
    if (!writer)
        return;
    if (writer->finish())
        inform("obs: trace written to ", writer->path());
    else
        warn("obs: cannot write trace to ", writer->path());
}

} // namespace adaptsim::obs
