file(REMOVE_RECURSE
  "CMakeFiles/fig3_lsq_counters.dir/fig3_lsq_counters.cc.o"
  "CMakeFiles/fig3_lsq_counters.dir/fig3_lsq_counters.cc.o.d"
  "fig3_lsq_counters"
  "fig3_lsq_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lsq_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
