file(REMOVE_RECURSE
  "CMakeFiles/example_train_custom_model.dir/train_custom_model.cpp.o"
  "CMakeFiles/example_train_custom_model.dir/train_custom_model.cpp.o.d"
  "example_train_custom_model"
  "example_train_custom_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_train_custom_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
