file(REMOVE_RECURSE
  "CMakeFiles/test_spec_suite.dir/test_spec_suite.cc.o"
  "CMakeFiles/test_spec_suite.dir/test_spec_suite.cc.o.d"
  "test_spec_suite"
  "test_spec_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
