#include "harness/gather.hh"

#include <algorithm>

#include "common/logging.hh"
#include "space/sampling.hh"

namespace adaptsim::harness
{

ml::PhaseData
GatheredPhase::toPhaseData(counters::FeatureSet set) const
{
    ml::PhaseData data;
    data.workload = phase.workload;
    data.phaseIndex = phase.index;
    data.weight = phase.weight;
    data.features = set == counters::FeatureSet::Advanced ?
        features.advanced : features.basic;
    data.evals = evals;
    return data;
}

space::Configuration
paperBaselineConfig()
{
    // Table III.
    return space::Configuration::fromValues(
        {4, 144, 48, 32, 160, 4, 1, 16384, 1024, 24,
         64 * 1024, 32 * 1024, 1024 * 1024, 12});
}

std::vector<space::Configuration>
sharedConfigPool(const GatherOptions &options)
{
    Rng rng(options.seed);
    auto pool =
        space::uniformRandomSet(rng, options.sharedRandomConfigs);
    // The paper's Table III baseline is always part of the pool so
    // the best-static search has the classic candidate available.
    pool.push_back(paperBaselineConfig());
    return space::dedupe(std::move(pool));
}

std::vector<GatheredPhase>
gatherTrainingData(EvalRepository &repo,
                   const std::vector<phase::Phase> &phases,
                   std::uint64_t program_length,
                   std::uint64_t warm_length,
                   const GatherOptions &options)
{
    const auto shared = sharedConfigPool(options);

    std::vector<GatheredPhase> out;
    out.reserve(phases.size());

    for (const auto &ph : phases) {
        GatheredPhase g;
        g.phase = ph;
        g.spec = PhaseSpec{ph.workload, program_length,
                           ph.startInst, warm_length,
                           ph.lengthInsts};

        // 1. Shared uniform sample.
        auto evals = repo.evaluateBatch(g.spec, shared);
        auto record = [&](const space::Configuration &cfg,
                          const EvalRecord &r) {
            g.evals.push_back(ml::ConfigEval{cfg, r.efficiency});
        };
        for (std::size_t i = 0; i < shared.size(); ++i)
            record(shared[i], evals[i]);

        auto best_of = [&]() {
            const ml::ConfigEval *best = &g.evals.front();
            for (const auto &e : g.evals) {
                if (e.efficiency > best->efficiency)
                    best = &e;
            }
            return best->config;
        };

        // 2. Local neighbourhood of the best point found so far.
        if (options.localNeighbours > 0) {
            Rng rng(options.seed ^
                    (std::hash<std::string>{}(ph.workload) +
                     ph.index * 0x9e37ULL));
            const auto neighbours = space::localNeighbours(
                rng, best_of(), options.localNeighbours);
            const auto n_evals =
                repo.evaluateBatch(g.spec, neighbours);
            for (std::size_t i = 0; i < neighbours.size(); ++i)
                record(neighbours[i], n_evals[i]);
        }

        // 3. One-at-a-time sweep around the refined best.
        if (options.oneAtATimeSweep) {
            const auto sweep = space::oneAtATimeSweep(best_of());
            const auto s_evals = repo.evaluateBatch(g.spec, sweep);
            for (std::size_t i = 0; i < sweep.size(); ++i)
                record(sweep[i], s_evals[i]);
        }

        // 4. Profiling-configuration counters.
        g.features = repo.profile(g.spec);

        out.push_back(std::move(g));
        // Phase boundaries are durable checkpoints: everything
        // buffered by the incremental flusher is committed here.
        repo.flush();

        if (options.progress) {
            const std::size_t done = out.size();
            const std::size_t step =
                std::max<std::size_t>(1, phases.size() / 20);
            if (done % step == 0 || done == phases.size())
                inform("gather: ", done, "/", phases.size(),
                       " phases (", repo.statsSummary(), ")");
        }
    }
    return out;
}

} // namespace adaptsim::harness
