# Empty compiler generated dependencies file for test_rob.
# This may be replaced when dependencies are built.
