# Empty compiler generated dependencies file for fig7_phase_accuracy.
# This may be replaced when dependencies are built.
