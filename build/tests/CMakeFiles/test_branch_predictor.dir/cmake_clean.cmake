file(REMOVE_RECURSE
  "CMakeFiles/test_branch_predictor.dir/test_branch_predictor.cc.o"
  "CMakeFiles/test_branch_predictor.dir/test_branch_predictor.cc.o.d"
  "test_branch_predictor"
  "test_branch_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
