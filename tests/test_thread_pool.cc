/**
 * @file
 * Tests of the thread pool's parallel-for.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/thread_pool.hh"

using adaptsim::harness::ThreadPool;

TEST(ThreadPool, InlineWhenSingleThreaded)
{
    ThreadPool pool(1);
    std::vector<int> out(100, 0);
    pool.parallelFor(100, [&](std::size_t i) { out[i] = int(i); });
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, EveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(500, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SumsMatch)
{
    ThreadPool pool(3);
    std::atomic<long> total{0};
    pool.parallelFor(1000, [&](std::size_t i) {
        total += long(i);
    });
    EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers)
{
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.parallelFor(50, [&](std::size_t) { ++count; });
        EXPECT_EQ(count.load(), 50);
    }
}

TEST(ThreadPool, ZeroTasksIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleTaskRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, JobExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, ExceptionSkipsUnstartedWork)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(10000,
                                  [&](std::size_t) {
                                      ++ran;
                                      throw std::runtime_error(
                                          "first job fails");
                                  }),
                 std::runtime_error);
    // Only jobs already claimed when the failure hit may have run.
    EXPECT_LT(ran.load(), 10000);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(50,
                                  [&](std::size_t) {
                                      throw std::runtime_error("x");
                                  }),
                 std::runtime_error);

    std::atomic<long> total{0};
    pool.parallelFor(1000, [&](std::size_t i) { total += long(i); });
    EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, InlineExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(5,
                                  [&](std::size_t i) {
                                      if (i == 2)
                                          throw std::runtime_error(
                                              "inline");
                                  }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallelFor(5, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ReentrantUseIsRejected)
{
    ThreadPool pool(2);
    // The inner call throws std::logic_error inside the job, which
    // the pool surfaces on the calling thread.
    EXPECT_THROW(pool.parallelFor(
                     4,
                     [&](std::size_t) {
                         pool.parallelFor(2, [](std::size_t) {});
                     }),
                 std::logic_error);
}

TEST(ThreadPool, ReentrantUseIsRejectedInline)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     2,
                     [&](std::size_t) {
                         pool.parallelFor(2, [](std::size_t) {});
                     }),
                 std::logic_error);
}

TEST(ThreadPool, NestedUseOfDistinctPoolsIsAllowed)
{
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::atomic<int> count{0};
    outer.parallelFor(4, [&](std::size_t) {
        inner.parallelFor(8, [&](std::size_t) { ++count; });
    });
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ConcurrentExternalCallersSerialize)
{
    ThreadPool pool(4);
    std::atomic<long> a{0};
    std::atomic<long> b{0};
    std::thread t1([&] {
        pool.parallelFor(500, [&](std::size_t i) { a += long(i); });
    });
    std::thread t2([&] {
        pool.parallelFor(500, [&](std::size_t i) { b += long(i); });
    });
    t1.join();
    t2.join();
    EXPECT_EQ(a.load(), 499L * 500 / 2);
    EXPECT_EQ(b.load(), 499L * 500 / 2);
}
