#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a
# ThreadSanitizer pass over the concurrency-critical tests
# (thread pool, shared simulation repository, metrics registry),
# then a -DADAPTSIM_OBS=OFF build proving the instrumentation
# compiles out cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

# TSan build preset (cmake -DADAPTSIM_SANITIZE=thread).  Skipped
# gracefully where libtsan is unavailable.
if echo 'int main(){return 0;}' |
    c++ -fsanitize=thread -x c++ - -o /tmp/adaptsim_tsan_probe \
        2>/dev/null; then
    rm -f /tmp/adaptsim_tsan_probe
    cmake -B build-tsan -S . -DADAPTSIM_SANITIZE=thread
    cmake --build build-tsan -j \
        --target test_thread_pool test_repository test_obs
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_thread_pool|test_repository|test_obs'
else
    echo "tier1: ThreadSanitizer unavailable; skipping TSan pass"
fi

# Compile-out check: with ADAPTSIM_OBS=OFF the OBS_* macros vanish
# from every call site; the library, a bench, and the obs unit
# tests must still build and pass.
cmake -B build-noobs -S . -DADAPTSIM_OBS=OFF
cmake --build build-noobs -j \
    --target test_obs table3_baseline_static
ctest --test-dir build-noobs --output-on-failure -R 'test_obs'
