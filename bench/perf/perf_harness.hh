/**
 * @file
 * Tiny deterministic micro-benchmark harness for the perf_* binaries.
 *
 * Every benchmark runs a fixed workload `--warmup` times (discarded),
 * then `--reps` timed repetitions, and emits one machine-readable
 * JSON object per measurement on stdout.  scripts/perf.sh collects
 * those objects into BENCH_perf.json so every PR leaves a perf
 * trajectory behind.  Reporting median and min makes the numbers
 * robust to scheduler noise; the workload itself is bit-deterministic
 * so only the clock varies between repetitions.
 *
 * Flags (shared by all perf binaries):
 *   --reps N     timed repetitions (default 7)
 *   --warmup N   discarded warm-up repetitions (default 2)
 *   --smoke      CI-sized run: 1 warm-up, 3 reps, smaller workloads
 */

#ifndef ADAPTSIM_BENCH_PERF_PERF_HARNESS_HH
#define ADAPTSIM_BENCH_PERF_PERF_HARNESS_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace adaptsim::perf
{

/** Parsed command-line options shared by every perf binary. */
struct PerfOptions
{
    int reps = 7;
    int warmup = 2;
    bool smoke = false;

    static PerfOptions
    parse(int argc, char **argv)
    {
        PerfOptions opt;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (std::strcmp(a, "--smoke") == 0) {
                opt.smoke = true;
                opt.reps = 3;
                opt.warmup = 1;
            } else if (std::strcmp(a, "--reps") == 0 &&
                       i + 1 < argc) {
                opt.reps = std::max(1, std::atoi(argv[++i]));
            } else if (std::strcmp(a, "--warmup") == 0 &&
                       i + 1 < argc) {
                opt.warmup = std::max(0, std::atoi(argv[++i]));
            }
        }
        return opt;
    }
};

/** Monotonic seconds since an arbitrary origin. */
inline double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

inline double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n == 0)
        return 0.0;
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

inline double
minimum(const std::vector<double> &v)
{
    return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

/**
 * Run @p fn opt.warmup + opt.reps times; @p fn must perform one full
 * repetition (including any per-rep reset) and return the number of
 * work "items" done (µops simulated, records gathered, ...), used to
 * derive a throughput.  Returns the timed per-rep seconds.
 */
template <typename Fn>
std::vector<double>
runTimed(const PerfOptions &opt, double &items_out, Fn &&fn)
{
    items_out = 0.0;
    for (int i = 0; i < opt.warmup; ++i)
        (void)fn();
    std::vector<double> secs;
    secs.reserve(static_cast<std::size_t>(opt.reps));
    for (int i = 0; i < opt.reps; ++i) {
        const double t0 = nowSeconds();
        items_out = fn();
        secs.push_back(nowSeconds() - t0);
    }
    return secs;
}

/**
 * Emit one result object (a line of JSON) on stdout.  @p items is
 * the per-rep work count used for the derived throughput
 * (items / median_seconds); pass 0 to omit the throughput fields.
 */
inline void
emitJson(const std::string &name, const PerfOptions &opt,
         const std::vector<double> &secs, double items,
         const std::string &items_unit)
{
    const double med = median(secs);
    const double mn = minimum(secs);
    std::printf("{\"name\":\"%s\",\"reps\":%d,\"warmup\":%d,"
                "\"smoke\":%s,\"median_s\":%.6f,\"min_s\":%.6f",
                name.c_str(), opt.reps, opt.warmup,
                opt.smoke ? "true" : "false", med, mn);
    if (items > 0.0) {
        std::printf(",\"items\":%.0f,\"items_unit\":\"%s\","
                    "\"items_per_s\":%.1f",
                    items, items_unit.c_str(),
                    med > 0.0 ? items / med : 0.0);
    }
    std::printf("}\n");
}

} // namespace adaptsim::perf

#endif // ADAPTSIM_BENCH_PERF_PERF_HARNESS_HH
