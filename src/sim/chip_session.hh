/**
 * @file
 * The multi-core half of the performance-model seam.
 *
 * A ChipSession is to a chip what CoreSession is to one core: it
 * owns per-core simulation state for a co-run mix and persists warm
 * structures across run() calls.  PerfModel::makeChipSession()
 * returns one for any backend:
 *
 *   - The cycle backend overrides it with a session wrapping
 *     uarch::Chip — the detailed shared-LLC contention model.
 *   - Every other backend gets the ProxyChipSession defined here: a
 *     functional (untimed-clock) replay of the mix through real
 *     private tag stacks and a real SharedLlc measures each core's
 *     interference features (LLC occupancy share, shared-miss
 *     ratio, queue delay), which are folded into an *effective*
 *     per-core memory latency; the backend's own CoreSessions then
 *     run per core with that latency.  Analytical and learned
 *     backends thus consume the interference features without
 *     needing a cycle-accurate multi-core loop.
 *
 * A single-core chip bypasses all of this and delegates straight to
 * the backend's CoreSession — bit-identical to the pre-chip seam.
 */

#ifndef ADAPTSIM_SIM_CHIP_SESSION_HH
#define ADAPTSIM_SIM_CHIP_SESSION_HH

#include <memory>
#include <span>
#include <vector>

#include "sim/perf_model.hh"
#include "uarch/chip.hh"

namespace adaptsim::sim
{

/** Per-core shared-resource pressure observed by the last run(). */
struct CoreInterference
{
    double occupancyShare = 0.0;   ///< fraction of LLC lines owned
    double sharedMissRatio = 0.0;  ///< LLC misses / LLC accesses
    double avgQueueCycles = 0.0;   ///< mean bank/MSHR wait per access
};

/** One simulated chip owned by a backend. */
class ChipSession
{
  public:
    virtual ~ChipSession() = default;

    /** Functionally warm one core (private levels + shared LLC). */
    virtual void warm(std::size_t core,
                      std::span<const isa::MicroOp> trace) = 0;

    /**
     * Timed co-run of one trace per core (empty spans idle that
     * core).  @p observers is empty or one entry per core; backends
     * without observer support ignore it.
     */
    virtual uarch::ChipResult
    run(const std::vector<std::span<const isa::MicroOp>> &traces,
        const std::vector<uarch::SimObserver *> &observers = {}) = 0;

    /** Move one core to a new design point (reconfiguration flush
     *  semantics: private state restarts cold). */
    virtual void reconfigureCore(std::size_t core,
                                 const space::Configuration &c) = 0;

    virtual const uarch::ChipConfig &config() const = 0;

    /** Interference features of @p core from the last run(). */
    virtual CoreInterference interference(std::size_t core) const = 0;

    /** Power/performance metrics for one core's run() result. */
    virtual power::Metrics
    metricsFor(std::size_t core, const uarch::SimResult &result) = 0;
};

/**
 * The default backend-agnostic chip session (see file comment).
 * Constructed by PerfModel::makeChipSession()'s base implementation;
 * public so tests can target it directly.
 */
std::unique_ptr<ChipSession> makeProxyChipSession(
    const PerfModel &model, const uarch::ChipConfig &cfg,
    const std::vector<workload::WrongPathGenerator *> &wrong_paths);

} // namespace adaptsim::sim

#endif // ADAPTSIM_SIM_CHIP_SESSION_HH
