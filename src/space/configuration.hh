/**
 * @file
 * A point in the Table I design space.
 *
 * Stored as per-parameter value indices (not raw values) so that
 * neighbourhood moves and encoding are trivial; accessors return the
 * concrete hardware value.
 */

#ifndef ADAPTSIM_SPACE_CONFIGURATION_HH
#define ADAPTSIM_SPACE_CONFIGURATION_HH

#include <array>
#include <cstdint>
#include <string>

#include "space/design_space.hh"

namespace adaptsim::space
{

/** One complete microarchitectural configuration. */
class Configuration
{
  public:
    /** Default: smallest value of every parameter. */
    Configuration();

    /** Build from per-parameter value indices. */
    static Configuration fromIndices(
        const std::array<std::uint8_t, numParams> &indices);

    /** Build from concrete values (each must be legal). */
    static Configuration fromValues(
        const std::array<std::uint64_t, numParams> &values);

    /**
     * The paper's profiling configuration: largest structures and the
     * highest degree of speculation, so resources never saturate while
     * counters are gathered (Sec. III-B1).  Depth is set to the
     * mid-range 12 FO4 used by the baseline.
     */
    static Configuration profiling();

    /** Value index for parameter @p p. */
    std::uint8_t index(Param p) const
    {
        return indices_[static_cast<std::size_t>(p)];
    }

    /** Set the value index for parameter @p p. */
    void setIndex(Param p, std::uint8_t idx);

    /** Concrete hardware value for parameter @p p. */
    std::uint64_t value(Param p) const
    {
        return DesignSpace::the().value(
            p, indices_[static_cast<std::size_t>(p)]);
    }

    /** Set @p p to the legal value @p v. */
    void setValue(Param p, std::uint64_t v);

    /** Mixed-radix encoding, unique per configuration. */
    std::uint64_t encode() const;

    /** Inverse of encode(). */
    static Configuration decode(std::uint64_t code);

    /** Stable 64-bit hash (mixes encode()). */
    std::uint64_t hash() const;

    /** "Width=4 ROB=144 ..." rendering. */
    std::string toString() const;

    /** Short fixed-width key used in cache file names. */
    std::string key() const;

    bool operator==(const Configuration &other) const
    {
        return indices_ == other.indices_;
    }

    bool operator!=(const Configuration &other) const
    {
        return !(*this == other);
    }

  private:
    std::array<std::uint8_t, numParams> indices_{};
};

} // namespace adaptsim::space

#endif // ADAPTSIM_SPACE_CONFIGURATION_HH
