# Empty compiler generated dependencies file for test_wrong_path.
# This may be replaced when dependencies are built.
