/**
 * @file
 * Training of the full adaptivity model: one soft-max classifier per
 * microarchitectural parameter (eq. 1's conditional-independence
 * factorisation), fit by conjugate gradients on the good-configuration
 * sets (within 5% of each phase's best, Sec. IV-D).
 */

#ifndef ADAPTSIM_ML_TRAINER_HH
#define ADAPTSIM_ML_TRAINER_HH

#include <array>
#include <span>
#include <string>
#include <vector>

#include "ml/conjugate_gradient.hh"
#include "ml/softmax.hh"
#include "space/configuration.hh"

namespace adaptsim::ml
{

/** Evaluation of one configuration on one phase. */
struct ConfigEval
{
    space::Configuration config;
    double efficiency;   ///< ips³/W on that phase
};

/** Everything the model sees about one phase. */
struct PhaseData
{
    std::string workload;
    std::size_t phaseIndex = 0;
    double weight = 0.0;              ///< SimPoint cluster weight
    std::vector<double> features;     ///< active counter set
    std::vector<ConfigEval> evals;    ///< sampled configurations

    /** Highest sampled efficiency. */
    double bestEfficiency() const;

    /** The best-efficiency configuration among the samples. */
    const ConfigEval &best() const;

    /** Configurations within @p threshold (e.g. 0.95) of the best. */
    std::vector<const ConfigEval *>
    goodConfigs(double threshold) const;
};

/** Training knobs (paper defaults). */
struct TrainerOptions
{
    double lambda = 0.5;          ///< L2 regularisation (Sec. IV-D)
    double goodThreshold = 0.95;  ///< "within 5% of the best"
    CgOptions cg;
};

/** The paper's predictive model: 14 per-parameter classifiers. */
class AdaptivityModel
{
  public:
    AdaptivityModel() = default;

    /** Untrained model (all-ones weights) of dimension @p dim. */
    explicit AdaptivityModel(std::size_t dim);

    /**
     * Predict the best configuration for a phase's counters:
     * independent argmax per parameter (eq. 2 with eq. 8-9).
     */
    space::Configuration predict(std::span<const double> x) const;

    SoftmaxClassifier &classifier(space::Param p);
    const SoftmaxClassifier &classifier(space::Param p) const;

    std::size_t featureDim() const { return dim_; }

    /** Total number of weights across all 14 classifiers. */
    std::size_t totalWeights() const;

  private:
    std::size_t dim_ = 0;
    std::array<SoftmaxClassifier, space::numParams> classifiers_;
};

/**
 * Fit the model on @p phases (each contributes its good-config set).
 * Grouped-likelihood training; deterministic.
 */
AdaptivityModel trainModel(const std::vector<PhaseData> &phases,
                           const TrainerOptions &options = {});

/**
 * Build the grouped training examples of one parameter (exposed for
 * tests and ablation studies).
 */
std::vector<GroupedExample>
buildExamples(const std::vector<PhaseData> &phases, space::Param p,
              double good_threshold);

} // namespace adaptsim::ml

#endif // ADAPTSIM_ML_TRAINER_HH
