#include "workload/mix.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "workload/spec_suite.hh"

namespace adaptsim::workload
{

std::uint64_t
CoRunMix::key() const
{
    std::uint64_t h = kFnvBasis;
    const std::uint64_t n = programs.size();
    h = fnv1a64(&n, sizeof(n), h);
    for (const auto &p : programs)
        h = fnv1a64(p.data(), p.size() + 1, h);
    return h ? h : 1;
}

std::vector<CoRunMix>
specMixes(std::size_t cores, std::size_t count, std::uint64_t seed)
{
    const auto &names = specNames();
    if (cores == 0 || cores > names.size())
        fatal("specMixes: mix width ", cores, " outside [1, ",
              names.size(), "]");

    Rng rng(seed);
    std::vector<CoRunMix> mixes;
    mixes.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
        // Partial Fisher-Yates over a fresh copy: `cores` distinct
        // programs per mix, order significant.
        std::vector<std::string> pool = names;
        CoRunMix mix;
        mix.programs.reserve(cores);
        for (std::size_t c = 0; c < cores; ++c) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.nextBounded(pool.size() - c));
            std::swap(pool[c], pool[c + pick]);
            mix.programs.push_back(pool[c]);
        }
        char label[48];
        std::snprintf(label, sizeof(label), "mix%zu-%02zu", cores, m);
        mix.name = label;
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace adaptsim::workload
