# Empty compiler generated dependencies file for test_softmax.
# This may be replaced when dependencies are built.
