#!/usr/bin/env bash
# Tier-1 verification:
#   1. full build + test suite — includes the adaptsim-lint static-
#      analysis gate (ctest test `lint`) and the header self-
#      containment objects, which compile with the main build
#   2. ThreadSanitizer pass over the concurrency-critical tests
#      (thread pool, shared simulation repository, shared trace
#      cache, metrics registry, perf-model backend registry, the
#      evaluation service with its concurrent-client storm, and the
#      multi-core chip model with its shared LLC)
#   3. AddressSanitizer+UBSan pass over the full test suite
#   4. -DADAPTSIM_OBS=OFF build proving the instrumentation compiles
#      out cleanly
#   5. -DADAPTSIM_WERROR=ON hardened compile: the whole tree (library,
#      tools, tests, benches, examples) must be -Wshadow -Werror clean
#   6. clang -DADAPTSIM_THREAD_SAFETY=ON static concurrency analysis:
#      the annotations in src/common/thread_annotations.hh must prove
#      lock discipline under -Wthread-safety -Werror
# Sanitizer and clang passes skip gracefully where the toolchain
# piece is unavailable (CI runs them unconditionally).
set -euo pipefail
cd "$(dirname "$0")/.."

san_available() {
    echo 'int main(){return 0;}' |
        c++ -fsanitize="$1" -x c++ - -o /tmp/adaptsim_san_probe \
            2>/dev/null || return 1
    rm -f /tmp/adaptsim_san_probe
}

# 1. Build + full suite (lint gate included).  The perf micro-
# benchmarks and the adaptsimd daemon build here too so they cannot
# rot; the benches only run via scripts/perf.sh.
cmake -B build -S .
cmake --build build -j
cmake --build build -j \
    --target perf_pipeline perf_chip perf_interval perf_tracegen \
             perf_gather perf_gather_warm perf_train perf_learned \
             perf_service adaptsimd
ctest --test-dir build --output-on-failure -j"$(nproc)"

# 2. TSan over the concurrency tests.
if san_available thread; then
    cmake -B build-tsan -S . -DADAPTSIM_SANITIZE=thread
    cmake --build build-tsan -j \
        --target test_thread_pool test_repository test_trace_cache \
                 test_obs test_sim test_svc test_gather_scheduler \
                 test_shared_llc test_chip
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_thread_pool|test_repository|test_trace_cache|test_obs|test_sim$|test_svc|test_gather_scheduler|test_shared_llc|test_chip'
else
    echo "tier1: ThreadSanitizer unavailable; skipping TSan pass"
fi

# 3. ASan+UBSan over the full suite.
if san_available address,undefined; then
    cmake -B build-asan-ubsan -S . \
        -DADAPTSIM_SANITIZE="address;undefined"
    cmake --build build-asan-ubsan -j
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --test-dir build-asan-ubsan --output-on-failure \
        -j"$(nproc)"
else
    echo "tier1: ASan+UBSan unavailable; skipping sanitizer pass"
fi

# 4. Compile-out check: with ADAPTSIM_OBS=OFF the OBS_* macros vanish
# from every call site; the library, a bench, and the obs unit tests
# must still build and pass.
cmake -B build-noobs -S . -DADAPTSIM_OBS=OFF
cmake --build build-noobs -j \
    --target test_obs table3_baseline_static
ctest --test-dir build-noobs --output-on-failure -R 'test_obs'

# 5. Hardened warning profile (compile-only).
cmake -B build-werror -S . -DADAPTSIM_WERROR=ON
cmake --build build-werror -j

# 6. Clang thread-safety analysis (compile-only): proves the lock
# annotations across every locked subsystem.  GCC compiles the
# macros out, so this pass needs a real clang++.
if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-threadsafety -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DADAPTSIM_THREAD_SAFETY=ON
    cmake --build build-threadsafety -j \
        --target adaptsim adaptsimd adaptsim_lint
else
    echo "tier1: clang++ unavailable; skipping thread-safety pass"
fi

echo "tier1: all passes complete"
