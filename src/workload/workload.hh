/**
 * @file
 * A synthetic program: a schedule of kernels with explicit phase
 * structure, standing in for one SPEC CPU 2000 benchmark.
 */

#ifndef ADAPTSIM_WORKLOAD_WORKLOAD_HH
#define ADAPTSIM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/micro_op.hh"
#include "workload/kernel.hh"

namespace adaptsim::workload
{

/** One scheduled stretch of a kernel's execution. */
struct Segment
{
    KernelParams kernel;       ///< behaviour during the segment
    std::uint64_t length;      ///< dynamic µops in the segment
};

/**
 * A deterministic synthetic program.
 *
 * Each distinct kernel name within the program denotes one piece of
 * static code: every occurrence replays the same layout and stream, so
 * repeated segments yield genuinely recurring phases (as loops do in
 * real programs).
 */
class Workload
{
  public:
    /**
     * @param name program name (SPEC-2000 style).
     * @param segments the phase schedule; total length is their sum.
     * @param seed master seed for all kernel streams.
     */
    Workload(std::string name, std::vector<Segment> segments,
             std::uint64_t seed);

    const std::string &name() const { return name_; }

    /**
     * Stable 64-bit identity (FNV-1a of the name), cheap enough to
     * key per-lookup cache structures without string building.
     */
    std::uint64_t uid() const { return uid_; }

    /** Total dynamic µop count of the program. */
    std::uint64_t totalInstructions() const { return totalLength_; }

    /** Number of schedule segments. */
    std::size_t numSegments() const { return segments_.size(); }

    const std::vector<Segment> &segments() const { return segments_; }

    /**
     * Generate @p count µops starting at absolute dynamic position
     * @p start (positions past the end wrap around the schedule).
     */
    std::vector<isa::MicroOp> generate(std::uint64_t start,
                                       std::uint64_t count) const;

    /**
     * Length-weighted average of the kernel parameters; used to drive
     * the wrong-path generator with a plausible instruction mix.
     */
    KernelParams averageParams() const;

    /** Master seed (exposed so wrong-path streams can derive). */
    std::uint64_t seed() const { return seed_; }

  private:
    /** Stable kernel identity: index of first segment with the name. */
    std::uint32_t kernelIdOf(std::size_t segment_index) const;

    std::string name_;
    std::uint64_t uid_;
    std::vector<Segment> segments_;
    std::vector<std::uint64_t> segmentStart_; ///< cumulative offsets
    std::uint64_t totalLength_;
    std::uint64_t seed_;
};

} // namespace adaptsim::workload

#endif // ADAPTSIM_WORKLOAD_WORKLOAD_HH
