/**
 * @file
 * Temporal histograms — the paper's key hardware-counter novelty
 * (Sec. III-B2).
 *
 * A temporal histogram records, for each possible usage level of a
 * structure, the number of *cycles* the structure spent at that level
 * (e.g. "100 cycles with 16 IQ entries used").  Unlike an average
 * occupancy counter it preserves the shape of the demand distribution,
 * which is what lets the model size structures correctly.
 */

#ifndef ADAPTSIM_COUNTERS_TEMPORAL_HISTOGRAM_HH
#define ADAPTSIM_COUNTERS_TEMPORAL_HISTOGRAM_HH

#include "common/histogram.hh"

namespace adaptsim::counters
{

/** Cycle-weighted usage histogram over one profiled interval. */
class TemporalHistogram
{
  public:
    TemporalHistogram() = default;

    /**
     * @param max_value highest representable usage level.
     * @param num_bins bins to quantise the [0, max_value] range into.
     */
    TemporalHistogram(std::uint64_t max_value, std::size_t num_bins);

    /** Record @p cycles cycles spent at usage level @p value. */
    void record(std::uint64_t value, std::uint64_t cycles = 1);

    /** Cycle count in bin @p i. */
    std::uint64_t cyclesAt(std::size_t i) const
    {
        return hist_.count(i);
    }

    /** Lowest usage level of bin @p i. */
    std::uint64_t binValue(std::size_t i) const
    {
        return hist_.binLowerEdge(i);
    }

    std::size_t numBins() const { return hist_.numBins(); }
    std::uint64_t totalCycles() const { return hist_.totalWeight(); }

    /** Cycle-weighted mean usage. */
    double meanUsage() const { return hist_.mean(); }

    /** Usage level not exceeded in @p fraction of cycles. */
    std::uint64_t usageQuantile(double fraction) const
    {
        return hist_.quantile(fraction);
    }

    /** Usage level of the most common bin. */
    std::uint64_t modeUsage() const
    {
        return hist_.binLowerEdge(hist_.modeBin());
    }

    /** Bin fractions (sum to 1 over recorded cycles). */
    std::vector<double> normalised() const
    {
        return hist_.normalised();
    }

    /** Reset for a new interval. */
    void clear() { hist_.clear(); }

    const Histogram &raw() const { return hist_; }

  private:
    Histogram hist_;
};

} // namespace adaptsim::counters

#endif // ADAPTSIM_COUNTERS_TEMPORAL_HISTOGRAM_HH
