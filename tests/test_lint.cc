/**
 * @file
 * Tests of the adaptsim-lint rule engine: each rule on violating and
 * clean snippets, the lint:allow escape hatch, comment/string-literal
 * awareness, and the tree walker.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint_engine.hh"

using adaptsim::lint::Diagnostic;
using adaptsim::lint::lintSource;
using adaptsim::lint::lintTree;
using adaptsim::lint::render;

namespace
{

std::vector<Diagnostic>
lint(const std::string &path, const std::string &text)
{
    return lintSource(path, text);
}

} // namespace

TEST(Lint, DeterminismBansEntropyInCore)
{
    const auto d = lint("src/uarch/x.cc", "int f() { return rand(); }\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].file, "src/uarch/x.cc");
    EXPECT_EQ(d[0].line, 1u);
    EXPECT_EQ(d[0].rule, "determinism");

    EXPECT_EQ(lint("src/ml/x.cc", "std::mt19937 g;\n").size(), 1u);
    EXPECT_EQ(lint("src/ml/x.cc", "std::mt19937_64 g(7);\n").size(), 1u);
    EXPECT_EQ(lint("src/phase/x.cc", "std::random_device rd;\n").size(),
              1u);
    EXPECT_EQ(lint("src/workload/x.cc", "auto t = time(nullptr);\n")
                  .size(),
              1u);
    EXPECT_EQ(
        lint("src/uarch/x.cc",
             "auto n = std::chrono::system_clock::now();\n")
            .size(),
        1u);
    EXPECT_EQ(lint("src/uarch/x.cc", "srand(42);\n").size(), 1u);

    // The performance-model backends (src/sim) replay traces through
    // the simulation core, so they sit inside the same scope.
    const auto s =
        lint("src/sim/x.cc", "std::mt19937 g(seed);\n");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].rule, "determinism");
    EXPECT_EQ(lint("src/sim/x.cc", "auto t = time(nullptr);\n").size(),
              1u);
}

TEST(Lint, DeterminismScopedToCoreDirs)
{
    // The harness and controller drive reproducible experiments
    // (shared eval cache, paper tables), so they sit inside the
    // determinism scope too.
    const auto h = lint("src/harness/x.cc", "int x = rand();\n");
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h[0].rule, "determinism");
    EXPECT_EQ(
        lint("src/control/x.cc", "auto t = time(nullptr);\n").size(),
        1u);

    // The same entropy sources are legal outside the simulation and
    // experiment core (obs, bench, tests)...
    EXPECT_TRUE(lint("src/obs/x.cc", "int x = rand();\n").empty());
    EXPECT_TRUE(lint("tests/x.cc", "std::mt19937 g;\n").empty());
    // ...and identifiers merely *containing* a banned token never
    // trip the word-boundary matcher.
    EXPECT_TRUE(
        lint("src/uarch/x.cc", "int operand(int grand);\n").empty());
    EXPECT_TRUE(
        lint("src/uarch/x.cc", "Cycles readyTime(int i);\n").empty());
}

TEST(Lint, EnvOnlyInsideEnvCc)
{
    const auto d =
        lint("src/control/x.cc", "const char *v = std::getenv(\"A\");\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "env");
    EXPECT_EQ(d[0].line, 1u);
    EXPECT_TRUE(
        lint("src/common/env.cc", "const char *v = std::getenv(\"A\");\n")
            .empty());
}

TEST(Lint, LoggingBansRawStderr)
{
    EXPECT_EQ(lint("src/uarch/x.cc", "std::cerr << \"x\";\n")[0].rule,
              "logging");
    EXPECT_EQ(
        lint("bench/x.cc", "std::fprintf(stderr, \"x\");\n")[0].rule,
        "logging");
    EXPECT_EQ(lint("tests/x.cc", "fputs(\"x\", stderr);\n")[0].rule,
              "logging");
    // stdout and file streams are fine; so is the sanctioned
    // lockedWrite(stderr, ...) since it is not a ban-listed call.
    EXPECT_TRUE(lint("bench/x.cc", "std::printf(\"x\");\n").empty());
    EXPECT_TRUE(
        lint("src/obs/x.cc", "std::fprintf(out, \"x\");\n").empty());
    EXPECT_TRUE(
        lint("src/uarch/x.cc", "lockedWrite(stderr, buf);\n").empty());
    // The logging layer itself is exempt.
    EXPECT_TRUE(
        lint("src/common/logging.hh",
             "#pragma once\nstd::fputs(t, stderr);\n")
            .empty());
}

TEST(Lint, HeaderGuardRequired)
{
    const auto d = lint("src/a/x.hh", "int f();\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "header-guard");
    EXPECT_EQ(d[0].line, 1u);

    EXPECT_TRUE(lint("src/a/x.hh", "#pragma once\nint f();\n").empty());
    EXPECT_TRUE(lint("src/a/x.hh",
                     "/** doc */\n#ifndef A_X_HH\n#define A_X_HH\n"
                     "int f();\n#endif\n")
                    .empty());
    // #ifndef whose #define does not match is still unguarded.
    const auto mismatch = lint(
        "src/a/x.hh", "#ifndef A_X_HH\n#define OTHER\nint f();\n#endif\n");
    ASSERT_EQ(mismatch.size(), 1u);
    EXPECT_EQ(mismatch[0].rule, "header-guard");
}

TEST(Lint, UsingNamespaceOnlyAtNamespaceScopeInHeaders)
{
    const std::string bad =
        "#pragma once\nnamespace a\n{\nusing namespace std;\n}\n";
    const auto d = lint("src/a/x.hh", bad);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "header-using-namespace");
    EXPECT_EQ(d[0].line, 4u);

    // Inside a function body it does not leak into includers.
    EXPECT_TRUE(lint("src/a/x.hh",
                     "#pragma once\ninline void f()\n{\n"
                     "    using namespace std;\n}\n")
                    .empty());
    // In a .cc it is the file's own business.
    EXPECT_TRUE(lint("src/a/x.cc", "using namespace std;\n").empty());
}

TEST(Lint, AllowEscapeHatch)
{
    EXPECT_TRUE(
        lint("src/uarch/x.cc",
             "int x = rand(); // lint:allow(determinism)\n")
            .empty());
    // Allowing a different rule does not suppress.
    EXPECT_EQ(lint("src/uarch/x.cc",
                   "int x = rand(); // lint:allow(logging)\n")
                  .size(),
              1u);
    // Multiple rules in one allow.
    EXPECT_TRUE(
        lint("src/uarch/x.cc",
             "int x = rand(); auto v = std::getenv(\"A\"); "
             "// lint:allow(determinism, env)\n")
            .empty());
}

TEST(Lint, CommentsAndStringsNeverTrip)
{
    EXPECT_TRUE(lint("src/uarch/x.cc", "// calls rand() once\n").empty());
    EXPECT_TRUE(lint("src/uarch/x.cc", "/* srand(1) */ int x;\n").empty());
    EXPECT_TRUE(
        lint("src/uarch/x.cc", "const char *s = \"rand()\";\n").empty());
    EXPECT_TRUE(lint("src/uarch/x.cc",
                     "const char *s = R\"(time(nullptr))\";\n")
                    .empty());
}

TEST(Lint, DigitSeparatorIsNotACharLiteral)
{
    // A digit separator must not open a char literal and blank the
    // rest of the line — the violation after it is still seen.
    const auto d = lint("src/uarch/x.cc",
                        "Addr a = 0x1000'0000ULL; int b = rand();\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "determinism");
}

TEST(Lint, RenderFormat)
{
    const Diagnostic d{"src/a.cc", 12, "env", "msg"};
    EXPECT_EQ(render(d), "src/a.cc:12: [env] msg");
}

TEST(Lint, MultipleViolationsReportedInLineOrder)
{
    const std::string text = "int a = rand();\n"
                             "int b = 0;\n"
                             "std::cerr << b;\n";
    const auto d = lint("src/uarch/x.cc", text);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0].line, 1u);
    EXPECT_EQ(d[0].rule, "determinism");
    EXPECT_EQ(d[1].line, 3u);
    EXPECT_EQ(d[1].rule, "logging");
}

TEST(Lint, TreeWalkFindsViolationsAndCounts)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(testing::TempDir()) / "adaptsim_lint_tree";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "uarch");
    std::ofstream(root / "src" / "uarch" / "bad.cc")
        << "int f() { return rand(); }\n";
    std::ofstream(root / "src" / "uarch" / "good.cc")
        << "int f() { return 4; }\n";
    std::ofstream(root / "src" / "uarch" / "notes.txt")
        << "rand() here is ignored: not a source file\n";

    const auto res = lintTree(root.string(), {"src"});
    EXPECT_EQ(res.filesScanned, 2u);
    ASSERT_EQ(res.diagnostics.size(), 1u);
    EXPECT_EQ(res.diagnostics[0].file, "src/uarch/bad.cc");
    EXPECT_EQ(res.diagnostics[0].rule, "determinism");
    fs::remove_all(root);
}

TEST(Lint, TreeWalkRejectsMissingSubdir)
{
    EXPECT_THROW(lintTree("/nonexistent-root-xyz", {"src"}),
                 std::runtime_error);
}
