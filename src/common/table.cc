#include "common/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace adaptsim
{

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
            c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string
TextTable::num(std::uint64_t value)
{
    return std::to_string(value);
}

std::string
TextTable::sci(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::scientific);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string
TextTable::render() const
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row, bool align) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            const bool right = align && looksNumeric(cell);
            if (c)
                os << "  ";
            if (right)
                os << std::string(width[c] - cell.size(), ' ') << cell;
            else
                os << cell << std::string(width[c] - cell.size(), ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_, false);
        std::size_t total = 0;
        for (std::size_t c = 0; c < cols; ++c)
            total += width[c] + (c ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row, true);
    return os.str();
}

void
writeCsv(const std::string &path,
         const std::vector<std::string> &header,
         const std::vector<std::vector<std::string>> &rows)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open CSV for writing: ", path);
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

} // namespace adaptsim
