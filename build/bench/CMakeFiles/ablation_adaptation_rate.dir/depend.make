# Empty dependencies file for ablation_adaptation_rate.
# This may be replaced when dependencies are built.
