/**
 * @file
 * Tests of the LSQ, including store→load forwarding decisions.
 */

#include <gtest/gtest.h>

#include "uarch/load_store_queue.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;
using isa::OpClass;

namespace
{

/** Build a ROB holding a given sequence of memory ops. */
struct LsqFixture
{
    Rob rob{16};
    LoadStoreQueue lsq{8};

    std::int32_t
    addOp(OpClass cls, Addr addr, OpState state)
    {
        const auto idx = rob.push();
        auto &e = rob.entry(idx);
        e.op.opClass = cls;
        e.op.effAddr = addr;
        e.state = state;
        lsq.insert(idx);
        return idx;
    }
};

} // namespace

TEST(LoadStoreQueue, NoConflictWithoutMatchingStore)
{
    LsqFixture f;
    f.addOp(OpClass::Store, 0x1000, OpState::Done);
    const auto load = f.addOp(OpClass::Load, 0x2000,
                              OpState::Dispatched);
    std::uint64_t searched = 0;
    EXPECT_EQ(f.lsq.checkLoad(f.rob, load, searched),
              LoadStoreQueue::LoadCheck::NoConflict);
    EXPECT_EQ(searched, 1u);
}

TEST(LoadStoreQueue, ForwardFromCompletedStore)
{
    LsqFixture f;
    f.addOp(OpClass::Store, 0x1000, OpState::Done);
    const auto load = f.addOp(OpClass::Load, 0x1000,
                              OpState::Dispatched);
    std::uint64_t searched = 0;
    EXPECT_EQ(f.lsq.checkLoad(f.rob, load, searched),
              LoadStoreQueue::LoadCheck::Forward);
}

TEST(LoadStoreQueue, WaitForPendingStore)
{
    LsqFixture f;
    f.addOp(OpClass::Store, 0x1000, OpState::Dispatched);
    const auto load = f.addOp(OpClass::Load, 0x1000,
                              OpState::Dispatched);
    std::uint64_t searched = 0;
    EXPECT_EQ(f.lsq.checkLoad(f.rob, load, searched),
              LoadStoreQueue::LoadCheck::MustWait);
}

TEST(LoadStoreQueue, YoungestOlderMatchWins)
{
    LsqFixture f;
    f.addOp(OpClass::Store, 0x1000, OpState::Done);
    f.addOp(OpClass::Store, 0x1000, OpState::Dispatched);
    const auto load = f.addOp(OpClass::Load, 0x1000,
                              OpState::Dispatched);
    std::uint64_t searched = 0;
    // The younger (pending) store is the forwarding source → wait.
    EXPECT_EQ(f.lsq.checkLoad(f.rob, load, searched),
              LoadStoreQueue::LoadCheck::MustWait);
}

TEST(LoadStoreQueue, YoungerStoresIgnored)
{
    LsqFixture f;
    const auto load = f.addOp(OpClass::Load, 0x1000,
                              OpState::Dispatched);
    f.addOp(OpClass::Store, 0x1000, OpState::Dispatched);
    std::uint64_t searched = 0;
    EXPECT_EQ(f.lsq.checkLoad(f.rob, load, searched),
              LoadStoreQueue::LoadCheck::NoConflict);
    EXPECT_EQ(searched, 0u);   // scan stops at the load itself
}

TEST(LoadStoreQueue, WordGranularityMatching)
{
    LsqFixture f;
    f.addOp(OpClass::Store, 0x1000, OpState::Done);
    // Same 8-byte word.
    const auto l1 = f.addOp(OpClass::Load, 0x1004,
                            OpState::Dispatched);
    std::uint64_t searched = 0;
    EXPECT_EQ(f.lsq.checkLoad(f.rob, l1, searched),
              LoadStoreQueue::LoadCheck::Forward);
    // Different word.
    const auto l2 = f.addOp(OpClass::Load, 0x1008,
                            OpState::Dispatched);
    EXPECT_EQ(f.lsq.checkLoad(f.rob, l2, searched),
              LoadStoreQueue::LoadCheck::NoConflict);
}

TEST(LoadStoreQueue, RemoveSpecificEntry)
{
    LsqFixture f;
    const auto a = f.addOp(OpClass::Load, 0x10, OpState::Done);
    const auto b = f.addOp(OpClass::Store, 0x20,
                           OpState::Dispatched);
    f.lsq.remove(a);
    ASSERT_EQ(f.lsq.occupancy(), 1);
    EXPECT_EQ(f.lsq.slots()[0], b);
}

TEST(LoadStoreQueue, RemoveIf)
{
    LsqFixture f;
    f.addOp(OpClass::Load, 0x10, OpState::Done);
    f.addOp(OpClass::Store, 0x20, OpState::Dispatched);
    f.lsq.removeIf([&](std::int32_t idx) {
        return f.rob.entry(idx).op.isLoad();
    });
    EXPECT_EQ(f.lsq.occupancy(), 1);
}

TEST(LoadStoreQueue, FullDetection)
{
    LsqFixture f;
    for (int i = 0; i < 8; ++i)
        f.addOp(OpClass::Load, 0x100 + 8 * i, OpState::Dispatched);
    EXPECT_TRUE(f.lsq.full());
}
