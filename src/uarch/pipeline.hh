/**
 * @file
 * The out-of-order superscalar pipeline timing model.
 *
 * Trace-driven: correct-path µops come from a pre-generated trace;
 * wrong-path µops are synthesised on branch mispredictions and occupy
 * resources until the branch resolves.  All fourteen Table I
 * parameters constrain the model:
 *
 *   Width        fetch/dispatch/issue/commit bandwidth + FU counts
 *   ROB/IQ/LSQ   structural occupancy limits
 *   RF + ports   rename availability, issue read ports, writeback
 *   Gshare/BTB   direction/target prediction quality
 *   Branches     in-flight speculation cap (stalls fetch at limit)
 *   I/D/L2       hit/miss latencies per access (Cacti-timed)
 *   Depth        clock frequency, front-end refill, mispredict cost
 */

#ifndef ADAPTSIM_UARCH_PIPELINE_HH
#define ADAPTSIM_UARCH_PIPELINE_HH

#include <deque>
#include <queue>
#include <span>
#include <vector>

#include "uarch/branch_predictor.hh"
#include "uarch/cache_hierarchy.hh"
#include "uarch/core_config.hh"
#include "uarch/events.hh"
#include "uarch/functional_units.hh"
#include "uarch/issue_queue.hh"
#include "uarch/load_store_queue.hh"
#include "uarch/register_file.hh"
#include "uarch/rob.hh"
#include "workload/wrong_path.hh"

namespace adaptsim::uarch
{

/** Result of one detailed interval simulation. */
struct SimResult
{
    Cycles cycles = 0;
    EventCounts events;
};

/** One-shot pipeline simulation of a µop trace. */
class Pipeline
{
  public:
    /**
     * @param cfg derived core configuration.
     * @param caches pre-warmed hierarchy (state is mutated).
     * @param bpred pre-warmed predictor (state is mutated).
     * @param wrong_path wrong-path µop source.
     * @param observer optional profiling observer (may be null).
     */
    Pipeline(const CoreConfig &cfg, CacheHierarchy &caches,
             BranchPredictor &bpred,
             workload::WrongPathGenerator &wrong_path,
             SimObserver *observer);

    /** Simulate the full trace to completion; single use. */
    SimResult run(std::span<const isa::MicroOp> trace);

  private:
    struct FetchedOp
    {
        isa::MicroOp op;
        Cycles dispatchReady;
        bool wrongPath;
        bool mispredicted;
        std::uint32_t histSnapshot;
    };

    struct Completion
    {
        Cycles cycle;
        std::int32_t robIdx;
        std::uint32_t seq;

        bool operator>(const Completion &o) const
        {
            return cycle > o.cycle;
        }
    };

    // Stage functions; each returns true when it made progress.
    bool commitStage();
    bool completeStage();
    bool issueStage();
    bool dispatchStage();
    bool fetchStage();

    void squashAfter(std::int32_t branch_idx);
    void rebuildRenameAndCounts();
    int execLatency(RobEntry &e);
    /** True when both producers are done; otherwise memoizes the
     *  earliest cycle the entry could issue into e.readyAt. */
    bool producersReady(RobEntry &e) const;
    Cycles arbitrateWriteback(Cycles earliest);
    void observeCycle(std::uint64_t repeat);
    Cycles nextEventCycle() const;

    CoreConfig cfg_;
    CacheHierarchy &caches_;
    BranchPredictor &bpred_;
    workload::WrongPathGenerator &wrongPathGen_;
    SimObserver *observer_;

    Rob rob_;
    IssueQueue iq_;
    LoadStoreQueue lsq_;
    RegisterFile rfInt_;
    RegisterFile rfFp_;
    FunctionalUnits fus_;

    struct Producer
    {
        std::int32_t idx = -1;
        std::uint32_t seq = 0;
    };
    Producer renameInt_[isa::numArchRegs];
    Producer renameFp_[isa::numArchRegs];

    std::deque<FetchedOp> frontQ_;
    std::size_t frontQCapacity_ = 0;

    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;

    // Write-back port arbitration ring (cycle-stamped counters).
    static constexpr std::size_t wbRingSize = 1u << 14;
    std::vector<Cycles> wbStamp_;
    std::vector<std::uint16_t> wbCount_;
    std::uint16_t wbPorts_ = 0;   ///< cfg_.rfWrPorts, hoisted

    /** Issue-scan scratch (hoisted so the inner loop never
     *  heap-allocates; cleared each cycle). */
    std::vector<std::size_t> issuedPositions_;

    std::span<const isa::MicroOp> trace_;
    std::size_t traceIdx_ = 0;

    Cycles now_ = 0;
    Cycles fetchStallUntil_ = 0;
    bool wrongPathMode_ = false;
    Addr lastFetchLine_ = invalidAddr;

    int inFlightBranches_ = 0;      ///< fetched, not resolved/squashed
    int unresolvedRobBranches_ = 0; ///< dispatched, not yet Done
    int iqSpec_ = 0;                ///< speculative ops in the IQ
    int lsqSpec_ = 0;               ///< speculative ops in the LSQ

    // Per-cycle port usage (reset each cycle, read by the observer).
    int rdPortsUsed_ = 0;

    EventCounts ev_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_PIPELINE_HH
