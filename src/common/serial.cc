#include "common/serial.hh"

#include <bit>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace adaptsim
{

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= prime;
    }
    return h;
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putString(std::string &out, std::string_view s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s.data(), s.size());
}

void
putDouble(std::string &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

bool
getString(std::string_view in, std::size_t &off, std::string &out)
{
    out.clear();
    if (off + 4 > in.size())
        return false;
    const std::uint32_t len = getU32(in.data() + off);
    off += 4;
    if (len > in.size() || off + len > in.size())
        return false;
    out.assign(in.data() + off, len);
    off += len;
    return true;
}

double
getDouble(const char *p)
{
    return std::bit_cast<double>(getU64(p));
}

namespace
{

bool
writeAllAndSync(int fd, std::string_view bytes)
{
    const char *p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return ::fsync(fd) == 0;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    const bool ok = writeAllAndSync(fd, bytes);
    ::close(fd);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
appendFileSync(const std::string &path, std::string_view bytes)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    const bool ok = writeAllAndSync(fd, bytes);
    ::close(fd);
    return ok;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return std::move(os).str();
}

} // namespace adaptsim
