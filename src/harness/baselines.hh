/**
 * @file
 * The paper's three reference points:
 *  - best overall static configuration (Sec. VI-A, Table III role);
 *  - best specialised static configuration per program (Sec. VII-A);
 *  - best dynamic (per-phase oracle) configuration (Sec. VII-B).
 *
 * Static baselines are selected from candidates that were evaluated
 * on *every* relevant phase (the shared pool); comparisons use the
 * phase-weighted geometric mean of efficiency, which is
 * scale-invariant across phases whose absolute efficiencies differ by
 * orders of magnitude.
 */

#ifndef ADAPTSIM_HARNESS_BASELINES_HH
#define ADAPTSIM_HARNESS_BASELINES_HH

#include "harness/gather.hh"

namespace adaptsim::harness
{

/** Efficiency of @p config on a phase (fatal if not sampled). */
double efficiencyOn(const GatheredPhase &phase,
                    const space::Configuration &config);

/** Phase-weighted geometric-mean efficiency of @p config. */
double meanEfficiencyOf(const std::vector<GatheredPhase> &phases,
                        const space::Configuration &config);

/**
 * Best overall static configuration: the candidate with the highest
 * weighted geomean efficiency across all phases.
 */
space::Configuration
bestStaticConfig(const std::vector<GatheredPhase> &phases,
                 const std::vector<space::Configuration> &candidates);

/**
 * Best specialised static configuration for one program (phases must
 * all belong to it).
 */
space::Configuration
bestStaticForProgram(const std::vector<GatheredPhase> &phases,
                     const std::vector<space::Configuration> &
                         candidates);

/** Oracle: best sampled configuration of one phase. */
const ml::ConfigEval &bestDynamic(const GatheredPhase &phase);

} // namespace adaptsim::harness

#endif // ADAPTSIM_HARNESS_BASELINES_HH
