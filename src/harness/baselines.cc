#include "harness/baselines.hh"

#include <cmath>

#include "common/logging.hh"

namespace adaptsim::harness
{

double
efficiencyOn(const GatheredPhase &phase,
             const space::Configuration &config)
{
    const std::uint64_t code = config.encode();
    for (const auto &e : phase.evals) {
        if (e.config.encode() == code)
            return e.efficiency;
    }
    fatal("configuration ", config.toString(),
          " was not evaluated on phase ", phase.phase.workload, "/",
          phase.phase.index);
}

double
meanEfficiencyOf(const std::vector<GatheredPhase> &phases,
                 const space::Configuration &config)
{
    double log_sum = 0.0;
    double weight_sum = 0.0;
    for (const auto &ph : phases) {
        const double eff = efficiencyOn(ph, config);
        if (eff <= 0.0)
            return 0.0;
        const double w = ph.phase.weight > 0.0 ? ph.phase.weight :
                                                 1.0;
        log_sum += w * std::log(eff);
        weight_sum += w;
    }
    if (weight_sum <= 0.0)
        return 0.0;
    return std::exp(log_sum / weight_sum);
}

space::Configuration
bestStaticConfig(const std::vector<GatheredPhase> &phases,
                 const std::vector<space::Configuration> &candidates)
{
    if (candidates.empty())
        fatal("bestStaticConfig with no candidates");
    const space::Configuration *best = &candidates.front();
    double best_eff = -1.0;
    for (const auto &cand : candidates) {
        const double eff = meanEfficiencyOf(phases, cand);
        if (eff > best_eff) {
            best_eff = eff;
            best = &cand;
        }
    }
    return *best;
}

space::Configuration
bestStaticForProgram(const std::vector<GatheredPhase> &phases,
                     const std::vector<space::Configuration> &
                         candidates)
{
    return bestStaticConfig(phases, candidates);
}

const ml::ConfigEval &
bestDynamic(const GatheredPhase &phase)
{
    if (phase.evals.empty())
        fatal("bestDynamic on phase with no evaluations");
    const ml::ConfigEval *best = &phase.evals.front();
    for (const auto &e : phase.evals) {
        if (e.efficiency > best->efficiency)
            best = &e;
    }
    return *best;
}

} // namespace adaptsim::harness
