/**
 * @file
 * Tests of the three-level hierarchy's latencies and event counts.
 */

#include <gtest/gtest.h>

#include "harness/gather.hh"
#include "uarch/cache_hierarchy.hh"

using namespace adaptsim;
using namespace adaptsim::uarch;

namespace
{

CoreConfig
baseConfig()
{
    return CoreConfig::fromConfiguration(
        harness::paperBaselineConfig());
}

} // namespace

TEST(CacheHierarchy, LatencyOrdering)
{
    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    EventCounts ev;

    const int miss_all = h.dataAccess(0x10000, false, ev, nullptr);
    const int hit_l1 = h.dataAccess(0x10000, false, ev, nullptr);
    EXPECT_EQ(hit_l1, cfg.dcacheLatency);
    EXPECT_GE(miss_all,
              cfg.dcacheLatency + cfg.l2Latency + cfg.memLatency);
    EXPECT_GT(miss_all, hit_l1);
}

TEST(CacheHierarchy, L2HitLatencyBetweenL1AndMemory)
{
    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    EventCounts ev;
    // Fill L1+L2, then evict from L1 only by sweeping > L1 capacity.
    h.dataAccess(0x0, false, ev, nullptr);
    for (Addr a = 1 << 20; a < (1 << 20) + 2 * cfg.dcacheBytes;
         a += 64) {
        h.dataAccess(a, false, ev, nullptr);
    }
    const int l2_hit = h.dataAccess(0x0, false, ev, nullptr);
    EXPECT_EQ(l2_hit, cfg.dcacheLatency + cfg.l2Latency);
}

TEST(CacheHierarchy, EventCounting)
{
    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    EventCounts ev;
    h.dataAccess(0x40, false, ev, nullptr);   // L1 miss, L2 miss
    h.dataAccess(0x40, false, ev, nullptr);   // L1 hit
    EXPECT_EQ(ev.dcAccesses, 2u);
    EXPECT_EQ(ev.dcMisses, 1u);
    EXPECT_EQ(ev.l2Accesses, 1u);
    EXPECT_EQ(ev.l2Misses, 1u);
    EXPECT_EQ(ev.memAccesses, 1u);
}

TEST(CacheHierarchy, FetchPathCountsSeparately)
{
    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    EventCounts ev;
    h.fetchAccess(0x400000, ev, nullptr);
    h.fetchAccess(0x400000, ev, nullptr);
    EXPECT_EQ(ev.icAccesses, 2u);
    EXPECT_EQ(ev.icMisses, 1u);
    EXPECT_EQ(ev.dcAccesses, 0u);
}

TEST(CacheHierarchy, WarmPrefillsWithoutEvents)
{
    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    h.warmData(0x80, false);
    h.warmFetch(0x400080);
    EventCounts ev;
    EXPECT_EQ(h.dataAccess(0x80, false, ev, nullptr),
              cfg.dcacheLatency);
    EXPECT_EQ(h.fetchAccess(0x400080, ev, nullptr),
              cfg.icacheLatency);
    EXPECT_EQ(ev.dcMisses, 0u);
    EXPECT_EQ(ev.icMisses, 0u);
}

TEST(CacheHierarchy, ObserverSeesAccesses)
{
    struct Probe : SimObserver
    {
        int dc = 0, ic = 0, l2 = 0;
        void onDCacheAccess(Addr, bool) override { ++dc; }
        void onICacheAccess(Addr) override { ++ic; }
        void onL2Access(Addr) override { ++l2; }
    } probe;

    const auto cfg = baseConfig();
    CacheHierarchy h(cfg);
    EventCounts ev;
    h.dataAccess(0x100, false, ev, &probe);   // miss → L2 access
    h.dataAccess(0x100, false, ev, &probe);   // hit
    h.fetchAccess(0x400100, ev, &probe);
    EXPECT_EQ(probe.dc, 2);
    EXPECT_EQ(probe.l2, 2);   // data miss + fetch miss
    EXPECT_EQ(probe.ic, 1);
}
