file(REMOVE_RECURSE
  "CMakeFiles/test_online_detector.dir/test_online_detector.cc.o"
  "CMakeFiles/test_online_detector.dir/test_online_detector.cc.o.d"
  "test_online_detector"
  "test_online_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
