/**
 * @file
 * Client side of the adaptsimd evaluation service.
 *
 * EvalClient speaks the svc/protocol over a Unix domain socket.
 * Two usage shapes:
 *
 *   sync        Result r = client.evaluate(spec, config);
 *   pipelined   ids = client.submit(...) × N;  client.wait(id) × N
 *
 * Pipelining keeps the daemon's batch coalescing fed: all submitted
 * requests travel before the first reply is read, so the server sees
 * them as one group and evaluates them as one parallel batch.
 * Replies may arrive out of order; wait() parks early arrivals by id.
 *
 * An EvalClient is not thread-safe — give each thread its own
 * connection (connections are cheap; the server polls them all).
 */

#ifndef ADAPTSIM_SVC_CLIENT_HH
#define ADAPTSIM_SVC_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "harness/repository.hh"
#include "space/configuration.hh"
#include "svc/protocol.hh"

namespace adaptsim::svc
{

/** Outcome of one service evaluation. */
struct EvalResult
{
    bool ok = false; ///< reply received (else `error` says why not)
    harness::EvalRecord record;
    std::string producer;  ///< backend that served the request
    bool cacheHit = false; ///< answered from the store
    ErrorCode error = ErrorCode::None;
    std::string errorMessage;
};

/** One connection to an adaptsimd daemon. */
class EvalClient
{
  public:
    /** Connect to the daemon at @p socket_path; nullptr (with a
     *  warning) when the connection cannot be established. */
    static std::unique_ptr<EvalClient>
    connect(const std::string &socket_path);

    ~EvalClient();

    EvalClient(const EvalClient &) = delete;
    EvalClient &operator=(const EvalClient &) = delete;

    /** Synchronous round trip (submit + wait). */
    EvalResult evaluate(const harness::PhaseSpec &spec,
                        const space::Configuration &config,
                        const std::string &backend = "");

    /**
     * Send one request without waiting; returns its id for wait().
     * Returns 0 when the connection is broken (ids are never 0).
     */
    std::uint64_t submit(const harness::PhaseSpec &spec,
                         const space::Configuration &config,
                         const std::string &backend = "");

    /** Block until the reply (or error) for @p id arrives.  Replies
     *  for other ids encountered meanwhile are parked for their own
     *  wait() calls. */
    EvalResult wait(std::uint64_t id);

    /** The connection failed at some point; results are errors. */
    bool broken() const { return broken_; }

  private:
    explicit EvalClient(int fd);

    /** Read until at least one frame for @p want_id is resolved. */
    bool pump(std::uint64_t want_id);

    int fd_ = -1;
    bool broken_ = false;
    std::uint64_t nextId_ = 1;
    FrameBuffer frames_;
    std::unordered_map<std::uint64_t, EvalResult> parked_;
};

} // namespace adaptsim::svc

#endif // ADAPTSIM_SVC_CLIENT_HH
