/**
 * @file
 * Miniature full-stack experiment test: suite → phases → gather →
 * baseline → LOOCV model results, all at a tiny scale with a
 * temporary cache directory.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "harness/experiment.hh"

using namespace adaptsim;
using namespace adaptsim::harness;

namespace
{

ExperimentOptions
tinyOptions(const std::string &dir)
{
    ExperimentOptions opt;
    opt.programLength = 24000;
    opt.intervalLength = 1200;
    opt.warmLength = 1200;
    opt.phasesPerProgram = 2;
    opt.gather.sharedRandomConfigs = 6;
    opt.gather.localNeighbours = 2;
    opt.gather.oneAtATimeSweep = false;
    opt.trainer.cg.maxIterations = 30;
    opt.dataDir = dir;
    opt.threads = 0;
    return opt;
}

} // namespace

TEST(Experiment, EndToEndTinyScale)
{
    const std::string dir = "/tmp/adaptsim_experiment_test";
    std::filesystem::remove_all(dir);

    {
        Experiment exp(tinyOptions(dir));
        const auto &phases = exp.phases();
        // 26 programs × up to 2 phases.
        EXPECT_GE(phases.size(), 26u);
        EXPECT_LE(phases.size(), 52u);

        // Baseline must be a member of the shared pool.
        const auto &baseline = exp.baselineConfig();
        bool in_pool = false;
        for (const auto &cfg : exp.sharedPool())
            in_pool = in_pool || cfg == baseline;
        EXPECT_TRUE(in_pool);

        // Every phase can price the baseline.
        for (std::size_t i = 0; i < phases.size(); ++i)
            EXPECT_GT(exp.baselineEfficiency(i), 0.0);

        // Program grouping covers all phases exactly once.
        std::size_t grouped = 0;
        for (const auto &[name, idxs] : exp.phasesByProgram())
            grouped += idxs.size();
        EXPECT_EQ(grouped, phases.size());

        // LOOCV model results exist for every phase and are
        // positive.
        const auto &results =
            exp.modelResults(counters::FeatureSet::Basic);
        ASSERT_EQ(results.size(), phases.size());
        for (const auto &r : results)
            EXPECT_GT(r.efficiency, 0.0);

        // Relative efficiency of the baseline itself is exactly 1.
        const auto &first_prog =
            exp.phasesByProgram().begin()->second;
        const double rel = exp.relativeEfficiency(
            first_prog, [&](std::size_t i) {
                return exp.baselineEfficiency(i);
            });
        EXPECT_NEAR(rel, 1.0, 1e-9);
    }

    // A second Experiment over the same directory reuses everything.
    {
        Experiment exp(tinyOptions(dir));
        exp.phases();
        EXPECT_EQ(exp.repository().simulationsRun(), 0u);
    }

    std::filesystem::remove_all(dir);
}
