/**
 * @file
 * Ablation: contribution of each counter group.  Each advanced
 * feature group is zeroed in turn (train and test) and the held-out
 * efficiency drop is reported; the basic set is included as the
 * floor reference (Fig. 4's basic-vs-advanced gap at group
 * granularity).
 */

#include <cstdio>

#include "ablation_common.hh"
#include "common/table.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;

    const double full = benchutil::splitHalfRelative(
        exp, counters::FeatureSet::Advanced, {});
    const double basic = benchutil::splitHalfRelative(
        exp, counters::FeatureSet::Basic, {});

    TextTable table;
    table.setHeader({"Dropped group", "Held-out eff (x)",
                     "Delta vs full"});
    table.addRow({"(none: full advanced)", TextTable::num(full),
                  "0.00"});
    table.addRow({"(basic counters only)", TextTable::num(basic),
                  TextTable::num(basic - full)});

    // One representative group per Table II counter family keeps the
    // study affordable; the full group list is available via
    // counters::featureGroups() for a deeper run.
    const std::set<std::string> studied = {
        "alu_usage",       "iq_usage",        "lsq_usage",
        "speculation",     "int_reg_usage",   "rd_port_usage",
        "dc_stack",        "dc_block_reuse",  "dc_red_set_reuse",
        "btb_reuse",       "mispred_rate",    "cpi",
    };
    for (const auto &group : counters::featureGroups(
             counters::FeatureSet::Advanced)) {
        if (!studied.count(group.name))
            continue;
        const auto transform =
            [&group](const std::vector<double> &x) {
                auto y = x;
                for (std::size_t i = group.begin; i < group.end;
                     ++i) {
                    y[i] = 0.0;
                }
                return y;
            };
        const double rel = benchutil::splitHalfRelative(
            exp, counters::FeatureSet::Advanced, {}, transform);
        table.addRow({group.name, TextTable::num(rel),
                      TextTable::num(rel - full)});
    }

    std::printf("Ablation: advanced counter groups (zeroed one at a "
                "time; more negative delta = more important)\n\n%s\n",
                table.render().c_str());
    return 0;
}
