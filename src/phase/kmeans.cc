#include "phase/kmeans.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace adaptsim::phase
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

} // namespace

KMeansResult
kmeans(const std::vector<std::vector<double>> &points, std::size_t k,
       Rng &rng, std::size_t max_iters)
{
    KMeansResult result;
    if (points.empty())
        return result;
    k = std::min(k, points.size());
    if (k == 0)
        fatal("kmeans with k == 0");
    const std::size_t dim = points[0].size();
    for (const auto &p : points) {
        if (p.size() != dim)
            fatal("kmeans points have mixed dimensions");
    }

    // k-means++ seeding.
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.nextBounded(points.size())]);
    std::vector<double> min_d2(points.size(),
                               std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            min_d2[i] = std::min(min_d2[i],
                                 sqDist(points[i],
                                        centroids.back()));
        }
        double total = 0.0;
        for (double d : min_d2)
            total += d;
        if (total <= 0.0) {
            // All remaining points coincide with a centroid: fewer
            // distinct points than k; stop early.
            break;
        }
        double target = rng.nextDouble() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= min_d2[i];
            if (target < 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    k = centroids.size();

    // Lloyd iterations.
    std::vector<std::size_t> assignment(points.size(), 0);
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < k; ++c) {
                const double d = sqDist(points[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assignment[i] != best) {
                assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Recompute centroids.
        for (auto &c : centroids)
            std::fill(c.begin(), c.end(), 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            auto &c = centroids[assignment[i]];
            for (std::size_t d = 0; d < dim; ++d)
                c[d] += points[i][d];
            ++counts[assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster deterministically.
                centroids[c] = points[rng.nextBounded(points.size())];
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                centroids[c][d] /= double(counts[c]);
        }
    }

    result.assignment = std::move(assignment);
    result.clusterSizes.assign(k, 0);
    result.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        ++result.clusterSizes[result.assignment[i]];
        result.inertia += sqDist(points[i],
                                 centroids[result.assignment[i]]);
    }
    result.centroids = std::move(centroids);
    return result;
}

} // namespace adaptsim::phase
