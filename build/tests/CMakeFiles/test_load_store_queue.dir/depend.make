# Empty dependencies file for test_load_store_queue.
# This may be replaced when dependencies are built.
