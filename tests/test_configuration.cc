/**
 * @file
 * Tests of configuration encoding, decoding and the profiling point.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "space/configuration.hh"
#include "space/sampling.hh"

using namespace adaptsim;
using namespace adaptsim::space;

TEST(Configuration, DefaultIsAllMinimums)
{
    Configuration cfg;
    const auto &ds = DesignSpace::the();
    for (auto p : allParams())
        EXPECT_EQ(cfg.value(p), ds.value(p, 0));
}

TEST(Configuration, SetAndGetValue)
{
    Configuration cfg;
    cfg.setValue(Param::Width, 6);
    EXPECT_EQ(cfg.value(Param::Width), 6u);
    EXPECT_EQ(cfg.index(Param::Width), 2u);
}

TEST(Configuration, EncodeDecodeRoundTripsRandomly)
{
    Rng rng(2024);
    for (int i = 0; i < 500; ++i) {
        const Configuration cfg = uniformRandom(rng);
        EXPECT_EQ(Configuration::decode(cfg.encode()), cfg);
    }
}

TEST(Configuration, EncodeIsInjectiveOnSamples)
{
    Rng rng(7);
    std::set<std::uint64_t> codes;
    for (int i = 0; i < 300; ++i)
        codes.insert(uniformRandom(rng).encode());
    // 300 uniform draws from 627bn points collide with ~0 probability.
    EXPECT_EQ(codes.size(), 300u);
}

TEST(Configuration, ProfilingUsesLargestStructures)
{
    const auto prof = Configuration::profiling();
    const auto &ds = DesignSpace::the();
    EXPECT_EQ(prof.value(Param::Width), 8u);
    EXPECT_EQ(prof.value(Param::RobSize), 160u);
    EXPECT_EQ(prof.value(Param::IqSize), 80u);
    EXPECT_EQ(prof.value(Param::LsqSize), 80u);
    EXPECT_EQ(prof.value(Param::RfSize), 160u);
    EXPECT_EQ(prof.value(Param::GshareSize), 32768u);
    EXPECT_EQ(prof.value(Param::MaxBranches), 32u);
    EXPECT_EQ(prof.value(Param::ICacheSize),
              ds.value(Param::ICacheSize,
                       ds.numValues(Param::ICacheSize) - 1));
    // Depth is pinned to mid-range, not the extreme.
    EXPECT_EQ(prof.value(Param::Depth), 12u);
}

TEST(Configuration, FromValuesMatchesTable3)
{
    const auto cfg = Configuration::fromValues(
        {4, 144, 48, 32, 160, 4, 1, 16384, 1024, 24, 65536, 32768,
         1048576, 12});
    EXPECT_EQ(cfg.value(Param::Width), 4u);
    EXPECT_EQ(cfg.value(Param::RobSize), 144u);
    EXPECT_EQ(cfg.value(Param::L2CacheSize), 1048576u);
}

TEST(Configuration, ToStringMentionsEveryParameter)
{
    const auto s = Configuration::profiling().toString();
    const auto &ds = DesignSpace::the();
    for (auto p : allParams())
        EXPECT_NE(s.find(ds.name(p)), std::string::npos);
}

TEST(Configuration, EqualityAndHash)
{
    Configuration a, b;
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.setValue(Param::Width, 8);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}
