/**
 * @file
 * Pipeline-depth → clock-frequency model.
 *
 * The Depth parameter of Table I is the useful-logic delay per stage in
 * FO4 units.  Fewer FO4 per stage means a deeper pipeline and a faster
 * clock, but a larger misprediction penalty and more latch/clock power
 * (Hartstein & Puzak, MICRO'03).
 */

#ifndef ADAPTSIM_POWER_FREQUENCY_HH
#define ADAPTSIM_POWER_FREQUENCY_HH

namespace adaptsim::power
{

/** One FO4 inverter delay at the modelled 90nm node, in seconds. */
inline constexpr double fo4DelaySeconds = 25e-12;

/** Latch + skew overhead per stage, in FO4. */
inline constexpr double latchOverheadFo4 = 3.0;

/** Total useful logic depth of the scalar pipeline, in FO4. */
inline constexpr double totalLogicFo4 = 220.0;

/** Clock period in seconds for a given useful FO4 per stage. */
double clockPeriodSeconds(int depth_fo4);

/** Clock frequency in Hz for a given useful FO4 per stage. */
double clockFrequencyHz(int depth_fo4);

/** Number of pipeline stages implied by the per-stage depth. */
int pipelineStages(int depth_fo4);

/** Front-end (fetch..dispatch) stages; sets the mispredict refill. */
int frontendStages(int depth_fo4);

} // namespace adaptsim::power

#endif // ADAPTSIM_POWER_FREQUENCY_HH
