#include "ml/conjugate_gradient.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::ml
{

namespace
{

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
infNorm(const std::vector<double> &a)
{
    double m = 0.0;
    for (double v : a)
        m = std::max(m, std::abs(v));
    return m;
}

} // namespace

CgResult
minimiseCg(const Objective &f, std::vector<double> &w,
           const CgOptions &opt)
{
    const std::size_t n = w.size();
    std::vector<double> grad(n), prev_grad(n), dir(n), trial(n);

    CgResult result;
    double fw = f(w, grad);
    result.objective = fw;

    // Initial direction: steepest descent.
    for (std::size_t i = 0; i < n; ++i)
        dir[i] = -grad[i];

    double step = opt.initialStep;
    for (std::size_t iter = 0; iter < opt.maxIterations; ++iter) {
        result.iterations = iter + 1;
        if (infNorm(grad) < opt.gradTolerance) {
            result.converged = true;
            break;
        }

        double slope = dot(grad, dir);
        if (slope >= 0.0) {
            // Not a descent direction: restart with steepest descent.
            for (std::size_t i = 0; i < n; ++i)
                dir[i] = -grad[i];
            slope = dot(grad, dir);
            if (slope >= 0.0) {
                result.converged = true;   // gradient numerically 0
                break;
            }
        }

        // Armijo backtracking line search.
        double t = step;
        double f_trial = 0.0;
        bool accepted = false;
        std::vector<double> trial_grad(n);
        for (std::size_t bt = 0; bt < opt.maxBacktracks; ++bt) {
            for (std::size_t i = 0; i < n; ++i)
                trial[i] = w[i] + t * dir[i];
            f_trial = f(trial, trial_grad);
            if (f_trial <= fw + opt.armijoC * t * slope) {
                accepted = true;
                break;
            }
            t *= opt.backtrackFactor;
        }
        if (!accepted)
            break;   // no further progress possible

        // Accept the step.
        w.swap(trial);
        prev_grad.swap(grad);
        grad.swap(trial_grad);
        fw = f_trial;
        result.objective = fw;

        // Polak-Ribière+ with automatic restart.
        double num = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            num += grad[i] * (grad[i] - prev_grad[i]);
        const double den = dot(prev_grad, prev_grad);
        const double beta =
            den > 0.0 ? std::max(0.0, num / den) : 0.0;
        for (std::size_t i = 0; i < n; ++i)
            dir[i] = -grad[i] + beta * dir[i];

        // Grow the next initial step when the search succeeded at the
        // first attempt; shrink when it had to backtrack hard.
        step = std::clamp(t * 2.0, 1e-6, 4.0);
    }
    return result;
}

} // namespace adaptsim::ml
