/**
 * @file
 * Online phase-change detection (stage 1 of Fig. 2).
 *
 * The detector consumes one BBV per executed interval and reports
 * whether the program has entered a different phase.  Recurring
 * phases are recognised through a signature table so the controller
 * re-profiles only genuinely new behaviour — the paper observes
 * reconfiguration roughly once every 10 intervals.
 */

#ifndef ADAPTSIM_PHASE_ONLINE_DETECTOR_HH
#define ADAPTSIM_PHASE_ONLINE_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "phase/bbv.hh"

namespace adaptsim::phase
{

/** Signature-table online phase detector. */
class OnlinePhaseDetector
{
  public:
    /**
     * @param threshold Manhattan distance above which an interval is
     *        considered a different phase (BBVs are L1-normalised, so
     *        the distance lies in [0, 2]).
     * @param max_phases signature table capacity.
     */
    explicit OnlinePhaseDetector(double threshold = 1.0,
                                 std::size_t max_phases = 64);

    /** Outcome of observing one interval. */
    struct Observation
    {
        bool phaseChanged;   ///< different phase than the last interval
        bool newPhase;       ///< first time this phase is seen
        std::size_t phaseId; ///< stable phase identifier
    };

    /** Feed the BBV of the interval that just finished. */
    Observation observe(const Bbv &bbv);

    /** Number of distinct phases seen so far. */
    std::size_t numPhases() const { return signatures_.size(); }

    std::size_t currentPhase() const { return current_; }

  private:
    double threshold_;
    std::size_t maxPhases_;
    std::vector<Bbv> signatures_;
    std::vector<std::uint64_t> observations_;
    std::size_t current_ = ~std::size_t(0);
};

} // namespace adaptsim::phase

#endif // ADAPTSIM_PHASE_ONLINE_DETECTOR_HH
