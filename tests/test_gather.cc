/**
 * @file
 * Tests of the Sec. V-C training-data gatherer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_set>

#include "harness/gather.hh"
#include "phase/simpoint.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::harness;

namespace
{

class GatherTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/adaptsim_gather_test";
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

} // namespace

TEST(GatherPool, ContainsPaperBaseline)
{
    GatherOptions opt;
    opt.sharedRandomConfigs = 12;
    const auto pool = sharedConfigPool(opt);
    EXPECT_GE(pool.size(), 12u);
    const auto baseline = paperBaselineConfig();
    bool found = false;
    for (const auto &cfg : pool)
        found = found || cfg == baseline;
    EXPECT_TRUE(found);
}

TEST(GatherPool, DeterministicForSeed)
{
    GatherOptions opt;
    opt.sharedRandomConfigs = 10;
    const auto a = sharedConfigPool(opt);
    const auto b = sharedConfigPool(opt);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(PaperBaseline, MatchesTable3)
{
    const auto cfg = paperBaselineConfig();
    EXPECT_EQ(cfg.value(space::Param::Width), 4u);
    EXPECT_EQ(cfg.value(space::Param::RobSize), 144u);
    EXPECT_EQ(cfg.value(space::Param::IqSize), 48u);
    EXPECT_EQ(cfg.value(space::Param::LsqSize), 32u);
    EXPECT_EQ(cfg.value(space::Param::GshareSize), 16384u);
    EXPECT_EQ(cfg.value(space::Param::Depth), 12u);
}

TEST_F(GatherTest, GathersSharedNeighboursAndSweep)
{
    constexpr std::uint64_t len = 60000;
    EvalRepository repo(workload::specSuite(len), dir_, 0);

    phase::SimPointOptions sp;
    sp.intervalLength = 1500;
    sp.maxPhases = 2;
    const auto phases =
        phase::extractPhases(repo.workload("gzip"), sp);

    GatherOptions opt;
    opt.sharedRandomConfigs = 8;
    opt.localNeighbours = 4;
    opt.oneAtATimeSweep = true;
    const auto gathered =
        gatherTrainingData(repo, phases, len, 1000, opt);

    ASSERT_EQ(gathered.size(), phases.size());
    for (const auto &g : gathered) {
        // 8 random + Table III + 4 neighbours + 97 sweep, minus
        // duplicates the sweep may share with earlier sets.
        EXPECT_GE(g.evals.size(), 100u);
        EXPECT_FALSE(g.features.advanced.empty());
        EXPECT_FALSE(g.features.basic.empty());
        EXPECT_EQ(g.spec.workload, "gzip");
        EXPECT_EQ(g.spec.detailLength, 1500u);

        // Efficiencies are positive and vary across configs.
        std::unordered_set<double> distinct;
        for (const auto &e : g.evals) {
            EXPECT_GT(e.efficiency, 0.0);
            distinct.insert(e.efficiency);
        }
        EXPECT_GT(distinct.size(), g.evals.size() / 2);
    }
}

TEST_F(GatherTest, NoSweepOptionShrinksEvalCount)
{
    constexpr std::uint64_t len = 60000;
    EvalRepository repo(workload::specSuite(len), dir_, 0);
    phase::SimPointOptions sp;
    sp.intervalLength = 1500;
    sp.maxPhases = 1;
    const auto phases =
        phase::extractPhases(repo.workload("eon"), sp);

    GatherOptions opt;
    opt.sharedRandomConfigs = 6;
    opt.localNeighbours = 3;
    opt.oneAtATimeSweep = false;
    const auto gathered =
        gatherTrainingData(repo, phases, len, 1000, opt);
    ASSERT_EQ(gathered.size(), 1u);
    EXPECT_LE(gathered[0].evals.size(), 10u);
}

TEST_F(GatherTest, ToPhaseDataSelectsFeatureSet)
{
    constexpr std::uint64_t len = 60000;
    EvalRepository repo(workload::specSuite(len), dir_, 0);
    phase::SimPointOptions sp;
    sp.intervalLength = 1500;
    sp.maxPhases = 1;
    const auto phases =
        phase::extractPhases(repo.workload("eon"), sp);
    GatherOptions opt;
    opt.sharedRandomConfigs = 4;
    opt.localNeighbours = 0;
    opt.oneAtATimeSweep = false;
    const auto gathered =
        gatherTrainingData(repo, phases, len, 1000, opt);

    const auto adv = gathered[0].toPhaseData(
        counters::FeatureSet::Advanced);
    const auto bas = gathered[0].toPhaseData(
        counters::FeatureSet::Basic);
    EXPECT_EQ(adv.features, gathered[0].features.advanced);
    EXPECT_EQ(bas.features, gathered[0].features.basic);
    EXPECT_EQ(adv.evals.size(), gathered[0].evals.size());
    EXPECT_EQ(adv.workload, "eon");
}
