/**
 * @file
 * Shared bench init hook: compiled into every bench binary so each
 * one reads the ADAPTSIM_METRICS / ADAPTSIM_TRACE env knobs and gets
 * the obs exit summary without touching its main().
 */

#include "obs/obs.hh"

namespace
{

const bool obs_initialized = [] {
    adaptsim::obs::initFromEnv();
    return true;
}();

} // namespace
