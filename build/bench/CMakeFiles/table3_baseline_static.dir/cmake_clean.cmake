file(REMOVE_RECURSE
  "CMakeFiles/table3_baseline_static.dir/table3_baseline_static.cc.o"
  "CMakeFiles/table3_baseline_static.dir/table3_baseline_static.cc.o.d"
  "table3_baseline_static"
  "table3_baseline_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_baseline_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
