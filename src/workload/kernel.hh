/**
 * @file
 * Parameterised synthetic µop kernels.
 *
 * A Kernel deterministically emits a stream of MicroOps whose hardware
 * demands are controlled by a small set of behavioural parameters:
 * instruction mix, dependence-chain shape (ILP), static code layout
 * (I-cache / BTB / gshare pressure), branch-pattern predictability, and
 * data working-set size / access pattern (D-cache / L2 / LSQ pressure).
 *
 * Workloads (one per SPEC CPU 2000 benchmark) are schedules of kernels;
 * kernel switches create the program phases the paper's controller
 * adapts to.
 */

#ifndef ADAPTSIM_WORKLOAD_KERNEL_HH
#define ADAPTSIM_WORKLOAD_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "isa/micro_op.hh"

namespace adaptsim::workload
{

/** Behavioural parameters of a synthetic kernel. */
struct KernelParams
{
    std::string name = "kernel";

    // Instruction mix: fractions of the dynamic stream.  Whatever is
    // left after these becomes IntAlu.
    double fracLoad = 0.25;
    double fracStore = 0.10;
    double fracFpAlu = 0.0;
    double fracFpMul = 0.0;
    double fracFpDiv = 0.0;
    double fracIntMul = 0.02;
    double fracIntDiv = 0.0;

    /**
     * Fraction of source operands drawn from the most recent few
     * destinations.  High values build long serial chains (low ILP);
     * low values spread dependencies (high ILP).
     */
    double shortDepFrac = 0.4;

    // Static code layout.
    int numBlocks = 64;        ///< static basic blocks
    int blockSize = 8;         ///< µops per block (branch included)

    // Branch behaviour.  Block-ending branches are assigned one of
    // three archetypes at layout time, mirroring real demographics:
    // strongly biased (if/else guards), loop back-edges with fixed
    // trip counts, and inherently data-dependent ("hard") branches.
    double branchNoise = 0.02; ///< flip probability on biased/loops
    double hardBranchFrac = 0.08; ///< fraction of data-dependent blocks
    double loopBranchFrac = 0.30; ///< fraction of loop-pattern blocks
    int loopTripCount = 16;    ///< max taken-streak of loop branches

    // Data memory behaviour.
    std::uint64_t dataWorkingSet = 64 * 1024; ///< bytes
    double randomAccessFrac = 0.1; ///< random vs strided accesses
    int strideBytes = 8;           ///< stride of the regular stream
    double pointerChaseFrac = 0.0; ///< loads dependent on prior load

    /** Bytes of static code implied by the block layout. */
    std::uint64_t codeFootprint() const
    {
        return std::uint64_t(numBlocks) * blockSize * 4;
    }
};

/**
 * A deterministic µop generator for one kernel.
 *
 * Two equal-constructed kernels produce identical streams, which is
 * what makes trace replay across configurations possible.
 */
class Kernel
{
  public:
    /**
     * @param params behavioural parameters.
     * @param kernel_id stable identity used to derive PCs and BB ids.
     * @param seed deterministic stream seed.
     */
    Kernel(const KernelParams &params, std::uint32_t kernel_id,
           std::uint64_t seed);

    /** Generate the next µop of the stream. */
    isa::MicroOp next();

    /** Skip @p count µops (same state change as generating them). */
    void skip(std::uint64_t count);

    const KernelParams &params() const { return params_; }
    std::uint32_t kernelId() const { return kernelId_; }

  private:
    /** Emit the terminating branch of the current basic block. */
    isa::MicroOp makeBranch();

    /** Emit a non-branch body µop of the given class. */
    isa::MicroOp makeBodyOp(isa::OpClass cls);

    /** Pick an integer source register. */
    std::int16_t pickIntSrc();

    /** Pick an FP source register. */
    std::int16_t pickFpSrc();

    /** Allocate the next integer destination register. */
    std::int16_t allocIntDest();

    /** Allocate the next FP destination register. */
    std::int16_t allocFpDest();

    /** Compute the next data address for a memory op. */
    Addr nextDataAddr();

    /** PC of instruction @p offset inside block @p block. */
    Addr pcOf(int block, int offset) const;

    KernelParams params_;
    std::uint32_t kernelId_;
    Rng rng_;

    // Execution position.
    int block_ = 0;
    int offset_ = 0;

    /** Branch archetype of a basic block. */
    enum class BranchKind : std::uint8_t { Biased, Loop, Hard };

    // Per-block branch structure (fixed at layout time).
    std::vector<BranchKind> branchKind_;
    std::vector<bool> biasTaken_;      ///< direction of biased blocks
    std::vector<double> hardTakenP_;   ///< P(taken) of hard blocks
    std::vector<int> tripCount_;       ///< loop trip counts
    std::vector<int> tripRemaining_;   ///< live loop countdown
    // Per-block taken-target block (loop back-edge or forward jump).
    std::vector<int> takenTarget_;

    // Register allocation state.
    int intDestCursor_ = 1;
    int fpDestCursor_ = 1;
    std::vector<std::int16_t> recentIntDests_;
    std::vector<std::int16_t> recentFpDests_;
    std::int16_t lastLoadDest_ = 1;

    // Data stream state.
    Addr dataBase_;
    Addr codeBase_;
    std::uint64_t streamPos_ = 0;
};

} // namespace adaptsim::workload

#endif // ADAPTSIM_WORKLOAD_KERNEL_HH
