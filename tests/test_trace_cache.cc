/**
 * @file
 * Tests of the interval trace LRU cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "workload/spec_suite.hh"
#include "workload/trace_cache.hh"

using namespace adaptsim::workload;

TEST(TraceCache, MissThenHit)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(4);
    const auto a = cache.get(wl, 1000, 500);
    EXPECT_EQ(cache.misses(), 1u);
    const auto b = cache.get(wl, 1000, 500);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a.get(), b.get());   // shared, not regenerated
    EXPECT_EQ(a->size(), 500u);
}

TEST(TraceCache, DistinctKeysAreDistinctEntries)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(4);
    (void)cache.get(wl, 0, 100);
    (void)cache.get(wl, 100, 100);
    (void)cache.get(wl, 0, 200);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(TraceCache, EvictsLeastRecentlyUsed)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(2);
    (void)cache.get(wl, 0, 64);      // A
    (void)cache.get(wl, 64, 64);     // B
    (void)cache.get(wl, 0, 64);      // A again (hit, refresh)
    (void)cache.get(wl, 128, 64);    // C — evicts B
    EXPECT_EQ(cache.size(), 2u);
    (void)cache.get(wl, 0, 64);      // A still cached
    EXPECT_EQ(cache.hits(), 2u);
    (void)cache.get(wl, 64, 64);     // B was evicted
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(TraceCache, DifferentWorkloadsDoNotCollide)
{
    const auto a = specBenchmark("gzip", 50000);
    const auto b = specBenchmark("mcf", 50000);
    TraceCache cache(4);
    const auto ta = cache.get(a, 0, 50);
    const auto tb = cache.get(b, 0, 50);
    EXPECT_EQ(cache.misses(), 2u);
    // Same nominal code region, but the op streams must differ.
    int same = 0;
    for (std::size_t i = 0; i < 50; ++i)
        same += (*ta)[i].opClass == (*tb)[i].opClass &&
                (*ta)[i].pc == (*tb)[i].pc;
    EXPECT_LT(same, 40);
}

TEST(TraceCache, CapacityZeroUsesEnvDefault)
{
    setenv("ADAPTSIM_TRACE_CACHE", "3", 1);
    TraceCache cache;   // 0 → env knob
    EXPECT_EQ(cache.capacity(), 3u);
    unsetenv("ADAPTSIM_TRACE_CACHE");
    TraceCache dflt;
    EXPECT_EQ(dflt.capacity(), 48u);
}

TEST(TraceCache, CapacityOneStillServesHits)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(1);
    (void)cache.get(wl, 0, 64);
    const auto a = cache.get(wl, 0, 64);   // resident → hit
    EXPECT_EQ(cache.hits(), 1u);
    (void)cache.get(wl, 64, 64);           // evicts the only entry
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    // The evicted trace stays alive through the shared_ptr.
    EXPECT_EQ(a->size(), 64u);
    (void)cache.get(wl, 0, 64);            // re-generated
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(TraceCache, StatsSnapshotIsConsistent)
{
    const auto wl = specBenchmark("gzip", 50000);
    TraceCache cache(2);
    (void)cache.get(wl, 0, 32);
    (void)cache.get(wl, 0, 32);
    (void)cache.get(wl, 32, 32);
    (void)cache.get(wl, 64, 32);   // eviction
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.evictions, 1u);
}

TEST(TraceCache, SharedAcrossThreads)
{
    // Hammer one small cache from several threads: every returned
    // trace for a key must be bit-identical, and each distinct key
    // is generated at most once per residency.  Run under TSan via
    // scripts/tier1.sh to prove the locking discipline.
    const auto wl = specBenchmark("mcf", 50000);
    TraceCache cache(8);
    constexpr int threads = 4;
    constexpr int rounds = 32;
    std::vector<std::vector<TracePtr>> got(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int r = 0; r < rounds; ++r)
                got[t].push_back(
                    cache.get(wl, (r % 4) * 100, 100));
        });
    }
    for (auto &th : pool)
        th.join();
    // 4 distinct keys, capacity 8: generated exactly once each.
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(),
              static_cast<std::uint64_t>(threads * rounds - 4));
    for (int t = 1; t < threads; ++t)
        for (int r = 0; r < rounds; ++r)
            EXPECT_EQ(got[t][r].get(), got[0][r].get());
}

TEST(TraceCache, ContentMatchesDirectGeneration)
{
    const auto wl = specBenchmark("swim", 50000);
    TraceCache cache(4);
    const auto cached = cache.get(wl, 2000, 300);
    const auto direct = wl.generate(2000, 300);
    ASSERT_EQ(cached->size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ((*cached)[i].pc, direct[i].pc);
}
