/**
 * @file
 * Telemetry front door: scoped spans, instrumentation macros, and
 * the process-exit sinks (summary table, JSON dump, Chrome trace).
 *
 * Instrumented code uses the macros, never the classes directly:
 *
 *     OBS_SPAN("gather/phase");          // RAII wall-time span
 *     OBS_COUNTER("repo/hit").add(1);    // cached counter handle
 *
 * OBS_SPAN records the scope's wall time into the global registry
 * histogram "<name>.seconds" and, when a TraceWriter is active,
 * emits a complete Chrome trace event with the calling thread's id.
 *
 * Building with -DADAPTSIM_OBS=OFF (ADAPTSIM_OBS_ENABLED == 0)
 * compiles every macro away entirely — no clock reads, no registry
 * lookups, no branches — so the uninstrumented hot path costs
 * nothing.  The obs library itself (registry, trace writer) is
 * always built; only call sites vanish.
 *
 * Env knobs (read by initFromEnv(), see common/env):
 *   ADAPTSIM_METRICS     exit summary ("1" default, "0"/"off",
 *                        anything else = also dump JSON to it)
 *   ADAPTSIM_TRACE       truthy = capture Chrome trace events
 *   ADAPTSIM_TRACE_FILE  trace path (default adaptsim_trace.json)
 */

#ifndef ADAPTSIM_OBS_OBS_HH
#define ADAPTSIM_OBS_OBS_HH

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/registry.hh"
#include "obs/trace.hh"

#ifndef ADAPTSIM_OBS_ENABLED
#define ADAPTSIM_OBS_ENABLED 1
#endif

namespace adaptsim::obs
{

/** Default span-latency bounds: 1µs .. ~137s, ×2 per bucket. */
std::vector<double> latencyBounds();

/** The global "<name>.seconds" histogram backing a span. */
Histogram &spanHistogram(const char *name);

/** RAII wall-time span; prefer the OBS_SPAN macro. */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, Histogram &hist)
        : name_(name), hist_(hist),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedSpan()
    {
        const auto end = std::chrono::steady_clock::now();
        hist_.record(
            std::chrono::duration<double>(end - start_).count());
        if (auto *writer = TraceWriter::active())
            writer->completeEvent(name_, start_, end);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    Histogram &hist_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Read the env knobs, install the active trace writer, and register
 * the process-exit report (summary table on stderr, optional JSON
 * dump, trace flush).  Idempotent; benches call it from a static
 * initializer (bench/obs_init.cc), long-lived tools may call it
 * explicitly.
 */
void initFromEnv();

/** Render the registry summary (and derived rates) to @p out now. */
void report(std::FILE *out);

/** Machine-readable JSON dump of every registered metric. */
std::string metricsJson();

/** Flush the active trace writer, if any; safe to call anytime. */
void flushTrace();

} // namespace adaptsim::obs

#if ADAPTSIM_OBS_ENABLED

#define ADAPTSIM_OBS_CAT2(a, b) a##b
#define ADAPTSIM_OBS_CAT(a, b) ADAPTSIM_OBS_CAT2(a, b)

/** Time this scope into histogram "name.seconds" (+ trace event). */
#define OBS_SPAN(name)                                               \
    static ::adaptsim::obs::Histogram &ADAPTSIM_OBS_CAT(             \
        obs_span_hist_, __LINE__) =                                  \
        ::adaptsim::obs::spanHistogram(name);                        \
    ::adaptsim::obs::ScopedSpan ADAPTSIM_OBS_CAT(obs_span_,          \
                                                 __LINE__)           \
    {                                                                \
        name, ADAPTSIM_OBS_CAT(obs_span_hist_, __LINE__)             \
    }

/** Cached global counter handle (name must be a literal). */
#define OBS_COUNTER(name)                                            \
    ([]() -> ::adaptsim::obs::Counter & {                            \
        static ::adaptsim::obs::Counter &handle =                    \
            ::adaptsim::obs::Registry::global().counter(name);       \
        return handle;                                               \
    }())

/** Cached global "<name>.seconds" histogram handle. */
#define OBS_SPAN_HISTOGRAM(name)                                     \
    ([]() -> ::adaptsim::obs::Histogram & {                          \
        static ::adaptsim::obs::Histogram &handle =                  \
            ::adaptsim::obs::spanHistogram(name);                    \
        return handle;                                               \
    }())

/** Statement(s) present only in instrumented builds. */
#define OBS_ONLY(...) __VA_ARGS__

#else // !ADAPTSIM_OBS_ENABLED

#define OBS_SPAN(name) ((void)0)
#define OBS_ONLY(...)

#endif // ADAPTSIM_OBS_ENABLED

#endif // ADAPTSIM_OBS_OBS_HH
