/**
 * @file
 * Phase explorer: run SimPoint-style phase extraction on a program,
 * show each phase's behaviour signature distances, and demonstrate
 * the online phase-change detector the controller uses (stage 1 of
 * Fig. 2).
 */

#include <cstdio>

#include "common/table.hh"
#include "phase/online_detector.hh"
#include "phase/simpoint.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

int
main()
{
    const auto wl = workload::specBenchmark("gap", 400000);
    constexpr std::uint64_t interval = 6000;

    // Offline: SimPoint-style representative phase extraction.
    phase::SimPointOptions options;
    options.intervalLength = interval;
    options.maxPhases = 10;
    const auto phases = phase::extractPhases(wl, options);

    std::printf("SimPoint phases of %s (interval = %llu µops)\n\n",
                wl.name().c_str(),
                static_cast<unsigned long long>(interval));
    TextTable table;
    table.setHeader({"Phase", "Start µop", "Weight"});
    for (const auto &p : phases) {
        table.addRow({std::to_string(p.index),
                      std::to_string(p.startInst),
                      TextTable::num(p.weight)});
    }
    std::printf("%s\n", table.render().c_str());

    // Online: the detector watching the program run.
    phase::OnlinePhaseDetector detector;
    const std::uint64_t num_intervals =
        wl.totalInstructions() / interval;
    std::printf("online detector trace (one char per interval, "
                "letter = phase id, '*' = new phase):\n  ");
    std::size_t changes = 0;
    std::size_t new_phases = 0;
    for (std::uint64_t i = 0; i < num_intervals; ++i) {
        const auto bbv = phase::Bbv::ofTrace(
            wl.generate(i * interval, interval));
        const auto obs = detector.observe(bbv);
        if (obs.newPhase) {
            std::printf("*");
            ++new_phases;
        } else {
            std::printf("%c", char('a' + obs.phaseId % 26));
        }
        if (obs.phaseChanged)
            ++changes;
    }
    std::printf("\n\n%llu intervals, %zu distinct phases, %zu phase "
                "changes (reconfiguration rate %.2f per interval; "
                "the paper observes ~0.1)\n",
                static_cast<unsigned long long>(num_intervals),
                detector.numPhases(), changes,
                double(changes) / double(num_intervals));
    return 0;
}
