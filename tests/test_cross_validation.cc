/**
 * @file
 * Tests of leave-one-program-out cross-validation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/cross_validation.hh"

using namespace adaptsim;
using namespace adaptsim::ml;
using space::Param;

namespace
{

/** Phases for named programs; program determines the good IQ size. */
std::vector<PhaseData>
programPhases()
{
    const auto &ds = space::DesignSpace::the();
    Rng rng(13);
    std::vector<PhaseData> phases;
    const char *programs[] = {"alpha", "beta", "gamma", "delta"};
    for (int prog = 0; prog < 4; ++prog) {
        for (int i = 0; i < 6; ++i) {
            PhaseData ph;
            ph.workload = programs[prog];
            ph.phaseIndex = i;
            ph.weight = 1.0 / 6.0;
            const bool big = prog % 2 == 1;
            ph.features = {big ? 1.0 : 0.0, 1.0};
            const double target = big ? 8.0 : 1.0;
            for (int s = 0; s < 20; ++s) {
                space::Configuration cfg;
                for (auto p : space::allParams()) {
                    cfg.setIndex(p, std::uint8_t(rng.nextBounded(
                        ds.numValues(p))));
                }
                const double d = std::abs(
                    double(cfg.index(Param::IqSize)) - target);
                ph.evals.push_back(
                    ConfigEval{cfg, 10.0 / (1.0 + d * d)});
            }
            phases.push_back(std::move(ph));
        }
    }
    return phases;
}

} // namespace

TEST(CrossValidation, PredictsForEveryPhaseInOrder)
{
    const auto phases = programPhases();
    const auto predictions = leaveOneProgramOut(phases, {});
    ASSERT_EQ(predictions.size(), phases.size());
    for (std::size_t i = 0; i < predictions.size(); ++i)
        EXPECT_EQ(predictions[i].phaseIdx, i);
}

TEST(CrossValidation, GeneralisesAcrossPrograms)
{
    // Because two programs of each type exist, the held-out program
    // is still predictable from the others.
    const auto phases = programPhases();
    const auto predictions = leaveOneProgramOut(phases, {});
    // Average predicted IQ index per type.
    double small_sum = 0.0, big_sum = 0.0;
    int small_n = 0, big_n = 0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const auto idx =
            predictions[i].predicted.index(Param::IqSize);
        if (phases[i].features[0] > 0.5) {
            big_sum += idx;
            ++big_n;
        } else {
            small_sum += idx;
            ++small_n;
        }
    }
    EXPECT_GT(big_sum / big_n, small_sum / small_n + 2.0);
}

TEST(CrossValidation, Deterministic)
{
    const auto phases = programPhases();
    const auto a = leaveOneProgramOut(phases, {});
    const auto b = leaveOneProgramOut(phases, {});
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].predicted, b[i].predicted);
}
