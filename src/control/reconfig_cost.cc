#include "control/reconfig_cost.hh"

#include <algorithm>
#include <cmath>

namespace adaptsim::control
{

namespace
{

/// Power-up rate: 200ns per 1.2M transistors (Sec. VIII).
constexpr double powerUpNsPerTransistor = 200.0 / 1.2e6;

/// 6T SRAM cell.
constexpr double transistorsPerBit = 6.0;

/// Fixed control/handshake cycles per reconfiguration.
constexpr double controlCycles = 40.0;

/// Fraction of cache lines dirty at flush time (writeback cost).
constexpr double dirtyFraction = 0.22;

double
sramTransistors(double bytes)
{
    return bytes * 8.0 * transistorsPerBit;
}

} // namespace

const char *
reStructureName(ReStructure s)
{
    switch (s) {
      case ReStructure::Width: return "Width";
      case ReStructure::RegFile: return "RF";
      case ReStructure::Bpred: return "Bpred";
      case ReStructure::Rob: return "ROB";
      case ReStructure::Iq: return "IQ";
      case ReStructure::Lsq: return "LSQ";
      case ReStructure::ICache: return "ICache";
      case ReStructure::DCache: return "DCache";
      case ReStructure::UCache: return "UCache";
      default: return "invalid";
    }
}

ReconfigCostModel::ReconfigCostModel(const uarch::CoreConfig &cfg)
    : cfg_(cfg)
{
    const double period_ns = cfg.clockPeriodSec * 1e9;
    auto power_cycles = [&](double transistors) {
        return transistors * powerUpNsPerTransistor / period_ns;
    };
    auto to_cycles = [&](double c) {
        return static_cast<Cycles>(std::llround(c + controlCycles));
    };

    // Only the toggled partition powers up; model half the structure.
    constexpr double partition = 0.5;

    const double drain =
        double(cfg.numStages) +
        double(cfg.robSize) / double(cfg.width);

    auto at = [&](ReStructure s) -> Cycles & {
        return cycles_[static_cast<std::size_t>(s)];
    };

    // Width: datapath slices (FUs, bypass, latches) ≈ 2M transistors
    // per pipe slice; plus a full pipeline drain.
    at(ReStructure::Width) = to_cycles(
        power_cycles(partition * 2.0e6 * cfg.width / 4.0) + drain);

    // Register files: both int and fp, ~70 bits per entry, port-
    // heavy cells (x3 area), plus a drain to quiesce renaming.
    at(ReStructure::RegFile) = to_cycles(
        power_cycles(partition * 2.0 * cfg.rfSize * 70.0 *
                     transistorsPerBit * 3.0) + drain);

    // Branch predictor: PHT (2 bits/entry) + BTB (~64 bits/entry).
    at(ReStructure::Bpred) = to_cycles(
        power_cycles(partition *
                     (cfg.gshareEntries * 2.0 +
                      cfg.btbEntries * 64.0) * transistorsPerBit));

    // Window structures: payload bits plus drain of in-flight ops.
    at(ReStructure::Rob) = to_cycles(
        power_cycles(partition * cfg.robSize * 128.0 *
                     transistorsPerBit) + drain);
    at(ReStructure::Iq) = to_cycles(
        power_cycles(partition * cfg.iqSize * 96.0 *
                     transistorsPerBit * 2.0) + drain);
    at(ReStructure::Lsq) = to_cycles(
        power_cycles(partition * cfg.lsqSize * 128.0 *
                     transistorsPerBit * 2.0) + drain);

    // Caches: power-up plus flush.  The I-cache is clean (invalidate
    // only); D and L2 write back their dirty lines at one per cycle.
    const double ic_lines =
        double(cfg.icacheBytes) / uarch::CoreConfig::cacheLineBytes;
    const double dc_lines =
        double(cfg.dcacheBytes) / uarch::CoreConfig::cacheLineBytes;
    const double l2_lines =
        double(cfg.l2Bytes) / uarch::CoreConfig::cacheLineBytes;
    at(ReStructure::ICache) = to_cycles(
        power_cycles(partition * sramTransistors(
            double(cfg.icacheBytes))) + ic_lines / 64.0);
    at(ReStructure::DCache) = to_cycles(
        power_cycles(partition * sramTransistors(
            double(cfg.dcacheBytes))) + dc_lines * dirtyFraction);
    at(ReStructure::UCache) = to_cycles(
        power_cycles(partition * sramTransistors(
            double(cfg.l2Bytes))) + l2_lines * dirtyFraction);
}

Cycles
ReconfigCostModel::cyclesFor(ReStructure s) const
{
    return cycles_[static_cast<std::size_t>(s)];
}

Cycles
ReconfigCostModel::transitionCycles(
    const space::Configuration &from,
    const space::Configuration &to) const
{
    using space::Param;
    Cycles worst = 0;
    auto consider = [&](Param p, ReStructure s) {
        if (from.index(p) != to.index(p))
            worst = std::max(worst, cyclesFor(s));
    };
    consider(Param::Width, ReStructure::Width);
    consider(Param::Depth, ReStructure::Width);
    consider(Param::RfSize, ReStructure::RegFile);
    consider(Param::RfRdPorts, ReStructure::RegFile);
    consider(Param::RfWrPorts, ReStructure::RegFile);
    consider(Param::GshareSize, ReStructure::Bpred);
    consider(Param::BtbSize, ReStructure::Bpred);
    consider(Param::MaxBranches, ReStructure::Bpred);
    consider(Param::RobSize, ReStructure::Rob);
    consider(Param::IqSize, ReStructure::Iq);
    consider(Param::LsqSize, ReStructure::Lsq);
    consider(Param::ICacheSize, ReStructure::ICache);
    consider(Param::DCacheSize, ReStructure::DCache);
    consider(Param::L2CacheSize, ReStructure::UCache);

    return static_cast<Cycles>(
        std::llround(double(worst) * visibleFraction));
}

} // namespace adaptsim::control
