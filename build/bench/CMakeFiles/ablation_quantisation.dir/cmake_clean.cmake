file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantisation.dir/ablation_quantisation.cc.o"
  "CMakeFiles/ablation_quantisation.dir/ablation_quantisation.cc.o.d"
  "ablation_quantisation"
  "ablation_quantisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
