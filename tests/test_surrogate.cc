// Tests for the ridge-ensemble performance surrogate (ml/surrogate).

#include <cmath>

#include <gtest/gtest.h>

#include "ml/surrogate.hh"

using namespace adaptsim;

namespace
{

/** Deterministic synthetic training set: y = 0.5 + 2 x0 - x1, with a
 *  third constant column the standardiser must neutralise. */
ml::Matrix
makeFeatures(std::size_t n)
{
    ml::Matrix x(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
        // Low-discrepancy-ish deterministic grid, no RNG needed.
        x(i, 0) = 0.1 * static_cast<double>(i % 17);
        x(i, 1) = 0.05 * static_cast<double>((i * 7) % 23);
        x(i, 2) = 3.0;   // constant column
    }
    return x;
}

std::vector<double>
linearTargets(const ml::Matrix &x)
{
    std::vector<double> y(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        y[i] = 0.5 + 2.0 * x(i, 0) - x(i, 1);
    return y;
}

} // namespace

TEST(Surrogate, RecoversLinearRelation)
{
    const auto x = makeFeatures(64);
    const auto y = linearTargets(x);
    std::vector<double> energy(x.rows(), 2e-10);

    ml::SurrogateOptions opt;
    opt.lambda = 1e-6;   // near-interpolating on clean data
    const auto s = ml::Surrogate::fit(x, y, energy, opt);
    ASSERT_TRUE(s.trained());
    EXPECT_EQ(s.featureDim(), 3u);
    EXPECT_EQ(s.sampleCount(), 64u);

    for (std::size_t i = 0; i < x.rows(); ++i) {
        const std::vector<double> q{x(i, 0), x(i, 1), x(i, 2)};
        const auto p = s.predict(q);
        EXPECT_NEAR(p.primary, y[i], 1e-3);
        EXPECT_NEAR(p.energyPerInst, 2e-10, 1e-12);
    }
}

TEST(Surrogate, PredictionsAreDeterministic)
{
    const auto x = makeFeatures(40);
    const auto y = linearTargets(x);
    const std::vector<double> energy(x.rows(), 1e-10);

    const auto a = ml::Surrogate::fit(x, y, energy);
    const auto b = ml::Surrogate::fit(x, y, energy);
    const std::vector<double> q{0.77, 0.33, 3.0};
    const auto pa = a.predict(q);
    const auto pb = b.predict(q);
    EXPECT_EQ(pa.primary, pb.primary);
    EXPECT_EQ(pa.energyPerInst, pb.energyPerInst);
    EXPECT_EQ(pa.uncertainty, pb.uncertainty);
}

TEST(Surrogate, SerializeRoundTripsBitExactly)
{
    const auto x = makeFeatures(48);
    const auto y = linearTargets(x);
    const std::vector<double> energy(x.rows(), 3e-10);
    const auto s = ml::Surrogate::fit(x, y, energy);

    const std::string text = s.serialize();
    ml::Surrogate restored;
    ASSERT_TRUE(ml::Surrogate::deserialize(text, restored));
    EXPECT_EQ(restored.featureDim(), s.featureDim());
    EXPECT_EQ(restored.sampleCount(), s.sampleCount());

    // Hex-float text must reproduce bit-identical predictions.
    for (double a = 0.0; a < 1.7; a += 0.31) {
        const std::vector<double> q{a, 1.0 - a, 3.0};
        const auto p0 = s.predict(q);
        const auto p1 = restored.predict(q);
        EXPECT_EQ(p0.primary, p1.primary);
        EXPECT_EQ(p0.energyPerInst, p1.energyPerInst);
        EXPECT_EQ(p0.uncertainty, p1.uncertainty);
    }
}

TEST(Surrogate, DeserializeRejectsMalformedInput)
{
    ml::Surrogate out;
    EXPECT_FALSE(ml::Surrogate::deserialize("", out));
    EXPECT_FALSE(ml::Surrogate::deserialize("not-a-surrogate 1", out));
    EXPECT_FALSE(
        ml::Surrogate::deserialize("adaptsim-surrogate 99\n", out));
    // Truncated body: header parses, weights missing.
    EXPECT_FALSE(ml::Surrogate::deserialize(
        "adaptsim-surrogate 1\n3 10 4 0x1p-4\n1 2 3\n", out));
}

TEST(Surrogate, UncertaintyGrowsOffDistribution)
{
    const auto x = makeFeatures(64);
    const auto y = linearTargets(x);
    const std::vector<double> energy(x.rows(), 1e-10);
    const auto s = ml::Surrogate::fit(x, y, energy);

    // In-distribution query vs one far outside the training range.
    const std::vector<double> in{0.8, 0.55, 3.0};
    const std::vector<double> far{25.0, -30.0, 3.0};
    EXPECT_LT(s.predict(in).uncertainty,
              s.predict(far).uncertainty);
}

TEST(Surrogate, UntrainedReportsUntrained)
{
    const ml::Surrogate s;
    EXPECT_FALSE(s.trained());
    EXPECT_EQ(s.featureDim(), 0u);
}
