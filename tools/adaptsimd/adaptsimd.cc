/**
 * @file
 * adaptsimd — the multi-client evaluation daemon.
 *
 * Serves (workload, phase window, configuration, backend) evaluation
 * requests over a Unix domain socket (svc/protocol), backed by one
 * shared EvalRepository: every client benefits from every other
 * client's cached simulations, concurrent requests for the same
 * phase coalesce into one parallel batch, and the on-disk store is
 * shared by all of them.
 *
 * Usage:
 *   adaptsimd --socket /tmp/adaptsim.sock [options]
 *
 * Options:
 *   --socket PATH      socket to serve on (default
 *                      ADAPTSIM_EVAL_SOCKET, else
 *                      /tmp/adaptsimd.sock)
 *   --data-dir DIR     evaluation store (default ADAPTSIM_DATA_DIR)
 *   --program-length N suite program length in µops (default 400000)
 *   --threads N        evaluation parallelism (default
 *                      ADAPTSIM_THREADS / hardware)
 *   --shards N         store shard files per phase (default
 *                      ADAPTSIM_EVAL_SHARDS)
 *   --max-queue N      admission-control queue bound (default
 *                      ADAPTSIM_SVC_MAX_QUEUE; 0 = unlimited)
 *   --client-cap N     per-client in-flight cap (default
 *                      ADAPTSIM_SVC_CLIENT_CAP)
 *
 * SIGINT/SIGTERM shut the daemon down cleanly: pending batches
 * finish flushing to the store, telemetry is reported, the socket
 * path is unlinked.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "harness/repository.hh"
#include "obs/obs.hh"
#include "svc/server.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;

namespace
{

svc::EvalServer *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestStop(); // async-signal-safe (pipe write)
}

[[noreturn]] void
usage(const char *argv0)
{
    fatal("usage: ", argv0,
          " [--socket PATH] [--data-dir DIR] [--program-length N]"
          " [--threads N] [--shards N] [--max-queue N]"
          " [--client-cap N]");
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromEnv();

    std::string socket_path = evalSocketPath();
    if (socket_path.empty())
        socket_path = "/tmp/adaptsimd.sock";
    std::string data_dir = dataDir();
    std::uint64_t program_length = 400000;
    unsigned threads = numThreads();
    std::size_t shards = 0; // 0 = env default
    svc::ServerOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            socket_path = argv[++i];
        } else if (arg == "--data-dir" && has_value) {
            data_dir = argv[++i];
        } else if (arg == "--program-length" && has_value) {
            program_length = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--threads" && has_value) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--shards" && has_value) {
            shards = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max-queue" && has_value) {
            opts.maxQueue = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--client-cap" && has_value) {
            opts.clientCap = std::strtoull(argv[++i], nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    if (program_length == 0 || threads == 0 || opts.clientCap == 0)
        usage(argv[0]);

    harness::EvalRepository repo(workload::specSuite(program_length),
                                 data_dir, threads, shards);

    opts.socketPath = socket_path;
    svc::EvalServer server(repo, opts);
    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (!server.start())
        fatal("adaptsimd: cannot serve on ", socket_path);
    server.wait();
    server.stop();
    gServer = nullptr;

    repo.flush();
    inform("adaptsimd: stopped (", repo.statsSummary(), ")");
    return 0;
}
