/**
 * @file
 * Tests of feature-vector assembly for both counter sets.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "counters/feature_vector.hh"
#include "uarch/core.hh"
#include "workload/spec_suite.hh"

using namespace adaptsim;
using namespace adaptsim::counters;

namespace
{

CounterBank
someBank()
{
    const auto wl = workload::specBenchmark("vpr", 100000);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(
        space::Configuration::profiling());
    uarch::Core core(cc, wp);
    core.warm(wl.generate(30000, 6000));
    CounterBank bank(cc);
    const auto r = core.run(wl.generate(36000, 3000), &bank);
    bank.finalise(r.events);
    return bank;
}

} // namespace

TEST(FeatureVector, DimensionsMatchDeclared)
{
    const auto bank = someBank();
    const auto adv = assembleFeatures(bank, FeatureSet::Advanced);
    const auto bas = assembleFeatures(bank, FeatureSet::Basic);
    EXPECT_EQ(adv.size(), featureDimension(FeatureSet::Advanced));
    EXPECT_EQ(bas.size(), featureDimension(FeatureSet::Basic));
    EXPECT_GT(adv.size(), 10 * bas.size());   // histograms >> scalars
}

TEST(FeatureVector, ValuesAreBounded)
{
    const auto bank = someBank();
    for (auto set : {FeatureSet::Advanced, FeatureSet::Basic}) {
        for (double v : assembleFeatures(bank, set)) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 16.0);   // O(1) magnitudes by design
        }
    }
}

TEST(FeatureVector, EndsWithBiasTerm)
{
    const auto bank = someBank();
    EXPECT_EQ(assembleFeatures(bank, FeatureSet::Advanced).back(),
              1.0);
    EXPECT_EQ(assembleFeatures(bank, FeatureSet::Basic).back(),
              1.0);
}

TEST(FeatureVector, GroupsTileTheVector)
{
    for (auto set : {FeatureSet::Advanced, FeatureSet::Basic}) {
        const auto &groups = featureGroups(set);
        ASSERT_FALSE(groups.empty());
        std::size_t expect_begin = 0;
        for (const auto &g : groups) {
            EXPECT_EQ(g.begin, expect_begin) << g.name;
            EXPECT_GT(g.end, g.begin) << g.name;
            expect_begin = g.end;
        }
        EXPECT_EQ(expect_begin, featureDimension(set));
    }
}

TEST(FeatureVector, AdvancedContainsPaperGroups)
{
    std::set<std::string> names;
    for (const auto &g : featureGroups(FeatureSet::Advanced))
        names.insert(g.name);
    // The Table II counter families.
    for (const char *required :
         {"alu_usage", "memport_usage", "iq_usage", "lsq_usage",
          "speculation", "int_reg_usage", "rd_port_usage",
          "dc_stack", "dc_block_reuse", "dc_set_reuse",
          "dc_red_set_reuse", "btb_reuse", "mispred_rate", "cpi",
          "bias"}) {
        EXPECT_TRUE(names.count(required)) << required;
    }
}

TEST(FeatureVector, SetNames)
{
    EXPECT_STREQ(featureSetName(FeatureSet::Advanced), "advanced");
    EXPECT_STREQ(featureSetName(FeatureSet::Basic), "basic");
}

TEST(FeatureVector, DistinctWorkloadsGetDistinctFeatures)
{
    const auto a = someBank();
    const auto wl = workload::specBenchmark("mcf", 100000);
    workload::WrongPathGenerator wp(wl.averageParams(),
                                    wl.seed() ^ 0x57a71cULL);
    const auto cc = uarch::CoreConfig::fromConfiguration(
        space::Configuration::profiling());
    uarch::Core core(cc, wp);
    core.warm(wl.generate(30000, 6000));
    CounterBank b(cc);
    const auto r = core.run(wl.generate(36000, 3000), &b);
    b.finalise(r.events);

    const auto xa = assembleFeatures(a, FeatureSet::Advanced);
    const auto xb = assembleFeatures(b, FeatureSet::Advanced);
    double dist = 0.0;
    for (std::size_t i = 0; i < xa.size(); ++i)
        dist += std::abs(xa[i] - xb[i]);
    EXPECT_GT(dist, 0.5);
}
