/**
 * @file
 * Table III: the best overall static configuration (Sec. VI-A) — the
 * sampled configuration with the highest phase-weighted efficiency
 * across all of the suite.  This is the baseline every figure
 * normalises to.  Running this bench performs (and disk-caches) the
 * full Sec. V-C training-data gather.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace adaptsim;

int
main()
{
    harness::Experiment exp;
    const auto &baseline = exp.baselineConfig();
    const auto &ds = space::DesignSpace::the();

    TextTable table;
    std::vector<std::string> header;
    std::vector<std::string> ours;
    std::vector<std::string> paper_row;
    const auto paper = harness::paperBaselineConfig();
    for (auto p : space::allParams()) {
        header.push_back(ds.name(p));
        ours.push_back(std::to_string(baseline.value(p)));
        paper_row.push_back(std::to_string(paper.value(p)));
    }
    header.insert(header.begin(), "");
    ours.insert(ours.begin(), "ours");
    paper_row.insert(paper_row.begin(), "paper");
    table.setHeader(header);
    table.addRow(ours);
    table.addRow(paper_row);

    std::printf("Table III: best overall static configuration\n\n%s\n",
                table.render().c_str());

    const double ours_eff =
        harness::meanEfficiencyOf(exp.phases(), baseline);
    const double paper_eff =
        harness::meanEfficiencyOf(exp.phases(), paper);
    std::printf("Weighted geomean efficiency, ours : %.4e\n", ours_eff);
    std::printf("Weighted geomean efficiency, paper: %.4e (%.2fx of "
                "ours)\n",
                paper_eff, paper_eff / ours_eff);
    std::printf("\nCandidates examined: %zu (shared pool incl. the "
                "paper's Table III config)\n",
                exp.sharedPool().size());
    return 0;
}
