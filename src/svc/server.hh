/**
 * @file
 * The adaptsimd evaluation server.
 *
 * Serves EvalRequest frames (svc/protocol) from multiple concurrent
 * clients over a Unix domain socket, answering each with an
 * EvalReply carrying the repository's EvalRecord, the producing
 * backend's name, and whether the answer came from the cache.
 *
 * Threading model: one I/O thread owns every socket (poll loop —
 * accept, read, frame assembly, validation, admission control) and
 * one dispatch thread drains the request queue.  Requests are
 * coalesced per (phase window, backend): everything queued for the
 * same group is popped as one batch and evaluated through
 * EvalRepository::evaluateBatch, so concurrent clients asking about
 * the same phase share one parallel simulation sweep instead of
 * serializing on single evaluations.  Replies are written from the
 * dispatch thread under a per-client send lock.
 *
 * Admission control: a request is shed with a typed Error reply —
 * never a dropped connection — when the global queue already holds
 * maxQueue requests (Overloaded) or the client already has clientCap
 * requests in flight (TooManyInFlight).  Malformed frames get
 * BadFrame/BadVersion/BadType errors and the connection stays
 * usable; only an over-limit length prefix (Oversized) closes it,
 * because the stream's frame boundary is unrecoverable.
 *
 * Telemetry (obs registry): svc/requests, svc/replies, svc/errors,
 * svc/shed, svc/hit, svc/miss, svc/connects, svc/disconnects
 * counters; svc/clients and svc/queue_depth gauges; svc/batch.size
 * histogram; per-backend svc/eval/<backend>.seconds latency
 * histograms.
 */

#ifndef ADAPTSIM_SVC_SERVER_HH
#define ADAPTSIM_SVC_SERVER_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/env.hh"
#include "common/sync.hh"
#include "harness/repository.hh"
#include "svc/protocol.hh"

namespace adaptsim::sim
{
class PerfModel;
}

namespace adaptsim::svc
{

/** Server knobs; defaults come from the ADAPTSIM_SVC_* env. */
struct ServerOptions
{
    /** Unix-socket path to bind (unlinked on clean shutdown). */
    std::string socketPath;

    /** Requests the queue may hold before new ones are shed with
     *  Overloaded; 0 = unlimited.  Default ADAPTSIM_SVC_MAX_QUEUE. */
    std::size_t maxQueue = adaptsim::svcMaxQueue();

    /** Unanswered requests one client may have before further ones
     *  are shed with TooManyInFlight.  Default
     *  ADAPTSIM_SVC_CLIENT_CAP. */
    std::size_t clientCap = adaptsim::svcClientCap();

    /** Suppress the startup status line (the perf benches keep
     *  stdout machine-readable). */
    bool quiet = false;
};

/** Multi-client evaluation service over a Unix domain socket. */
class EvalServer
{
  public:
    /** @p repo outlives the server and does all the simulating. */
    EvalServer(harness::EvalRepository &repo, ServerOptions options);

    /** Stops and joins (equivalent to stop()). */
    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /** Bind, listen and spawn the service threads.  Returns false
     *  (with a warning) when the socket cannot be set up. */
    bool start();

    /** Ask the server to stop.  Async-signal-safe (one pipe write),
     *  so a SIGINT/SIGTERM handler may call it directly. */
    void requestStop();

    /** Block until the server has stopped serving (requestStop()
     *  from another thread or a signal handler ends the wait). */
    void wait() ADAPTSIM_EXCLUDES(mutex_);

    /** Full shutdown: requestStop(), join threads, close sockets,
     *  unlink the socket path.  Idempotent. */
    void stop();

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

  private:
    /** Per-connection state (shared between the I/O thread and the
     *  dispatch thread, which holds it while replies are pending). */
    struct Client;

    /** One queued request awaiting dispatch. */
    struct Pending
    {
        std::shared_ptr<Client> client;
        std::uint64_t id = 0;
        std::uint64_t code = 0;
    };

    /** All queued requests of one (phase window, backend) group. */
    struct Batch
    {
        harness::PhaseSpec spec;
        const sim::PerfModel *backend = nullptr;
        std::string backendName;
        std::vector<Pending> reqs;
    };

    void ioLoop();
    void dispatchLoop();
    void acceptClient();
    /** Read once from @p client; false = connection is gone. */
    bool readClient(const std::shared_ptr<Client> &client);
    /** Drain every complete frame currently buffered for @p client
     *  (admission decisions for all of them happen under one lock
     *  hold, so pipelined requests see a consistent queue). */
    void drainFrames(const std::shared_ptr<Client> &client);
    void dropClient(const std::shared_ptr<Client> &client);
    void processBatch(Batch &batch);
    /** Framed send under the client's send lock; marks the client
     *  closed on failure. */
    void sendToClient(const std::shared_ptr<Client> &client,
                      const std::string &frame);
    void sendError(const std::shared_ptr<Client> &client,
                   std::uint64_t id, ErrorCode code,
                   const std::string &message);

    harness::EvalRepository &repo_;
    ServerOptions options_;

    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    bool started_ = false;
    bool joined_ = false;
    std::thread ioThread_;
    std::thread dispatchThread_;

    /** Guards queue_, queueDepth_, stopping_ and every client's
     *  inFlight/closed flags.  queueCv_ wakes the dispatch thread;
     *  stopCv_ wakes wait()ers on shutdown.  They must be separate:
     *  with one shared condition variable a notify_one() for a new
     *  batch can land on a thread blocked in wait() (whose predicate
     *  is still false), and the dispatch thread never wakes. */
    Mutex mutex_;
    CondVar queueCv_;
    CondVar stopCv_;
    bool stopping_ ADAPTSIM_GUARDED_BY(mutex_) = false;
    std::map<std::string, Batch> queue_ ADAPTSIM_GUARDED_BY(mutex_);
    std::size_t queueDepth_ ADAPTSIM_GUARDED_BY(mutex_) = 0;
    /** Spec key of the last dispatched batch: the dispatcher prefers
     *  queued batches of the same phase (memoised gathers probe one
     *  phase from many clients), keeping that phase's `.evc` cache
     *  and interval traces warm across consecutive batches. */
    std::string lastSpecKey_ ADAPTSIM_GUARDED_BY(mutex_);

    /** Live connections, keyed by fd (I/O thread only). */
    std::unordered_map<int, std::shared_ptr<Client>> clients_;
};

} // namespace adaptsim::svc

#endif // ADAPTSIM_SVC_SERVER_HH
