# Empty dependencies file for test_counter_bank.
# This may be replaced when dependencies are built.
