/**
 * @file
 * Reorder buffer: a ring of in-flight µop state.
 *
 * Entries are addressed by slot index; a per-entry sequence number
 * guards against stale references after squash/recycle.
 */

#ifndef ADAPTSIM_UARCH_ROB_HH
#define ADAPTSIM_UARCH_ROB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/micro_op.hh"

namespace adaptsim::uarch
{

/** Lifecycle of a ROB entry. */
enum class OpState : std::uint8_t
{
    Empty,
    Dispatched,   ///< waiting in IQ (and LSQ if memory)
    Issued,       ///< executing
    Done          ///< result available
};

/** All pipeline-tracked state of one in-flight µop. */
struct RobEntry
{
    isa::MicroOp op;
    std::uint32_t seq = 0;        ///< recycle guard
    OpState state = OpState::Empty;
    bool wrongPath = false;       ///< fetched past a mispredict
    bool speculative = false;     ///< younger than unresolved branch
    bool mispredicted = false;    ///< branch predicted wrongly
    bool inIq = false;
    bool inLsq = false;
    bool forwarded = false;       ///< load satisfied by a store
    std::uint32_t histSnapshot = 0; ///< bpred history before branch
    Cycles doneCycle = 0;
    /** Producer-readiness memo: the entry cannot issue before this
     *  cycle, so the IQ scan skips it without re-walking both
     *  producers (reset at dispatch, updated by the scan). */
    Cycles readyAt = 0;
    // Producer references for wakeup: ROB slot + its seq at dispatch.
    std::int32_t prod0 = -1, prod1 = -1;
    std::uint32_t prod0Seq = 0, prod1Seq = 0;
};

/** The reorder buffer ring. */
class Rob
{
  public:
    explicit Rob(int capacity);

    bool full() const { return count_ == capacity_; }
    bool empty() const { return count_ == 0; }
    int occupancy() const { return count_; }
    int capacity() const { return capacity_; }

    /** Slot index of the oldest entry (empty() must be false). */
    std::int32_t headIndex() const { return head_; }

    /** Entry access by slot index. */
    RobEntry &entry(std::int32_t idx) { return entries_[idx]; }
    const RobEntry &entry(std::int32_t idx) const
    {
        return entries_[idx];
    }

    /** Append a new entry at the tail; returns its slot index. */
    std::int32_t push();

    /** Retire the head entry. */
    void popHead();

    /**
     * Squash the @p count youngest entries (from the tail), invoking
     * @p on_squash for each before the slot is recycled.
     */
    template <typename Fn>
    void
    squashYoungest(int count, Fn &&on_squash)
    {
        for (int i = 0; i < count; ++i) {
            const std::int32_t idx = tailIndex();
            on_squash(entries_[idx]);
            entries_[idx].state = OpState::Empty;
            ++entries_[idx].seq;
            --count_;
        }
    }

    /** Slot of the youngest entry (empty() must be false). */
    std::int32_t tailIndex() const
    {
        return static_cast<std::int32_t>(
            (head_ + count_ - 1) % capacity_);
    }

    /** Slot of the i-th oldest entry, 0-based. */
    std::int32_t indexFromHead(int i) const
    {
        return static_cast<std::int32_t>((head_ + i) % capacity_);
    }

    /** Age position (0 = oldest) of the entry in slot @p idx. */
    int distanceFromHead(std::int32_t idx) const
    {
        return static_cast<int>((idx - head_ + capacity_) % capacity_);
    }

    /** True when a (slot, seq) reference is still the same entry. */
    bool valid(std::int32_t idx, std::uint32_t seq) const
    {
        return idx >= 0 && entries_[idx].seq == seq &&
               entries_[idx].state != OpState::Empty;
    }

  private:
    int capacity_;
    std::int32_t head_ = 0;
    int count_ = 0;
    std::vector<RobEntry> entries_;
};

} // namespace adaptsim::uarch

#endif // ADAPTSIM_UARCH_ROB_HH
